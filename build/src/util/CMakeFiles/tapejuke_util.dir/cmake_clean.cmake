file(REMOVE_RECURSE
  "CMakeFiles/tapejuke_util.dir/flags.cc.o"
  "CMakeFiles/tapejuke_util.dir/flags.cc.o.d"
  "CMakeFiles/tapejuke_util.dir/rng.cc.o"
  "CMakeFiles/tapejuke_util.dir/rng.cc.o.d"
  "CMakeFiles/tapejuke_util.dir/stats.cc.o"
  "CMakeFiles/tapejuke_util.dir/stats.cc.o.d"
  "CMakeFiles/tapejuke_util.dir/status.cc.o"
  "CMakeFiles/tapejuke_util.dir/status.cc.o.d"
  "CMakeFiles/tapejuke_util.dir/table.cc.o"
  "CMakeFiles/tapejuke_util.dir/table.cc.o.d"
  "libtapejuke_util.a"
  "libtapejuke_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapejuke_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
