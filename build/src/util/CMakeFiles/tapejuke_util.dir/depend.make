# Empty dependencies file for tapejuke_util.
# This may be replaced when dependencies are built.
