file(REMOVE_RECURSE
  "libtapejuke_util.a"
)
