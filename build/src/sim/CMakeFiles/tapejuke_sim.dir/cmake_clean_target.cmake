file(REMOVE_RECURSE
  "libtapejuke_sim.a"
)
