# Empty compiler generated dependencies file for tapejuke_sim.
# This may be replaced when dependencies are built.
