
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/lifecycle.cc" "src/sim/CMakeFiles/tapejuke_sim.dir/lifecycle.cc.o" "gcc" "src/sim/CMakeFiles/tapejuke_sim.dir/lifecycle.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/sim/CMakeFiles/tapejuke_sim.dir/metrics.cc.o" "gcc" "src/sim/CMakeFiles/tapejuke_sim.dir/metrics.cc.o.d"
  "/root/repo/src/sim/multi_drive.cc" "src/sim/CMakeFiles/tapejuke_sim.dir/multi_drive.cc.o" "gcc" "src/sim/CMakeFiles/tapejuke_sim.dir/multi_drive.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/tapejuke_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/tapejuke_sim.dir/simulator.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/tapejuke_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/tapejuke_sim.dir/trace.cc.o.d"
  "/root/repo/src/sim/workload.cc" "src/sim/CMakeFiles/tapejuke_sim.dir/workload.cc.o" "gcc" "src/sim/CMakeFiles/tapejuke_sim.dir/workload.cc.o.d"
  "/root/repo/src/sim/write_path.cc" "src/sim/CMakeFiles/tapejuke_sim.dir/write_path.cc.o" "gcc" "src/sim/CMakeFiles/tapejuke_sim.dir/write_path.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/tapejuke_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/tapejuke_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/tape/CMakeFiles/tapejuke_tape.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tapejuke_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
