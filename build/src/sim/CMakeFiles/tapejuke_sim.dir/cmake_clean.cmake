file(REMOVE_RECURSE
  "CMakeFiles/tapejuke_sim.dir/lifecycle.cc.o"
  "CMakeFiles/tapejuke_sim.dir/lifecycle.cc.o.d"
  "CMakeFiles/tapejuke_sim.dir/metrics.cc.o"
  "CMakeFiles/tapejuke_sim.dir/metrics.cc.o.d"
  "CMakeFiles/tapejuke_sim.dir/multi_drive.cc.o"
  "CMakeFiles/tapejuke_sim.dir/multi_drive.cc.o.d"
  "CMakeFiles/tapejuke_sim.dir/simulator.cc.o"
  "CMakeFiles/tapejuke_sim.dir/simulator.cc.o.d"
  "CMakeFiles/tapejuke_sim.dir/trace.cc.o"
  "CMakeFiles/tapejuke_sim.dir/trace.cc.o.d"
  "CMakeFiles/tapejuke_sim.dir/workload.cc.o"
  "CMakeFiles/tapejuke_sim.dir/workload.cc.o.d"
  "CMakeFiles/tapejuke_sim.dir/write_path.cc.o"
  "CMakeFiles/tapejuke_sim.dir/write_path.cc.o.d"
  "libtapejuke_sim.a"
  "libtapejuke_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapejuke_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
