
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/envelope_scheduler.cc" "src/sched/CMakeFiles/tapejuke_sched.dir/envelope_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/tapejuke_sched.dir/envelope_scheduler.cc.o.d"
  "/root/repo/src/sched/fifo_scheduler.cc" "src/sched/CMakeFiles/tapejuke_sched.dir/fifo_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/tapejuke_sched.dir/fifo_scheduler.cc.o.d"
  "/root/repo/src/sched/greedy_scheduler.cc" "src/sched/CMakeFiles/tapejuke_sched.dir/greedy_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/tapejuke_sched.dir/greedy_scheduler.cc.o.d"
  "/root/repo/src/sched/schedule_cost.cc" "src/sched/CMakeFiles/tapejuke_sched.dir/schedule_cost.cc.o" "gcc" "src/sched/CMakeFiles/tapejuke_sched.dir/schedule_cost.cc.o.d"
  "/root/repo/src/sched/scheduler.cc" "src/sched/CMakeFiles/tapejuke_sched.dir/scheduler.cc.o" "gcc" "src/sched/CMakeFiles/tapejuke_sched.dir/scheduler.cc.o.d"
  "/root/repo/src/sched/sweep.cc" "src/sched/CMakeFiles/tapejuke_sched.dir/sweep.cc.o" "gcc" "src/sched/CMakeFiles/tapejuke_sched.dir/sweep.cc.o.d"
  "/root/repo/src/sched/sweep_builder.cc" "src/sched/CMakeFiles/tapejuke_sched.dir/sweep_builder.cc.o" "gcc" "src/sched/CMakeFiles/tapejuke_sched.dir/sweep_builder.cc.o.d"
  "/root/repo/src/sched/theory.cc" "src/sched/CMakeFiles/tapejuke_sched.dir/theory.cc.o" "gcc" "src/sched/CMakeFiles/tapejuke_sched.dir/theory.cc.o.d"
  "/root/repo/src/sched/validating_scheduler.cc" "src/sched/CMakeFiles/tapejuke_sched.dir/validating_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/tapejuke_sched.dir/validating_scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/layout/CMakeFiles/tapejuke_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/tape/CMakeFiles/tapejuke_tape.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tapejuke_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
