file(REMOVE_RECURSE
  "libtapejuke_sched.a"
)
