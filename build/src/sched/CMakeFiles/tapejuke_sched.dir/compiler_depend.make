# Empty compiler generated dependencies file for tapejuke_sched.
# This may be replaced when dependencies are built.
