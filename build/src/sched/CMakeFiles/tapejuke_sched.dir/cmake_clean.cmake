file(REMOVE_RECURSE
  "CMakeFiles/tapejuke_sched.dir/envelope_scheduler.cc.o"
  "CMakeFiles/tapejuke_sched.dir/envelope_scheduler.cc.o.d"
  "CMakeFiles/tapejuke_sched.dir/fifo_scheduler.cc.o"
  "CMakeFiles/tapejuke_sched.dir/fifo_scheduler.cc.o.d"
  "CMakeFiles/tapejuke_sched.dir/greedy_scheduler.cc.o"
  "CMakeFiles/tapejuke_sched.dir/greedy_scheduler.cc.o.d"
  "CMakeFiles/tapejuke_sched.dir/schedule_cost.cc.o"
  "CMakeFiles/tapejuke_sched.dir/schedule_cost.cc.o.d"
  "CMakeFiles/tapejuke_sched.dir/scheduler.cc.o"
  "CMakeFiles/tapejuke_sched.dir/scheduler.cc.o.d"
  "CMakeFiles/tapejuke_sched.dir/sweep.cc.o"
  "CMakeFiles/tapejuke_sched.dir/sweep.cc.o.d"
  "CMakeFiles/tapejuke_sched.dir/sweep_builder.cc.o"
  "CMakeFiles/tapejuke_sched.dir/sweep_builder.cc.o.d"
  "CMakeFiles/tapejuke_sched.dir/theory.cc.o"
  "CMakeFiles/tapejuke_sched.dir/theory.cc.o.d"
  "CMakeFiles/tapejuke_sched.dir/validating_scheduler.cc.o"
  "CMakeFiles/tapejuke_sched.dir/validating_scheduler.cc.o.d"
  "libtapejuke_sched.a"
  "libtapejuke_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapejuke_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
