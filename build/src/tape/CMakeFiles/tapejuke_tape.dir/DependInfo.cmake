
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tape/drive.cc" "src/tape/CMakeFiles/tapejuke_tape.dir/drive.cc.o" "gcc" "src/tape/CMakeFiles/tapejuke_tape.dir/drive.cc.o.d"
  "/root/repo/src/tape/jukebox.cc" "src/tape/CMakeFiles/tapejuke_tape.dir/jukebox.cc.o" "gcc" "src/tape/CMakeFiles/tapejuke_tape.dir/jukebox.cc.o.d"
  "/root/repo/src/tape/physical_drive.cc" "src/tape/CMakeFiles/tapejuke_tape.dir/physical_drive.cc.o" "gcc" "src/tape/CMakeFiles/tapejuke_tape.dir/physical_drive.cc.o.d"
  "/root/repo/src/tape/serpentine.cc" "src/tape/CMakeFiles/tapejuke_tape.dir/serpentine.cc.o" "gcc" "src/tape/CMakeFiles/tapejuke_tape.dir/serpentine.cc.o.d"
  "/root/repo/src/tape/tape.cc" "src/tape/CMakeFiles/tapejuke_tape.dir/tape.cc.o" "gcc" "src/tape/CMakeFiles/tapejuke_tape.dir/tape.cc.o.d"
  "/root/repo/src/tape/timing_model.cc" "src/tape/CMakeFiles/tapejuke_tape.dir/timing_model.cc.o" "gcc" "src/tape/CMakeFiles/tapejuke_tape.dir/timing_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tapejuke_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
