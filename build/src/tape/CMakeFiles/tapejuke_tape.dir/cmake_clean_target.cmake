file(REMOVE_RECURSE
  "libtapejuke_tape.a"
)
