# Empty dependencies file for tapejuke_tape.
# This may be replaced when dependencies are built.
