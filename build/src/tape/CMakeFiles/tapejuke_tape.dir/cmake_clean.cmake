file(REMOVE_RECURSE
  "CMakeFiles/tapejuke_tape.dir/drive.cc.o"
  "CMakeFiles/tapejuke_tape.dir/drive.cc.o.d"
  "CMakeFiles/tapejuke_tape.dir/jukebox.cc.o"
  "CMakeFiles/tapejuke_tape.dir/jukebox.cc.o.d"
  "CMakeFiles/tapejuke_tape.dir/physical_drive.cc.o"
  "CMakeFiles/tapejuke_tape.dir/physical_drive.cc.o.d"
  "CMakeFiles/tapejuke_tape.dir/serpentine.cc.o"
  "CMakeFiles/tapejuke_tape.dir/serpentine.cc.o.d"
  "CMakeFiles/tapejuke_tape.dir/tape.cc.o"
  "CMakeFiles/tapejuke_tape.dir/tape.cc.o.d"
  "CMakeFiles/tapejuke_tape.dir/timing_model.cc.o"
  "CMakeFiles/tapejuke_tape.dir/timing_model.cc.o.d"
  "libtapejuke_tape.a"
  "libtapejuke_tape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapejuke_tape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
