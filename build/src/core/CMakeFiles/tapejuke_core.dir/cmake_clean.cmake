file(REMOVE_RECURSE
  "CMakeFiles/tapejuke_core.dir/analytic.cc.o"
  "CMakeFiles/tapejuke_core.dir/analytic.cc.o.d"
  "CMakeFiles/tapejuke_core.dir/cost_performance.cc.o"
  "CMakeFiles/tapejuke_core.dir/cost_performance.cc.o.d"
  "CMakeFiles/tapejuke_core.dir/experiment.cc.o"
  "CMakeFiles/tapejuke_core.dir/experiment.cc.o.d"
  "CMakeFiles/tapejuke_core.dir/farm.cc.o"
  "CMakeFiles/tapejuke_core.dir/farm.cc.o.d"
  "libtapejuke_core.a"
  "libtapejuke_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapejuke_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
