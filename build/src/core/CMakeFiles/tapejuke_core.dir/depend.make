# Empty dependencies file for tapejuke_core.
# This may be replaced when dependencies are built.
