file(REMOVE_RECURSE
  "libtapejuke_core.a"
)
