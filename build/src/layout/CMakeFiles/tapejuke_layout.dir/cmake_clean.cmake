file(REMOVE_RECURSE
  "CMakeFiles/tapejuke_layout.dir/catalog.cc.o"
  "CMakeFiles/tapejuke_layout.dir/catalog.cc.o.d"
  "CMakeFiles/tapejuke_layout.dir/placement.cc.o"
  "CMakeFiles/tapejuke_layout.dir/placement.cc.o.d"
  "libtapejuke_layout.a"
  "libtapejuke_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapejuke_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
