
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/catalog.cc" "src/layout/CMakeFiles/tapejuke_layout.dir/catalog.cc.o" "gcc" "src/layout/CMakeFiles/tapejuke_layout.dir/catalog.cc.o.d"
  "/root/repo/src/layout/placement.cc" "src/layout/CMakeFiles/tapejuke_layout.dir/placement.cc.o" "gcc" "src/layout/CMakeFiles/tapejuke_layout.dir/placement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tape/CMakeFiles/tapejuke_tape.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tapejuke_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
