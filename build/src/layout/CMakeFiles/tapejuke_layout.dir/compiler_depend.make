# Empty compiler generated dependencies file for tapejuke_layout.
# This may be replaced when dependencies are built.
