file(REMOVE_RECURSE
  "libtapejuke_layout.a"
)
