# Empty compiler generated dependencies file for video_archive.
# This may be replaced when dependencies are built.
