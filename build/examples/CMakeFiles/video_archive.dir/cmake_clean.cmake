file(REMOVE_RECURSE
  "CMakeFiles/video_archive.dir/video_archive.cpp.o"
  "CMakeFiles/video_archive.dir/video_archive.cpp.o.d"
  "video_archive"
  "video_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
