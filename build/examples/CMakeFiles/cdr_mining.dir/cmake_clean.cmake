file(REMOVE_RECURSE
  "CMakeFiles/cdr_mining.dir/cdr_mining.cpp.o"
  "CMakeFiles/cdr_mining.dir/cdr_mining.cpp.o.d"
  "cdr_mining"
  "cdr_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdr_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
