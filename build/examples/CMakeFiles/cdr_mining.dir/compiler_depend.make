# Empty compiler generated dependencies file for cdr_mining.
# This may be replaced when dependencies are built.
