# Empty compiler generated dependencies file for ext_multi_drive.
# This may be replaced when dependencies are built.
