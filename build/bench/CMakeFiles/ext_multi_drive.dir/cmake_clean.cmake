file(REMOVE_RECURSE
  "CMakeFiles/ext_multi_drive.dir/ext_multi_drive.cc.o"
  "CMakeFiles/ext_multi_drive.dir/ext_multi_drive.cc.o.d"
  "ext_multi_drive"
  "ext_multi_drive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multi_drive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
