# Empty dependencies file for ext_write_path.
# This may be replaced when dependencies are built.
