file(REMOVE_RECURSE
  "CMakeFiles/ext_write_path.dir/ext_write_path.cc.o"
  "CMakeFiles/ext_write_path.dir/ext_write_path.cc.o.d"
  "ext_write_path"
  "ext_write_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_write_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
