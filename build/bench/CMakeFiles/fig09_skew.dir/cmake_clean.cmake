file(REMOVE_RECURSE
  "CMakeFiles/fig09_skew.dir/fig09_skew.cc.o"
  "CMakeFiles/fig09_skew.dir/fig09_skew.cc.o.d"
  "fig09_skew"
  "fig09_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
