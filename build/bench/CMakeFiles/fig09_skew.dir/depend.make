# Empty dependencies file for fig09_skew.
# This may be replaced when dependencies are built.
