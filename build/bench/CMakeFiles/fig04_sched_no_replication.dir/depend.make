# Empty dependencies file for fig04_sched_no_replication.
# This may be replaced when dependencies are built.
