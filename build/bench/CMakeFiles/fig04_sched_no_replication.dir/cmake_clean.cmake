file(REMOVE_RECURSE
  "CMakeFiles/fig04_sched_no_replication.dir/fig04_sched_no_replication.cc.o"
  "CMakeFiles/fig04_sched_no_replication.dir/fig04_sched_no_replication.cc.o.d"
  "fig04_sched_no_replication"
  "fig04_sched_no_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_sched_no_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
