# Empty compiler generated dependencies file for abl_envelope.
# This may be replaced when dependencies are built.
