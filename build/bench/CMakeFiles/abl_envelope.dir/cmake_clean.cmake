file(REMOVE_RECURSE
  "CMakeFiles/abl_envelope.dir/abl_envelope.cc.o"
  "CMakeFiles/abl_envelope.dir/abl_envelope.cc.o.d"
  "abl_envelope"
  "abl_envelope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_envelope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
