# Empty dependencies file for fig01_locate_model.
# This may be replaced when dependencies are built.
