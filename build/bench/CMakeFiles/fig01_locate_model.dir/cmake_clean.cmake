file(REMOVE_RECURSE
  "CMakeFiles/fig01_locate_model.dir/fig01_locate_model.cc.o"
  "CMakeFiles/fig01_locate_model.dir/fig01_locate_model.cc.o.d"
  "fig01_locate_model"
  "fig01_locate_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_locate_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
