# Empty dependencies file for ext_lifecycle.
# This may be replaced when dependencies are built.
