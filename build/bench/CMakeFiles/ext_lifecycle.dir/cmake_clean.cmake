file(REMOVE_RECURSE
  "CMakeFiles/ext_lifecycle.dir/ext_lifecycle.cc.o"
  "CMakeFiles/ext_lifecycle.dir/ext_lifecycle.cc.o.d"
  "ext_lifecycle"
  "ext_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
