file(REMOVE_RECURSE
  "CMakeFiles/ext_farm.dir/ext_farm.cc.o"
  "CMakeFiles/ext_farm.dir/ext_farm.cc.o.d"
  "ext_farm"
  "ext_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
