# Empty dependencies file for ext_farm.
# This may be replaced when dependencies are built.
