# Empty dependencies file for abl_dynamic_insertion.
# This may be replaced when dependencies are built.
