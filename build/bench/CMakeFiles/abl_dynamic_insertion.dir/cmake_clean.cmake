file(REMOVE_RECURSE
  "CMakeFiles/abl_dynamic_insertion.dir/abl_dynamic_insertion.cc.o"
  "CMakeFiles/abl_dynamic_insertion.dir/abl_dynamic_insertion.cc.o.d"
  "abl_dynamic_insertion"
  "abl_dynamic_insertion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dynamic_insertion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
