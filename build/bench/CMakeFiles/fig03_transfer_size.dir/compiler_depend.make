# Empty compiler generated dependencies file for fig03_transfer_size.
# This may be replaced when dependencies are built.
