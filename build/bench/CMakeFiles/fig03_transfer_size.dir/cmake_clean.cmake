file(REMOVE_RECURSE
  "CMakeFiles/fig03_transfer_size.dir/fig03_transfer_size.cc.o"
  "CMakeFiles/fig03_transfer_size.dir/fig03_transfer_size.cc.o.d"
  "fig03_transfer_size"
  "fig03_transfer_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_transfer_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
