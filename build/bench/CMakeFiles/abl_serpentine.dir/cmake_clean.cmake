file(REMOVE_RECURSE
  "CMakeFiles/abl_serpentine.dir/abl_serpentine.cc.o"
  "CMakeFiles/abl_serpentine.dir/abl_serpentine.cc.o.d"
  "abl_serpentine"
  "abl_serpentine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_serpentine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
