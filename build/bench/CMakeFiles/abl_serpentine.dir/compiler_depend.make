# Empty compiler generated dependencies file for abl_serpentine.
# This may be replaced when dependencies are built.
