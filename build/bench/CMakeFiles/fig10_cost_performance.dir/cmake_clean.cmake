file(REMOVE_RECURSE
  "CMakeFiles/fig10_cost_performance.dir/fig10_cost_performance.cc.o"
  "CMakeFiles/fig10_cost_performance.dir/fig10_cost_performance.cc.o.d"
  "fig10_cost_performance"
  "fig10_cost_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cost_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
