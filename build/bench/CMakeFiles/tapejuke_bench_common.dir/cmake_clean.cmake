file(REMOVE_RECURSE
  "CMakeFiles/tapejuke_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/tapejuke_bench_common.dir/bench_common.cc.o.d"
  "libtapejuke_bench_common.a"
  "libtapejuke_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapejuke_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
