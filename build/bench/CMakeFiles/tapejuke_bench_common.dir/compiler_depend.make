# Empty compiler generated dependencies file for tapejuke_bench_common.
# This may be replaced when dependencies are built.
