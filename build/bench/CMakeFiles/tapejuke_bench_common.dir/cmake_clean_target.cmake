file(REMOVE_RECURSE
  "libtapejuke_bench_common.a"
)
