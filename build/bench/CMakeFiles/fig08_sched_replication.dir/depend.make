# Empty dependencies file for fig08_sched_replication.
# This may be replaced when dependencies are built.
