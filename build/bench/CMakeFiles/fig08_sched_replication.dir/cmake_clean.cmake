file(REMOVE_RECURSE
  "CMakeFiles/fig08_sched_replication.dir/fig08_sched_replication.cc.o"
  "CMakeFiles/fig08_sched_replication.dir/fig08_sched_replication.cc.o.d"
  "fig08_sched_replication"
  "fig08_sched_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_sched_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
