# Empty dependencies file for abl_vertical.
# This may be replaced when dependencies are built.
