file(REMOVE_RECURSE
  "CMakeFiles/abl_vertical.dir/abl_vertical.cc.o"
  "CMakeFiles/abl_vertical.dir/abl_vertical.cc.o.d"
  "abl_vertical"
  "abl_vertical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_vertical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
