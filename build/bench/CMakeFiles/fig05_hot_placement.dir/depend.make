# Empty dependencies file for fig05_hot_placement.
# This may be replaced when dependencies are built.
