file(REMOVE_RECURSE
  "CMakeFiles/fig05_hot_placement.dir/fig05_hot_placement.cc.o"
  "CMakeFiles/fig05_hot_placement.dir/fig05_hot_placement.cc.o.d"
  "fig05_hot_placement"
  "fig05_hot_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_hot_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
