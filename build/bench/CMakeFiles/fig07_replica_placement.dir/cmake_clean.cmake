file(REMOVE_RECURSE
  "CMakeFiles/fig07_replica_placement.dir/fig07_replica_placement.cc.o"
  "CMakeFiles/fig07_replica_placement.dir/fig07_replica_placement.cc.o.d"
  "fig07_replica_placement"
  "fig07_replica_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_replica_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
