# Empty compiler generated dependencies file for fig07_replica_placement.
# This may be replaced when dependencies are built.
