# Empty compiler generated dependencies file for ext_analytic.
# This may be replaced when dependencies are built.
