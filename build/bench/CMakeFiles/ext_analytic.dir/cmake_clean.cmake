file(REMOVE_RECURSE
  "CMakeFiles/ext_analytic.dir/ext_analytic.cc.o"
  "CMakeFiles/ext_analytic.dir/ext_analytic.cc.o.d"
  "ext_analytic"
  "ext_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
