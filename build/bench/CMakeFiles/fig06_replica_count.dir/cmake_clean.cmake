file(REMOVE_RECURSE
  "CMakeFiles/fig06_replica_count.dir/fig06_replica_count.cc.o"
  "CMakeFiles/fig06_replica_count.dir/fig06_replica_count.cc.o.d"
  "fig06_replica_count"
  "fig06_replica_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_replica_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
