# Empty dependencies file for fig06_replica_count.
# This may be replaced when dependencies are built.
