file(REMOVE_RECURSE
  "CMakeFiles/abl_rewind.dir/abl_rewind.cc.o"
  "CMakeFiles/abl_rewind.dir/abl_rewind.cc.o.d"
  "abl_rewind"
  "abl_rewind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_rewind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
