# Empty dependencies file for abl_rewind.
# This may be replaced when dependencies are built.
