file(REMOVE_RECURSE
  "CMakeFiles/ext_zipf.dir/ext_zipf.cc.o"
  "CMakeFiles/ext_zipf.dir/ext_zipf.cc.o.d"
  "ext_zipf"
  "ext_zipf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_zipf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
