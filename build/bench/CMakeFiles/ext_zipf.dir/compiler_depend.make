# Empty compiler generated dependencies file for ext_zipf.
# This may be replaced when dependencies are built.
