# Empty compiler generated dependencies file for fig02_model_validation.
# This may be replaced when dependencies are built.
