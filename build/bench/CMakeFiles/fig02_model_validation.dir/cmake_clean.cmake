file(REMOVE_RECURSE
  "CMakeFiles/fig02_model_validation.dir/fig02_model_validation.cc.o"
  "CMakeFiles/fig02_model_validation.dir/fig02_model_validation.cc.o.d"
  "fig02_model_validation"
  "fig02_model_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_model_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
