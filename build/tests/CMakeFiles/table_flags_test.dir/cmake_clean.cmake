file(REMOVE_RECURSE
  "CMakeFiles/table_flags_test.dir/table_flags_test.cc.o"
  "CMakeFiles/table_flags_test.dir/table_flags_test.cc.o.d"
  "table_flags_test"
  "table_flags_test.pdb"
  "table_flags_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_flags_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
