# Empty dependencies file for table_flags_test.
# This may be replaced when dependencies are built.
