# Empty dependencies file for workload_extensions_test.
# This may be replaced when dependencies are built.
