file(REMOVE_RECURSE
  "CMakeFiles/workload_extensions_test.dir/workload_extensions_test.cc.o"
  "CMakeFiles/workload_extensions_test.dir/workload_extensions_test.cc.o.d"
  "workload_extensions_test"
  "workload_extensions_test.pdb"
  "workload_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
