file(REMOVE_RECURSE
  "CMakeFiles/write_path_test.dir/write_path_test.cc.o"
  "CMakeFiles/write_path_test.dir/write_path_test.cc.o.d"
  "write_path_test"
  "write_path_test.pdb"
  "write_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
