# Empty dependencies file for write_path_test.
# This may be replaced when dependencies are built.
