
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/theory_test.cc" "tests/CMakeFiles/theory_test.dir/theory_test.cc.o" "gcc" "tests/CMakeFiles/theory_test.dir/theory_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tapejuke_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tapejuke_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tapejuke_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/tapejuke_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/tape/CMakeFiles/tapejuke_tape.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tapejuke_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
