file(REMOVE_RECURSE
  "CMakeFiles/physical_drive_test.dir/physical_drive_test.cc.o"
  "CMakeFiles/physical_drive_test.dir/physical_drive_test.cc.o.d"
  "physical_drive_test"
  "physical_drive_test.pdb"
  "physical_drive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/physical_drive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
