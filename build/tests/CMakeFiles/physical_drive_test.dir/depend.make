# Empty dependencies file for physical_drive_test.
# This may be replaced when dependencies are built.
