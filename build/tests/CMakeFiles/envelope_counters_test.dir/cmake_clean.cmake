file(REMOVE_RECURSE
  "CMakeFiles/envelope_counters_test.dir/envelope_counters_test.cc.o"
  "CMakeFiles/envelope_counters_test.dir/envelope_counters_test.cc.o.d"
  "envelope_counters_test"
  "envelope_counters_test.pdb"
  "envelope_counters_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envelope_counters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
