file(REMOVE_RECURSE
  "CMakeFiles/scheduler_invariants_test.dir/scheduler_invariants_test.cc.o"
  "CMakeFiles/scheduler_invariants_test.dir/scheduler_invariants_test.cc.o.d"
  "scheduler_invariants_test"
  "scheduler_invariants_test.pdb"
  "scheduler_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
