# Empty dependencies file for scheduler_invariants_test.
# This may be replaced when dependencies are built.
