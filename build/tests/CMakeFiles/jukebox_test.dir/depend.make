# Empty dependencies file for jukebox_test.
# This may be replaced when dependencies are built.
