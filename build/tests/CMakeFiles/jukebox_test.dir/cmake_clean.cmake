file(REMOVE_RECURSE
  "CMakeFiles/jukebox_test.dir/jukebox_test.cc.o"
  "CMakeFiles/jukebox_test.dir/jukebox_test.cc.o.d"
  "jukebox_test"
  "jukebox_test.pdb"
  "jukebox_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jukebox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
