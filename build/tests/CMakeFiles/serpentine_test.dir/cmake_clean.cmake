file(REMOVE_RECURSE
  "CMakeFiles/serpentine_test.dir/serpentine_test.cc.o"
  "CMakeFiles/serpentine_test.dir/serpentine_test.cc.o.d"
  "serpentine_test"
  "serpentine_test.pdb"
  "serpentine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serpentine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
