# Empty dependencies file for serpentine_test.
# This may be replaced when dependencies are built.
