# Empty dependencies file for schedule_cost_test.
# This may be replaced when dependencies are built.
