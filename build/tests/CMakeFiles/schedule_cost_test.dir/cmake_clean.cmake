file(REMOVE_RECURSE
  "CMakeFiles/schedule_cost_test.dir/schedule_cost_test.cc.o"
  "CMakeFiles/schedule_cost_test.dir/schedule_cost_test.cc.o.d"
  "schedule_cost_test"
  "schedule_cost_test.pdb"
  "schedule_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
