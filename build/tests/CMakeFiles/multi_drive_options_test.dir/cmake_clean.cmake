file(REMOVE_RECURSE
  "CMakeFiles/multi_drive_options_test.dir/multi_drive_options_test.cc.o"
  "CMakeFiles/multi_drive_options_test.dir/multi_drive_options_test.cc.o.d"
  "multi_drive_options_test"
  "multi_drive_options_test.pdb"
  "multi_drive_options_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_drive_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
