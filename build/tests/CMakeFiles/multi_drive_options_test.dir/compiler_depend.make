# Empty compiler generated dependencies file for multi_drive_options_test.
# This may be replaced when dependencies are built.
