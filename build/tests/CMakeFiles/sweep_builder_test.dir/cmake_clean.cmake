file(REMOVE_RECURSE
  "CMakeFiles/sweep_builder_test.dir/sweep_builder_test.cc.o"
  "CMakeFiles/sweep_builder_test.dir/sweep_builder_test.cc.o.d"
  "sweep_builder_test"
  "sweep_builder_test.pdb"
  "sweep_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
