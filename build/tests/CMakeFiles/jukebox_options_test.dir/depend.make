# Empty dependencies file for jukebox_options_test.
# This may be replaced when dependencies are built.
