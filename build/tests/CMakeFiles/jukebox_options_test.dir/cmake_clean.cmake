file(REMOVE_RECURSE
  "CMakeFiles/jukebox_options_test.dir/jukebox_options_test.cc.o"
  "CMakeFiles/jukebox_options_test.dir/jukebox_options_test.cc.o.d"
  "jukebox_options_test"
  "jukebox_options_test.pdb"
  "jukebox_options_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jukebox_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
