# Empty dependencies file for greedy_scheduler_test.
# This may be replaced when dependencies are built.
