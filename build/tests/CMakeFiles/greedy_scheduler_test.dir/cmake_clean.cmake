file(REMOVE_RECURSE
  "CMakeFiles/greedy_scheduler_test.dir/greedy_scheduler_test.cc.o"
  "CMakeFiles/greedy_scheduler_test.dir/greedy_scheduler_test.cc.o.d"
  "greedy_scheduler_test"
  "greedy_scheduler_test.pdb"
  "greedy_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
