# Empty compiler generated dependencies file for tape_test.
# This may be replaced when dependencies are built.
