file(REMOVE_RECURSE
  "CMakeFiles/tape_test.dir/tape_test.cc.o"
  "CMakeFiles/tape_test.dir/tape_test.cc.o.d"
  "tape_test"
  "tape_test.pdb"
  "tape_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
