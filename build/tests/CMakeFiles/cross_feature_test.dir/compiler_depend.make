# Empty compiler generated dependencies file for cross_feature_test.
# This may be replaced when dependencies are built.
