file(REMOVE_RECURSE
  "CMakeFiles/cross_feature_test.dir/cross_feature_test.cc.o"
  "CMakeFiles/cross_feature_test.dir/cross_feature_test.cc.o.d"
  "cross_feature_test"
  "cross_feature_test.pdb"
  "cross_feature_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_feature_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
