# Empty compiler generated dependencies file for multi_drive_test.
# This may be replaced when dependencies are built.
