file(REMOVE_RECURSE
  "CMakeFiles/farm_test.dir/farm_test.cc.o"
  "CMakeFiles/farm_test.dir/farm_test.cc.o.d"
  "farm_test"
  "farm_test.pdb"
  "farm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/farm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
