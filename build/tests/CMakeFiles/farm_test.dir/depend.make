# Empty dependencies file for farm_test.
# This may be replaced when dependencies are built.
