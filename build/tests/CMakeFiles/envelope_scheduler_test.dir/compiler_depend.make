# Empty compiler generated dependencies file for envelope_scheduler_test.
# This may be replaced when dependencies are built.
