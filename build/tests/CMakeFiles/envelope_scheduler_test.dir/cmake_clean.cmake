file(REMOVE_RECURSE
  "CMakeFiles/envelope_scheduler_test.dir/envelope_scheduler_test.cc.o"
  "CMakeFiles/envelope_scheduler_test.dir/envelope_scheduler_test.cc.o.d"
  "envelope_scheduler_test"
  "envelope_scheduler_test.pdb"
  "envelope_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envelope_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
