// Catalog: the mapping from logical blocks to their physical replicas.
//
// Logical blocks are numbered [0, L). Blocks [0, H) are hot, [H, L) are
// cold (the paper's hot/cold skew model). Each block has one or more
// replicas, each on a distinct tape (at most one copy per tape).

#ifndef TAPEJUKE_LAYOUT_CATALOG_H_
#define TAPEJUKE_LAYOUT_CATALOG_H_

#include <cstdint>
#include <vector>

#include "tape/types.h"
#include "util/check.h"

namespace tapejuke {

/// One physical copy of a logical block.
struct Replica {
  TapeId tape = kInvalidTape;
  int64_t slot = -1;
  Position position = -1;  ///< start position on the tape, MB

  friend bool operator==(const Replica&, const Replica&) = default;
};

/// Immutable replica directory produced by LayoutBuilder.
class Catalog {
 public:
  /// `replicas[b]` lists the copies of logical block b; blocks [0,
  /// num_hot) are hot. Every block must have at least one replica.
  Catalog(std::vector<std::vector<Replica>> replicas, int64_t num_hot);

  /// Number of logical blocks L.
  int64_t num_blocks() const {
    return static_cast<int64_t>(replicas_.size());
  }

  /// Number of hot logical blocks H (ids [0, H)).
  int64_t num_hot_blocks() const { return num_hot_; }

  /// Number of cold logical blocks L - H.
  int64_t num_cold_blocks() const { return num_blocks() - num_hot_; }

  /// True if `block` is hot.
  bool IsHot(BlockId block) const {
    TJ_DCHECK(block >= 0 && block < num_blocks());
    return block < num_hot_;
  }

  /// All replicas of `block` (non-empty, tapes pairwise distinct).
  const std::vector<Replica>& ReplicasOf(BlockId block) const {
    TJ_DCHECK(block >= 0 && block < num_blocks());
    return replicas_[static_cast<size_t>(block)];
  }

  /// Total number of physical copies across all blocks.
  int64_t TotalCopies() const { return total_copies_; }

  /// The replica of `block` on `tape`, or nullptr if none.
  const Replica* ReplicaOn(BlockId block, TapeId tape) const;

  /// Registers an additional copy of `block` (the §4.8 gradual-fill
  /// lifecycle writes replicas into spare capacity while the system runs).
  /// The tape must not already hold a copy of the block.
  void AddReplica(BlockId block, const Replica& replica);

 private:
  std::vector<std::vector<Replica>> replicas_;
  int64_t num_hot_;
  int64_t total_copies_;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_LAYOUT_CATALOG_H_
