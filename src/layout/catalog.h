// Catalog: the mapping from logical blocks to their physical replicas.
//
// Logical blocks are numbered [0, L). Blocks [0, H) are hot, [H, L) are
// cold (the paper's hot/cold skew model). Each block has one or more
// replicas, each on a distinct tape (at most one copy per tape).
//
// Replicas are stored in one contiguous array indexed by a per-block
// offset table (CSR layout), so the scheduler hot loops that walk
// ReplicasOf() per pending request touch a single cache-friendly span
// instead of chasing a heap-allocated vector per block.

#ifndef TAPEJUKE_LAYOUT_CATALOG_H_
#define TAPEJUKE_LAYOUT_CATALOG_H_

#include <cstdint>
#include <vector>

#include "tape/types.h"
#include "util/check.h"

namespace tapejuke {

/// One physical copy of a logical block.
struct Replica {
  TapeId tape = kInvalidTape;
  int64_t slot = -1;
  Position position = -1;  ///< start position on the tape, MB

  friend bool operator==(const Replica&, const Replica&) = default;
};

/// Read-only view of one block's replicas inside the catalog's flat
/// storage. Iterable like a const std::vector<Replica>. Invalidated by
/// Catalog::AddReplica.
class ReplicaSpan {
 public:
  ReplicaSpan(const Replica* data, size_t size) : data_(data), size_(size) {}

  const Replica* begin() const { return data_; }
  const Replica* end() const { return data_ + size_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Replica& front() const {
    TJ_DCHECK(size_ > 0);
    return data_[0];
  }
  const Replica& operator[](size_t i) const {
    TJ_DCHECK(i < size_);
    return data_[i];
  }

 private:
  const Replica* data_;
  size_t size_;
};

/// Replica directory produced by LayoutBuilder.
class Catalog {
 public:
  /// `replicas[b]` lists the copies of logical block b; blocks [0,
  /// num_hot) are hot. Every block must have at least one replica.
  Catalog(std::vector<std::vector<Replica>> replicas, int64_t num_hot);

  /// Number of logical blocks L.
  int64_t num_blocks() const {
    return static_cast<int64_t>(offsets_.size()) - 1;
  }

  /// Number of hot logical blocks H (ids [0, H)).
  int64_t num_hot_blocks() const { return num_hot_; }

  /// Number of cold logical blocks L - H.
  int64_t num_cold_blocks() const { return num_blocks() - num_hot_; }

  /// True if `block` is hot.
  bool IsHot(BlockId block) const {
    TJ_DCHECK(block >= 0 && block < num_blocks());
    return block < num_hot_;
  }

  /// All replicas of `block` (non-empty, tapes pairwise distinct). The
  /// span (and the Replica pointers inside it) stays valid until the next
  /// AddReplica call.
  ReplicaSpan ReplicasOf(BlockId block) const {
    TJ_DCHECK(block >= 0 && block < num_blocks());
    const size_t begin = offsets_[static_cast<size_t>(block)];
    const size_t end = offsets_[static_cast<size_t>(block) + 1];
    return ReplicaSpan(flat_.data() + begin, end - begin);
  }

  /// Total number of physical copies across all blocks.
  int64_t TotalCopies() const { return static_cast<int64_t>(flat_.size()); }

  /// The replica of `block` on `tape`, or nullptr if none.
  const Replica* ReplicaOn(BlockId block, TapeId tape) const;

  /// Like ReplicaOn, but returns nullptr when the copy exists and has been
  /// masked dead by a permanent media error.
  const Replica* LiveReplicaOn(BlockId block, TapeId tape) const;

  /// True unless `r` was masked dead by MarkReplicaDead/MarkTapeDead. `r`
  /// must reference an element of this catalog's storage (any replica
  /// obtained from ReplicasOf/ReplicaOn qualifies).
  bool IsAlive(const Replica& r) const {
    if (dead_count_ == 0) return true;  // fault-free fast path
    const std::ptrdiff_t idx = &r - flat_.data();
    TJ_DCHECK(idx >= 0 && idx < static_cast<std::ptrdiff_t>(flat_.size()));
    return dead_[static_cast<size_t>(idx)] == 0;
  }

  /// True if `block` still has at least one live replica. O(1): answered
  /// from the per-block live-count cache once any replica has died.
  bool HasLiveReplica(BlockId block) const {
    if (dead_count_ == 0) return true;  // the ctor guarantees >= 1 replica
    return live_count_[static_cast<size_t>(block)] > 0;
  }

  /// Number of live replicas of `block`. O(1) via the live-count cache.
  int64_t LiveReplicaCount(BlockId block) const {
    const ReplicaSpan span = ReplicasOf(block);
    if (dead_count_ == 0) return static_cast<int64_t>(span.size());
    return live_count_[static_cast<size_t>(block)];
  }

  /// True if any block anywhere still has a live replica (cheap: total
  /// copies vs. dead count).
  bool HasAnyLive() const {
    return dead_count_ < static_cast<int64_t>(flat_.size());
  }

  /// Total replicas currently masked dead.
  int64_t dead_replicas() const { return dead_count_; }

  /// Mutation generation: incremented by every successful MarkReplicaDead /
  /// MarkTapeDead / AddReplica / RepairReplica. Consumers that cache
  /// replica pointers or liveness across calls (the envelope scheduler's
  /// persistent extension lists) compare generations to decide between an
  /// incremental update and a full rebuild: AddReplica reallocates the CSR
  /// storage (invalidating Replica pointers), and dead-count deltas can net
  /// to zero across a mask + repair pair, so neither pointer identity nor
  /// dead_replicas() is a safe staleness signal on its own.
  int64_t generation() const { return generation_; }

  /// Masks the copy of `block` on `tape` dead (a permanent media error on
  /// that region). Returns true if the replica existed and was newly
  /// masked; false if absent or already dead.
  bool MarkReplicaDead(BlockId block, TapeId tape);

  /// Masks every replica on `tape` dead (the whole tape is lost). Returns
  /// the number of replicas newly masked. When `newly_masked` is non-null,
  /// the block of each newly masked replica is appended to it (so a repair
  /// manager can enqueue re-replication work per lost copy).
  int64_t MarkTapeDead(TapeId tape, std::vector<BlockId>* newly_masked);
  int64_t MarkTapeDead(TapeId tape) { return MarkTapeDead(tape, nullptr); }

  /// Registers an additional copy of `block` (the §4.8 gradual-fill
  /// lifecycle writes replicas into spare capacity while the system runs).
  /// The tape must not already hold a copy of the block. Invalidates all
  /// outstanding ReplicaSpans.
  void AddReplica(BlockId block, const Replica& replica);

  /// Resurrects the dead copy of `block` on `old_tape` by rewriting its
  /// CSR entry in place to `replacement` (a fresh physical copy written
  /// during repair) and clearing the dead bit. `replacement.tape` must not
  /// already hold a copy of the block. TotalCopies is unchanged, so no
  /// spans are invalidated.
  void RepairReplica(BlockId block, TapeId old_tape,
                     const Replica& replacement);

 private:
  /// Allocates the dead mask and the per-block live-count cache (lazily,
  /// so fault-free runs never touch either).
  void EnsureDeadMask();
  /// CSR storage: block b's replicas live at flat_[offsets_[b],
  /// offsets_[b+1]); offsets_ has num_blocks() + 1 entries.
  std::vector<Replica> flat_;
  std::vector<size_t> offsets_;
  int64_t num_hot_;
  /// Dead-replica mask, parallel to flat_ (1 = masked dead). Allocated
  /// lazily on the first MarkReplicaDead/MarkTapeDead so fault-free runs
  /// never touch it.
  std::vector<uint8_t> dead_;
  int64_t dead_count_ = 0;
  /// Per-block live-replica counts, allocated with dead_ and kept in sync
  /// by every mask/resurrect/add, so HasLiveReplica/LiveReplicaCount are
  /// O(1) instead of scanning the block's span.
  std::vector<int32_t> live_count_;
  int64_t generation_ = 0;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_LAYOUT_CATALOG_H_
