// Layout construction: hot/cold placement and hot-data replication.
//
// Implements the data-layout policies the paper evaluates (§4.3-§4.5):
//
//  * Horizontal vs vertical hot layouts. Horizontal spreads hot data (and
//    replicas) over all tapes; vertical dedicates one tape to the hot
//    originals and spreads replicas round-robin over the remaining tapes.
//  * The normalized start position SP in [0, 1] of the hot region within
//    each tape (SP-0 = beginning of tape, SP-1.0 = end of tape).
//  * NR replicas of every hot block, at most one copy per tape, distributed
//    round-robin. Replication shrinks the logical dataset that fits in the
//    fixed-capacity jukebox ("fewer cold items fit on each tape"); the
//    builder sizes the dataset to the maximum that fits the requested
//    layout.
//  * The §4.8 spare-capacity variant (cold data packed into as few tapes as
//    possible, leaving empty space where replicas would have gone).
//  * An organ-pipe placement (related work [3]) that centers the hot region.

#ifndef TAPEJUKE_LAYOUT_PLACEMENT_H_
#define TAPEJUKE_LAYOUT_PLACEMENT_H_

#include <cstdint>

#include "layout/catalog.h"
#include "tape/jukebox.h"
#include "util/status.h"

namespace tapejuke {

/// Where hot data lives across tapes.
enum class HotLayout {
  kHorizontal,  ///< hot data distributed over all tapes
  kVertical,    ///< one dedicated hot tape; replicas on the others
};

/// Where the hot region sits within a tape.
enum class PlacementScheme {
  kStartPosition,  ///< hot region starts at SP * (free span)
  kOrganPipe,      ///< hot region centered (related-work comparison)
};

/// Full layout specification (the paper's PH / NR / SP / layout knobs).
struct LayoutSpec {
  /// Fraction of logical blocks that are hot (PH / 100).
  double hot_fraction = 0.10;
  /// Number of extra copies of each hot block (NR). Bounded by the tape
  /// count: copies of one block must live on distinct tapes.
  int32_t num_replicas = 0;
  /// Normalized start position SP of the hot region within each tape.
  double start_position = 0.0;
  HotLayout layout = HotLayout::kHorizontal;
  PlacementScheme placement = PlacementScheme::kStartPosition;
  /// If > 0, use exactly this many logical blocks instead of the maximum
  /// that fits (must be feasible).
  int64_t logical_blocks_override = 0;
  /// §4.8 spare-capacity packing: place cold data on as few tapes as
  /// possible instead of spreading it round-robin.
  bool pack_cold = false;

  /// Checks the spec against a jukebox geometry.
  Status Validate(const Jukebox& jukebox) const;
};

/// Summary of a constructed layout.
struct LayoutStats {
  int64_t logical_blocks = 0;
  int64_t hot_blocks = 0;
  int64_t cold_blocks = 0;
  int64_t total_copies = 0;
  int64_t used_slots = 0;
  int64_t total_slots = 0;
  /// Measured expansion factor: physical copies / logical blocks.
  double measured_expansion = 1.0;
};

/// Builds layouts into a jukebox and produces the replica catalog.
class LayoutBuilder {
 public:
  /// Populates the (empty) jukebox tapes per `spec` and returns the
  /// catalog. Fails on invalid specs or infeasible overrides.
  static StatusOr<Catalog> Build(Jukebox* jukebox, const LayoutSpec& spec);

  /// The largest logical dataset (block count) that fits `spec` in the
  /// jukebox geometry. Returns 0 if nothing fits.
  static int64_t MaxLogicalBlocks(const Jukebox& jukebox,
                                  const LayoutSpec& spec);

  /// Paper Fig. 10(a): analytic storage expansion factor
  /// E = 1 + NR * PH, with PH as a fraction.
  static double ExpansionFactor(double hot_fraction, int32_t num_replicas) {
    return 1.0 + static_cast<double>(num_replicas) * hot_fraction;
  }

  /// Stats for a catalog built against `jukebox`.
  static LayoutStats ComputeStats(const Jukebox& jukebox,
                                  const Catalog& catalog);
};

}  // namespace tapejuke

#endif  // TAPEJUKE_LAYOUT_PLACEMENT_H_
