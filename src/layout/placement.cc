#include "layout/placement.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/check.h"

namespace tapejuke {

namespace {

/// Number of hot logical blocks for a dataset of L blocks.
int64_t HotCount(int64_t logical_blocks, double hot_fraction) {
  return std::llround(hot_fraction * static_cast<double>(logical_blocks));
}

/// Vertical layout: number of dedicated hot tapes for `hot` hot blocks
/// (the paper studied exactly one; more than a tapeful generalizes to the
/// minimal prefix of tapes — see §4.3's untested "excessive switching"
/// suspicion, probed by the layout tests and abl_vertical bench).
int32_t VerticalHotTapes(int64_t hot, int64_t slots_per_tape) {
  if (hot == 0) return 0;
  return static_cast<int32_t>((hot + slots_per_tape - 1) / slots_per_tape);
}

/// The tape holding copy `j` (0 = original) of hot block `h`.
TapeId HotCopyTape(const LayoutSpec& spec, int32_t num_tapes,
                   int64_t slots_per_tape, int64_t hot, int64_t h,
                   int32_t j) {
  if (spec.layout == HotLayout::kHorizontal) {
    return static_cast<TapeId>((h + j) % num_tapes);
  }
  // Vertical: originals packed onto the leading hot tapes; replicas
  // round-robin over the remaining tapes.
  const int32_t hot_tapes = VerticalHotTapes(hot, slots_per_tape);
  if (j == 0) return static_cast<TapeId>(h / slots_per_tape);
  const int64_t others = num_tapes - hot_tapes;
  TJ_CHECK_GT(others, 0);
  return static_cast<TapeId>(
      hot_tapes + (h * spec.num_replicas + (j - 1)) % others);
}

/// Per-tape count of hot copies for a dataset of `hot` hot blocks.
std::vector<int64_t> HotCopiesPerTape(const LayoutSpec& spec,
                                      int32_t num_tapes,
                                      int64_t slots_per_tape, int64_t hot) {
  std::vector<int64_t> counts(static_cast<size_t>(num_tapes), 0);
  for (int64_t h = 0; h < hot; ++h) {
    for (int32_t j = 0; j <= spec.num_replicas; ++j) {
      ++counts[static_cast<size_t>(
          HotCopyTape(spec, num_tapes, slots_per_tape, hot, h, j))];
    }
  }
  return counts;
}

/// True if a dataset of `logical` blocks fits the layout.
bool Fits(const Jukebox& jukebox, const LayoutSpec& spec, int64_t logical) {
  const int32_t num_tapes = jukebox.num_tapes();
  const int64_t slots = jukebox.slots_per_tape();
  const int64_t hot = HotCount(logical, spec.hot_fraction);
  const int64_t cold = logical - hot;
  if (hot < 0 || cold < 0) return false;
  int32_t hot_tapes = 0;
  if (spec.layout == HotLayout::kVertical) {
    hot_tapes = VerticalHotTapes(hot, slots);
    // Replicas and cold data need the non-hot tapes; each replicated
    // block needs NR distinct non-hot tapes.
    if (hot_tapes >= num_tapes && cold > 0) return false;
    if (spec.num_replicas > num_tapes - hot_tapes) return false;
  }
  const std::vector<int64_t> hot_counts =
      HotCopiesPerTape(spec, num_tapes, slots, hot);
  int64_t cold_capacity = 0;
  for (TapeId t = 0; t < num_tapes; ++t) {
    const int64_t used = hot_counts[static_cast<size_t>(t)];
    if (used > slots) return false;
    // Vertical dedicates the hot tapes; cold lives elsewhere.
    if (spec.layout == HotLayout::kVertical && t < hot_tapes) continue;
    cold_capacity += slots - used;
  }
  return cold <= cold_capacity;
}

}  // namespace

Status LayoutSpec::Validate(const Jukebox& jukebox) const {
  if (hot_fraction < 0.0 || hot_fraction > 1.0) {
    return Status::InvalidArgument("hot_fraction must be in [0, 1]");
  }
  if (start_position < 0.0 || start_position > 1.0) {
    return Status::InvalidArgument("start_position must be in [0, 1]");
  }
  if (num_replicas < 0) {
    return Status::InvalidArgument("num_replicas must be >= 0");
  }
  const int32_t num_tapes = jukebox.num_tapes();
  if (layout == HotLayout::kHorizontal && num_replicas + 1 > num_tapes) {
    return Status::InvalidArgument(
        "horizontal layout needs num_replicas + 1 <= num_tapes (one copy "
        "per tape)");
  }
  if (layout == HotLayout::kVertical) {
    if (num_tapes < 2 && hot_fraction > 0 && hot_fraction < 1) {
      return Status::InvalidArgument(
          "vertical layout needs at least two tapes");
    }
    if (num_replicas > num_tapes - 1) {
      return Status::InvalidArgument(
          "vertical layout needs num_replicas <= num_tapes - 1");
    }
  }
  if (num_replicas > 0 && hot_fraction == 0.0) {
    return Status::InvalidArgument(
        "replication requested but hot_fraction is zero");
  }
  if (logical_blocks_override < 0) {
    return Status::InvalidArgument("logical_blocks_override must be >= 0");
  }
  return Status::Ok();
}

int64_t LayoutBuilder::MaxLogicalBlocks(const Jukebox& jukebox,
                                        const LayoutSpec& spec) {
  int64_t lo = 0;
  int64_t hi = jukebox.total_slots();
  // Largest L with Fits(L). Fits is monotone in L for these layouts (adding
  // blocks only adds copies), so binary search applies.
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo + 1) / 2;
    if (Fits(jukebox, spec, mid)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

StatusOr<Catalog> LayoutBuilder::Build(Jukebox* jukebox,
                                       const LayoutSpec& spec) {
  TJ_CHECK(jukebox != nullptr);
  TJ_RETURN_IF_ERROR(spec.Validate(*jukebox));
  const int32_t num_tapes = jukebox->num_tapes();
  const int64_t slots = jukebox->slots_per_tape();
  for (TapeId t = 0; t < num_tapes; ++t) {
    if (jukebox->tape(t).num_blocks() != 0) {
      return Status::FailedPrecondition(
          "jukebox tapes must be empty before Build");
    }
  }

  int64_t logical = spec.logical_blocks_override;
  if (logical == 0) {
    logical = MaxLogicalBlocks(*jukebox, spec);
    if (logical == 0) {
      return Status::CapacityExceeded("no dataset fits this layout");
    }
  } else if (!Fits(*jukebox, spec, logical)) {
    return Status::CapacityExceeded(
        "requested dataset of " + std::to_string(logical) +
        " blocks does not fit the layout");
  }
  const int64_t hot = HotCount(logical, spec.hot_fraction);
  const int64_t cold = logical - hot;

  // Gather hot copies per tape (block ids, ascending).
  std::vector<std::vector<BlockId>> hot_on_tape(
      static_cast<size_t>(num_tapes));
  for (int64_t h = 0; h < hot; ++h) {
    for (int32_t j = 0; j <= spec.num_replicas; ++j) {
      hot_on_tape[static_cast<size_t>(
                      HotCopyTape(spec, num_tapes, slots, hot, h, j))]
          .push_back(h);
    }
  }

  std::vector<std::vector<Replica>> replicas(static_cast<size_t>(logical));
  // Track which slots remain free on each tape after hot placement.
  std::vector<std::vector<int64_t>> free_slots(
      static_cast<size_t>(num_tapes));

  for (TapeId t = 0; t < num_tapes; ++t) {
    auto& hot_blocks = hot_on_tape[static_cast<size_t>(t)];
    const auto n_hot = static_cast<int64_t>(hot_blocks.size());
    TJ_CHECK_LE(n_hot, slots);
    // Hot region start slot within this tape.
    double sp = spec.start_position;
    if (spec.placement == PlacementScheme::kOrganPipe) sp = 0.5;
    const auto hot_start = static_cast<int64_t>(
        std::llround(sp * static_cast<double>(slots - n_hot)));
    Tape& tape = jukebox->tape(t);
    for (int64_t i = 0; i < n_hot; ++i) {
      const int64_t slot = hot_start + i;
      const BlockId block = hot_blocks[static_cast<size_t>(i)];
      const Status placed = tape.PlaceBlock(block, slot);
      TJ_CHECK(placed.ok()) << placed.ToString();
      replicas[static_cast<size_t>(block)].push_back(
          Replica{t, slot, tape.PositionOfSlot(slot)});
    }
    for (int64_t s = 0; s < slots; ++s) {
      if (s < hot_start || s >= hot_start + n_hot) {
        free_slots[static_cast<size_t>(t)].push_back(s);
      }
    }
  }

  // Place cold blocks. Round-robin over eligible tapes (spread), or packed
  // tape-by-tape (§4.8 spare-capacity variant). Vertical skips tape 0.
  std::vector<TapeId> eligible;
  for (TapeId t = 0; t < num_tapes; ++t) {
    if (spec.layout == HotLayout::kVertical &&
        t < static_cast<TapeId>((hot + slots - 1) / slots)) {
      continue;  // dedicated hot tapes hold no cold data
    }
    eligible.push_back(t);
  }
  std::vector<size_t> next_free(static_cast<size_t>(num_tapes), 0);
  size_t cursor = 0;
  for (BlockId c = hot; c < logical; ++c) {
    // Find the next eligible tape with a free slot.
    bool placed_block = false;
    for (size_t tries = 0; tries < eligible.size(); ++tries) {
      const TapeId t = eligible[cursor % eligible.size()];
      auto& free = free_slots[static_cast<size_t>(t)];
      size_t& idx = next_free[static_cast<size_t>(t)];
      if (idx < free.size()) {
        const int64_t slot = free[idx++];
        Tape& tape = jukebox->tape(t);
        const Status placed = tape.PlaceBlock(c, slot);
        TJ_CHECK(placed.ok()) << placed.ToString();
        replicas[static_cast<size_t>(c)].push_back(
            Replica{t, slot, tape.PositionOfSlot(slot)});
        placed_block = true;
        // Spread mode advances to the next tape per block; packed mode
        // stays on the current tape until it fills.
        if (!spec.pack_cold) ++cursor;
        break;
      }
      ++cursor;
    }
    if (!placed_block) {
      return Status::Internal("cold placement overflow despite Fits() check");
    }
  }

  TJ_CHECK_EQ(cold, logical - hot);
  return Catalog(std::move(replicas), hot);
}

LayoutStats LayoutBuilder::ComputeStats(const Jukebox& jukebox,
                                        const Catalog& catalog) {
  LayoutStats stats;
  stats.logical_blocks = catalog.num_blocks();
  stats.hot_blocks = catalog.num_hot_blocks();
  stats.cold_blocks = catalog.num_cold_blocks();
  stats.total_copies = catalog.TotalCopies();
  stats.total_slots = jukebox.total_slots();
  int64_t used = 0;
  for (TapeId t = 0; t < jukebox.num_tapes(); ++t) {
    used += jukebox.tape(t).num_blocks();
  }
  stats.used_slots = used;
  stats.measured_expansion =
      stats.logical_blocks > 0
          ? static_cast<double>(stats.total_copies) /
                static_cast<double>(stats.logical_blocks)
          : 1.0;
  return stats;
}

}  // namespace tapejuke
