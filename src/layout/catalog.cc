#include "layout/catalog.h"

#include <set>

namespace tapejuke {

Catalog::Catalog(std::vector<std::vector<Replica>> replicas, int64_t num_hot)
    : num_hot_(num_hot) {
  TJ_CHECK_GE(num_hot_, 0);
  TJ_CHECK_LE(num_hot_, static_cast<int64_t>(replicas.size()));
  size_t total = 0;
  for (const auto& copies : replicas) total += copies.size();
  flat_.reserve(total);
  offsets_.reserve(replicas.size() + 1);
  offsets_.push_back(0);
  for (const auto& copies : replicas) {
    TJ_CHECK(!copies.empty()) << "every block needs at least one replica";
    std::set<TapeId> tapes;
    for (const Replica& r : copies) {
      TJ_CHECK_GE(r.tape, 0);
      TJ_CHECK_GE(r.slot, 0);
      TJ_CHECK_GE(r.position, 0);
      TJ_CHECK(tapes.insert(r.tape).second)
          << "duplicate replica tape" << r.tape;
      flat_.push_back(r);
    }
    offsets_.push_back(flat_.size());
  }
}

const Replica* Catalog::ReplicaOn(BlockId block, TapeId tape) const {
  for (const Replica& r : ReplicasOf(block)) {
    if (r.tape == tape) return &r;
  }
  return nullptr;
}

const Replica* Catalog::LiveReplicaOn(BlockId block, TapeId tape) const {
  const Replica* r = ReplicaOn(block, tape);
  if (r != nullptr && !IsAlive(*r)) return nullptr;
  return r;
}

void Catalog::EnsureDeadMask() {
  if (!dead_.empty()) return;
  dead_.assign(flat_.size(), 0);
  live_count_.resize(static_cast<size_t>(num_blocks()));
  for (size_t b = 0; b < live_count_.size(); ++b) {
    live_count_[b] = static_cast<int32_t>(offsets_[b + 1] - offsets_[b]);
  }
}

bool Catalog::MarkReplicaDead(BlockId block, TapeId tape) {
  const Replica* r = ReplicaOn(block, tape);
  if (r == nullptr) return false;
  EnsureDeadMask();
  const size_t idx = static_cast<size_t>(r - flat_.data());
  if (dead_[idx] != 0) return false;
  dead_[idx] = 1;
  ++dead_count_;
  --live_count_[static_cast<size_t>(block)];
  ++generation_;
  return true;
}

int64_t Catalog::MarkTapeDead(TapeId tape,
                              std::vector<BlockId>* newly_masked) {
  EnsureDeadMask();
  int64_t count = 0;
  for (BlockId block = 0; block < num_blocks(); ++block) {
    for (size_t i = offsets_[static_cast<size_t>(block)];
         i < offsets_[static_cast<size_t>(block) + 1]; ++i) {
      if (flat_[i].tape == tape && dead_[i] == 0) {
        dead_[i] = 1;
        ++count;
        --live_count_[static_cast<size_t>(block)];
        if (newly_masked != nullptr) newly_masked->push_back(block);
      }
    }
  }
  dead_count_ += count;
  if (count > 0) ++generation_;
  return count;
}

void Catalog::AddReplica(BlockId block, const Replica& replica) {
  TJ_CHECK(block >= 0 && block < num_blocks());
  TJ_CHECK(ReplicaOn(block, replica.tape) == nullptr)
      << "block already has a copy on tape" << replica.tape;
  TJ_CHECK_GE(replica.tape, 0);
  TJ_CHECK_GE(replica.slot, 0);
  TJ_CHECK_GE(replica.position, 0);
  // Insert at the end of the block's span and shift every later block's
  // span by one. Lifecycle writes are rare relative to lookups, so the
  // O(copies) memmove is a good trade for contiguous lookup storage.
  const auto insert_at =
      flat_.begin() +
      static_cast<std::ptrdiff_t>(offsets_[static_cast<size_t>(block) + 1]);
  const size_t insert_idx = offsets_[static_cast<size_t>(block) + 1];
  flat_.insert(insert_at, replica);
  if (!dead_.empty()) {
    // Keep the dead mask index-parallel with flat_; new copies are alive.
    dead_.insert(dead_.begin() + static_cast<std::ptrdiff_t>(insert_idx), 0);
    ++live_count_[static_cast<size_t>(block)];
  }
  for (size_t b = static_cast<size_t>(block) + 1; b < offsets_.size(); ++b) {
    ++offsets_[b];
  }
  ++generation_;
}

void Catalog::RepairReplica(BlockId block, TapeId old_tape,
                            const Replica& replacement) {
  TJ_CHECK(block >= 0 && block < num_blocks());
  TJ_CHECK_GE(replacement.tape, 0);
  TJ_CHECK_GE(replacement.slot, 0);
  TJ_CHECK_GE(replacement.position, 0);
  TJ_CHECK(ReplicaOn(block, replacement.tape) == nullptr)
      << "block already has a copy on tape" << replacement.tape;
  const Replica* r = ReplicaOn(block, old_tape);
  TJ_CHECK(r != nullptr)
      << "block" << block << "has no replica on tape" << old_tape;
  const size_t idx = static_cast<size_t>(r - flat_.data());
  TJ_CHECK(!dead_.empty() && dead_[idx] != 0)
      << "only dead replicas can be repaired";
  flat_[idx] = replacement;
  dead_[idx] = 0;
  --dead_count_;
  ++live_count_[static_cast<size_t>(block)];
  ++generation_;
}

}  // namespace tapejuke
