#include "layout/catalog.h"

#include <set>

namespace tapejuke {

Catalog::Catalog(std::vector<std::vector<Replica>> replicas, int64_t num_hot)
    : num_hot_(num_hot) {
  TJ_CHECK_GE(num_hot_, 0);
  TJ_CHECK_LE(num_hot_, static_cast<int64_t>(replicas.size()));
  size_t total = 0;
  for (const auto& copies : replicas) total += copies.size();
  flat_.reserve(total);
  offsets_.reserve(replicas.size() + 1);
  offsets_.push_back(0);
  for (const auto& copies : replicas) {
    TJ_CHECK(!copies.empty()) << "every block needs at least one replica";
    std::set<TapeId> tapes;
    for (const Replica& r : copies) {
      TJ_CHECK_GE(r.tape, 0);
      TJ_CHECK_GE(r.slot, 0);
      TJ_CHECK_GE(r.position, 0);
      TJ_CHECK(tapes.insert(r.tape).second)
          << "duplicate replica tape" << r.tape;
      flat_.push_back(r);
    }
    offsets_.push_back(flat_.size());
  }
}

const Replica* Catalog::ReplicaOn(BlockId block, TapeId tape) const {
  for (const Replica& r : ReplicasOf(block)) {
    if (r.tape == tape) return &r;
  }
  return nullptr;
}

void Catalog::AddReplica(BlockId block, const Replica& replica) {
  TJ_CHECK(block >= 0 && block < num_blocks());
  TJ_CHECK(ReplicaOn(block, replica.tape) == nullptr)
      << "block already has a copy on tape" << replica.tape;
  TJ_CHECK_GE(replica.tape, 0);
  TJ_CHECK_GE(replica.slot, 0);
  TJ_CHECK_GE(replica.position, 0);
  // Insert at the end of the block's span and shift every later block's
  // span by one. Lifecycle writes are rare relative to lookups, so the
  // O(copies) memmove is a good trade for contiguous lookup storage.
  const auto insert_at =
      flat_.begin() +
      static_cast<std::ptrdiff_t>(offsets_[static_cast<size_t>(block) + 1]);
  flat_.insert(insert_at, replica);
  for (size_t b = static_cast<size_t>(block) + 1; b < offsets_.size(); ++b) {
    ++offsets_[b];
  }
}

}  // namespace tapejuke
