#include "layout/catalog.h"

#include <set>

namespace tapejuke {

Catalog::Catalog(std::vector<std::vector<Replica>> replicas, int64_t num_hot)
    : replicas_(std::move(replicas)), num_hot_(num_hot), total_copies_(0) {
  TJ_CHECK_GE(num_hot_, 0);
  TJ_CHECK_LE(num_hot_, num_blocks());
  for (const auto& copies : replicas_) {
    TJ_CHECK(!copies.empty()) << "every block needs at least one replica";
    std::set<TapeId> tapes;
    for (const Replica& r : copies) {
      TJ_CHECK_GE(r.tape, 0);
      TJ_CHECK_GE(r.slot, 0);
      TJ_CHECK_GE(r.position, 0);
      TJ_CHECK(tapes.insert(r.tape).second)
          << "duplicate replica tape" << r.tape;
    }
    total_copies_ += static_cast<int64_t>(copies.size());
  }
}

const Replica* Catalog::ReplicaOn(BlockId block, TapeId tape) const {
  for (const Replica& r : ReplicasOf(block)) {
    if (r.tape == tape) return &r;
  }
  return nullptr;
}

void Catalog::AddReplica(BlockId block, const Replica& replica) {
  TJ_CHECK(block >= 0 && block < num_blocks());
  TJ_CHECK(ReplicaOn(block, replica.tape) == nullptr)
      << "block already has a copy on tape" << replica.tape;
  TJ_CHECK_GE(replica.tape, 0);
  TJ_CHECK_GE(replica.slot, 0);
  TJ_CHECK_GE(replica.position, 0);
  replicas_[static_cast<size_t>(block)].push_back(replica);
  ++total_copies_;
}

}  // namespace tapejuke
