#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/check.h"

namespace tapejuke {

JsonWriter::JsonWriter(std::ostream* os) : os_(os) {}

void JsonWriter::NewlineIndent() {
  *os_ << '\n';
  for (size_t i = 0; i < stack_.size(); ++i) *os_ << "  ";
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) return;  // top-level value
  if (stack_.back() == Scope::kObject) {
    TJ_CHECK(pending_key_) << "JSON object value emitted without a key";
    pending_key_ = false;
    return;
  }
  if (counts_.back() > 0) *os_ << ',';
  NewlineIndent();
  ++counts_.back();
}

void JsonWriter::BeginObject() {
  BeforeValue();
  *os_ << '{';
  stack_.push_back(Scope::kObject);
  counts_.push_back(0);
}

void JsonWriter::EndObject() {
  TJ_CHECK(!stack_.empty() && stack_.back() == Scope::kObject)
      << "unbalanced EndObject";
  TJ_CHECK(!pending_key_) << "JSON key emitted without a value";
  const bool empty = counts_.back() == 0;
  stack_.pop_back();
  counts_.pop_back();
  if (!empty) NewlineIndent();
  *os_ << '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  *os_ << '[';
  stack_.push_back(Scope::kArray);
  counts_.push_back(0);
}

void JsonWriter::EndArray() {
  TJ_CHECK(!stack_.empty() && stack_.back() == Scope::kArray)
      << "unbalanced EndArray";
  const bool empty = counts_.back() == 0;
  stack_.pop_back();
  counts_.pop_back();
  if (!empty) NewlineIndent();
  *os_ << ']';
}

void JsonWriter::Key(const std::string& name) {
  TJ_CHECK(!stack_.empty() && stack_.back() == Scope::kObject)
      << "JSON key outside an object";
  TJ_CHECK(!pending_key_) << "two JSON keys in a row";
  if (counts_.back() > 0) *os_ << ',';
  NewlineIndent();
  ++counts_.back();
  *os_ << '"' << JsonEscape(name) << "\": ";
  pending_key_ = true;
}

void JsonWriter::Value(const std::string& value) {
  BeforeValue();
  *os_ << '"' << JsonEscape(value) << '"';
}

void JsonWriter::Value(const char* value) { Value(std::string(value)); }

void JsonWriter::Value(double value) {
  BeforeValue();
  *os_ << JsonDouble(value);
}

void JsonWriter::Value(int64_t value) {
  BeforeValue();
  *os_ << value;
}

void JsonWriter::Value(uint64_t value) {
  BeforeValue();
  *os_ << value;
}

void JsonWriter::Value(bool value) {
  BeforeValue();
  *os_ << (value ? "true" : "false");
}

void JsonWriter::Null() {
  BeforeValue();
  *os_ << "null";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonDouble(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  const std::to_chars_result result =
      std::to_chars(buf, buf + sizeof(buf), value);
  TJ_CHECK(result.ec == std::errc()) << "double to_chars failed";
  return std::string(buf, result.ptr);
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  const std::filesystem::path fs_path(path);
  std::error_code ec;
  if (fs_path.has_parent_path()) {
    std::filesystem::create_directories(fs_path.parent_path(), ec);
    if (ec) {
      return Status::Internal("cannot create directory '" +
                              fs_path.parent_path().string() +
                              "': " + ec.message());
    }
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot open '" + path + "' for write");
  out << content;
  out.close();
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::Ok();
}

}  // namespace tapejuke
