#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.h"

namespace tapejuke {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  TJ_CHECK(!headers_.empty());
}

void Table::AddRow(std::vector<Cell> row) {
  TJ_CHECK_EQ(row.size(), headers_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Format(const Cell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<int64_t>(&cell)) return std::to_string(*i);
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision_)
      << std::get<double>(cell);
  return out.str();
}

void Table::PrintText(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> formatted;
    formatted.reserve(row.size());
    for (size_t c = 0; c < row.size(); ++c) {
      formatted.push_back(Format(row[c]));
      widths[c] = std::max(widths[c], formatted.back().size());
    }
    cells.push_back(std::move(formatted));
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << "\n";
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : cells) print_row(row);
}

namespace {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::PrintCsv(std::ostream& os) const {
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "" : ",") << CsvEscape(headers_[c]);
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << CsvEscape(Format(row[c]));
    }
    os << "\n";
  }
}

}  // namespace tapejuke
