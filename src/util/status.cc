#include "util/status.h"

namespace tapejuke {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace tapejuke
