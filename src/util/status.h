// Minimal Status / StatusOr error-reporting types.
//
// Library entry points that can fail due to caller input (bad configuration,
// impossible layouts) return Status or StatusOr<T>; internal invariants use
// TJ_CHECK. No exceptions are thrown on library paths.

#ifndef TAPEJUKE_UTIL_STATUS_H_
#define TAPEJUKE_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

#include "util/check.h"

namespace tapejuke {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kCapacityExceeded,
  kInternal,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail: a code plus a diagnostic message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status. Access to the value of a
/// non-OK StatusOr is a fatal error.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit, mirroring absl::StatusOr).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    TJ_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    TJ_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    TJ_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    TJ_CHECK(ok()) << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Returns early from the enclosing function if `expr` is a non-OK Status.
#define TJ_RETURN_IF_ERROR(expr)              \
  do {                                        \
    ::tapejuke::Status tj_status__ = (expr);  \
    if (!tj_status__.ok()) return tj_status__; \
  } while (false)

}  // namespace tapejuke

#endif  // TAPEJUKE_UTIL_STATUS_H_
