// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the simulator flows through Rng so that every
// experiment is exactly reproducible from its seed. The generator is
// xoshiro256** seeded via SplitMix64, which is fast, high quality, and has a
// stable cross-platform specification (unlike std::mt19937 distributions,
// whose outputs vary across standard library implementations).

#ifndef TAPEJUKE_UTIL_RNG_H_
#define TAPEJUKE_UTIL_RNG_H_

#include <cstdint>

#include "util/check.h"

namespace tapejuke {

/// SplitMix64 step; used for seeding and as a cheap hash.
uint64_t SplitMix64(uint64_t* state);

/// Deterministic xoshiro256** generator with explicit distributions.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with equal seeds produce
  /// identical streams on all platforms.
  explicit Rng(uint64_t seed);

  /// Returns the next raw 64-bit output.
  uint64_t NextUint64();

  /// Returns an unbiased uniform integer in [0, bound). `bound` must be > 0.
  uint64_t UniformUint64(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns a uniform double in [lo, hi). Requires lo < hi.
  double UniformDouble(double lo, double hi);

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns an exponentially distributed sample with the given mean (> 0).
  double Exponential(double mean);

  /// Returns a standard normal sample (Box-Muller, deterministic pairing).
  double Normal(double mean, double stddev);

  /// Forks an independent generator; the child stream is a deterministic
  /// function of the parent state, and the parent stream advances.
  Rng Fork();

 private:
  static uint64_t RotL(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_UTIL_RNG_H_
