#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace tapejuke {

void RunningStat::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::ci95_half_width() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi), bucket_width_((hi - lo) / buckets), counts_(buckets) {
  TJ_CHECK_LT(lo, hi);
  TJ_CHECK_GE(buckets, 1);
}

void Histogram::Add(double x) {
  ++count_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<size_t>((x - lo_) / bucket_width_);
  idx = std::min(idx, counts_.size() - 1);  // guard FP edge at hi_
  ++counts_[idx];
}

void Histogram::Merge(const Histogram& other) {
  TJ_CHECK_EQ(lo_, other.lo_);
  TJ_CHECK_EQ(hi_, other.hi_);
  TJ_CHECK_EQ(counts_.size(), other.counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
}

double Histogram::Quantile(double q) const { return Quantile(q, hi_); }

double Histogram::Quantile(double q, double overflow_value) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return lo_ + (static_cast<double>(i) + frac) * bucket_width_;
    }
    cum = next;
  }
  // The quantile lands in the overflow mass (observations >= hi).
  return overflow_value;
}

std::string Histogram::ToAscii(int max_width) const {
  int64_t peak = 1;
  for (int64_t c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double bucket_lo = lo_ + static_cast<double>(i) * bucket_width_;
    const int width = static_cast<int>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        max_width);
    out << "[" << bucket_lo << ", " << bucket_lo + bucket_width_ << ") "
        << std::string(width, '#') << " " << counts_[i] << "\n";
  }
  return out.str();
}

}  // namespace tapejuke
