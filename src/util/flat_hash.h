// Flat open-addressing hash containers for scheduler hot paths.
//
// FlatMap/FlatSet store elements inline in one contiguous slot array
// (power-of-two capacity, linear probing, backward-shift deletion — no
// tombstones), so the per-element cost is a hash, a probe over adjacent
// cache lines, and no node allocation. They replace std::unordered_map /
// std::unordered_set where profiling showed rehash + node churn dominating
// (the envelope kernel's per-request assignment inserts, the validating
// scheduler's outstanding set, the sweep's block index).
//
// Deliberate restrictions keep them simple and fast:
//  * keys must be trivially hashable integers (RequestId, BlockId, ...);
//  * no iterator stability across mutation; iteration order is slot order
//    (deterministic for a given insertion/erase history, NOT key order);
//  * load factor is capped at 7/8 before growth.

#ifndef TAPEJUKE_UTIL_FLAT_HASH_H_
#define TAPEJUKE_UTIL_FLAT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.h"

namespace tapejuke {

/// Mixes 64-bit integer keys (splitmix64 finalizer); good avalanche for
/// the sequential ids the schedulers use as keys.
inline uint64_t HashInt64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

namespace internal {

/// Shared open-addressing core. Slot holds the element; a parallel byte
/// array marks occupancy. KeyOf extracts the key from an element.
template <typename Element, typename Key, typename KeyOf>
class FlatTable {
 public:
  FlatTable() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    std::fill(used_.begin(), used_.end(), uint8_t{0});
    size_ = 0;
  }

  /// Pre-sizes the table for `n` elements without rehashing on the way.
  void reserve(size_t n) {
    size_t want = 16;
    while (want * 7 < n * 8) want *= 2;  // keep load factor under 7/8
    if (want > slots_.size()) Rehash(want);
  }

  /// Returns the element for `key`, or nullptr.
  Element* Find(Key key) {
    if (slots_.empty()) return nullptr;
    size_t i = Probe(key);
    return used_[i] ? &slots_[i] : nullptr;
  }
  const Element* Find(Key key) const {
    return const_cast<FlatTable*>(this)->Find(key);
  }

  /// Inserts `element` if its key is absent. Returns {slot, inserted}.
  std::pair<Element*, bool> Insert(Element element) {
    MaybeGrow();
    const size_t i = Probe(KeyOf()(element));
    if (used_[i]) return {&slots_[i], false};
    slots_[i] = std::move(element);
    used_[i] = 1;
    ++size_;
    return {&slots_[i], true};
  }

  /// Removes `key` if present (backward-shift deletion keeps probe chains
  /// intact without tombstones). Returns 1 if erased, 0 otherwise.
  size_t Erase(Key key) {
    if (slots_.empty()) return 0;
    size_t i = Probe(key);
    if (!used_[i]) return 0;
    const size_t mask = slots_.size() - 1;
    size_t hole = i;
    for (size_t j = (hole + 1) & mask; used_[j]; j = (j + 1) & mask) {
      const size_t home = Home(KeyOf()(slots_[j]));
      // Shift j into the hole unless j's probe chain starts after the hole
      // (i.e. home lies in (hole, j] walking forward).
      const bool reachable = ((j - home) & mask) >= ((j - hole) & mask);
      if (reachable) {
        slots_[hole] = std::move(slots_[j]);
        hole = j;
      }
    }
    used_[hole] = 0;
    --size_;
    return 1;
  }

  /// Slot-order iteration support.
  size_t capacity() const { return slots_.size(); }
  bool SlotUsed(size_t i) const { return used_[i] != 0; }
  Element& Slot(size_t i) { return slots_[i]; }
  const Element& Slot(size_t i) const { return slots_[i]; }

 private:
  size_t Home(Key key) const {
    return static_cast<size_t>(HashInt64(static_cast<uint64_t>(key))) &
           (slots_.size() - 1);
  }

  /// First slot holding `key`, or the empty slot where it would go.
  size_t Probe(Key key) const {
    const size_t mask = slots_.size() - 1;
    size_t i = Home(key);
    while (used_[i] && KeyOf()(slots_[i]) != key) i = (i + 1) & mask;
    return i;
  }

  void MaybeGrow() {
    if (slots_.empty()) {
      Rehash(16);
    } else if ((size_ + 1) * 8 > slots_.size() * 7) {
      Rehash(slots_.size() * 2);
    }
  }

  void Rehash(size_t new_capacity) {
    TJ_DCHECK((new_capacity & (new_capacity - 1)) == 0);
    std::vector<Element> old_slots = std::move(slots_);
    std::vector<uint8_t> old_used = std::move(used_);
    slots_.assign(new_capacity, Element{});
    used_.assign(new_capacity, 0);
    const size_t mask = new_capacity - 1;
    for (size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_used[i]) continue;
      size_t j = Home(KeyOf()(old_slots[i]));
      while (used_[j]) j = (j + 1) & mask;
      slots_[j] = std::move(old_slots[i]);
      used_[j] = 1;
    }
  }

  std::vector<Element> slots_;
  std::vector<uint8_t> used_;
  size_t size_ = 0;
};

/// Iterator over used slots of a FlatTable, yielding Element references.
template <typename Table, typename Element>
class FlatIterator {
 public:
  FlatIterator(Table* table, size_t i) : table_(table), i_(i) { Skip(); }

  Element& operator*() const { return table_->Slot(i_); }
  Element* operator->() const { return &table_->Slot(i_); }
  FlatIterator& operator++() {
    ++i_;
    Skip();
    return *this;
  }
  friend bool operator==(const FlatIterator& a, const FlatIterator& b) {
    return a.i_ == b.i_;
  }

 private:
  void Skip() {
    while (i_ < table_->capacity() && !table_->SlotUsed(i_)) ++i_;
  }
  Table* table_;
  size_t i_;
};

}  // namespace internal

/// Open-addressing hash map from an integer key to V.
template <typename K, typename V>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;

 private:
  struct KeyOf {
    K operator()(const value_type& e) const { return e.first; }
  };
  using Table = internal::FlatTable<value_type, K, KeyOf>;

 public:
  using iterator = internal::FlatIterator<Table, value_type>;
  using const_iterator =
      internal::FlatIterator<const Table, const value_type>;

  size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }
  void clear() { table_.clear(); }
  void reserve(size_t n) { table_.reserve(n); }

  V& operator[](K key) {
    return table_.Insert(value_type{key, V{}}).first->second;
  }

  /// Inserts {key, value} if absent; returns true if inserted.
  bool insert(K key, V value) {
    return table_.Insert(value_type{key, std::move(value)}).second;
  }

  bool contains(K key) const { return table_.Find(key) != nullptr; }

  /// The value for `key`; TJ_CHECK-fails if absent.
  const V& at(K key) const {
    const value_type* e = table_.Find(key);
    TJ_CHECK(e != nullptr) << "FlatMap::at: missing key" << key;
    return e->second;
  }

  iterator find(K key) {
    value_type* e = table_.Find(key);
    return e == nullptr ? end() : iterator(&table_, IndexOf(e));
  }
  const_iterator find(K key) const {
    const value_type* e = table_.Find(key);
    return e == nullptr ? end() : const_iterator(&table_, IndexOf(e));
  }

  size_t erase(K key) { return table_.Erase(key); }

  iterator begin() { return iterator(&table_, 0); }
  iterator end() { return iterator(&table_, table_.capacity()); }
  const_iterator begin() const { return const_iterator(&table_, 0); }
  const_iterator end() const {
    return const_iterator(&table_, table_.capacity());
  }

 private:
  size_t IndexOf(const value_type* e) const {
    return static_cast<size_t>(e - &table_.Slot(0));
  }
  Table table_;
};

/// Open-addressing hash set of integer keys.
template <typename K>
class FlatSet {
 private:
  struct KeyOf {
    K operator()(const K& e) const { return e; }
  };
  using Table = internal::FlatTable<K, K, KeyOf>;

 public:
  using const_iterator = internal::FlatIterator<const Table, const K>;

  size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }
  void clear() { table_.clear(); }
  void reserve(size_t n) { table_.reserve(n); }

  /// Inserts `key`; returns true if it was newly added.
  bool insert(K key) { return table_.Insert(std::move(key)).second; }
  bool contains(K key) const { return table_.Find(key) != nullptr; }
  size_t erase(K key) { return table_.Erase(key); }

  const_iterator begin() const { return const_iterator(&table_, 0); }
  const_iterator end() const {
    return const_iterator(&table_, table_.capacity());
  }

 private:
  Table table_;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_UTIL_FLAT_HASH_H_
