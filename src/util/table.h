// Table rendering for benchmark output: aligned text and CSV.
//
// Every figure bench prints one Table per paper graph: the same series the
// paper plots, both human-readable and machine-parseable.

#ifndef TAPEJUKE_UTIL_TABLE_H_
#define TAPEJUKE_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace tapejuke {

/// A column-aligned table with typed cells.
class Table {
 public:
  using Cell = std::variant<std::string, double, int64_t>;

  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Sets the number of decimal places used for double cells (default 3).
  void set_precision(int digits) { precision_ = digits; }

  /// Appends one row; its length must match the header count.
  void AddRow(std::vector<Cell> row);

  size_t num_rows() const { return rows_.size(); }

  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<Cell>>& rows() const { return rows_; }

  /// Writes the table as aligned, padded text.
  void PrintText(std::ostream& os) const;

  /// Writes the table as CSV (RFC-4180 quoting for strings that need it).
  void PrintCsv(std::ostream& os) const;

 private:
  std::string Format(const Cell& cell) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 3;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_UTIL_TABLE_H_
