// Indexed binary max-heap over dense integer keys.
//
// The scheduler keeps one entry per tape keyed by the tape's dense id, so a
// reschedule can update just the tapes whose pending set changed ("dirty"
// tapes) and read the best candidate from the top in O(1). A position map
// (key -> heap slot) makes Set/Remove on an arbitrary key O(log n) instead
// of the O(n) scan a plain std::priority_queue would force.
//
// The comparator is a strict weak ordering on Value; the heap keeps the
// LARGEST value (by `less`) on top. Ties between equal values are NOT
// ordered by the heap — callers that need deterministic tie-breaks (the
// envelope scheduler does) must resolve them outside, e.g. by popping the
// whole tied top group and scanning it.

#ifndef TAPEJUKE_UTIL_INDEXED_HEAP_H_
#define TAPEJUKE_UTIL_INDEXED_HEAP_H_

#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "util/check.h"

namespace tapejuke {

template <typename Value, typename Less>
class IndexedMaxHeap {
 public:
  static constexpr size_t kAbsent = std::numeric_limits<size_t>::max();

  explicit IndexedMaxHeap(Less less = Less{}) : less_(std::move(less)) {}

  /// Drops all entries and re-sizes the key space to [0, num_keys).
  void Reset(size_t num_keys) {
    heap_.clear();
    pos_.assign(num_keys, kAbsent);
    values_.resize(num_keys);
  }

  size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }
  size_t key_capacity() const { return pos_.size(); }

  bool Contains(size_t key) const {
    return key < pos_.size() && pos_[key] != kAbsent;
  }

  /// The value stored for `key`; valid only when Contains(key).
  const Value& ValueOf(size_t key) const {
    TJ_DCHECK(Contains(key));
    return values_[key];
  }

  /// Inserts or updates `key` with `value`, restoring heap order.
  void Set(size_t key, Value value) {
    TJ_CHECK(key < pos_.size()) << "IndexedMaxHeap key out of range";
    values_[key] = std::move(value);
    if (pos_[key] == kAbsent) {
      pos_[key] = heap_.size();
      heap_.push_back(key);
      SiftUp(pos_[key]);
    } else {
      const size_t i = pos_[key];
      if (!SiftUp(i)) SiftDown(i);
    }
  }

  /// Removes `key` if present.
  void Remove(size_t key) {
    if (!Contains(key)) return;
    const size_t i = pos_[key];
    SwapSlots(i, heap_.size() - 1);
    heap_.pop_back();
    pos_[key] = kAbsent;
    if (i < heap_.size()) {
      if (!SiftUp(i)) SiftDown(i);
    }
  }

  /// Key of the largest value; heap must be non-empty.
  size_t TopKey() const {
    TJ_DCHECK(!heap_.empty());
    return heap_[0];
  }
  const Value& TopValue() const { return values_[TopKey()]; }

  /// Removes the top entry and returns its key.
  size_t Pop() {
    const size_t key = TopKey();
    Remove(key);
    return key;
  }

 private:
  void SwapSlots(size_t a, size_t b) {
    if (a == b) return;
    std::swap(heap_[a], heap_[b]);
    pos_[heap_[a]] = a;
    pos_[heap_[b]] = b;
  }

  /// Returns true if the entry moved.
  bool SiftUp(size_t i) {
    bool moved = false;
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      if (!less_(values_[heap_[parent]], values_[heap_[i]])) break;
      SwapSlots(i, parent);
      i = parent;
      moved = true;
    }
    return moved;
  }

  void SiftDown(size_t i) {
    const size_t n = heap_.size();
    while (true) {
      size_t best = i;
      const size_t l = 2 * i + 1;
      const size_t r = 2 * i + 2;
      if (l < n && less_(values_[heap_[best]], values_[heap_[l]])) best = l;
      if (r < n && less_(values_[heap_[best]], values_[heap_[r]])) best = r;
      if (best == i) break;
      SwapSlots(i, best);
      i = best;
    }
  }

  Less less_;
  std::vector<size_t> heap_;   // heap slot -> key
  std::vector<size_t> pos_;    // key -> heap slot, kAbsent if not present
  std::vector<Value> values_;  // key -> value
};

}  // namespace tapejuke

#endif  // TAPEJUKE_UTIL_INDEXED_HEAP_H_
