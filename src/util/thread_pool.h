// A small fixed-size worker pool for embarrassingly parallel sweeps.
//
// The pool owns N worker threads that drain a shared FIFO task queue.
// Submit() returns a std::future for one task; ParallelFor() fans a
// half-open index range out over the workers and blocks until every index
// has been processed. A task that throws never takes down a worker thread:
// Submit() delivers the exception through the returned future, and
// ParallelFor() rethrows the first one after the whole range has run.
//
// Determinism note: the pool imposes no ordering between tasks, so any
// task that must produce results independent of the execution schedule has
// to derive all of its randomness from its own index (see
// core/sweep_runner.h, which derives per-point RNG seeds this way).

#ifndef TAPEJUKE_UTIL_THREAD_POOL_H_
#define TAPEJUKE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace tapejuke {

/// Fixed-size worker pool. Construction spawns the workers; destruction
/// drains outstanding tasks and joins them.
class ThreadPool {
 public:
  /// `num_threads` <= 0 selects DefaultThreads().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` and returns a future for its completion. If `fn`
  /// throws, the exception is captured and rethrown by future.get().
  std::future<void> Submit(std::function<void()> fn);

  /// Runs fn(i) for every i in [begin, end) across the pool and returns
  /// when all calls have finished. Calls with distinct i may run
  /// concurrently; `fn` must be safe under that. With one worker the range
  /// is processed inline, in order — identical to a serial loop. If any
  /// call throws, every index still runs to completion and the exception
  /// from the lowest-submitted failing index is then rethrown to the
  /// caller (the same index wins regardless of thread count).
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t)>& fn);

  /// Hardware concurrency, with a floor of 1 (hardware_concurrency() may
  /// report 0 on exotic platforms).
  static int DefaultThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_UTIL_THREAD_POOL_H_
