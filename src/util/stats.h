// Streaming statistics and a fixed-bucket histogram for simulation metrics.

#ifndef TAPEJUKE_UTIL_STATS_H_
#define TAPEJUKE_UTIL_STATS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace tapejuke {

/// Accumulates count / mean / variance / min / max in one pass (Welford).
class RunningStat {
 public:
  RunningStat() = default;

  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one.
  void Merge(const RunningStat& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Half-width of the ~95% confidence interval of the mean (normal
  /// approximation); 0 for fewer than two observations.
  double ci95_half_width() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Histogram over [lo, hi) with uniform buckets plus underflow/overflow.
///
/// Used for request-latency distributions; supports quantile queries with
/// linear interpolation inside the containing bucket.
class Histogram {
 public:
  /// Creates a histogram with `buckets` uniform buckets spanning [lo, hi).
  /// Requires lo < hi and buckets >= 1.
  Histogram(double lo, double hi, int buckets);

  /// Records one observation (out-of-range values go to under/overflow).
  void Add(double x);

  /// Merges `other` into this histogram; the bucket layouts (lo, hi,
  /// bucket count) must match exactly.
  void Merge(const Histogram& other);

  int64_t count() const { return count_; }
  int64_t underflow() const { return underflow_; }
  int64_t overflow() const { return overflow_; }

  /// Approximate quantile `q` in [0, 1]. Out-of-range mass clamps to the
  /// histogram bounds. Returns 0 for an empty histogram.
  double Quantile(double q) const;

  /// Like Quantile, but when the target mass lands in the overflow bucket
  /// (observations >= hi), returns `overflow_value` instead of silently
  /// saturating at hi. Callers that track the true maximum out of band
  /// (e.g. a RunningStat) pass it here so tail quantiles stay honest past
  /// the histogram range.
  double Quantile(double q, double overflow_value) const;

  /// Renders a compact multi-line ASCII bar chart (for debugging/examples).
  std::string ToAscii(int max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_UTIL_STATS_H_
