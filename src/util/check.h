// Lightweight assertion macros in the spirit of glog's CHECK family.
//
// The library does not use exceptions; internal invariant violations are
// programming errors and abort the process with a source location and a
// user-supplied message streamed via operator<<.

#ifndef TAPEJUKE_UTIL_CHECK_H_
#define TAPEJUKE_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace tapejuke {
namespace internal_check {

/// Accumulates a failure message and aborts when destroyed.
///
/// Usage is only via the CHECK macros below: the temporary collects streamed
/// operands and fires in its destructor so the macro can appear in expression
/// position.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* kind, const char* file, int line,
                     const char* condition) {
    stream_ << kind << " failed at " << file << ":" << line << ": "
            << condition;
  }

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace tapejuke

/// Aborts with a diagnostic if `condition` is false. Always enabled.
#define TJ_CHECK(condition)                                             \
  while (!(condition))                                                  \
  ::tapejuke::internal_check::CheckFailureStream("TJ_CHECK", __FILE__, \
                                                 __LINE__, #condition)

#define TJ_CHECK_OP(op, a, b) TJ_CHECK((a)op(b))
#define TJ_CHECK_EQ(a, b) TJ_CHECK_OP(==, a, b)
#define TJ_CHECK_NE(a, b) TJ_CHECK_OP(!=, a, b)
#define TJ_CHECK_LT(a, b) TJ_CHECK_OP(<, a, b)
#define TJ_CHECK_LE(a, b) TJ_CHECK_OP(<=, a, b)
#define TJ_CHECK_GT(a, b) TJ_CHECK_OP(>, a, b)
#define TJ_CHECK_GE(a, b) TJ_CHECK_OP(>=, a, b)

/// Debug-only variant of TJ_CHECK; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define TJ_DCHECK(condition) TJ_CHECK(true || (condition))
#else
#define TJ_DCHECK(condition) TJ_CHECK(condition)
#endif

#endif  // TAPEJUKE_UTIL_CHECK_H_
