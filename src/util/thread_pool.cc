#include "util/thread_pool.h"

#include <atomic>
#include <exception>
#include <utility>

namespace tapejuke {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = DefaultThreads();
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end,
                             const std::function<void(int64_t)>& fn) {
  if (begin >= end) return;
  if (num_threads() == 1 || end - begin == 1) {
    std::exception_ptr first;
    for (int64_t i = begin; i < end; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
    return;
  }
  // One task per index: sweep points are coarse-grained (whole simulation
  // runs), so per-task queue overhead is negligible and the FIFO gives
  // natural load balancing across points of uneven cost.
  std::vector<std::future<void>> pending;
  pending.reserve(static_cast<size_t>(end - begin));
  for (int64_t i = begin; i < end; ++i) {
    pending.push_back(Submit([&fn, i] { fn(i); }));
  }
  // Harvest in submission order so the same (lowest) failing index wins
  // regardless of which worker hit it first; every index completes before
  // the exception surfaces.
  std::exception_ptr first;
  for (std::future<void>& future : pending) {
    try {
      future.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

int ThreadPool::DefaultThreads() {
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace tapejuke
