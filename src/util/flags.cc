#include "util/flags.h"

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace tapejuke {

FlagSet::FlagSet(std::string program_summary)
    : summary_(std::move(program_summary)) {}

void FlagSet::AddInt64(const std::string& name, int64_t* target,
                       const std::string& help) {
  flags_[name] = Flag{Kind::kInt64, target, help, std::to_string(*target)};
}

void FlagSet::AddDouble(const std::string& name, double* target,
                        const std::string& help) {
  std::ostringstream def;
  def << *target;
  flags_[name] = Flag{Kind::kDouble, target, help, def.str()};
}

void FlagSet::AddString(const std::string& name, std::string* target,
                        const std::string& help) {
  flags_[name] = Flag{Kind::kString, target, help, *target};
}

void FlagSet::AddBool(const std::string& name, bool* target,
                      const std::string& help) {
  flags_[name] = Flag{Kind::kBool, target, help, *target ? "true" : "false"};
}

Status FlagSet::SetValue(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  Flag& flag = it->second;
  switch (flag.kind) {
    case Kind::kInt64: {
      char* end = nullptr;
      const long long parsed = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects an integer, got '" + value +
                                       "'");
      }
      *static_cast<int64_t*>(flag.target) = parsed;
      return Status::Ok();
    }
    case Kind::kDouble: {
      char* end = nullptr;
      const double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a number, got '" + value +
                                       "'");
      }
      *static_cast<double*>(flag.target) = parsed;
      return Status::Ok();
    }
    case Kind::kString:
      *static_cast<std::string*>(flag.target) = value;
      return Status::Ok();
    case Kind::kBool: {
      if (value == "true" || value == "1") {
        *static_cast<bool*>(flag.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        return Status::InvalidArgument("flag --" + name +
                                       " expects true/false, got '" + value +
                                       "'");
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unreachable flag kind");
}

Status FlagSet::Parse(int argc, char** argv) {
  program_name_ = argc > 0 ? argv[0] : "program";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << Usage();
      return Status::NotFound("help requested");
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      TJ_RETURN_IF_ERROR(SetValue(body.substr(0, eq), body.substr(eq + 1)));
      continue;
    }
    // --flag value, or bare boolean --flag / --no-flag.
    auto it = flags_.find(body);
    if (it != flags_.end() && it->second.kind == Kind::kBool) {
      *static_cast<bool*>(it->second.target) = true;
      continue;
    }
    if (body.rfind("no-", 0) == 0) {
      auto neg = flags_.find(body.substr(3));
      if (neg != flags_.end() && neg->second.kind == Kind::kBool) {
        *static_cast<bool*>(neg->second.target) = false;
        continue;
      }
    }
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + body);
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag --" + body + " expects a value");
    }
    TJ_RETURN_IF_ERROR(SetValue(body, argv[++i]));
  }
  return Status::Ok();
}

std::string FlagSet::Usage() const {
  std::ostringstream out;
  out << summary_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name << "  (default " << flag.default_text << ")\n      "
        << flag.help << "\n";
  }
  return out.str();
}

}  // namespace tapejuke
