// A tiny command-line flag parser for bench and example binaries.
//
// Supports --name=value and --name value forms plus boolean --name /
// --no-name. Unrecognized flags are an error so typos fail loudly.

#ifndef TAPEJUKE_UTIL_FLAGS_H_
#define TAPEJUKE_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace tapejuke {

/// Declarative flag set: register flags bound to caller-owned storage, then
/// Parse(argc, argv).
class FlagSet {
 public:
  /// `program_summary` is shown by --help.
  explicit FlagSet(std::string program_summary);

  /// Registers flags. `help` is shown by --help; the bound pointer must
  /// outlive Parse and holds the default value on entry.
  void AddInt64(const std::string& name, int64_t* target,
                const std::string& help);
  void AddDouble(const std::string& name, double* target,
                 const std::string& help);
  void AddString(const std::string& name, std::string* target,
                 const std::string& help);
  void AddBool(const std::string& name, bool* target, const std::string& help);

  /// Parses argv. On --help prints usage and returns a NotFound status the
  /// caller should treat as "exit 0". Positional arguments are collected in
  /// positional().
  Status Parse(int argc, char** argv);

  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders the usage text (also printed by --help).
  std::string Usage() const;

 private:
  enum class Kind { kInt64, kDouble, kString, kBool };
  struct Flag {
    Kind kind;
    void* target;
    std::string help;
    std::string default_text;
  };

  Status SetValue(const std::string& name, const std::string& value);

  std::string summary_;
  std::string program_name_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_UTIL_FLAGS_H_
