#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace tapejuke {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
  // xoshiro256** must not start in the all-zero state; SplitMix64 of any
  // seed cannot produce four zero words, but guard regardless.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = RotL(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  TJ_CHECK_GT(bound, 0u);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  TJ_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(UniformUint64(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> uniform in [0, 1) with full double precision.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  TJ_CHECK_LT(lo, hi);
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Exponential(double mean) {
  TJ_CHECK_GT(mean, 0.0);
  // Inverse transform; 1 - U avoids log(0).
  return -mean * std::log(1.0 - UniformDouble());
}

double Rng::Normal(double mean, double stddev) {
  TJ_CHECK_GE(stddev, 0.0);
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  const double u1 = 1.0 - UniformDouble();
  const double u2 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * radius * std::cos(theta);
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace tapejuke
