// Streaming JSON emission with deterministic output.
//
// Home of the JsonWriter used for results/<bench>.json documents and for
// the observability layer's trace/decision-log files (which cannot depend
// on core/). Doubles are printed in their shortest round-trip form
// (std::to_chars), keys are emitted in caller order, and NaN/Inf become
// null, so identical values always serialize to byte-identical JSON.

#ifndef TAPEJUKE_UTIL_JSON_H_
#define TAPEJUKE_UTIL_JSON_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace tapejuke {

/// Streaming JSON writer with 2-space pretty printing. Usage:
///
///   JsonWriter w(&os);
///   w.BeginObject();
///   w.Key("name"); w.Value("fig04");
///   w.Key("points"); w.BeginArray(); ... w.EndArray();
///   w.EndObject();
///
/// The writer TJ_CHECKs on malformed call sequences (value without a key
/// inside an object, unbalanced End calls).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream* os);

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  void Key(const std::string& name);

  void Value(const std::string& value);
  void Value(const char* value);
  void Value(double value);
  void Value(int64_t value);
  void Value(uint64_t value);
  void Value(int value) { Value(static_cast<int64_t>(value)); }
  void Value(bool value);
  void Null();

  /// Key + Value in one call.
  template <typename T>
  void Field(const std::string& name, const T& value) {
    Key(name);
    Value(value);
  }

 private:
  enum class Scope { kObject, kArray };
  void BeforeValue();
  void NewlineIndent();

  std::ostream* os_;
  std::vector<Scope> stack_;
  std::vector<int> counts_;  ///< values emitted in each open scope
  bool pending_key_ = false;
};

/// Backslash-escapes `s` for use inside a JSON string literal (quotes not
/// included).
std::string JsonEscape(const std::string& s);

/// Shortest round-trip decimal form of `value`; "null" for NaN/Inf.
std::string JsonDouble(double value);

/// Writes `content` to `path`, creating parent directories as needed.
Status WriteTextFile(const std::string& path, const std::string& content);

}  // namespace tapejuke

#endif  // TAPEJUKE_UTIL_JSON_H_
