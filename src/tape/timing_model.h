// Analytic tape timing model (paper §2.1).
//
// For single-pass (helical-scan) tape technology, locate time is piecewise
// linear in the distance travelled, with four regimes: {short, long} ×
// {forward, reverse}. Reads have a per-MB transfer cost plus a startup that
// depends on the direction of the preceding locate. Rewinding to the physical
// beginning of tape incurs extra fixed overhead, and a tape switch is
// eject + robot motion + load.
//
// Default constants are the least-squares fits the paper measured on an
// Exabyte EXB-8505XL drive in an EXB-210 jukebox (1 MB logical blocks).

#ifndef TAPEJUKE_TAPE_TIMING_MODEL_H_
#define TAPEJUKE_TAPE_TIMING_MODEL_H_

#include <cstdint>

#include "tape/types.h"
#include "util/status.h"

namespace tapejuke {

/// Calibration constants for TimingModel. All times in seconds, all
/// distances in MB.
struct TimingParams {
  // Forward locate past k MB: short regime (k <= short_threshold_mb) and
  // long regime.
  double fwd_short_startup = 4.834;
  double fwd_short_per_mb = 0.378;
  double fwd_long_startup = 14.342;
  double fwd_long_per_mb = 0.028;

  // Reverse locate regimes.
  double rev_short_startup = 4.99;
  double rev_short_per_mb = 0.328;
  double rev_long_startup = 13.74;
  double rev_long_per_mb = 0.0286;

  /// Boundary between the short and long locate regimes.
  double short_threshold_mb = 28.0;

  /// Extra overhead whenever a locate lands on the physical beginning of
  /// tape (the drive performs housekeeping on a full rewind).
  double bot_extra_seconds = 21.0;

  /// Reading k MB after a forward locate takes
  /// read_fwd_startup + read_per_mb * k; after a reverse locate the startup
  /// is read_rev_startup.
  double read_fwd_startup = 0.38;
  double read_rev_startup = 0.0;
  double read_per_mb = 1.77;

  /// Tape switch components: drive eject, robot arm swap, load + ready.
  double eject_seconds = 19.0;
  double robot_seconds = 20.0;
  double load_seconds = 42.0;

  /// Usable capacity of one tape, in MB.
  int64_t tape_capacity_mb = 7168;  // 7 GB

  /// The EXB-8505XL / EXB-210 constants from the paper (same as the
  /// defaults; spelled out for callers that want to be explicit).
  static TimingParams Exabyte8505XL() { return TimingParams{}; }

  /// A hypothetical faster drive (~4x positioning and transfer speed) used
  /// to check that conclusions are insensitive to drive speed (§2.1 claims
  /// qualitative results do not change).
  static TimingParams FastDrive();

  /// Validates internal consistency (non-negative costs, positive capacity,
  /// continuous-enough regime boundary).
  Status Validate() const;
};

/// Evaluates locate/read/rewind/switch costs for the model above.
///
/// The model is deterministic; stochastic "measured" timings are produced by
/// PhysicalDrive (physical_drive.h) for validation experiments.
class TimingModel {
 public:
  /// Constructs a model; params must Validate().
  explicit TimingModel(const TimingParams& params);

  const TimingParams& params() const { return params_; }

  /// Time to locate forward past `distance_mb` MB (>= 0). Zero distance is
  /// free (no head motion is needed).
  double ForwardLocateTime(int64_t distance_mb) const;

  /// Time to locate backward past `distance_mb` MB (>= 0). Zero is free.
  double ReverseLocateTime(int64_t distance_mb) const;

  /// Time to move the head from `from` to `to`. Includes the
  /// beginning-of-tape surcharge when `to` == 0 and motion occurs.
  double LocateTime(Position from, Position to) const;

  /// Time to read `mb` MB given the kind of locate that preceded the read.
  double ReadTime(int64_t mb, LocateKind preceding) const;

  /// Time for locate(from -> to) followed by reading `mb` MB at `to`.
  double LocateAndReadTime(Position from, Position to, int64_t mb) const;

  /// Full rewind from `from` to the physical beginning of tape.
  double RewindTime(Position from) const;

  /// Robot-side tape switch: eject + arm swap + load (excludes rewind).
  double SwitchTime() const;

  /// Rewind from `head` plus a tape switch: the full cost of moving the
  /// drive from one mounted tape to another.
  double FullSwitchTime(Position head) const;

  /// Streaming transfer rate, MB/s (the asymptotic read rate).
  double StreamingRateMBps() const { return 1.0 / params_.read_per_mb; }

 private:
  TimingParams params_;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_TAPE_TIMING_MODEL_H_
