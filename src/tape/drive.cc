#include "tape/drive.h"

#include "util/check.h"

namespace tapejuke {

Drive::Drive(const TimingModel* model) : model_(model) {
  TJ_CHECK(model != nullptr);
}

double Drive::LocateTo(Position position) {
  TJ_CHECK(has_tape()) << "locate with no tape mounted";
  TJ_CHECK_GE(position, 0);
  const double seconds = model_->LocateTime(head_, position);
  if (position > head_) {
    last_locate_ = LocateKind::kForward;
  } else if (position < head_) {
    last_locate_ = LocateKind::kReverse;
  }
  // Equal position: keep last_locate_ unchanged only if nothing read since;
  // a zero-distance "locate" does not reposition the head.
  head_ = position;
  return seconds;
}

double Drive::Read(int64_t mb) {
  TJ_CHECK(has_tape()) << "read with no tape mounted";
  TJ_CHECK_GE(mb, 0);
  const double seconds = model_->ReadTime(mb, last_locate_);
  head_ += mb;
  last_locate_ = LocateKind::kNone;  // subsequent contiguous reads stream
  return seconds;
}

double Drive::ReadAt(Position position, int64_t mb) {
  return LocateTo(position) + Read(mb);
}

double Drive::Rewind() {
  TJ_CHECK(has_tape()) << "rewind with no tape mounted";
  const double seconds = model_->RewindTime(head_);
  head_ = 0;
  last_locate_ = LocateKind::kReverse;
  return seconds;
}

double Drive::Eject() {
  TJ_CHECK(has_tape()) << "eject with no tape mounted";
  TJ_CHECK_EQ(head_, 0) << "tape must be rewound before eject";
  loaded_tape_ = kInvalidTape;
  last_locate_ = LocateKind::kNone;
  return model_->params().eject_seconds;
}

double Drive::Load(TapeId tape) {
  TJ_CHECK(!has_tape()) << "load into an occupied drive";
  TJ_CHECK_GE(tape, 0);
  loaded_tape_ = tape;
  head_ = 0;
  last_locate_ = LocateKind::kNone;
  return model_->params().load_seconds;
}

}  // namespace tapejuke
