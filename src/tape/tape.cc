#include "tape/tape.h"

#include <string>

#include "util/check.h"

namespace tapejuke {

Tape::Tape(TapeId id, int64_t capacity_mb, int64_t block_size_mb)
    : id_(id), capacity_mb_(capacity_mb), block_size_mb_(block_size_mb) {
  TJ_CHECK_GT(capacity_mb, 0);
  TJ_CHECK_GT(block_size_mb, 0);
  TJ_CHECK_LE(block_size_mb, capacity_mb);
  slots_.assign(static_cast<size_t>(capacity_mb / block_size_mb),
                kInvalidBlock);
}

Status Tape::PlaceBlock(BlockId block, int64_t slot) {
  if (block < 0) {
    return Status::InvalidArgument("block id must be non-negative");
  }
  if (slot < 0 || slot >= num_slots()) {
    return Status::OutOfRange("slot " + std::to_string(slot) +
                              " out of range on tape " + std::to_string(id_));
  }
  if (slots_[static_cast<size_t>(slot)] != kInvalidBlock) {
    return Status::CapacityExceeded("slot " + std::to_string(slot) +
                                    " already occupied on tape " +
                                    std::to_string(id_));
  }
  if (slot_of_.contains(block)) {
    return Status::InvalidArgument(
        "block " + std::to_string(block) +
        " already has a copy on tape " + std::to_string(id_) +
        " (at most one copy per tape)");
  }
  slots_[static_cast<size_t>(slot)] = block;
  slot_of_.emplace(block, slot);
  return Status::Ok();
}

void Tape::ClearSlot(int64_t slot) {
  TJ_CHECK(slot >= 0 && slot < num_slots());
  const BlockId block = slots_[static_cast<size_t>(slot)];
  if (block != kInvalidBlock) {
    slot_of_.erase(block);
    slots_[static_cast<size_t>(slot)] = kInvalidBlock;
  }
}

BlockId Tape::BlockAtSlot(int64_t slot) const {
  TJ_CHECK(slot >= 0 && slot < num_slots());
  return slots_[static_cast<size_t>(slot)];
}

std::optional<int64_t> Tape::SlotOf(BlockId block) const {
  auto it = slot_of_.find(block);
  if (it == slot_of_.end()) return std::nullopt;
  return it->second;
}

int64_t Tape::SlotOfPosition(Position position) const {
  TJ_CHECK_EQ(position % block_size_mb_, 0);
  return position / block_size_mb_;
}

}  // namespace tapejuke
