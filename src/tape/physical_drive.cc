#include "tape/physical_drive.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace tapejuke {

double RandomWalkResult::LocateErrorPct() const {
  if (predicted_locate_seconds <= 0) return 0;
  return 100.0 *
         std::abs(measured_locate_seconds - predicted_locate_seconds) /
         predicted_locate_seconds;
}

double RandomWalkResult::ReadErrorPct() const {
  if (predicted_read_seconds <= 0) return 0;
  return 100.0 * std::abs(measured_read_seconds - predicted_read_seconds) /
         predicted_read_seconds;
}

PhysicalDrive::PhysicalDrive(const TimingModel* model,
                             const DriveNoiseParams& noise, uint64_t seed)
    : model_(model), noise_(noise), rng_(seed) {
  TJ_CHECK(model != nullptr);
  TJ_CHECK_GE(noise.locate_rel_stddev, 0.0);
  TJ_CHECK_GE(noise.read_rel_stddev, 0.0);
  TJ_CHECK_GE(noise.locate_bias_stddev, 0.0);
  TJ_CHECK_GE(noise.read_bias_stddev, 0.0);
}

double PhysicalDrive::Noisy(double nominal, double bias,
                            double rel_stddev) {
  if (nominal <= 0) return nominal;
  double factor = bias;
  if (rel_stddev > 0) factor *= rng_.Normal(1.0, rel_stddev);
  // A physical operation cannot take (near-)zero or negative time no matter
  // the noise draw; clamp to a sane floor.
  return nominal * std::max(factor, 0.2);
}

void PhysicalDrive::ResampleSessionBias() {
  locate_bias_ = noise_.locate_bias_stddev > 0
                     ? std::max(rng_.Normal(1.0, noise_.locate_bias_stddev),
                                0.2)
                     : 1.0;
  read_bias_ = noise_.read_bias_stddev > 0
                   ? std::max(rng_.Normal(1.0, noise_.read_bias_stddev), 0.2)
                   : 1.0;
}

double PhysicalDrive::MeasureLocate(Position from, Position to) {
  return Noisy(model_->LocateTime(from, to), locate_bias_,
               noise_.locate_rel_stddev);
}

double PhysicalDrive::MeasureRead(int64_t mb, LocateKind preceding) {
  return Noisy(model_->ReadTime(mb, preceding), read_bias_,
               noise_.read_rel_stddev);
}

RandomWalkResult PhysicalDrive::RandomWalk(int steps, int64_t read_mb) {
  TJ_CHECK_GT(steps, 0);
  TJ_CHECK_GT(read_mb, 0);
  const int64_t capacity = model_->params().tape_capacity_mb;
  TJ_CHECK_GE(capacity, read_mb);
  ResampleSessionBias();
  RandomWalkResult result;
  Position head = 0;
  for (int i = 0; i < steps; ++i) {
    // Choose a random block start so the read stays on the tape.
    const Position target =
        static_cast<Position>(rng_.UniformUint64(
            static_cast<uint64_t>(capacity - read_mb + 1)));
    LocateKind kind = LocateKind::kNone;
    if (target > head) kind = LocateKind::kForward;
    if (target < head) kind = LocateKind::kReverse;
    result.predicted_locate_seconds += model_->LocateTime(head, target);
    result.measured_locate_seconds += MeasureLocate(head, target);
    result.predicted_read_seconds += model_->ReadTime(read_mb, kind);
    result.measured_read_seconds += MeasureRead(read_mb, kind);
    head = target + read_mb;
  }
  return result;
}

}  // namespace tapejuke
