// A single tape: a position-indexed array of fixed-size block slots.
//
// Blocks are stored in consecutively numbered physical slots; slot s starts
// at position s * block_size_mb. A logical block appears at most once per
// tape (the paper's replication model allows at most one copy per tape).

#ifndef TAPEJUKE_TAPE_TAPE_H_
#define TAPEJUKE_TAPE_TAPE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "tape/types.h"
#include "util/status.h"

namespace tapejuke {

/// One tape volume in a jukebox.
class Tape {
 public:
  /// Creates an empty tape with `capacity_mb / block_size_mb` slots.
  /// Requires positive capacity and block size with block_size <= capacity.
  Tape(TapeId id, int64_t capacity_mb, int64_t block_size_mb);

  TapeId id() const { return id_; }
  int64_t capacity_mb() const { return capacity_mb_; }
  int64_t block_size_mb() const { return block_size_mb_; }

  /// Number of block slots on this tape.
  int64_t num_slots() const { return static_cast<int64_t>(slots_.size()); }

  /// Number of occupied slots.
  int64_t num_blocks() const { return static_cast<int64_t>(slot_of_.size()); }

  /// Places a copy of `block` in `slot`. Fails if the slot is occupied, the
  /// slot is out of range, or the block already has a copy on this tape.
  Status PlaceBlock(BlockId block, int64_t slot);

  /// Removes the block in `slot`, if any.
  void ClearSlot(int64_t slot);

  /// The block stored in `slot`, or kInvalidBlock if empty.
  BlockId BlockAtSlot(int64_t slot) const;

  /// The slot holding `block` on this tape, if present.
  std::optional<int64_t> SlotOf(BlockId block) const;

  /// Physical start position (MB) of `slot`.
  Position PositionOfSlot(int64_t slot) const {
    return slot * block_size_mb_;
  }

  /// The slot whose data starts at `position`; requires slot alignment.
  int64_t SlotOfPosition(Position position) const;

  /// Position just past the end of the data in `slot` (where the head rests
  /// after reading it).
  Position EndPositionOfSlot(int64_t slot) const {
    return PositionOfSlot(slot) + block_size_mb_;
  }

 private:
  TapeId id_;
  int64_t capacity_mb_;
  int64_t block_size_mb_;
  std::vector<BlockId> slots_;
  std::unordered_map<BlockId, int64_t> slot_of_;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_TAPE_TAPE_H_
