#include "tape/timing_model.h"

#include <cmath>

#include "util/check.h"

namespace tapejuke {

TimingParams TimingParams::FastDrive() {
  TimingParams p;
  p.fwd_short_startup /= 4;
  p.fwd_short_per_mb /= 4;
  p.fwd_long_startup /= 4;
  p.fwd_long_per_mb /= 4;
  p.rev_short_startup /= 4;
  p.rev_short_per_mb /= 4;
  p.rev_long_startup /= 4;
  p.rev_long_per_mb /= 4;
  p.bot_extra_seconds /= 4;
  p.read_fwd_startup /= 4;
  p.read_per_mb /= 4;
  p.eject_seconds /= 4;
  p.robot_seconds /= 4;
  p.load_seconds /= 4;
  return p;
}

Status TimingParams::Validate() const {
  if (tape_capacity_mb <= 0) {
    return Status::InvalidArgument("tape capacity must be positive");
  }
  if (short_threshold_mb < 0) {
    return Status::InvalidArgument("short locate threshold must be >= 0");
  }
  const double costs[] = {fwd_short_startup, fwd_short_per_mb,
                          fwd_long_startup,  fwd_long_per_mb,
                          rev_short_startup, rev_short_per_mb,
                          rev_long_startup,  rev_long_per_mb,
                          bot_extra_seconds, read_fwd_startup,
                          read_rev_startup,  read_per_mb,
                          eject_seconds,     robot_seconds,
                          load_seconds};
  for (double c : costs) {
    if (c < 0 || !std::isfinite(c)) {
      return Status::InvalidArgument("timing costs must be finite and >= 0");
    }
  }
  if (read_per_mb <= 0) {
    return Status::InvalidArgument("read_per_mb must be positive");
  }
  return Status::Ok();
}

TimingModel::TimingModel(const TimingParams& params) : params_(params) {
  const Status status = params.Validate();
  TJ_CHECK(status.ok()) << status.ToString();
}

double TimingModel::ForwardLocateTime(int64_t distance_mb) const {
  TJ_DCHECK(distance_mb >= 0);
  if (distance_mb == 0) return 0.0;
  const auto k = static_cast<double>(distance_mb);
  if (k <= params_.short_threshold_mb) {
    return params_.fwd_short_startup + params_.fwd_short_per_mb * k;
  }
  return params_.fwd_long_startup + params_.fwd_long_per_mb * k;
}

double TimingModel::ReverseLocateTime(int64_t distance_mb) const {
  TJ_DCHECK(distance_mb >= 0);
  if (distance_mb == 0) return 0.0;
  const auto k = static_cast<double>(distance_mb);
  if (k <= params_.short_threshold_mb) {
    return params_.rev_short_startup + params_.rev_short_per_mb * k;
  }
  return params_.rev_long_startup + params_.rev_long_per_mb * k;
}

double TimingModel::LocateTime(Position from, Position to) const {
  TJ_DCHECK(from >= 0);
  TJ_DCHECK(to >= 0);
  if (from == to) return 0.0;
  double time = (to > from) ? ForwardLocateTime(to - from)
                            : ReverseLocateTime(from - to);
  if (to == 0) time += params_.bot_extra_seconds;
  return time;
}

double TimingModel::ReadTime(int64_t mb, LocateKind preceding) const {
  TJ_DCHECK(mb >= 0);
  if (mb == 0) return 0.0;
  double startup = 0.0;
  switch (preceding) {
    case LocateKind::kNone:
      startup = 0.0;  // streaming continuation, no repositioning startup
      break;
    case LocateKind::kForward:
      startup = params_.read_fwd_startup;
      break;
    case LocateKind::kReverse:
      startup = params_.read_rev_startup;
      break;
  }
  return startup + params_.read_per_mb * static_cast<double>(mb);
}

double TimingModel::LocateAndReadTime(Position from, Position to,
                                      int64_t mb) const {
  LocateKind kind = LocateKind::kNone;
  if (to > from) kind = LocateKind::kForward;
  if (to < from) kind = LocateKind::kReverse;
  return LocateTime(from, to) + ReadTime(mb, kind);
}

double TimingModel::RewindTime(Position from) const {
  return LocateTime(from, 0);
}

double TimingModel::SwitchTime() const {
  return params_.eject_seconds + params_.robot_seconds + params_.load_seconds;
}

double TimingModel::FullSwitchTime(Position head) const {
  return RewindTime(head) + SwitchTime();
}

}  // namespace tapejuke
