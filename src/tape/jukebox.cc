#include "tape/jukebox.h"

#include "util/check.h"

namespace tapejuke {

Status JukeboxConfig::Validate() const {
  if (num_tapes <= 0) {
    return Status::InvalidArgument("jukebox needs at least one tape");
  }
  if (block_size_mb <= 0) {
    return Status::InvalidArgument("block size must be positive");
  }
  if (block_size_mb > timing.tape_capacity_mb) {
    return Status::InvalidArgument("block size exceeds tape capacity");
  }
  return timing.Validate();
}

Jukebox::Jukebox(const JukeboxConfig& config)
    : config_(config), model_(config.timing), drive_(&model_) {
  const Status status = config.Validate();
  TJ_CHECK(status.ok()) << status.ToString();
  tapes_.reserve(static_cast<size_t>(config.num_tapes));
  for (TapeId id = 0; id < config.num_tapes; ++id) {
    tapes_.emplace_back(id, config.timing.tape_capacity_mb,
                        config.block_size_mb);
  }
}

Tape& Jukebox::tape(TapeId id) {
  TJ_CHECK(id >= 0 && id < num_tapes()) << "bad tape id" << id;
  return tapes_[static_cast<size_t>(id)];
}

const Tape& Jukebox::tape(TapeId id) const {
  TJ_CHECK(id >= 0 && id < num_tapes()) << "bad tape id" << id;
  return tapes_[static_cast<size_t>(id)];
}

double Jukebox::SwitchTo(TapeId target, SwitchBreakdown* breakdown) {
  TJ_CHECK(target >= 0 && target < num_tapes()) << "bad tape id" << target;
  if (breakdown != nullptr) *breakdown = SwitchBreakdown{};
  if (drive_.loaded_tape() == target) return 0.0;
  double elapsed = 0.0;
  if (drive_.has_tape()) {
    if (config_.rewind_before_eject || drive_.head() == 0) {
      const double rewind = drive_.Rewind();
      counters_.rewind_seconds += rewind;
      elapsed += rewind;
      if (breakdown != nullptr) breakdown->rewind = rewind;
      const double eject = drive_.Eject();
      counters_.switch_seconds += eject;
      elapsed += eject;
      if (breakdown != nullptr) breakdown->eject = eject;
    } else {
      // Hypothetical eject-anywhere drive: skip the rewind. Reset the head
      // through a free rewind so Drive's eject precondition holds; no time
      // is charged.
      drive_.Rewind();
      const double eject = drive_.Eject();
      counters_.switch_seconds += eject;
      elapsed += eject;
      if (breakdown != nullptr) breakdown->eject = eject;
    }
  }
  const double robot = model_.params().robot_seconds;
  counters_.switch_seconds += robot;
  elapsed += robot;
  const double load = drive_.Load(target);
  counters_.switch_seconds += load;
  elapsed += load;
  ++counters_.tape_switches;
  if (breakdown != nullptr) {
    breakdown->robot = robot;
    breakdown->load = load;
  }
  return elapsed;
}

double Jukebox::ReadBlockAt(Position position, ReadBreakdown* breakdown) {
  TJ_CHECK(drive_.has_tape()) << "read with no tape mounted";
  const double locate = drive_.LocateTo(position);
  counters_.locate_seconds += locate;
  const double read = drive_.Read(config_.block_size_mb);
  counters_.read_seconds += read;
  ++counters_.blocks_read;
  counters_.mb_read += config_.block_size_mb;
  if (breakdown != nullptr) {
    breakdown->locate = locate;
    breakdown->read = read;
  }
  return locate + read;
}

double Jukebox::ChargeRobotRetries(int count) {
  TJ_CHECK_GE(count, 0);
  const double extra = count * model_.params().robot_seconds;
  counters_.switch_seconds += extra;
  return extra;
}

double Jukebox::Rewind() {
  TJ_CHECK(drive_.has_tape()) << "rewind with no tape mounted";
  const double rewind = drive_.Rewind();
  counters_.rewind_seconds += rewind;
  return rewind;
}

}  // namespace tapejuke
