// Fundamental identifier and unit types for the tape subsystem.
//
// Positions and distances are measured in megabytes from the physical
// beginning of tape (BOT). The paper's timing model is calibrated in units of
// 1 MB logical blocks, so 1 position unit == 1 MB.

#ifndef TAPEJUKE_TAPE_TYPES_H_
#define TAPEJUKE_TAPE_TYPES_H_

#include <cstdint>

namespace tapejuke {

/// Index of a tape within a jukebox (0-based "jukebox order").
using TapeId = int32_t;

/// Logical data block identifier (location-independent).
using BlockId = int64_t;

/// Physical position on a tape, in MB from the beginning of tape.
using Position = int64_t;

/// Sentinel for "no block".
inline constexpr BlockId kInvalidBlock = -1;

/// Sentinel for "no tape".
inline constexpr TapeId kInvalidTape = -1;

/// Tape motion direction induced by the position numbering.
enum class Direction {
  kForward,  ///< toward higher positions ("up")
  kReverse,  ///< toward lower positions ("down")
};

/// What kind of head repositioning preceded a read (affects read startup).
enum class LocateKind {
  kNone,     ///< head already at the block: streaming continuation
  kForward,  ///< read follows a forward locate
  kReverse,  ///< read follows a reverse locate
};

}  // namespace tapejuke

#endif  // TAPEJUKE_TAPE_TYPES_H_
