#include "tape/serpentine.h"

#include <cmath>
#include <cstdlib>

#include "util/check.h"

namespace tapejuke {

Status SerpentineParams::Validate() const {
  if (num_tracks <= 0) {
    return Status::InvalidArgument("serpentine model needs >= 1 track");
  }
  if (tape_capacity_mb <= 0 || tape_capacity_mb % num_tracks != 0) {
    return Status::InvalidArgument(
        "capacity must be positive and divisible by the track count");
  }
  if (startup_seconds < 0 || track_switch_seconds < 0 || travel_per_mb < 0 ||
      read_per_mb <= 0) {
    return Status::InvalidArgument("serpentine costs must be non-negative");
  }
  return Status::Ok();
}

SerpentineModel::SerpentineModel(const SerpentineParams& params)
    : params_(params) {
  const Status status = params.Validate();
  TJ_CHECK(status.ok()) << status.ToString();
}

int32_t SerpentineModel::TrackOf(Position pos) const {
  TJ_CHECK(pos >= 0 && pos < params_.tape_capacity_mb);
  return static_cast<int32_t>(pos / TrackLengthMb());
}

int64_t SerpentineModel::LongitudinalOffset(Position pos) const {
  const int64_t track_len = TrackLengthMb();
  const int32_t track = TrackOf(pos);
  const int64_t within = pos - static_cast<int64_t>(track) * track_len;
  // Even tracks run head-to-tail; odd tracks run tail-to-head.
  return (track % 2 == 0) ? within : track_len - 1 - within;
}

double SerpentineModel::LocateTime(Position from, Position to) const {
  if (from == to) return 0.0;
  const int64_t longitudinal =
      std::llabs(LongitudinalOffset(to) - LongitudinalOffset(from));
  double time = params_.startup_seconds +
                params_.travel_per_mb * static_cast<double>(longitudinal);
  if (TrackOf(from) != TrackOf(to)) time += params_.track_switch_seconds;
  return time;
}

double SerpentineModel::ReadTime(int64_t mb) const {
  TJ_CHECK_GE(mb, 0);
  return params_.read_per_mb * static_cast<double>(mb);
}

double SerpentineModel::TourLocateSeconds(
    Position head, const std::vector<Position>& tour) const {
  double total = 0;
  for (const Position p : tour) {
    total += LocateTime(head, p);
    head = p;
  }
  return total;
}

std::vector<Position> SerpentineNearestNeighborTour(
    const SerpentineModel& model, Position head,
    std::vector<Position> positions) {
  std::vector<Position> tour;
  tour.reserve(positions.size());
  Position current = head;
  while (!positions.empty()) {
    size_t best = 0;
    double best_cost = model.LocateTime(current, positions[0]);
    for (size_t i = 1; i < positions.size(); ++i) {
      const double cost = model.LocateTime(current, positions[i]);
      if (cost < best_cost) {
        best_cost = cost;
        best = i;
      }
    }
    current = positions[best];
    tour.push_back(current);
    positions[best] = positions.back();
    positions.pop_back();
  }
  return tour;
}

}  // namespace tapejuke
