// Serpentine tape locate-time model (extension).
//
// The paper's algorithms assume single-pass helical-scan tape, and §2 notes
// they "would need to be modified for serpentine tapes such as Travan,
// Quantum DLT, and IBM 3590". This extension provides a serpentine locate
// model so the locate-cost geometry of the two technologies can be compared
// (bench/abl_serpentine): a serpentine cartridge lays data in T longitudinal
// tracks traversed in alternating directions, so the head can move between
// two logical positions by switching tracks near the same longitudinal spot,
// making locate time roughly proportional to the *longitudinal* distance,
// not the logical-address distance.
//
// The model here follows the common linear-in-longitudinal-distance
// approximation used in tape-scheduling literature (e.g. Hillyer &
// Silberschatz, SIGMOD'96): a fixed repositioning startup, a track-switch
// penalty, and a per-MB longitudinal travel cost at search speed.

#ifndef TAPEJUKE_TAPE_SERPENTINE_H_
#define TAPEJUKE_TAPE_SERPENTINE_H_

#include <cstdint>
#include <vector>

#include "tape/types.h"
#include "util/status.h"

namespace tapejuke {

/// Calibration constants for the serpentine locate model.
struct SerpentineParams {
  /// Number of longitudinal tracks (wraps) on the cartridge.
  int32_t num_tracks = 64;
  /// Usable capacity, MB (matched to the helical default for comparisons).
  int64_t tape_capacity_mb = 7168;
  /// Fixed startup overhead of any locate, seconds.
  double startup_seconds = 16.0;
  /// Extra cost of switching tracks, seconds.
  double track_switch_seconds = 2.0;
  /// Longitudinal travel cost at search speed, seconds per MB of
  /// within-track distance (~45 s for a full end-to-end pass at the default
  /// 112 MB track length, DLT-class).
  double travel_per_mb = 0.4;
  /// Transfer rate while reading, seconds per MB.
  double read_per_mb = 0.66;  // ~1.5 MB/s, DLT-class

  Status Validate() const;
};

/// Locate/read cost evaluator for serpentine geometry.
class SerpentineModel {
 public:
  explicit SerpentineModel(const SerpentineParams& params);

  const SerpentineParams& params() const { return params_; }

  /// MB of data held by one track.
  int64_t TrackLengthMb() const {
    return params_.tape_capacity_mb / params_.num_tracks;
  }

  /// The track containing logical position `pos`.
  int32_t TrackOf(Position pos) const;

  /// Longitudinal offset (MB from the physical start of the tape path) of
  /// logical position `pos`; even tracks run forward, odd tracks run
  /// backward.
  int64_t LongitudinalOffset(Position pos) const;

  /// Locate time from `from` to `to`: startup + track switch (if tracks
  /// differ) + longitudinal travel.
  double LocateTime(Position from, Position to) const;

  /// Read time for `mb` MB (no direction-dependent startup on serpentine
  /// drives in this approximation).
  double ReadTime(int64_t mb) const;

  /// Total locate time of visiting `tour` in order from `head` (locates
  /// only; reads excluded).
  double TourLocateSeconds(Position head,
                           const std::vector<Position>& tour) const;

 private:
  SerpentineParams params_;
};

/// Orders block positions into a low-cost retrieval tour for serpentine
/// geometry with a greedy nearest-neighbor heuristic over the serpentine
/// locate metric. This is the "modification" the paper says its algorithms
/// would need for serpentine drives: sorted logical order is near-optimal
/// on single-pass helical tape but nearly meaningless on serpentine, where
/// track-stacked positions are the cheap neighbors.
std::vector<Position> SerpentineNearestNeighborTour(
    const SerpentineModel& model, Position head,
    std::vector<Position> positions);

}  // namespace tapejuke

#endif  // TAPEJUKE_TAPE_SERPENTINE_H_
