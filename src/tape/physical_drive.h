// Simulated "physical" drive that generates noisy measurements.
//
// The paper calibrated its analytic model against a real Exabyte EXB-8505XL
// and validated it with ten random walks of 100 locate+read steps, reporting
// the error between predicted and measured totals (locate: max 0.6% / mean
// 0.5%; read: max 4.6% / mean 2.6% — reads "exhibit a significant
// variance"). We do not have the hardware, so this class plays the role of
// the physical device: it produces per-operation timings equal to the model
// prediction perturbed by multiplicative noise, with read noise much larger
// than locate noise, matching the reported error magnitudes. The §2.1
// validation protocol is then reproduced verbatim against this device.

#ifndef TAPEJUKE_TAPE_PHYSICAL_DRIVE_H_
#define TAPEJUKE_TAPE_PHYSICAL_DRIVE_H_

#include "tape/timing_model.h"
#include "tape/types.h"
#include "util/rng.h"

namespace tapejuke {

/// Relative noise applied to model predictions. Two components: white
/// per-operation jitter, and a *session bias* that is resampled once per
/// random walk and applied to every operation in it. The bias models
/// correlated effects (tape condition, environmental drift) and is what
/// keeps 100-operation totals from averaging down to zero error — the
/// paper's read totals are off by 2.6% on average, far more than
/// independent per-op noise would leave.
struct DriveNoiseParams {
  /// Per-operation relative stddev of locate times (the paper's locate fit
  /// is accurate to ~0.5% on totals).
  double locate_rel_stddev = 0.01;
  /// Per-operation relative stddev of read times.
  double read_rel_stddev = 0.05;
  /// Per-session relative stddev of the locate bias.
  double locate_bias_stddev = 0.004;
  /// Per-session relative stddev of the read bias.
  double read_bias_stddev = 0.03;
};

/// Result of one validation random walk (§2.1 protocol).
struct RandomWalkResult {
  double predicted_locate_seconds = 0;
  double measured_locate_seconds = 0;
  double predicted_read_seconds = 0;
  double measured_read_seconds = 0;

  /// |measured - predicted| / predicted, for locate totals.
  double LocateErrorPct() const;
  /// |measured - predicted| / predicted, for read totals.
  double ReadErrorPct() const;
};

/// A noisy measurement source wrapping a TimingModel.
class PhysicalDrive {
 public:
  PhysicalDrive(const TimingModel* model, const DriveNoiseParams& noise,
                uint64_t seed);

  /// Measured time of one locate from `from` to `to`.
  double MeasureLocate(Position from, Position to);

  /// Measured time of one `mb`-MB read following `preceding` repositioning.
  double MeasureRead(int64_t mb, LocateKind preceding);

  const TimingModel& model() const { return *model_; }

  /// Resamples the session bias (as if a new tape were mounted or the
  /// drive re-calibrated). RandomWalk calls this automatically.
  void ResampleSessionBias();

  /// Runs one §2.1-style random walk: `steps` random locates each followed
  /// by a read of `read_mb` MB, over a tape of the model's capacity,
  /// accumulating predicted and measured totals. Resamples the session
  /// bias first.
  RandomWalkResult RandomWalk(int steps, int64_t read_mb);

 private:
  double Noisy(double nominal, double bias, double rel_stddev);

  const TimingModel* model_;
  DriveNoiseParams noise_;
  Rng rng_;
  double locate_bias_ = 1.0;
  double read_bias_ = 1.0;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_TAPE_PHYSICAL_DRIVE_H_
