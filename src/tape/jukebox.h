// A small single-drive tape jukebox (paper §2): one drive, a robotic arm,
// and a handful of tapes, scheduled independently of other jukeboxes.
//
// The jukebox owns the tapes and the drive, performs complete tape switches
// (rewind + eject + robot swap + load), and tallies time-accounting counters
// that the metrics layer reports (number of switches, seconds spent in each
// activity, bytes read).

#ifndef TAPEJUKE_TAPE_JUKEBOX_H_
#define TAPEJUKE_TAPE_JUKEBOX_H_

#include <cstdint>
#include <vector>

#include "tape/drive.h"
#include "tape/tape.h"
#include "tape/timing_model.h"
#include "tape/types.h"
#include "util/status.h"

namespace tapejuke {

/// Cumulative activity accounting for one jukebox.
struct JukeboxCounters {
  int64_t tape_switches = 0;
  int64_t blocks_read = 0;
  int64_t mb_read = 0;
  double rewind_seconds = 0;
  double switch_seconds = 0;  ///< eject + robot + load (excludes rewind)
  double locate_seconds = 0;
  double read_seconds = 0;

  /// Total accounted busy time.
  double BusySeconds() const {
    return rewind_seconds + switch_seconds + locate_seconds + read_seconds;
  }
};

/// Component timing of one SwitchTo call, for per-state observability.
/// rewind + eject + robot + load == the seconds SwitchTo returned.
struct SwitchBreakdown {
  double rewind = 0;
  double eject = 0;
  double robot = 0;
  double load = 0;
};

/// Component timing of one ReadBlockAt call.
/// locate + read == the seconds ReadBlockAt returned.
struct ReadBreakdown {
  double locate = 0;
  double read = 0;
};

/// Configuration for Jukebox construction.
struct JukeboxConfig {
  int32_t num_tapes = 10;
  int64_t block_size_mb = 16;
  TimingParams timing = TimingParams::Exabyte8505XL();
  /// Helical-scan drives must rewind to the beginning of tape before eject
  /// (the paper's assumption). Setting this false models a hypothetical
  /// eject-anywhere drive (abl_rewind ablation; cf. the related-work
  /// discussion of rewind-to-nearest-zone libraries).
  bool rewind_before_eject = true;

  Status Validate() const;
};

/// One drive + robot + tape pool. All time-consuming operations return the
/// seconds they take and update the counters; the simulator owns the clock.
class Jukebox {
 public:
  /// Constructs with validated config (TJ_CHECKs on invalid config; use
  /// JukeboxConfig::Validate() to pre-check user input).
  explicit Jukebox(const JukeboxConfig& config);

  const TimingModel& model() const { return model_; }
  const JukeboxConfig& config() const { return config_; }

  int32_t num_tapes() const { return static_cast<int32_t>(tapes_.size()); }
  Tape& tape(TapeId id);
  const Tape& tape(TapeId id) const;

  Drive& drive() { return drive_; }
  const Drive& drive() const { return drive_; }

  /// The currently mounted tape, or kInvalidTape.
  TapeId mounted_tape() const { return drive_.loaded_tape(); }

  /// Head position of the drive (0 when no tape is mounted).
  Position head() const { return drive_.head(); }

  /// Switches the drive to `target`: rewind (if needed), eject, robot swap,
  /// load. No-op returning 0 when `target` is already mounted. Counters are
  /// updated. Returns elapsed seconds; when `breakdown` is non-null the
  /// component times are stored there (zeroed first).
  double SwitchTo(TapeId target, SwitchBreakdown* breakdown = nullptr);

  /// Locates to `position` on the mounted tape and reads one block
  /// (config().block_size_mb MB). Updates counters. Returns elapsed
  /// seconds; when `breakdown` is non-null the locate/read split is
  /// stored there (zeroed first).
  double ReadBlockAt(Position position, ReadBreakdown* breakdown = nullptr);

  /// Rewinds the mounted tape (explicit idle-time rewind). Returns seconds.
  double Rewind();

  /// Charges `count` extra robot cycles (a fault-injected load/eject
  /// handoff slip repeats the robot move). Returns the seconds charged.
  double ChargeRobotRetries(int count);

  const JukeboxCounters& counters() const { return counters_; }
  void ResetCounters() { counters_ = JukeboxCounters{}; }

  /// Number of slots per tape for this configuration.
  int64_t slots_per_tape() const { return tapes_.front().num_slots(); }

  /// Total slots across all tapes.
  int64_t total_slots() const { return slots_per_tape() * num_tapes(); }

 private:
  JukeboxConfig config_;
  TimingModel model_;
  Drive drive_;
  std::vector<Tape> tapes_;
  JukeboxCounters counters_;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_TAPE_JUKEBOX_H_
