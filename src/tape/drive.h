// Tape drive head state machine.
//
// The drive tracks which tape is mounted, the head position, and the kind of
// locate that last moved the head (which determines the read startup cost in
// the timing model). Operations return the seconds they take; advancing the
// simulation clock is the caller's job. The drive enforces the paper's
// hardware rule that a tape must be rewound to the beginning before eject.

#ifndef TAPEJUKE_TAPE_DRIVE_H_
#define TAPEJUKE_TAPE_DRIVE_H_

#include "tape/timing_model.h"
#include "tape/types.h"

namespace tapejuke {

/// A single tape drive.
class Drive {
 public:
  /// `model` must outlive the drive.
  explicit Drive(const TimingModel* model);

  bool has_tape() const { return loaded_tape_ != kInvalidTape; }
  TapeId loaded_tape() const { return loaded_tape_; }
  Position head() const { return head_; }

  /// Moves the head to `position`; returns the locate seconds (0 when
  /// already there). Requires a mounted tape.
  double LocateTo(Position position);

  /// Reads `mb` MB at the current head position; returns the read seconds
  /// (startup depends on the preceding locate). Head advances by `mb`.
  double Read(int64_t mb);

  /// Locate to `position` then read `mb` MB; returns the combined seconds.
  double ReadAt(Position position, int64_t mb);

  /// Rewinds to the physical beginning of tape; returns the rewind seconds.
  double Rewind();

  /// Ejects the mounted tape; requires the head to be at position 0
  /// (Rewind() first). Returns the eject seconds.
  double Eject();

  /// Loads `tape` into the (empty) drive; returns the load seconds. The
  /// head starts at position 0.
  double Load(TapeId tape);

  const TimingModel& model() const { return *model_; }

 private:
  const TimingModel* model_;
  TapeId loaded_tape_ = kInvalidTape;
  Position head_ = 0;
  LocateKind last_locate_ = LocateKind::kNone;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_TAPE_DRIVE_H_
