#include "sched/fifo_scheduler.h"

#include "util/check.h"

namespace tapejuke {

FifoScheduler::FifoScheduler(const Jukebox* jukebox, const Catalog* catalog,
                             const SchedulerOptions& options)
    : Scheduler(jukebox, catalog, options) {}

void FifoScheduler::OnArrivalNow(const Request& request,
                                 Position committed_head) {
  (void)committed_head;
  pending_.push_back(request);
}

TapeId FifoScheduler::MajorReschedule() {
  FlushArrivals();
  if (pending_.empty()) return BackgroundReschedule();
  const Request oldest = pending_.front();
  pending_.pop_front();

  // Prefer a live replica on the mounted tape; otherwise the first live
  // replica. The simulator evicts requests with no live replica before any
  // reschedule, so one always exists.
  const Replica* chosen =
      catalog_->LiveReplicaOn(oldest.block, jukebox_->mounted_tape());
  if (chosen == nullptr) {
    for (const Replica& replica : catalog_->ReplicasOf(oldest.block)) {
      if (catalog_->IsAlive(replica)) {
        chosen = &replica;
        break;
      }
    }
  }
  TJ_CHECK(chosen != nullptr) << "pending request with no live replica";

  if (decision_sink_ != nullptr) {
    // FIFO considers exactly one candidate: the replica it picked.
    TapeCandidate only;
    only.tape = chosen->tape;
    only.num_requests = 1;
    only.positions.push_back(chosen->position);
    only.serves_oldest = true;
    RecordDecision(/*background=*/false, chosen->tape, {only});
  }

  ServiceEntry entry{chosen->position, oldest.block, {oldest}};
  // Other pending requests for the same block ride along for free.
  std::deque<Request> keep;
  for (const Request& request : pending_) {
    if (request.block == oldest.block) {
      entry.requests.push_back(request);
    } else {
      keep.push_back(request);
    }
  }
  pending_ = std::move(keep);

  const Position start_head =
      (chosen->tape == jukebox_->mounted_tape()) ? jukebox_->head() : 0;
  if (entry.position >= start_head) {
    sweep_.AppendForward(entry);
  } else {
    sweep_.AppendReverse(entry);
  }
  PiggybackBackground(chosen->tape);
  return chosen->tape;
}

}  // namespace tapejuke
