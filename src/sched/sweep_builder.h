// Shared sweep-construction helper: extract the requests a tape visit will
// serve from a pending list and arrange them into a single sweep.
//
// Used by the single-drive Scheduler subclasses and by the multi-drive
// simulator extension.

#ifndef TAPEJUKE_SCHED_SWEEP_BUILDER_H_
#define TAPEJUKE_SCHED_SWEEP_BUILDER_H_

#include <deque>

#include "layout/catalog.h"
#include "sched/request.h"
#include "sched/sweep.h"
#include "tape/types.h"

namespace tapejuke {

/// Removes from `pending` every request with a replica on `tape` (when
/// `envelope_limit` is non-null, only replicas whose block end is within
/// it) and appends them to `sweep` as a single forward+reverse pass
/// starting from `start_head`. Requests for the same block share one
/// entry. `sweep` must be empty on entry.
void ExtractSweepForTape(const Catalog& catalog, TapeId tape,
                         Position start_head, int64_t block_size_mb,
                         const Position* envelope_limit,
                         std::deque<Request>* pending, Sweep* sweep);

}  // namespace tapejuke

#endif  // TAPEJUKE_SCHED_SWEEP_BUILDER_H_
