// The static and dynamic scheduling algorithms of paper §3.1.
//
// The major rescheduler selects a tape with one of the five tape-selection
// policies and greedily schedules *all* pending requests satisfiable by that
// tape, sorted into a single sweep. Static variants defer every new arrival
// to the pending list; dynamic variants insert arrivals for the mounted
// tape into the running sweep when the requested block still lies ahead of
// the head.

#ifndef TAPEJUKE_SCHED_GREEDY_SCHEDULER_H_
#define TAPEJUKE_SCHED_GREEDY_SCHEDULER_H_

#include <string>

#include "sched/scheduler.h"

namespace tapejuke {

/// Static (defer-all) or dynamic (insert-on-the-fly) greedy scheduler.
class GreedyScheduler : public Scheduler {
 public:
  GreedyScheduler(const Jukebox* jukebox, const Catalog* catalog,
                  TapePolicy policy, bool dynamic,
                  const SchedulerOptions& options = {});

  std::string name() const override;

  TapePolicy policy() const { return policy_; }
  bool dynamic() const { return dynamic_; }

  TapeId MajorReschedule() override;

 protected:
  void OnArrivalNow(const Request& request, Position committed_head) override;

 private:
  TapePolicy policy_;
  bool dynamic_;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_SCHED_GREEDY_SCHEDULER_H_
