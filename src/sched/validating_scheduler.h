// ValidatingScheduler: a decorator that checks scheduler-contract
// invariants at runtime.
//
// Wraps any Scheduler and TJ_CHECKs, on every interaction, that:
//
//  * every popped service entry reads a block that actually has a replica
//    at that position on the tape the major rescheduler chose;
//  * the entries popped between two major reschedules form one legal sweep:
//    a forward phase of ascending positions starting at or after the mount
//    head, followed by a reverse phase of descending positions;
//  * every request enters the scheduler exactly once and leaves exactly
//    once (no losses, no duplicates);
//  * the major rescheduler only reports a tape when work exists, and the
//    sweep it builds is non-empty;
//  * when the inner scheduler is an EnvelopeScheduler, the incremental
//    extension kernel and the from-scratch reference computation agree on
//    every major reschedule (the envelope oracle).
//
// Used by the cross-algorithm property tests to exercise every scheduler
// under randomized workloads with the full invariant set armed; also handy
// when developing new scheduling algorithms.

#ifndef TAPEJUKE_SCHED_VALIDATING_SCHEDULER_H_
#define TAPEJUKE_SCHED_VALIDATING_SCHEDULER_H_

#include <memory>
#include <string>

#include "sched/scheduler.h"
#include "util/flat_hash.h"

namespace tapejuke {

/// Invariant-checking decorator around any Scheduler.
class ValidatingScheduler : public Scheduler {
 public:
  /// Takes ownership of `inner`. The jukebox/catalog must be the ones the
  /// inner scheduler was built against.
  ValidatingScheduler(std::unique_ptr<Scheduler> inner,
                      const Jukebox* jukebox, const Catalog* catalog);

  std::string name() const override;

  void EnqueueBackground(const Request& request) override;
  TapeId MajorReschedule() override;

  /// Validated pop: checks replica placement and sweep-order invariants
  /// before handing the entry to the simulator.
  std::optional<ServiceEntry> PopNext() override;

  const Sweep& sweep() const override { return inner_->sweep(); }
  bool sweep_empty() const override { return inner_->sweep_empty(); }
  size_t sweep_size() const override { return inner_->sweep_size(); }
  size_t pending_size() const override { return inner_->pending_size(); }
  size_t background_size() const override {
    return inner_->background_size();
  }
  bool HasWork() const override { return inner_->HasWork(); }

  /// Fault-recovery forwarding: the returned requests leave the scheduler
  /// (the simulator fails them or re-enqueues them via OnArrival), so they
  /// are dropped from the outstanding set.
  std::vector<Request> DrainSweep() override;
  std::vector<Request> EvictUnservablePending() override;
  std::vector<Request> EvictExpired(double now) override;

  /// Decisions are made by (and recorded from) the wrapped scheduler.
  void set_decision_sink(obs::DecisionSink* sink) override {
    inner_->set_decision_sink(sink);
  }

  /// Requests seen / completed so far (for conservation checks in tests).
  int64_t arrivals_seen() const { return arrivals_seen_; }
  int64_t requests_served() const { return requests_served_; }

  /// Requests currently inside the scheduler (pending or in the sweep).
  int64_t outstanding() const {
    return static_cast<int64_t>(outstanding_.size());
  }

  Scheduler* inner() { return inner_.get(); }

 protected:
  void OnArrivalNow(const Request& request, Position committed_head) override;

 private:
  std::unique_ptr<Scheduler> inner_;
  FlatSet<RequestId> outstanding_;
  int64_t arrivals_seen_ = 0;
  int64_t requests_served_ = 0;

  TapeId sweep_tape_ = kInvalidTape;
  Position mount_head_ = 0;
  Position last_position_ = -1;
  bool in_reverse_ = false;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_SCHED_VALIDATING_SCHEDULER_H_
