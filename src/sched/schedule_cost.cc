#include "sched/schedule_cost.h"

#include <algorithm>

#include "util/check.h"

namespace tapejuke {

ScheduleCost::ScheduleCost(const TimingModel* model, int64_t block_size_mb)
    : model_(model), block_size_mb_(block_size_mb) {
  TJ_CHECK(model != nullptr);
  TJ_CHECK_GT(block_size_mb, 0);
}

double ScheduleCost::ExecutionSeconds(
    Position start_head, const std::vector<Position>& ordered_positions) const {
  double seconds = 0;
  Position head = start_head;
  for (const Position p : ordered_positions) {
    seconds += model_->LocateAndReadTime(head, p, block_size_mb_);
    head = p + block_size_mb_;
  }
  return seconds;
}

std::vector<Position> ScheduleCost::SweepOrder(Position head,
                                               std::vector<Position> positions) {
  // Candidate builders that read positions off a sorted index (the
  // envelope scheduler's persistent extension lists) pass them already
  // ascending; skip the sort then.
  if (!std::is_sorted(positions.begin(), positions.end())) {
    std::sort(positions.begin(), positions.end());
  }
  positions.erase(std::unique(positions.begin(), positions.end()),
                  positions.end());
  auto split = std::lower_bound(positions.begin(), positions.end(), head);
  std::vector<Position> order(split, positions.end());  // forward, ascending
  // Reverse phase: below-head positions in descending order.
  for (auto it = split; it != positions.begin();) {
    --it;
    order.push_back(*it);
  }
  return order;
}

SweepCostBreakdown ScheduleCost::EstimateVisit(
    TapeId target, TapeId mounted, Position head,
    std::vector<Position> positions) const {
  SweepCostBreakdown cost;
  Position start_head = head;
  if (target != mounted) {
    cost.switch_seconds = (mounted == kInvalidTape)
                              ? model_->SwitchTime()
                              : model_->FullSwitchTime(head);
    start_head = 0;
  }
  const std::vector<Position> order = SweepOrder(start_head,
                                                 std::move(positions));
  cost.execution_seconds = ExecutionSeconds(start_head, order);
  cost.blocks = static_cast<int64_t>(order.size());
  cost.bytes_mb = cost.blocks * block_size_mb_;
  return cost;
}

}  // namespace tapejuke
