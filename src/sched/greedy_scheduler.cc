#include "sched/greedy_scheduler.h"

#include "util/check.h"

namespace tapejuke {

GreedyScheduler::GreedyScheduler(const Jukebox* jukebox,
                                 const Catalog* catalog, TapePolicy policy,
                                 bool dynamic,
                                 const SchedulerOptions& options)
    : Scheduler(jukebox, catalog, options),
      policy_(policy),
      dynamic_(dynamic) {}

std::string GreedyScheduler::name() const {
  return std::string(dynamic_ ? "dynamic " : "static ") +
         TapePolicyName(policy_);
}

void GreedyScheduler::OnArrivalNow(const Request& request,
                                   Position committed_head) {
  if (dynamic_ && !sweep_.empty()) {
    const TapeId mounted = jukebox_->mounted_tape();
    const Replica* replica =
        (mounted == kInvalidTape)
            ? nullptr
            : catalog_->LiveReplicaOn(request.block, mounted);
    if (replica != nullptr &&
        sweep_.InsertRequest(request, replica->position, committed_head,
                             options_.allow_reverse_phase)) {
      return;
    }
  }
  pending_.push_back(request);
}

TapeId GreedyScheduler::MajorReschedule() {
  TJ_CHECK(sweep_.empty());
  FlushArrivals();
  if (pending_.empty()) return BackgroundReschedule();
  const std::vector<TapeCandidate> candidates = BuildCandidates();
  const TapeId tape =
      SelectTape(policy_, candidates, jukebox_->mounted_tape(),
                 jukebox_->head(), jukebox_->num_tapes(), cost_);
  TJ_CHECK_NE(tape, kInvalidTape);
  RecordDecision(/*background=*/false, tape, candidates);
  ExtractAndBuildSweep(tape, /*envelope_limit=*/nullptr);
  TJ_CHECK(!sweep_.empty());
  PiggybackBackground(tape);
  return tape;
}

}  // namespace tapejuke
