#include "sched/envelope_scheduler.h"

#include <algorithm>
#include <map>

#include "util/check.h"

namespace tapejuke {

namespace {

/// Rank of `tape` scanning the jukebox circularly from `origin` (origin
/// itself has rank 0).
int32_t ScanRankFrom(TapeId tape, TapeId origin, int32_t num_tapes) {
  if (origin < 0) origin = 0;
  origin = origin % num_tapes;
  return (tape - origin + num_tapes) % num_tapes;
}

/// One extension-list entry: a replica of a still-unscheduled request.
/// `uid` indexes the stable initially-unscheduled vector; `replica` points
/// into the catalog (so step 4 assigns the real catalog entry instead of
/// fabricating one from the position).
struct Ext {
  Position position;
  size_t uid;
  const Replica* replica;
};

void SortExtList(std::vector<Ext>* list) {
  std::sort(list->begin(), list->end(), [](const Ext& a, const Ext& b) {
    return a.position < b.position ||
           (a.position == b.position && a.uid < b.uid);
  });
}

/// A tape's best extension prefix: its incremental bandwidth and length.
struct TapeScore {
  double bw = -1.0;
  size_t len = 0;
};

/// Step 3 for one tape: walks the extension list once, accumulating the
/// outbound locate+read chain, and returns the prefix with the highest
/// incremental bandwidth. Near-equal bandwidths (see NearlyEqual) keep the
/// shorter prefix, so the result is stable against last-ulp noise.
TapeScore ScorePrefixes(const TimingModel& model, const std::vector<Ext>& list,
                        Position edge, double surcharge, int64_t block_mb) {
  TapeScore best;
  Position cursor = edge;
  double outbound = 0.0;
  int64_t distinct = 0;
  Position prev = -1;
  for (size_t k = 0; k < list.size(); ++k) {
    if (list[k].position != prev) {
      outbound += model.LocateAndReadTime(cursor, list[k].position, block_mb);
      cursor = list[k].position + block_mb;
      ++distinct;
      prev = list[k].position;
    }
    const double total = surcharge + outbound + model.LocateTime(cursor, edge);
    const double bandwidth = static_cast<double>(distinct * block_mb) / total;
    if (best.len == 0 ||
        (bandwidth > best.bw && !NearlyEqual(bandwidth, best.bw))) {
      best.bw = bandwidth;
      best.len = k + 1;
    }
  }
  return best;
}

/// Steps 3-4 tape selection: the tape whose best prefix has the highest
/// incremental bandwidth. Ties (within relative epsilon — exact `==` on
/// accumulated doubles essentially never fires) go to the tape with the
/// most scheduled requests, then jukebox order from the mounted tape.
TapeId SelectBestTape(const std::vector<std::vector<Ext>>& ext,
                      const std::vector<TapeScore>& score,
                      const std::vector<int64_t>& counts, TapeId mounted,
                      int32_t num_tapes) {
  TapeId best = kInvalidTape;
  for (TapeId t = 0; t < num_tapes; ++t) {
    if (ext[static_cast<size_t>(t)].empty()) continue;
    bool better;
    if (best == kInvalidTape) {
      better = true;
    } else if (NearlyEqual(score[static_cast<size_t>(t)].bw,
                           score[static_cast<size_t>(best)].bw)) {
      const int64_t c_t = counts[static_cast<size_t>(t)];
      const int64_t c_b = counts[static_cast<size_t>(best)];
      better = c_t > c_b ||
               (c_t == c_b && ScanRankFrom(t, mounted, num_tapes) <
                                  ScanRankFrom(best, mounted, num_tapes));
    } else {
      better = score[static_cast<size_t>(t)].bw >
               score[static_cast<size_t>(best)].bw;
    }
    if (better) best = t;
  }
  return best;
}

/// Oracle comparison: TJ_CHECK-fails unless the two kernels produced
/// byte-identical upper envelopes, assignments, and per-tape counts.
void CheckEnvelopeResultsEqual(
    const EnvelopeScheduler::EnvelopeResult& incremental,
    const EnvelopeScheduler::EnvelopeResult& reference) {
  TJ_CHECK(incremental.envelope == reference.envelope)
      << "incremental and reference envelopes diverged";
  TJ_CHECK(incremental.scheduled_per_tape == reference.scheduled_per_tape)
      << "incremental and reference per-tape counts diverged";
  TJ_CHECK(incremental.initial_envelope == reference.initial_envelope)
      << "step-2 initial envelopes diverged";
  TJ_CHECK_EQ(incremental.initially_unscheduled.size(),
              reference.initially_unscheduled.size());
  for (size_t i = 0; i < incremental.initially_unscheduled.size(); ++i) {
    TJ_CHECK_EQ(incremental.initially_unscheduled[i].id,
                reference.initially_unscheduled[i].id);
  }
  TJ_CHECK_EQ(incremental.assignment.size(), reference.assignment.size());
  for (const auto& [id, replica] : incremental.assignment) {
    const auto it = reference.assignment.find(id);
    TJ_CHECK(it != reference.assignment.end())
        << "request" << id << "assigned only by the incremental kernel";
    TJ_CHECK(replica == it->second)
        << "request" << id << "assigned to different replicas";
  }
}

}  // namespace

/// Mutable state shared by the two extension kernels: the result being
/// built, the per-tape assigned multimaps consumed by step 5, and the
/// stable post-step-2 unscheduled vector.
struct EnvelopeScheduler::KernelState {
  EnvelopeResult result;
  /// Per-tape assigned requests, keyed by replica position (multimap:
  /// several requests can name the same block).
  std::vector<std::multimap<Position, Request>> assigned;
  /// Requests left unscheduled by step 2, in arrival order. Never
  /// reordered; the kernels track progress through side bitmaps.
  std::vector<Request> unscheduled;
  int64_t shrinks_done = 0;
  int64_t max_shrinks = 0;

  void Assign(const Request& request, const Replica& replica) {
    result.assignment[request.id] = replica;
    ++result.scheduled_per_tape[static_cast<size_t>(replica.tape)];
    assigned[static_cast<size_t>(replica.tape)].emplace(replica.position,
                                                        request);
  }
};

EnvelopeScheduler::EnvelopeScheduler(const Jukebox* jukebox,
                                     const Catalog* catalog,
                                     TapePolicy policy,
                                     const SchedulerOptions& options)
    : Scheduler(jukebox, catalog, options), policy_(policy) {}

std::string EnvelopeScheduler::name() const {
  return std::string(TapePolicyName(policy_)) + " envelope";
}

const Replica* EnvelopeScheduler::ChooseInsideReplica(
    const std::vector<const Replica*>& inside,
    const std::vector<int64_t>& scheduled_per_tape, TapeId mounted) const {
  TJ_CHECK(!inside.empty());
  if (!options_.paper_replica_tiebreak) {
    // Ablation: lowest tape id, ignoring drive state and schedule sizes.
    return *std::min_element(inside.begin(), inside.end(),
                             [](const Replica* a, const Replica* b) {
                               return a->tape < b->tape;
                             });
  }
  const int32_t num_tapes = jukebox_->num_tapes();
  const Replica* best = nullptr;
  for (const Replica* replica : inside) {
    if (replica->tape == mounted) return replica;  // paper: mounted first
    if (best == nullptr) {
      best = replica;
      continue;
    }
    const int64_t count = scheduled_per_tape[static_cast<size_t>(
        replica->tape)];
    const int64_t best_count =
        scheduled_per_tape[static_cast<size_t>(best->tape)];
    if (count > best_count) {
      best = replica;
    } else if (count == best_count &&
               ScanRankFrom(replica->tape, mounted + 1, num_tapes) <
                   ScanRankFrom(best->tape, mounted + 1, num_tapes)) {
      best = replica;
    }
  }
  return best;
}

bool EnvelopeScheduler::TryAbsorb(const Request& request, KernelState* state,
                                  EnvelopeCounters* counters) const {
  const int64_t block_mb = jukebox_->config().block_size_mb;
  const auto& env = state->result.envelope;
  std::vector<const Replica*> inside;
  for (const Replica& replica : catalog_->ReplicasOf(request.block)) {
    if (!catalog_->IsAlive(replica)) continue;
    if (replica.position + block_mb <=
        env[static_cast<size_t>(replica.tape)]) {
      inside.push_back(&replica);
    }
  }
  if (inside.empty()) return false;
  if (inside.size() > 1) ++counters->multi_replica_choices;
  state->Assign(request,
                *ChooseInsideReplica(inside, state->result.scheduled_per_tape,
                                     jukebox_->mounted_tape()));
  return true;
}

void EnvelopeScheduler::BuildInitialEnvelope(
    const std::vector<Request>& requests, KernelState* state,
    EnvelopeCounters* counters) const {
  const int32_t num_tapes = jukebox_->num_tapes();
  const int64_t block_mb = jukebox_->config().block_size_mb;
  const TapeId mounted = jukebox_->mounted_tape();

  state->result.envelope.assign(static_cast<size_t>(num_tapes), 0);
  state->result.scheduled_per_tape.assign(static_cast<size_t>(num_tapes), 0);
  state->assigned.resize(static_cast<size_t>(num_tapes));
  state->max_shrinks =
      static_cast<int64_t>(requests.size()) * num_tapes + 16;
  auto& env = state->result.envelope;

  // Step 1: the highest non-replicated request on each tape pins the
  // initial envelope; the mounted tape's envelope covers the head. A block
  // with exactly one *live* replica counts as non-replicated (dead copies
  // cannot serve it).
  for (const Request& request : requests) {
    const Replica* sole_live = nullptr;
    bool multiple_live = false;
    for (const Replica& replica : catalog_->ReplicasOf(request.block)) {
      if (!catalog_->IsAlive(replica)) continue;
      if (sole_live != nullptr) {
        multiple_live = true;
        break;
      }
      sole_live = &replica;
    }
    if (sole_live != nullptr && !multiple_live) {
      Position& edge = env[static_cast<size_t>(sole_live->tape)];
      edge = std::max(edge, sole_live->position + block_mb);
    }
  }
  if (mounted != kInvalidTape) {
    env[static_cast<size_t>(mounted)] =
        std::max(env[static_cast<size_t>(mounted)], jukebox_->head());
  }

  // Step 2: absorb every request with a replica inside the envelope.
  for (const Request& request : requests) {
    if (!TryAbsorb(request, state, counters)) {
      state->unscheduled.push_back(request);
    }
  }
  state->result.initial_envelope = env;
  state->result.initially_unscheduled = state->unscheduled;
}

void EnvelopeScheduler::RunShrinkLoop(KernelState* state,
                                      EnvelopeCounters* counters,
                                      std::vector<bool>* dirty) const {
  const int32_t num_tapes = jukebox_->num_tapes();
  const int64_t block_mb = jukebox_->config().block_size_mb;
  const TapeId mounted = jukebox_->mounted_tape();
  const Position head = jukebox_->head();
  auto& env = state->result.envelope;
  auto& counts = state->result.scheduled_per_tape;

  // Step 5: shrink. A replicated block scheduled at the outer edge of
  // some tape's envelope that also has a replica inside another tape's
  // envelope is moved there, and the donor envelope retreats to its
  // preceding scheduled request.
  while (options_.envelope_shrink &&
         state->shrinks_done < state->max_shrinks) {
    // Collect shrinkable tapes: edge request has an in-envelope replica
    // elsewhere.
    TapeId shrink_tape = kInvalidTape;
    for (TapeId a = 0; a < num_tapes; ++a) {
      const auto& on_a = state->assigned[static_cast<size_t>(a)];
      if (on_a.empty()) continue;
      const auto& [edge_pos, edge_req] = *on_a.rbegin();
      if (edge_pos + block_mb != env[static_cast<size_t>(a)]) continue;
      bool movable = false;
      for (const Replica& replica : catalog_->ReplicasOf(edge_req.block)) {
        if (!catalog_->IsAlive(replica)) continue;
        if (replica.tape != a &&
            replica.position + block_mb <=
                env[static_cast<size_t>(replica.tape)]) {
          movable = true;
          break;
        }
      }
      if (!movable) continue;
      if (shrink_tape == kInvalidTape ||
          counts[static_cast<size_t>(a)] <
              counts[static_cast<size_t>(shrink_tape)] ||
          (counts[static_cast<size_t>(a)] ==
               counts[static_cast<size_t>(shrink_tape)] &&
           a < shrink_tape)) {
        shrink_tape = a;
      }
    }
    if (shrink_tape == kInvalidTape) break;
    ++state->shrinks_done;
    ++counters->shrink_moves;

    auto& on_a = state->assigned[static_cast<size_t>(shrink_tape)];
    auto edge_it = std::prev(on_a.end());
    const Request moved = edge_it->second;
    std::vector<const Replica*> inside;
    for (const Replica& replica : catalog_->ReplicasOf(moved.block)) {
      if (!catalog_->IsAlive(replica)) continue;
      if (replica.tape != shrink_tape &&
          replica.position + block_mb <=
              env[static_cast<size_t>(replica.tape)]) {
        inside.push_back(&replica);
      }
    }
    TJ_CHECK(!inside.empty());
    on_a.erase(edge_it);
    --counts[static_cast<size_t>(shrink_tape)];
    const Replica* target = ChooseInsideReplica(inside, counts, mounted);
    state->Assign(moved, *target);
    // Retreat the donor envelope to its preceding scheduled request (or
    // the head / beginning of tape).
    Position base = (shrink_tape == mounted) ? head : 0;
    if (!on_a.empty()) {
      base = std::max(base, on_a.rbegin()->first + block_mb);
    }
    env[static_cast<size_t>(shrink_tape)] = base;
    if (dirty != nullptr) (*dirty)[static_cast<size_t>(shrink_tape)] = true;
  }
}

EnvelopeScheduler::EnvelopeResult EnvelopeScheduler::RunIncrementalKernel(
    const std::vector<Request>& requests, EnvelopeCounters* counters) const {
  const int32_t num_tapes = jukebox_->num_tapes();
  const int64_t block_mb = jukebox_->config().block_size_mb;
  const TapeId mounted = jukebox_->mounted_tape();
  const TimingModel& model = jukebox_->model();

  KernelState state;
  BuildInitialEnvelope(requests, &state, counters);
  auto& env = state.result.envelope;
  auto& counts = state.result.scheduled_per_tape;
  const std::vector<Request>& unscheduled = state.unscheduled;
  const size_t n = unscheduled.size();
  if (n == 0) return std::move(state.result);

  // Steps 3-6, incremental form. The per-tape extension lists are built
  // and sorted once; scheduled entries are lazily dropped, and a tape's
  // prefix scan is re-run only when its envelope edge moved or its list
  // lost entries (`dirty`).
  std::vector<std::vector<Ext>> ext(static_cast<size_t>(num_tapes));
  for (size_t i = 0; i < n; ++i) {
    for (const Replica& replica :
         catalog_->ReplicasOf(unscheduled[i].block)) {
      if (!catalog_->IsAlive(replica)) continue;
      TJ_DCHECK(replica.position >= env[static_cast<size_t>(replica.tape)]);
      ext[static_cast<size_t>(replica.tape)].push_back(
          Ext{replica.position, i, &replica});
    }
  }
  for (auto& list : ext) SortExtList(&list);

  std::vector<TapeScore> score(static_cast<size_t>(num_tapes));
  std::vector<bool> dirty(static_cast<size_t>(num_tapes), true);
  std::vector<bool> done(n, false);
  size_t remaining = n;

  // Schedules unscheduled[uid] on `replica` and invalidates the cached
  // score of every tape whose extension list held an entry for it.
  auto schedule = [&](size_t uid, const Replica& replica) {
    TJ_CHECK(!done[uid]);
    done[uid] = true;
    --remaining;
    state.Assign(unscheduled[uid], replica);
    for (const Replica& r : catalog_->ReplicasOf(unscheduled[uid].block)) {
      dirty[static_cast<size_t>(r.tape)] = true;
    }
  };

  while (remaining > 0) {
    // Step 3 (cached): compact and re-score only the dirty tapes.
    for (TapeId t = 0; t < num_tapes; ++t) {
      if (!dirty[static_cast<size_t>(t)]) continue;
      dirty[static_cast<size_t>(t)] = false;
      auto& list = ext[static_cast<size_t>(t)];
      list.erase(std::remove_if(list.begin(), list.end(),
                                [&](const Ext& e) { return done[e.uid]; }),
                 list.end());
      if (list.empty()) continue;
      const double surcharge =
          (env[static_cast<size_t>(t)] == 0 && t != mounted)
              ? model.SwitchTime()
              : 0.0;
      score[static_cast<size_t>(t)] = ScorePrefixes(
          model, list, env[static_cast<size_t>(t)], surcharge, block_mb);
      ++counters->tapes_rescored;
    }

    if (options_.validate_envelope) {
      // Round oracle: the maintained lists and cached scores must match a
      // from-scratch rebuild against the current envelope.
      for (TapeId t = 0; t < num_tapes; ++t) {
        std::vector<Ext> fresh;
        for (size_t i = 0; i < n; ++i) {
          if (done[i]) continue;
          for (const Replica& replica :
               catalog_->ReplicasOf(unscheduled[i].block)) {
            if (replica.tape != t || !catalog_->IsAlive(replica)) continue;
            fresh.push_back(Ext{replica.position, i, &replica});
          }
        }
        SortExtList(&fresh);
        const auto& list = ext[static_cast<size_t>(t)];
        TJ_CHECK_EQ(fresh.size(), list.size())
            << "stale extension list on tape" << t;
        for (size_t k = 0; k < fresh.size(); ++k) {
          TJ_CHECK_EQ(fresh[k].position, list[k].position);
          TJ_CHECK_EQ(fresh[k].uid, list[k].uid);
          TJ_CHECK(fresh[k].replica == list[k].replica);
        }
        if (list.empty()) continue;
        const double surcharge =
            (env[static_cast<size_t>(t)] == 0 && t != mounted)
                ? model.SwitchTime()
                : 0.0;
        const TapeScore fresh_score = ScorePrefixes(
            model, fresh, env[static_cast<size_t>(t)], surcharge, block_mb);
        TJ_CHECK_EQ(fresh_score.bw, score[static_cast<size_t>(t)].bw)
            << "stale cached score on tape" << t;
        TJ_CHECK_EQ(fresh_score.len, score[static_cast<size_t>(t)].len);
      }
    }

    const TapeId best_tape =
        SelectBestTape(ext, score, counts, mounted, num_tapes);
    TJ_CHECK_NE(best_tape, kInvalidTape)
        << "unscheduled request without replicas";
    ++counters->extension_rounds;

    // Step 4: extend the envelope over the winning prefix.
    const auto& winner = ext[static_cast<size_t>(best_tape)];
    const size_t best_len = score[static_cast<size_t>(best_tape)].len;
    const Position new_edge = winner[best_len - 1].position + block_mb;
    env[static_cast<size_t>(best_tape)] = new_edge;
    dirty[static_cast<size_t>(best_tape)] = true;  // edge moved
    for (size_t k = 0; k < best_len; ++k) {
      const Replica& replica = *winner[k].replica;
      TJ_DCHECK(replica ==
                *catalog_->ReplicaOn(unscheduled[winner[k].uid].block,
                                     best_tape))
          << "extension entry does not match the catalog replica";
      schedule(winner[k].uid, replica);
    }
    // Absorb any request whose replica the extension just enclosed (e.g. a
    // second request for a block at the new envelope edge). Only the
    // extended tape's envelope grew, so candidates are exactly the pending
    // entries of its list inside the new edge; absorb in arrival order.
    std::vector<size_t> enclosed;
    for (size_t k = best_len; k < winner.size(); ++k) {
      if (!done[winner[k].uid] &&
          winner[k].position + block_mb <= new_edge) {
        enclosed.push_back(winner[k].uid);
      }
    }
    std::sort(enclosed.begin(), enclosed.end());
    for (const size_t uid : enclosed) {
      const size_t before = state.result.assignment.size();
      TJ_CHECK(TryAbsorb(unscheduled[uid], &state, counters));
      TJ_CHECK_EQ(before + 1, state.result.assignment.size());
      done[uid] = true;
      --remaining;
      for (const Replica& r :
           catalog_->ReplicasOf(unscheduled[uid].block)) {
        dirty[static_cast<size_t>(r.tape)] = true;
      }
    }

    RunShrinkLoop(&state, counters, &dirty);
  }
  return std::move(state.result);
}

EnvelopeScheduler::EnvelopeResult EnvelopeScheduler::RunReferenceKernel(
    const std::vector<Request>& requests, EnvelopeCounters* counters) const {
  const int32_t num_tapes = jukebox_->num_tapes();
  const int64_t block_mb = jukebox_->config().block_size_mb;
  const TapeId mounted = jukebox_->mounted_tape();
  const TimingModel& model = jukebox_->model();

  KernelState state;
  BuildInitialEnvelope(requests, &state, counters);
  auto& env = state.result.envelope;
  auto& counts = state.result.scheduled_per_tape;
  const std::vector<Request>& unscheduled = state.unscheduled;
  const size_t n = unscheduled.size();

  std::vector<bool> done(n, false);
  size_t remaining = n;

  // Steps 3-6, from-scratch form: every round re-enumerates, re-sorts,
  // and fully re-scores the per-tape extension lists.
  while (remaining > 0) {
    std::vector<std::vector<Ext>> ext(static_cast<size_t>(num_tapes));
    for (size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      for (const Replica& replica :
           catalog_->ReplicasOf(unscheduled[i].block)) {
        if (!catalog_->IsAlive(replica)) continue;
        TJ_DCHECK(replica.position >=
                  env[static_cast<size_t>(replica.tape)]);
        ext[static_cast<size_t>(replica.tape)].push_back(
            Ext{replica.position, i, &replica});
      }
    }
    std::vector<TapeScore> score(static_cast<size_t>(num_tapes));
    for (TapeId t = 0; t < num_tapes; ++t) {
      auto& list = ext[static_cast<size_t>(t)];
      if (list.empty()) continue;
      SortExtList(&list);
      const double surcharge =
          (env[static_cast<size_t>(t)] == 0 && t != mounted)
              ? model.SwitchTime()
              : 0.0;
      score[static_cast<size_t>(t)] = ScorePrefixes(
          model, list, env[static_cast<size_t>(t)], surcharge, block_mb);
    }
    const TapeId best_tape =
        SelectBestTape(ext, score, counts, mounted, num_tapes);
    TJ_CHECK_NE(best_tape, kInvalidTape)
        << "unscheduled request without replicas";
    ++counters->extension_rounds;

    // Step 4: extend the envelope over the winning prefix.
    const auto& winner = ext[static_cast<size_t>(best_tape)];
    const size_t best_len = score[static_cast<size_t>(best_tape)].len;
    env[static_cast<size_t>(best_tape)] =
        winner[best_len - 1].position + block_mb;
    for (size_t k = 0; k < best_len; ++k) {
      TJ_CHECK(!done[winner[k].uid]);
      done[winner[k].uid] = true;
      --remaining;
      state.Assign(unscheduled[winner[k].uid], *winner[k].replica);
    }
    // Absorb any request whose replica the extension just enclosed.
    for (size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      if (TryAbsorb(unscheduled[i], &state, counters)) {
        done[i] = true;
        --remaining;
      }
    }

    RunShrinkLoop(&state, counters, nullptr);
  }
  return std::move(state.result);
}

EnvelopeScheduler::EnvelopeResult EnvelopeScheduler::ComputeUpperEnvelope(
    const std::vector<Request>& requests) const {
  return RunIncrementalKernel(requests, &counters_);
}

EnvelopeScheduler::EnvelopeResult
EnvelopeScheduler::ComputeUpperEnvelopeReference(
    const std::vector<Request>& requests) const {
  EnvelopeCounters scratch;
  return RunReferenceKernel(requests, &scratch);
}

void EnvelopeScheduler::CrossCheckEnvelope(
    const std::vector<Request>& requests) const {
  EnvelopeCounters incremental_counters;
  EnvelopeCounters reference_counters;
  const EnvelopeResult incremental =
      RunIncrementalKernel(requests, &incremental_counters);
  const EnvelopeResult reference =
      RunReferenceKernel(requests, &reference_counters);
  CheckEnvelopeResultsEqual(incremental, reference);
  TJ_CHECK_EQ(incremental_counters.extension_rounds,
              reference_counters.extension_rounds)
      << "kernels took different numbers of extension rounds";
}

TapeId EnvelopeScheduler::MajorReschedule() {
  TJ_CHECK(sweep_.empty());
  if (pending_.empty()) {
    // No client work: the envelope does not apply to background-only
    // sweeps, so fall back to the shared background rescheduler.
    envelope_valid_ = false;
    return BackgroundReschedule();
  }
  const int64_t block_mb = jukebox_->config().block_size_mb;
  const std::vector<Request> requests(pending_.begin(), pending_.end());
  ++counters_.major_reschedules;
  const int64_t rounds_before = counters_.extension_rounds;
  const int64_t rescored_before = counters_.tapes_rescored;
  EnvelopeResult result = ComputeUpperEnvelope(requests);
  if (options_.validate_envelope) {
    EnvelopeCounters scratch;
    CheckEnvelopeResultsEqual(result, RunReferenceKernel(requests, &scratch));
  }

  // Tape choice: apply the policy to the set of requests each tape can
  // satisfy within the upper envelope (a superset of the per-tape
  // assignment built above).
  std::vector<TapeCandidate> candidates(
      static_cast<size_t>(jukebox_->num_tapes()));
  for (TapeId t = 0; t < jukebox_->num_tapes(); ++t) {
    candidates[static_cast<size_t>(t)].tape = t;
  }
  const RequestId oldest = pending_.front().id;
  for (const Request& request : requests) {
    for (const Replica& replica : catalog_->ReplicasOf(request.block)) {
      if (!catalog_->IsAlive(replica)) continue;
      if (replica.position + block_mb <=
          result.envelope[static_cast<size_t>(replica.tape)]) {
        TapeCandidate& c = candidates[static_cast<size_t>(replica.tape)];
        ++c.num_requests;
        c.positions.push_back(replica.position);
        if (request.id == oldest) c.serves_oldest = true;
      }
    }
  }
  const TapeId tape =
      SelectTape(policy_, candidates, jukebox_->mounted_tape(),
                 jukebox_->head(), jukebox_->num_tapes(), cost_);
  TJ_CHECK_NE(tape, kInvalidTape);
  RecordDecision(/*background=*/false, tape, candidates,
                 counters_.extension_rounds - rounds_before,
                 counters_.tapes_rescored - rescored_before);
  const Position limit = result.envelope[static_cast<size_t>(tape)];
  ExtractAndBuildSweep(tape, &limit);
  TJ_CHECK(!sweep_.empty());
  // Background riders may lie beyond the envelope edge: the mount is paid
  // for anyway, and client insertions never depend on riders (the sweep
  // edge check in ShrinkActiveSweep compares against the envelope, which
  // riders by definition exceed, so shrinking simply stops there).
  PiggybackBackground(tape);
  envelope_ = std::move(result.envelope);
  envelope_valid_ = true;
  return tape;
}

std::vector<Request> EnvelopeScheduler::DrainSweep() {
  envelope_valid_ = false;
  return Scheduler::DrainSweep();
}

void EnvelopeScheduler::DeferInOrder(const Request& request) {
  // A trimmed block's riders go back to the background queue, not the
  // client pending list (they must never pin a client envelope).
  std::deque<Request>& queue =
      request.cls == RequestClass::kBackground ? background_ : pending_;
  auto it = std::lower_bound(
      queue.begin(), queue.end(), request.id,
      [](const Request& r, RequestId id) { return r.id < id; });
  queue.insert(it, request);
}

void EnvelopeScheduler::ShrinkActiveSweep(TapeId extended_tape,
                                          Position committed_head) {
  const TapeId mounted = jukebox_->mounted_tape();
  if (mounted == kInvalidTape || mounted == extended_tape) return;
  const int64_t block_mb = jukebox_->config().block_size_mb;
  while (!sweep_.empty()) {
    // The sweep's outermost block: end of the forward phase or start of the
    // reverse phase, whichever is farther out.
    Position edge_pos = -1;
    BlockId edge_block = kInvalidBlock;
    if (!sweep_.forward().empty()) {
      edge_pos = sweep_.forward().back().position;
      edge_block = sweep_.forward().back().block;
    }
    if (!sweep_.reverse().empty() &&
        sweep_.reverse().front().position > edge_pos) {
      edge_pos = sweep_.reverse().front().position;
      edge_block = sweep_.reverse().front().block;
    }
    // Shrinking only applies when the envelope edge is a scheduled block.
    if (edge_pos + block_mb !=
        envelope_[static_cast<size_t>(mounted)]) {
      return;
    }
    const Replica* replica =
        catalog_->LiveReplicaOn(edge_block, extended_tape);
    if (replica == nullptr ||
        replica->position + block_mb >
            envelope_[static_cast<size_t>(extended_tape)]) {
      return;
    }
    // Move the edge block's requests off the active sweep; they will be
    // rescheduled (normally on `extended_tape`) at the next reschedule.
    std::optional<ServiceEntry> removed = sweep_.RemoveBlock(edge_block);
    TJ_CHECK(removed.has_value());
    ++counters_.sweep_trims;
    for (const Request& request : removed->requests) DeferInOrder(request);
    Position new_edge = std::max<Position>(committed_head, 0);
    if (!sweep_.forward().empty()) {
      new_edge = std::max(new_edge,
                          sweep_.forward().back().position + block_mb);
    }
    if (!sweep_.reverse().empty()) {
      new_edge = std::max(new_edge,
                          sweep_.reverse().front().position + block_mb);
    }
    envelope_[static_cast<size_t>(mounted)] = new_edge;
  }
}

void EnvelopeScheduler::OnArrival(const Request& request,
                                  Position committed_head) {
  const TapeId mounted = jukebox_->mounted_tape();
  if (!envelope_valid_ || sweep_.empty() || mounted == kInvalidTape) {
    pending_.push_back(request);
    return;
  }
  const int64_t block_mb = jukebox_->config().block_size_mb;
  const TimingModel& model = jukebox_->model();

  // (a) Satisfiable by the mounted tape within the upper envelope: insert
  // into the running sweep like the dynamic incremental scheduler.
  const Replica* on_mounted = catalog_->LiveReplicaOn(request.block, mounted);
  if (on_mounted != nullptr &&
      on_mounted->position + block_mb <=
          envelope_[static_cast<size_t>(mounted)] &&
      sweep_.InsertRequest(request, on_mounted->position, committed_head,
                           options_.allow_reverse_phase)) {
    ++counters_.incremental_inserts;
    return;
  }

  // (b) A replica inside some tape's envelope: no extension needed; the
  // request waits for that tape's next visit.
  for (const Replica& replica : catalog_->ReplicasOf(request.block)) {
    if (!catalog_->IsAlive(replica)) continue;
    if (replica.position + block_mb <=
        envelope_[static_cast<size_t>(replica.tape)]) {
      pending_.push_back(request);
      return;
    }
  }

  // (c) Outside the envelope everywhere: apply the extension step (3-5) to
  // this one request — pick the replica with the cheapest incremental cost.
  const Replica* best = nullptr;
  double best_cost = 0;
  for (const Replica& replica : catalog_->ReplicasOf(request.block)) {
    if (!catalog_->IsAlive(replica)) continue;
    const Position edge = envelope_[static_cast<size_t>(replica.tape)];
    const double surcharge =
        (edge == 0 && replica.tape != mounted) ? model.SwitchTime() : 0.0;
    const double cost =
        surcharge + model.LocateAndReadTime(edge, replica.position, block_mb) +
        model.LocateTime(replica.position + block_mb, edge);
    if (best == nullptr || cost < best_cost) {
      best = &replica;
      best_cost = cost;
    }
  }
  TJ_CHECK(best != nullptr);

  if (best->tape == mounted) {
    if (sweep_.InsertRequest(request, best->position, committed_head,
                             options_.allow_reverse_phase)) {
      ++counters_.incremental_inserts;
      ++counters_.incremental_extensions;
      envelope_[static_cast<size_t>(mounted)] =
          std::max(envelope_[static_cast<size_t>(mounted)],
                   best->position + block_mb);
      return;
    }
    pending_.push_back(request);
    return;
  }
  // Extend the envelope on the winning tape; this can make the mounted
  // tape's outermost scheduled block redundant (step 5), trimming the
  // active sweep.
  ++counters_.incremental_extensions;
  envelope_[static_cast<size_t>(best->tape)] =
      std::max(envelope_[static_cast<size_t>(best->tape)],
               best->position + block_mb);
  if (options_.envelope_shrink) {
    ShrinkActiveSweep(best->tape, committed_head);
  }
  pending_.push_back(request);
}

}  // namespace tapejuke
