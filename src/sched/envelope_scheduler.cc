#include "sched/envelope_scheduler.h"

#include <algorithm>
#include <map>

#include "util/check.h"

namespace tapejuke {

namespace {

/// Rank of `tape` scanning the jukebox circularly from `origin` (origin
/// itself has rank 0).
int32_t ScanRankFrom(TapeId tape, TapeId origin, int32_t num_tapes) {
  if (origin < 0) origin = 0;
  origin = origin % num_tapes;
  return (tape - origin + num_tapes) % num_tapes;
}

}  // namespace

EnvelopeScheduler::EnvelopeScheduler(const Jukebox* jukebox,
                                     const Catalog* catalog,
                                     TapePolicy policy,
                                     const SchedulerOptions& options)
    : Scheduler(jukebox, catalog, options), policy_(policy) {}

std::string EnvelopeScheduler::name() const {
  return std::string(TapePolicyName(policy_)) + " envelope";
}

const Replica* EnvelopeScheduler::ChooseInsideReplica(
    const std::vector<const Replica*>& inside,
    const std::vector<int64_t>& scheduled_per_tape, TapeId mounted) const {
  TJ_CHECK(!inside.empty());
  if (!options_.paper_replica_tiebreak) {
    // Ablation: lowest tape id, ignoring drive state and schedule sizes.
    return *std::min_element(inside.begin(), inside.end(),
                             [](const Replica* a, const Replica* b) {
                               return a->tape < b->tape;
                             });
  }
  const int32_t num_tapes = jukebox_->num_tapes();
  const Replica* best = nullptr;
  for (const Replica* replica : inside) {
    if (replica->tape == mounted) return replica;  // paper: mounted first
    if (best == nullptr) {
      best = replica;
      continue;
    }
    const int64_t count = scheduled_per_tape[static_cast<size_t>(
        replica->tape)];
    const int64_t best_count =
        scheduled_per_tape[static_cast<size_t>(best->tape)];
    if (count > best_count) {
      best = replica;
    } else if (count == best_count &&
               ScanRankFrom(replica->tape, mounted + 1, num_tapes) <
                   ScanRankFrom(best->tape, mounted + 1, num_tapes)) {
      best = replica;
    }
  }
  return best;
}

EnvelopeScheduler::EnvelopeResult EnvelopeScheduler::ComputeUpperEnvelope(
    const std::vector<Request>& requests) const {
  const int32_t num_tapes = jukebox_->num_tapes();
  const int64_t block_mb = jukebox_->config().block_size_mb;
  const TapeId mounted = jukebox_->mounted_tape();
  const Position head = jukebox_->head();
  const TimingModel& model = jukebox_->model();

  EnvelopeResult result;
  result.envelope.assign(static_cast<size_t>(num_tapes), 0);
  result.scheduled_per_tape.assign(static_cast<size_t>(num_tapes), 0);
  auto& env = result.envelope;
  auto& counts = result.scheduled_per_tape;
  // Per-tape assigned requests, keyed by replica position (multimap:
  // several requests can name the same block).
  std::vector<std::multimap<Position, Request>> assigned(
      static_cast<size_t>(num_tapes));

  auto assign = [&](const Request& request, const Replica& replica) {
    result.assignment[request.id] = replica;
    ++counts[static_cast<size_t>(replica.tape)];
    assigned[static_cast<size_t>(replica.tape)].emplace(replica.position,
                                                        request);
  };

  // Step 1: the highest non-replicated request on each tape pins the
  // initial envelope; the mounted tape's envelope covers the head.
  for (const Request& request : requests) {
    const auto& replicas = catalog_->ReplicasOf(request.block);
    if (replicas.size() == 1) {
      Position& edge = env[static_cast<size_t>(replicas.front().tape)];
      edge = std::max(edge, replicas.front().position + block_mb);
    }
  }
  if (mounted != kInvalidTape) {
    env[static_cast<size_t>(mounted)] =
        std::max(env[static_cast<size_t>(mounted)], head);
  }

  // Step 2: absorb every request with a replica inside the envelope.
  std::vector<Request> unscheduled;
  auto absorb_or_keep = [&](const Request& request) {
    std::vector<const Replica*> inside;
    for (const Replica& replica : catalog_->ReplicasOf(request.block)) {
      if (replica.position + block_mb <=
          env[static_cast<size_t>(replica.tape)]) {
        inside.push_back(&replica);
      }
    }
    if (inside.empty()) {
      unscheduled.push_back(request);
      return;
    }
    if (inside.size() > 1) ++counters_.multi_replica_choices;
    assign(request, *ChooseInsideReplica(inside, counts, mounted));
  };
  for (const Request& request : requests) absorb_or_keep(request);

  result.initial_envelope = env;
  result.initially_unscheduled = unscheduled;

  // Steps 3-6: extend the envelope until every request is scheduled.
  const int64_t max_shrinks =
      static_cast<int64_t>(requests.size()) * num_tapes + 16;
  int64_t shrinks_done = 0;
  while (!unscheduled.empty()) {
    // Step 3: per-tape extension lists (unscheduled requests sorted by the
    // position of their replica on that tape) and incremental bandwidths of
    // every prefix.
    struct Ext {
      Position position;
      size_t index;  // into `unscheduled`
    };
    std::vector<std::vector<Ext>> ext(static_cast<size_t>(num_tapes));
    for (size_t i = 0; i < unscheduled.size(); ++i) {
      for (const Replica& replica :
           catalog_->ReplicasOf(unscheduled[i].block)) {
        TJ_DCHECK(replica.position >=
                  env[static_cast<size_t>(replica.tape)]);
        ext[static_cast<size_t>(replica.tape)].push_back(
            Ext{replica.position, i});
      }
    }
    for (auto& list : ext) {
      std::sort(list.begin(), list.end(),
                [](const Ext& a, const Ext& b) {
                  return a.position < b.position ||
                         (a.position == b.position && a.index < b.index);
                });
    }

    TapeId best_tape = kInvalidTape;
    size_t best_len = 0;
    double best_bw = -1.0;
    for (TapeId t = 0; t < num_tapes; ++t) {
      const auto& list = ext[static_cast<size_t>(t)];
      if (list.empty()) continue;
      // Previously untouched tapes pay the eject + robot + load surcharge.
      const double surcharge =
          (env[static_cast<size_t>(t)] == 0 && t != mounted)
              ? model.SwitchTime()
              : 0.0;
      const Position edge = env[static_cast<size_t>(t)];
      Position cursor = edge;
      double outbound = 0.0;
      int64_t distinct = 0;
      Position prev = -1;
      for (size_t k = 0; k < list.size(); ++k) {
        if (list[k].position != prev) {
          outbound +=
              model.LocateAndReadTime(cursor, list[k].position, block_mb);
          cursor = list[k].position + block_mb;
          ++distinct;
          prev = list[k].position;
        }
        const double total =
            surcharge + outbound + model.LocateTime(cursor, edge);
        const double bandwidth =
            static_cast<double>(distinct * block_mb) / total;
        bool better = bandwidth > best_bw;
        if (!better && bandwidth == best_bw && best_tape != kInvalidTape) {
          // Ties: most scheduled requests inside the envelope, then
          // jukebox order.
          const int64_t c_t = counts[static_cast<size_t>(t)];
          const int64_t c_b = counts[static_cast<size_t>(best_tape)];
          better = c_t > c_b ||
                   (c_t == c_b &&
                    ScanRankFrom(t, mounted, num_tapes) <
                        ScanRankFrom(best_tape, mounted, num_tapes));
        }
        if (better) {
          best_bw = bandwidth;
          best_tape = t;
          best_len = k + 1;
        }
      }
    }
    TJ_CHECK_NE(best_tape, kInvalidTape)
        << "unscheduled request without replicas";
    ++counters_.extension_rounds;

    // Step 4: extend the envelope over the winning prefix.
    const auto& winner = ext[static_cast<size_t>(best_tape)];
    env[static_cast<size_t>(best_tape)] =
        winner[best_len - 1].position + block_mb;
    std::vector<bool> scheduled(unscheduled.size(), false);
    for (size_t k = 0; k < best_len; ++k) {
      const size_t idx = winner[k].index;
      TJ_CHECK(!scheduled[idx]);
      scheduled[idx] = true;
      assign(unscheduled[idx],
             Replica{best_tape, winner[k].position / block_mb,
                     winner[k].position});
    }
    std::vector<Request> remaining;
    remaining.reserve(unscheduled.size() - best_len);
    for (size_t i = 0; i < unscheduled.size(); ++i) {
      if (!scheduled[i]) remaining.push_back(unscheduled[i]);
    }
    unscheduled = std::move(remaining);
    // Absorb any request whose replica the extension just enclosed (e.g. a
    // second request for a block at the new envelope edge).
    std::vector<Request> still_unscheduled;
    std::swap(still_unscheduled, unscheduled);
    for (const Request& request : still_unscheduled) absorb_or_keep(request);

    // Step 5: shrink. A replicated block scheduled at the outer edge of
    // some tape's envelope that also has a replica inside another tape's
    // envelope is moved there, and the donor envelope retreats to its
    // preceding scheduled request.
    while (options_.envelope_shrink && shrinks_done < max_shrinks) {
      // Collect shrinkable tapes: edge request has an in-envelope replica
      // elsewhere.
      TapeId shrink_tape = kInvalidTape;
      for (TapeId a = 0; a < num_tapes; ++a) {
        const auto& on_a = assigned[static_cast<size_t>(a)];
        if (on_a.empty()) continue;
        const auto& [edge_pos, edge_req] = *on_a.rbegin();
        if (edge_pos + block_mb != env[static_cast<size_t>(a)]) continue;
        bool movable = false;
        for (const Replica& replica :
             catalog_->ReplicasOf(edge_req.block)) {
          if (replica.tape != a &&
              replica.position + block_mb <=
                  env[static_cast<size_t>(replica.tape)]) {
            movable = true;
            break;
          }
        }
        if (!movable) continue;
        if (shrink_tape == kInvalidTape ||
            counts[static_cast<size_t>(a)] <
                counts[static_cast<size_t>(shrink_tape)] ||
            (counts[static_cast<size_t>(a)] ==
                 counts[static_cast<size_t>(shrink_tape)] &&
             a < shrink_tape)) {
          shrink_tape = a;
        }
      }
      if (shrink_tape == kInvalidTape) break;
      ++shrinks_done;
      ++counters_.shrink_moves;

      auto& on_a = assigned[static_cast<size_t>(shrink_tape)];
      auto edge_it = std::prev(on_a.end());
      const Request moved = edge_it->second;
      std::vector<const Replica*> inside;
      for (const Replica& replica : catalog_->ReplicasOf(moved.block)) {
        if (replica.tape != shrink_tape &&
            replica.position + block_mb <=
                env[static_cast<size_t>(replica.tape)]) {
          inside.push_back(&replica);
        }
      }
      TJ_CHECK(!inside.empty());
      on_a.erase(edge_it);
      --counts[static_cast<size_t>(shrink_tape)];
      const Replica* target = ChooseInsideReplica(inside, counts, mounted);
      assign(moved, *target);
      // Retreat the donor envelope to its preceding scheduled request (or
      // the head / beginning of tape).
      Position base = (shrink_tape == mounted) ? head : 0;
      if (!on_a.empty()) {
        base = std::max(base, on_a.rbegin()->first + block_mb);
      }
      env[static_cast<size_t>(shrink_tape)] = base;
    }
  }
  return result;
}

TapeId EnvelopeScheduler::MajorReschedule() {
  TJ_CHECK(sweep_.empty());
  if (pending_.empty()) {
    envelope_valid_ = false;
    return kInvalidTape;
  }
  const int64_t block_mb = jukebox_->config().block_size_mb;
  const std::vector<Request> requests(pending_.begin(), pending_.end());
  ++counters_.major_reschedules;
  EnvelopeResult result = ComputeUpperEnvelope(requests);

  // Tape choice: apply the policy to the set of requests each tape can
  // satisfy within the upper envelope (a superset of the per-tape
  // assignment built above).
  std::vector<TapeCandidate> candidates(
      static_cast<size_t>(jukebox_->num_tapes()));
  for (TapeId t = 0; t < jukebox_->num_tapes(); ++t) {
    candidates[static_cast<size_t>(t)].tape = t;
  }
  const RequestId oldest = pending_.front().id;
  for (const Request& request : requests) {
    for (const Replica& replica : catalog_->ReplicasOf(request.block)) {
      if (replica.position + block_mb <=
          result.envelope[static_cast<size_t>(replica.tape)]) {
        TapeCandidate& c = candidates[static_cast<size_t>(replica.tape)];
        ++c.num_requests;
        c.positions.push_back(replica.position);
        if (request.id == oldest) c.serves_oldest = true;
      }
    }
  }
  const TapeId tape =
      SelectTape(policy_, candidates, jukebox_->mounted_tape(),
                 jukebox_->head(), jukebox_->num_tapes(), cost_);
  TJ_CHECK_NE(tape, kInvalidTape);
  const Position limit = result.envelope[static_cast<size_t>(tape)];
  ExtractAndBuildSweep(tape, &limit);
  TJ_CHECK(!sweep_.empty());
  envelope_ = std::move(result.envelope);
  envelope_valid_ = true;
  return tape;
}

void EnvelopeScheduler::DeferInOrder(const Request& request) {
  auto it = std::lower_bound(
      pending_.begin(), pending_.end(), request.id,
      [](const Request& r, RequestId id) { return r.id < id; });
  pending_.insert(it, request);
}

void EnvelopeScheduler::ShrinkActiveSweep(TapeId extended_tape,
                                          Position committed_head) {
  const TapeId mounted = jukebox_->mounted_tape();
  if (mounted == kInvalidTape || mounted == extended_tape) return;
  const int64_t block_mb = jukebox_->config().block_size_mb;
  while (!sweep_.empty()) {
    // The sweep's outermost block: end of the forward phase or start of the
    // reverse phase, whichever is farther out.
    Position edge_pos = -1;
    BlockId edge_block = kInvalidBlock;
    if (!sweep_.forward().empty()) {
      edge_pos = sweep_.forward().back().position;
      edge_block = sweep_.forward().back().block;
    }
    if (!sweep_.reverse().empty() &&
        sweep_.reverse().front().position > edge_pos) {
      edge_pos = sweep_.reverse().front().position;
      edge_block = sweep_.reverse().front().block;
    }
    // Shrinking only applies when the envelope edge is a scheduled block.
    if (edge_pos + block_mb !=
        envelope_[static_cast<size_t>(mounted)]) {
      return;
    }
    const Replica* replica = catalog_->ReplicaOn(edge_block, extended_tape);
    if (replica == nullptr ||
        replica->position + block_mb >
            envelope_[static_cast<size_t>(extended_tape)]) {
      return;
    }
    // Move the edge block's requests off the active sweep; they will be
    // rescheduled (normally on `extended_tape`) at the next reschedule.
    std::optional<ServiceEntry> removed = sweep_.RemoveBlock(edge_block);
    TJ_CHECK(removed.has_value());
    ++counters_.sweep_trims;
    for (const Request& request : removed->requests) DeferInOrder(request);
    Position new_edge = std::max<Position>(committed_head, 0);
    if (!sweep_.forward().empty()) {
      new_edge = std::max(new_edge,
                          sweep_.forward().back().position + block_mb);
    }
    if (!sweep_.reverse().empty()) {
      new_edge = std::max(new_edge,
                          sweep_.reverse().front().position + block_mb);
    }
    envelope_[static_cast<size_t>(mounted)] = new_edge;
  }
}

void EnvelopeScheduler::OnArrival(const Request& request,
                                  Position committed_head) {
  const TapeId mounted = jukebox_->mounted_tape();
  if (!envelope_valid_ || sweep_.empty() || mounted == kInvalidTape) {
    pending_.push_back(request);
    return;
  }
  const int64_t block_mb = jukebox_->config().block_size_mb;
  const TimingModel& model = jukebox_->model();

  // (a) Satisfiable by the mounted tape within the upper envelope: insert
  // into the running sweep like the dynamic incremental scheduler.
  const Replica* on_mounted = catalog_->ReplicaOn(request.block, mounted);
  if (on_mounted != nullptr &&
      on_mounted->position + block_mb <=
          envelope_[static_cast<size_t>(mounted)] &&
      sweep_.InsertRequest(request, on_mounted->position, committed_head,
                           options_.allow_reverse_phase)) {
    ++counters_.incremental_inserts;
    return;
  }

  // (b) A replica inside some tape's envelope: no extension needed; the
  // request waits for that tape's next visit.
  for (const Replica& replica : catalog_->ReplicasOf(request.block)) {
    if (replica.position + block_mb <=
        envelope_[static_cast<size_t>(replica.tape)]) {
      pending_.push_back(request);
      return;
    }
  }

  // (c) Outside the envelope everywhere: apply the extension step (3-5) to
  // this one request — pick the replica with the cheapest incremental cost.
  const Replica* best = nullptr;
  double best_cost = 0;
  for (const Replica& replica : catalog_->ReplicasOf(request.block)) {
    const Position edge = envelope_[static_cast<size_t>(replica.tape)];
    const double surcharge =
        (edge == 0 && replica.tape != mounted) ? model.SwitchTime() : 0.0;
    const double cost =
        surcharge + model.LocateAndReadTime(edge, replica.position, block_mb) +
        model.LocateTime(replica.position + block_mb, edge);
    if (best == nullptr || cost < best_cost) {
      best = &replica;
      best_cost = cost;
    }
  }
  TJ_CHECK(best != nullptr);

  if (best->tape == mounted) {
    if (sweep_.InsertRequest(request, best->position, committed_head,
                             options_.allow_reverse_phase)) {
      ++counters_.incremental_inserts;
      ++counters_.incremental_extensions;
      envelope_[static_cast<size_t>(mounted)] =
          std::max(envelope_[static_cast<size_t>(mounted)],
                   best->position + block_mb);
      return;
    }
    pending_.push_back(request);
    return;
  }
  // Extend the envelope on the winning tape; this can make the mounted
  // tape's outermost scheduled block redundant (step 5), trimming the
  // active sweep.
  ++counters_.incremental_extensions;
  envelope_[static_cast<size_t>(best->tape)] =
      std::max(envelope_[static_cast<size_t>(best->tape)],
               best->position + block_mb);
  if (options_.envelope_shrink) {
    ShrinkActiveSweep(best->tape, committed_head);
  }
  pending_.push_back(request);
}

}  // namespace tapejuke
