#include "sched/envelope_scheduler.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "util/check.h"
#include "util/indexed_heap.h"

namespace tapejuke {

namespace {

/// Rank of `tape` scanning the jukebox circularly from `origin` (origin
/// itself has rank 0).
int32_t ScanRankFrom(TapeId tape, TapeId origin, int32_t num_tapes) {
  if (origin < 0) origin = 0;
  origin = origin % num_tapes;
  return (tape - origin + num_tapes) % num_tapes;
}

/// One extension-list entry: a replica of a still-unscheduled request.
/// `uid` indexes the stable initially-unscheduled vector; `replica` points
/// into the catalog (so step 4 assigns the real catalog entry instead of
/// fabricating one from the position).
struct Ext {
  Position position;
  size_t uid;
  const Replica* replica;
};

void SortExtList(std::vector<Ext>* list) {
  std::sort(list->begin(), list->end(), [](const Ext& a, const Ext& b) {
    return a.position < b.position ||
           (a.position == b.position && a.uid < b.uid);
  });
}

/// A tape's best extension prefix: its incremental bandwidth and length.
struct TapeScore {
  double bw = -1.0;
  size_t len = 0;
};

/// Step 3 for one tape: walks the extension list once, accumulating the
/// outbound locate+read chain, and returns the prefix with the highest
/// incremental bandwidth. Near-equal bandwidths (see NearlyEqual) keep the
/// shorter prefix, so the result is stable against last-ulp noise.
TapeScore ScorePrefixes(const TimingModel& model, const std::vector<Ext>& list,
                        Position edge, double surcharge, int64_t block_mb) {
  TapeScore best;
  Position cursor = edge;
  double outbound = 0.0;
  int64_t distinct = 0;
  Position prev = -1;
  for (size_t k = 0; k < list.size(); ++k) {
    if (list[k].position != prev) {
      outbound += model.LocateAndReadTime(cursor, list[k].position, block_mb);
      cursor = list[k].position + block_mb;
      ++distinct;
      prev = list[k].position;
    }
    const double total = surcharge + outbound + model.LocateTime(cursor, edge);
    const double bandwidth = static_cast<double>(distinct * block_mb) / total;
    if (best.len == 0 ||
        (bandwidth > best.bw && !NearlyEqual(bandwidth, best.bw))) {
      best.bw = bandwidth;
      best.len = k + 1;
    }
  }
  return best;
}

/// Steps 3-4 tape selection: the tape whose best prefix has the highest
/// incremental bandwidth. Ties (within relative epsilon — exact `==` on
/// accumulated doubles essentially never fires) go to the tape with the
/// most scheduled requests, then jukebox order from the mounted tape.
TapeId SelectBestTape(const std::vector<std::vector<Ext>>& ext,
                      const std::vector<TapeScore>& score,
                      const std::vector<int64_t>& counts, TapeId mounted,
                      int32_t num_tapes) {
  TapeId best = kInvalidTape;
  for (TapeId t = 0; t < num_tapes; ++t) {
    if (ext[static_cast<size_t>(t)].empty()) continue;
    bool better;
    if (best == kInvalidTape) {
      better = true;
    } else if (NearlyEqual(score[static_cast<size_t>(t)].bw,
                           score[static_cast<size_t>(best)].bw)) {
      const int64_t c_t = counts[static_cast<size_t>(t)];
      const int64_t c_b = counts[static_cast<size_t>(best)];
      better = c_t > c_b ||
               (c_t == c_b && ScanRankFrom(t, mounted, num_tapes) <
                                  ScanRankFrom(best, mounted, num_tapes));
    } else {
      better = score[static_cast<size_t>(t)].bw >
               score[static_cast<size_t>(best)].bw;
    }
    if (better) best = t;
  }
  return best;
}

/// Heap-backed tape selection, exactly equivalent to SelectBestTape.
///
/// The linear scan's winner always lies in the *top group* G: the maximal
/// prefix of tapes (sorted by score descending) whose adjacent scores are
/// NearlyEqual. Proof: let the chain break between v_k and v_{k+1}
/// (v_k - v_{k+1} > eps*v_k). For any g in G (bw_g >= v_k) and x outside
/// (bw_x <= v_{k+1}): bw_g - bw_x >= (bw_g - v_k) + (v_k - v_{k+1}) >
/// (bw_g - v_k) + eps*v_k >= eps*bw_g since eps <= 1 — so g and x are NOT
/// NearlyEqual and g strictly beats x under the scan's comparison. Hence
/// once the scan reaches the first member of G, its running best stays in
/// G, and the comparisons among G members are exactly those of a scan
/// restricted to G in ascending tape order.
///
/// So: pop the adjacent-NearlyEqual group off the heap top (pops come out
/// in non-increasing score order), restore it, and run the original
/// tie-break over the group in ascending tape order.
TapeId SelectBestTapeFromHeap(const std::vector<TapeScore>& score,
                              const std::vector<int64_t>& counts,
                              TapeId mounted, int32_t num_tapes,
                              IndexedMaxHeap<double, std::less<double>>* heap,
                              std::vector<std::pair<size_t, double>>* group) {
  if (heap->empty()) return kInvalidTape;
  group->clear();
  double prev = heap->TopValue();
  group->emplace_back(heap->Pop(), prev);
  while (!heap->empty() && NearlyEqual(heap->TopValue(), prev)) {
    prev = heap->TopValue();
    group->emplace_back(heap->Pop(), prev);
  }
  for (const auto& [key, value] : *group) heap->Set(key, value);
  std::sort(group->begin(), group->end());  // ascending tape id
  TapeId best = kInvalidTape;
  for (const auto& [key, value] : *group) {
    const TapeId t = static_cast<TapeId>(key);
    bool better;
    if (best == kInvalidTape) {
      better = true;
    } else if (NearlyEqual(score[static_cast<size_t>(t)].bw,
                           score[static_cast<size_t>(best)].bw)) {
      const int64_t c_t = counts[static_cast<size_t>(t)];
      const int64_t c_b = counts[static_cast<size_t>(best)];
      better = c_t > c_b ||
               (c_t == c_b && ScanRankFrom(t, mounted, num_tapes) <
                                  ScanRankFrom(best, mounted, num_tapes));
    } else {
      better = score[static_cast<size_t>(t)].bw >
               score[static_cast<size_t>(best)].bw;
    }
    if (better) best = t;
  }
  return best;
}

/// Per-tape assigned requests consumed by the step-5 shrink loop. Replaces
/// a std::multimap<Position, Request>: the loop only ever reads/removes the
/// *max* element (the envelope edge), so a flat vector with a tracked max
/// index is enough. Ties on position resolve to the latest insertion
/// (matching multimap::rbegin, which lands on the last-inserted element
/// among equal keys).
struct AssignedList {
  struct Item {
    Position position;
    int64_t seq;
    Request request;
  };

  std::vector<Item> items;
  size_t max_index = 0;
  int64_t next_seq = 0;

  bool empty() const { return items.empty(); }

  void Add(Position position, const Request& request) {
    items.push_back(Item{position, next_seq++, request});
    // >= : among equal positions the later insertion wins (seq is higher).
    if (items.size() == 1 || position >= items[max_index].position) {
      max_index = items.size() - 1;
    }
  }

  const Item& Max() const {
    TJ_DCHECK(!items.empty());
    return items[max_index];
  }

  void RemoveMax() {
    items[max_index] = std::move(items.back());
    items.pop_back();
    max_index = 0;
    for (size_t i = 1; i < items.size(); ++i) {
      const Item& a = items[i];
      const Item& b = items[max_index];
      if (a.position > b.position ||
          (a.position == b.position && a.seq > b.seq)) {
        max_index = i;
      }
    }
  }
};

/// Oracle comparison: TJ_CHECK-fails unless the two kernels produced
/// byte-identical upper envelopes, assignments, and per-tape counts.
void CheckEnvelopeResultsEqual(
    const EnvelopeScheduler::EnvelopeResult& incremental,
    const EnvelopeScheduler::EnvelopeResult& reference) {
  TJ_CHECK(incremental.envelope == reference.envelope)
      << "incremental and reference envelopes diverged";
  TJ_CHECK(incremental.scheduled_per_tape == reference.scheduled_per_tape)
      << "incremental and reference per-tape counts diverged";
  TJ_CHECK(incremental.initial_envelope == reference.initial_envelope)
      << "step-2 initial envelopes diverged";
  TJ_CHECK_EQ(incremental.initially_unscheduled.size(),
              reference.initially_unscheduled.size());
  for (size_t i = 0; i < incremental.initially_unscheduled.size(); ++i) {
    TJ_CHECK_EQ(incremental.initially_unscheduled[i].id,
                reference.initially_unscheduled[i].id);
  }
  TJ_CHECK_EQ(incremental.assignment.size(), reference.assignment.size());
  for (const auto& [id, replica] : incremental.assignment) {
    const auto it = reference.assignment.find(id);
    TJ_CHECK(it != reference.assignment.end())
        << "request" << id << "assigned only by the incremental kernel";
    TJ_CHECK(replica == it->second)
        << "request" << id << "assigned to different replicas";
  }
}

/// Per-tape candidates for the pending requests satisfiable within
/// `envelope` (the slow walk over pending x replicas; the persistent-cache
/// fast path is BuildCandidatesFromMaster).
std::vector<TapeCandidate> CandidatesWithinEnvelope(
    const Catalog& catalog, const std::deque<Request>& pending,
    const std::vector<Position>& envelope, int64_t block_mb,
    int32_t num_tapes) {
  std::vector<TapeCandidate> candidates(static_cast<size_t>(num_tapes));
  for (TapeId t = 0; t < num_tapes; ++t) {
    candidates[static_cast<size_t>(t)].tape = t;
  }
  const RequestId oldest = pending.front().id;
  for (const Request& request : pending) {
    for (const Replica& replica : catalog.ReplicasOf(request.block)) {
      if (!catalog.IsAlive(replica)) continue;
      if (replica.position + block_mb <=
          envelope[static_cast<size_t>(replica.tape)]) {
        TapeCandidate& c = candidates[static_cast<size_t>(replica.tape)];
        ++c.num_requests;
        c.positions.push_back(replica.position);
        if (request.id == oldest) c.serves_oldest = true;
      }
    }
  }
  return candidates;
}

/// Debug oracle: candidates read off the master cache must match the slow
/// pending x replicas walk (counts, oldest-request flags, and position
/// multisets — the master's are sorted, the walk's are in pending order).
void CheckCandidatesMatchSlowWalk(
    const std::vector<TapeCandidate>& candidates, const Catalog& catalog,
    const std::deque<Request>& pending,
    const std::vector<Position>& envelope, int64_t block_mb,
    int32_t num_tapes) {
  const std::vector<TapeCandidate> slow = CandidatesWithinEnvelope(
      catalog, pending, envelope, block_mb, num_tapes);
  TJ_CHECK_EQ(candidates.size(), slow.size());
  for (size_t t = 0; t < slow.size(); ++t) {
    TJ_CHECK_EQ(candidates[t].num_requests, slow[t].num_requests)
        << "master candidate count diverged on tape" << slow[t].tape;
    TJ_CHECK_EQ(candidates[t].serves_oldest, slow[t].serves_oldest);
    std::vector<Position> a = candidates[t].positions;
    std::vector<Position> b = slow[t].positions;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    TJ_CHECK(a == b) << "master candidate positions diverged on tape"
                     << slow[t].tape;
  }
}

}  // namespace

/// Mutable state shared by the two extension kernels: the result being
/// built, the per-tape assigned lists consumed by step 5, and the stable
/// post-step-2 unscheduled vector.
struct EnvelopeScheduler::KernelState {
  EnvelopeResult result;
  /// Per-tape assigned requests with their replica positions (several
  /// requests can name the same block; step 5 reads/removes the max).
  std::vector<AssignedList> assigned;
  /// Requests left unscheduled by step 2, in arrival order. Never
  /// reordered; the kernels track progress through side bitmaps.
  std::vector<Request> unscheduled;
  int64_t shrinks_done = 0;
  int64_t max_shrinks = 0;
  /// When false, the per-request assignment map is not materialized (the
  /// production reschedule path only consumes the envelope; the map is for
  /// the oracle cross-check and the theory validation).
  bool want_assignment = true;
  int64_t assigns_done = 0;  ///< Assign calls (reassignments included)

  void Assign(const Request& request, const Replica& replica) {
    if (want_assignment) result.assignment[request.id] = replica;
    ++assigns_done;
    ++result.scheduled_per_tape[static_cast<size_t>(replica.tape)];
    assigned[static_cast<size_t>(replica.tape)].Add(replica.position, request);
  }
};

/// Reusable kernel temporaries: survive across reschedules so the hot path
/// performs no per-call vector allocation once the buffers are warm.
struct EnvelopeScheduler::KernelScratch {
  std::vector<std::vector<Ext>> ext;
  std::vector<TapeScore> score;
  std::vector<char> dirty;
  std::vector<char> done;
  std::vector<size_t> enclosed;
  std::vector<std::pair<size_t, double>> group;
  std::vector<RequestId> ids;
  FlatMap<RequestId, size_t> uid_of;
  IndexedMaxHeap<double, std::less<double>> heap;
};

EnvelopeScheduler::EnvelopeScheduler(const Jukebox* jukebox,
                                     const Catalog* catalog,
                                     TapePolicy policy,
                                     const SchedulerOptions& options)
    : Scheduler(jukebox, catalog, options), policy_(policy) {}

EnvelopeScheduler::~EnvelopeScheduler() = default;

EnvelopeScheduler::KernelScratch& EnvelopeScheduler::Scratch() const {
  if (scratch_ == nullptr) scratch_ = std::make_unique<KernelScratch>();
  return *scratch_;
}

std::string EnvelopeScheduler::name() const {
  return std::string(TapePolicyName(policy_)) + " envelope";
}

const Replica* EnvelopeScheduler::ChooseInsideReplica(
    const std::vector<const Replica*>& inside,
    const std::vector<int64_t>& scheduled_per_tape, TapeId mounted) const {
  TJ_CHECK(!inside.empty());
  if (!options_.paper_replica_tiebreak) {
    // Ablation: lowest tape id, ignoring drive state and schedule sizes.
    return *std::min_element(inside.begin(), inside.end(),
                             [](const Replica* a, const Replica* b) {
                               return a->tape < b->tape;
                             });
  }
  const int32_t num_tapes = jukebox_->num_tapes();
  const Replica* best = nullptr;
  for (const Replica* replica : inside) {
    if (replica->tape == mounted) return replica;  // paper: mounted first
    if (best == nullptr) {
      best = replica;
      continue;
    }
    const int64_t count = scheduled_per_tape[static_cast<size_t>(
        replica->tape)];
    const int64_t best_count =
        scheduled_per_tape[static_cast<size_t>(best->tape)];
    if (count > best_count) {
      best = replica;
    } else if (count == best_count &&
               ScanRankFrom(replica->tape, mounted + 1, num_tapes) <
                   ScanRankFrom(best->tape, mounted + 1, num_tapes)) {
      best = replica;
    }
  }
  return best;
}

bool EnvelopeScheduler::TryAbsorb(const Request& request, KernelState* state,
                                  EnvelopeCounters* counters) const {
  const int64_t block_mb = jukebox_->config().block_size_mb;
  const auto& env = state->result.envelope;
  std::vector<const Replica*> inside;
  for (const Replica& replica : catalog_->ReplicasOf(request.block)) {
    if (!catalog_->IsAlive(replica)) continue;
    if (replica.position + block_mb <=
        env[static_cast<size_t>(replica.tape)]) {
      inside.push_back(&replica);
    }
  }
  if (inside.empty()) return false;
  if (inside.size() > 1) ++counters->multi_replica_choices;
  state->Assign(request,
                *ChooseInsideReplica(inside, state->result.scheduled_per_tape,
                                     jukebox_->mounted_tape()));
  return true;
}

void EnvelopeScheduler::BuildInitialEnvelope(
    const std::vector<Request>& requests, KernelState* state,
    EnvelopeCounters* counters) const {
  const int32_t num_tapes = jukebox_->num_tapes();
  const int64_t block_mb = jukebox_->config().block_size_mb;
  const TapeId mounted = jukebox_->mounted_tape();

  state->result.envelope.assign(static_cast<size_t>(num_tapes), 0);
  state->result.scheduled_per_tape.assign(static_cast<size_t>(num_tapes), 0);
  if (state->want_assignment) {
    state->result.assignment.reserve(requests.size());
  }
  state->assigned.resize(static_cast<size_t>(num_tapes));
  state->max_shrinks =
      static_cast<int64_t>(requests.size()) * num_tapes + 16;
  auto& env = state->result.envelope;

  // Step 1: the highest non-replicated request on each tape pins the
  // initial envelope; the mounted tape's envelope covers the head. A block
  // with exactly one *live* replica counts as non-replicated (dead copies
  // cannot serve it).
  for (const Request& request : requests) {
    const Replica* sole_live = nullptr;
    bool multiple_live = false;
    for (const Replica& replica : catalog_->ReplicasOf(request.block)) {
      if (!catalog_->IsAlive(replica)) continue;
      if (sole_live != nullptr) {
        multiple_live = true;
        break;
      }
      sole_live = &replica;
    }
    if (sole_live != nullptr && !multiple_live) {
      Position& edge = env[static_cast<size_t>(sole_live->tape)];
      edge = std::max(edge, sole_live->position + block_mb);
    }
  }
  if (mounted != kInvalidTape) {
    env[static_cast<size_t>(mounted)] =
        std::max(env[static_cast<size_t>(mounted)], jukebox_->head());
  }

  // Step 2: absorb every request with a replica inside the envelope.
  for (const Request& request : requests) {
    if (!TryAbsorb(request, state, counters)) {
      state->unscheduled.push_back(request);
    }
  }
  state->result.initial_envelope = env;
  // Like the assignment map, the (S1, remaining) snapshot only feeds the
  // oracle and the theory checks.
  if (state->want_assignment) {
    state->result.initially_unscheduled = state->unscheduled;
  }
}

void EnvelopeScheduler::RunShrinkLoop(KernelState* state,
                                      EnvelopeCounters* counters,
                                      std::vector<char>* dirty) const {
  const int32_t num_tapes = jukebox_->num_tapes();
  const int64_t block_mb = jukebox_->config().block_size_mb;
  const TapeId mounted = jukebox_->mounted_tape();
  const Position head = jukebox_->head();
  auto& env = state->result.envelope;
  auto& counts = state->result.scheduled_per_tape;

  // Step 5: shrink. A replicated block scheduled at the outer edge of
  // some tape's envelope that also has a replica inside another tape's
  // envelope is moved there, and the donor envelope retreats to its
  // preceding scheduled request.
  while (options_.envelope_shrink &&
         state->shrinks_done < state->max_shrinks) {
    // Collect shrinkable tapes: edge request has an in-envelope replica
    // elsewhere.
    TapeId shrink_tape = kInvalidTape;
    for (TapeId a = 0; a < num_tapes; ++a) {
      const auto& on_a = state->assigned[static_cast<size_t>(a)];
      if (on_a.empty()) continue;
      const AssignedList::Item& edge = on_a.Max();
      if (edge.position + block_mb != env[static_cast<size_t>(a)]) continue;
      bool movable = false;
      for (const Replica& replica :
           catalog_->ReplicasOf(edge.request.block)) {
        if (!catalog_->IsAlive(replica)) continue;
        if (replica.tape != a &&
            replica.position + block_mb <=
                env[static_cast<size_t>(replica.tape)]) {
          movable = true;
          break;
        }
      }
      if (!movable) continue;
      if (shrink_tape == kInvalidTape ||
          counts[static_cast<size_t>(a)] <
              counts[static_cast<size_t>(shrink_tape)] ||
          (counts[static_cast<size_t>(a)] ==
               counts[static_cast<size_t>(shrink_tape)] &&
           a < shrink_tape)) {
        shrink_tape = a;
      }
    }
    if (shrink_tape == kInvalidTape) break;
    ++state->shrinks_done;
    ++counters->shrink_moves;

    auto& on_a = state->assigned[static_cast<size_t>(shrink_tape)];
    const Request moved = on_a.Max().request;
    std::vector<const Replica*> inside;
    for (const Replica& replica : catalog_->ReplicasOf(moved.block)) {
      if (!catalog_->IsAlive(replica)) continue;
      if (replica.tape != shrink_tape &&
          replica.position + block_mb <=
              env[static_cast<size_t>(replica.tape)]) {
        inside.push_back(&replica);
      }
    }
    TJ_CHECK(!inside.empty());
    on_a.RemoveMax();
    --counts[static_cast<size_t>(shrink_tape)];
    const Replica* target = ChooseInsideReplica(inside, counts, mounted);
    state->Assign(moved, *target);
    // Retreat the donor envelope to its preceding scheduled request (or
    // the head / beginning of tape).
    Position base = (shrink_tape == mounted) ? head : 0;
    if (!on_a.empty()) {
      base = std::max(base, on_a.Max().position + block_mb);
    }
    env[static_cast<size_t>(shrink_tape)] = base;
    if (dirty != nullptr) (*dirty)[static_cast<size_t>(shrink_tape)] = 1;
  }
}

EnvelopeScheduler::EnvelopeResult EnvelopeScheduler::RunIncrementalKernel(
    const std::vector<Request>& requests, EnvelopeCounters* counters,
    const MasterCache* master, bool want_assignment) const {
  const int32_t num_tapes = jukebox_->num_tapes();
  const int64_t block_mb = jukebox_->config().block_size_mb;
  const TapeId mounted = jukebox_->mounted_tape();
  const TimingModel& model = jukebox_->model();

  KernelState state;
  state.want_assignment = want_assignment;
  BuildInitialEnvelope(requests, &state, counters);
  auto& env = state.result.envelope;
  auto& counts = state.result.scheduled_per_tape;
  const std::vector<Request>& unscheduled = state.unscheduled;
  const size_t n = unscheduled.size();
  if (n == 0) return std::move(state.result);

  // Steps 3-6, incremental form. The per-tape extension lists are built
  // once (copied pre-sorted off the persistent cache when available);
  // scheduled entries are lazily dropped, and a tape's prefix scan is
  // re-run only when its envelope edge moved or its list lost entries
  // (`dirty`).
  KernelScratch& scratch = Scratch();
  auto& ext = scratch.ext;
  ext.resize(static_cast<size_t>(num_tapes));
  for (auto& list : ext) list.clear();

  if (master == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      for (const Replica& replica :
           catalog_->ReplicasOf(unscheduled[i].block)) {
        if (!catalog_->IsAlive(replica)) continue;
        TJ_DCHECK(replica.position >=
                  env[static_cast<size_t>(replica.tape)]);
        ext[static_cast<size_t>(replica.tape)].push_back(
            Ext{replica.position, i, &replica});
      }
    }
    for (auto& list : ext) SortExtList(&list);
  } else {
    // The refreshed master lists are pending x live replicas sorted by
    // (position, id): drop the step-2-absorbed requests while copying and
    // translate ids to uids. Equal-position runs (duplicate requests for
    // one block) may be uid-disordered when pending is not id-sorted
    // (failover re-arrivals), so re-sort them by uid.
    TJ_DCHECK(master->valid && master->removed.empty());
    // uid translation. When the unscheduled snapshot is id-sorted (the
    // common case — failover re-deliveries are the only source of
    // disorder), the uid of an id is its rank in the id array (binary
    // search, no hashing), and the master's (position, id) order already
    // is (position, uid) order, so no per-run re-sort is needed either.
    auto& ids = scratch.ids;
    ids.clear();
    ids.reserve(n);
    bool ids_sorted = true;
    for (size_t i = 0; i < n; ++i) {
      if (i > 0 && unscheduled[i].id <= ids.back()) ids_sorted = false;
      ids.push_back(unscheduled[i].id);
    }
    if (ids_sorted) {
      for (TapeId t = 0; t < num_tapes; ++t) {
        TJ_DCHECK(master->tail[static_cast<size_t>(t)].empty());
        auto& list = ext[static_cast<size_t>(t)];
        for (const MasterEntry& entry :
             master->sorted[static_cast<size_t>(t)]) {
          const auto it = std::lower_bound(ids.begin(), ids.end(), entry.id);
          if (it == ids.end() || *it != entry.id) continue;  // absorbed
          TJ_DCHECK(entry.position >= env[static_cast<size_t>(t)]);
          list.push_back(Ext{entry.position,
                             static_cast<size_t>(it - ids.begin()),
                             entry.replica});
        }
      }
    } else {
      // Disordered pending: translate through a hash map and re-sort the
      // equal-position runs (duplicate requests for one block) by uid.
      auto& uid_of = scratch.uid_of;
      uid_of.clear();
      uid_of.reserve(n);
      for (size_t i = 0; i < n; ++i) uid_of.insert(unscheduled[i].id, i);
      for (TapeId t = 0; t < num_tapes; ++t) {
        TJ_DCHECK(master->tail[static_cast<size_t>(t)].empty());
        auto& list = ext[static_cast<size_t>(t)];
        for (const MasterEntry& entry :
             master->sorted[static_cast<size_t>(t)]) {
          const auto it = uid_of.find(entry.id);
          if (it == uid_of.end()) continue;  // absorbed by step 2
          TJ_DCHECK(entry.position >= env[static_cast<size_t>(t)]);
          list.push_back(Ext{entry.position, it->second, entry.replica});
        }
        for (size_t k = 0; k + 1 < list.size();) {
          size_t j = k + 1;
          while (j < list.size() && list[j].position == list[k].position) {
            ++j;
          }
          if (j - k > 1) {
            std::sort(
                list.begin() + static_cast<std::ptrdiff_t>(k),
                list.begin() + static_cast<std::ptrdiff_t>(j),
                [](const Ext& a, const Ext& b) { return a.uid < b.uid; });
          }
          k = j;
        }
      }
    }
  }

  auto& score = scratch.score;
  score.assign(static_cast<size_t>(num_tapes), TapeScore{});
  auto& dirty = scratch.dirty;
  dirty.assign(static_cast<size_t>(num_tapes), 1);
  auto& done = scratch.done;
  done.assign(n, 0);
  size_t remaining = n;
  const bool use_heap = options_.use_selection_heap;
  auto& heap = scratch.heap;
  if (use_heap) heap.Reset(static_cast<size_t>(num_tapes));

  // Schedules unscheduled[uid] on `replica` and invalidates the cached
  // score of every tape whose extension list held an entry for it.
  auto schedule = [&](size_t uid, const Replica& replica) {
    TJ_CHECK(!done[uid]);
    done[uid] = 1;
    --remaining;
    state.Assign(unscheduled[uid], replica);
    for (const Replica& r : catalog_->ReplicasOf(unscheduled[uid].block)) {
      dirty[static_cast<size_t>(r.tape)] = 1;
    }
  };

  while (remaining > 0) {
    // Step 3 (cached): compact and re-score only the dirty tapes; the heap
    // absorbs the same updates, so its top is the best-scored tape.
    for (TapeId t = 0; t < num_tapes; ++t) {
      if (!dirty[static_cast<size_t>(t)]) continue;
      dirty[static_cast<size_t>(t)] = 0;
      auto& list = ext[static_cast<size_t>(t)];
      list.erase(std::remove_if(list.begin(), list.end(),
                                [&](const Ext& e) { return done[e.uid]; }),
                 list.end());
      if (list.empty()) {
        if (use_heap) heap.Remove(static_cast<size_t>(t));
        continue;
      }
      const double surcharge =
          (env[static_cast<size_t>(t)] == 0 && t != mounted)
              ? model.SwitchTime()
              : 0.0;
      score[static_cast<size_t>(t)] = ScorePrefixes(
          model, list, env[static_cast<size_t>(t)], surcharge, block_mb);
      ++counters->tapes_rescored;
      if (use_heap) {
        heap.Set(static_cast<size_t>(t), score[static_cast<size_t>(t)].bw);
      }
    }

    if (options_.validate_envelope) {
      // Round oracle: the maintained lists and cached scores must match a
      // from-scratch rebuild against the current envelope.
      for (TapeId t = 0; t < num_tapes; ++t) {
        std::vector<Ext> fresh;
        for (size_t i = 0; i < n; ++i) {
          if (done[i]) continue;
          for (const Replica& replica :
               catalog_->ReplicasOf(unscheduled[i].block)) {
            if (replica.tape != t || !catalog_->IsAlive(replica)) continue;
            fresh.push_back(Ext{replica.position, i, &replica});
          }
        }
        SortExtList(&fresh);
        const auto& list = ext[static_cast<size_t>(t)];
        TJ_CHECK_EQ(fresh.size(), list.size())
            << "stale extension list on tape" << t;
        for (size_t k = 0; k < fresh.size(); ++k) {
          TJ_CHECK_EQ(fresh[k].position, list[k].position);
          TJ_CHECK_EQ(fresh[k].uid, list[k].uid);
          TJ_CHECK(fresh[k].replica == list[k].replica);
        }
        if (list.empty()) {
          TJ_CHECK(!use_heap || !heap.Contains(static_cast<size_t>(t)));
          continue;
        }
        const double surcharge =
            (env[static_cast<size_t>(t)] == 0 && t != mounted)
                ? model.SwitchTime()
                : 0.0;
        const TapeScore fresh_score = ScorePrefixes(
            model, fresh, env[static_cast<size_t>(t)], surcharge, block_mb);
        TJ_CHECK_EQ(fresh_score.bw, score[static_cast<size_t>(t)].bw)
            << "stale cached score on tape" << t;
        TJ_CHECK_EQ(fresh_score.len, score[static_cast<size_t>(t)].len);
        if (use_heap) {
          TJ_CHECK(heap.Contains(static_cast<size_t>(t)))
              << "tape" << t << "with candidates missing from the heap";
          TJ_CHECK_EQ(heap.ValueOf(static_cast<size_t>(t)),
                      score[static_cast<size_t>(t)].bw);
        }
      }
    }

    TapeId best_tape;
    if (use_heap) {
      best_tape = SelectBestTapeFromHeap(score, counts, mounted, num_tapes,
                                         &heap, &scratch.group);
      if (options_.validate_envelope) {
        TJ_CHECK_EQ(best_tape,
                    SelectBestTape(ext, score, counts, mounted, num_tapes))
            << "heap-backed tape selection diverged from the linear scan";
      }
    } else {
      best_tape = SelectBestTape(ext, score, counts, mounted, num_tapes);
    }
    TJ_CHECK_NE(best_tape, kInvalidTape)
        << "unscheduled request without replicas";
    ++counters->extension_rounds;

    // Step 4: extend the envelope over the winning prefix.
    const auto& winner = ext[static_cast<size_t>(best_tape)];
    const size_t best_len = score[static_cast<size_t>(best_tape)].len;
    const Position new_edge = winner[best_len - 1].position + block_mb;
    env[static_cast<size_t>(best_tape)] = new_edge;
    dirty[static_cast<size_t>(best_tape)] = 1;  // edge moved
    for (size_t k = 0; k < best_len; ++k) {
      const Replica& replica = *winner[k].replica;
      TJ_DCHECK(replica ==
                *catalog_->ReplicaOn(unscheduled[winner[k].uid].block,
                                     best_tape))
          << "extension entry does not match the catalog replica";
      schedule(winner[k].uid, replica);
    }
    // Absorb any request whose replica the extension just enclosed (e.g. a
    // second request for a block at the new envelope edge). Only the
    // extended tape's envelope grew, so candidates are exactly the pending
    // entries of its list inside the new edge; absorb in arrival order.
    auto& enclosed = scratch.enclosed;
    enclosed.clear();
    for (size_t k = best_len; k < winner.size(); ++k) {
      if (!done[winner[k].uid] &&
          winner[k].position + block_mb <= new_edge) {
        enclosed.push_back(winner[k].uid);
      }
    }
    std::sort(enclosed.begin(), enclosed.end());
    for (const size_t uid : enclosed) {
      const int64_t before = state.assigns_done;
      TJ_CHECK(TryAbsorb(unscheduled[uid], &state, counters));
      TJ_CHECK_EQ(before + 1, state.assigns_done);
      done[uid] = 1;
      --remaining;
      for (const Replica& r :
           catalog_->ReplicasOf(unscheduled[uid].block)) {
        dirty[static_cast<size_t>(r.tape)] = 1;
      }
    }

    RunShrinkLoop(&state, counters, &dirty);
  }
  return std::move(state.result);
}

EnvelopeScheduler::EnvelopeResult EnvelopeScheduler::RunReferenceKernel(
    const std::vector<Request>& requests, EnvelopeCounters* counters) const {
  const int32_t num_tapes = jukebox_->num_tapes();
  const int64_t block_mb = jukebox_->config().block_size_mb;
  const TapeId mounted = jukebox_->mounted_tape();
  const TimingModel& model = jukebox_->model();

  KernelState state;
  BuildInitialEnvelope(requests, &state, counters);
  auto& env = state.result.envelope;
  auto& counts = state.result.scheduled_per_tape;
  const std::vector<Request>& unscheduled = state.unscheduled;
  const size_t n = unscheduled.size();

  std::vector<bool> done(n, false);
  size_t remaining = n;

  // Steps 3-6, from-scratch form: every round re-enumerates, re-sorts,
  // and fully re-scores the per-tape extension lists.
  while (remaining > 0) {
    std::vector<std::vector<Ext>> ext(static_cast<size_t>(num_tapes));
    for (size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      for (const Replica& replica :
           catalog_->ReplicasOf(unscheduled[i].block)) {
        if (!catalog_->IsAlive(replica)) continue;
        TJ_DCHECK(replica.position >=
                  env[static_cast<size_t>(replica.tape)]);
        ext[static_cast<size_t>(replica.tape)].push_back(
            Ext{replica.position, i, &replica});
      }
    }
    std::vector<TapeScore> score(static_cast<size_t>(num_tapes));
    for (TapeId t = 0; t < num_tapes; ++t) {
      auto& list = ext[static_cast<size_t>(t)];
      if (list.empty()) continue;
      SortExtList(&list);
      const double surcharge =
          (env[static_cast<size_t>(t)] == 0 && t != mounted)
              ? model.SwitchTime()
              : 0.0;
      score[static_cast<size_t>(t)] = ScorePrefixes(
          model, list, env[static_cast<size_t>(t)], surcharge, block_mb);
    }
    const TapeId best_tape =
        SelectBestTape(ext, score, counts, mounted, num_tapes);
    TJ_CHECK_NE(best_tape, kInvalidTape)
        << "unscheduled request without replicas";
    ++counters->extension_rounds;

    // Step 4: extend the envelope over the winning prefix.
    const auto& winner = ext[static_cast<size_t>(best_tape)];
    const size_t best_len = score[static_cast<size_t>(best_tape)].len;
    env[static_cast<size_t>(best_tape)] =
        winner[best_len - 1].position + block_mb;
    for (size_t k = 0; k < best_len; ++k) {
      TJ_CHECK(!done[winner[k].uid]);
      done[winner[k].uid] = true;
      --remaining;
      state.Assign(unscheduled[winner[k].uid], *winner[k].replica);
    }
    // Absorb any request whose replica the extension just enclosed.
    for (size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      if (TryAbsorb(unscheduled[i], &state, counters)) {
        done[i] = true;
        --remaining;
      }
    }

    RunShrinkLoop(&state, counters, nullptr);
  }
  return std::move(state.result);
}

EnvelopeScheduler::EnvelopeResult EnvelopeScheduler::ComputeUpperEnvelope(
    const std::vector<Request>& requests) const {
  // Master-free on purpose: this entry point must be a pure function of
  // (requests, drive state, catalog) — tests and benchmarks call it without
  // a live scheduler history.
  return RunIncrementalKernel(requests, &counters_, /*master=*/nullptr,
                              /*want_assignment=*/true);
}

EnvelopeScheduler::EnvelopeResult
EnvelopeScheduler::ComputeUpperEnvelopeReference(
    const std::vector<Request>& requests) const {
  EnvelopeCounters scratch;
  return RunReferenceKernel(requests, &scratch);
}

void EnvelopeScheduler::CrossCheckEnvelope(
    const std::vector<Request>& requests) const {
  EnvelopeCounters incremental_counters;
  EnvelopeCounters reference_counters;
  const EnvelopeResult incremental = RunIncrementalKernel(
      requests, &incremental_counters, nullptr, /*want_assignment=*/true);
  const EnvelopeResult reference =
      RunReferenceKernel(requests, &reference_counters);
  CheckEnvelopeResultsEqual(incremental, reference);
  TJ_CHECK_EQ(incremental_counters.extension_rounds,
              reference_counters.extension_rounds)
      << "kernels took different numbers of extension rounds";
}

void EnvelopeScheduler::InsertMaster(const Request& request) {
  if (!options_.persistent_ext_cache || !master_.valid) return;
  // Resurrection: a lazily-removed id re-entering pending (sweep trims,
  // fault re-deliveries) still has its sorted entries in place, and they
  // are identical as long as the generation check holds — unmasking them
  // is the whole update. (If the catalog moved meanwhile, the stale
  // entries are never read: the next refresh rebuilds.)
  if (master_.removed.erase(request.id) > 0) return;
  for (const Replica& replica : catalog_->ReplicasOf(request.block)) {
    if (!catalog_->IsAlive(replica)) continue;
    master_.tail[static_cast<size_t>(replica.tape)].push_back(
        MasterEntry{replica.position, request.id, &replica});
  }
}

void EnvelopeScheduler::RemoveMasterId(RequestId id) {
  if (!options_.persistent_ext_cache || !master_.valid) return;
  master_.removed.insert(id);
}

void EnvelopeScheduler::RemoveMasterExtracted() {
  if (!options_.persistent_ext_cache || !master_.valid) return;
  for (const ServiceEntry& entry : sweep_.forward()) {
    for (const Request& request : entry.requests) {
      master_.removed.insert(request.id);
    }
  }
  for (const ServiceEntry& entry : sweep_.reverse()) {
    for (const Request& request : entry.requests) {
      master_.removed.insert(request.id);
    }
  }
}

void EnvelopeScheduler::RebuildMaster() {
  const size_t num_tapes = static_cast<size_t>(jukebox_->num_tapes());
  master_.sorted.resize(num_tapes);
  master_.tail.resize(num_tapes);
  for (auto& list : master_.sorted) list.clear();
  for (auto& list : master_.tail) list.clear();
  master_.removed.clear();
  for (const Request& request : pending_) {
    for (const Replica& replica : catalog_->ReplicasOf(request.block)) {
      if (!catalog_->IsAlive(replica)) continue;
      master_.sorted[static_cast<size_t>(replica.tape)].push_back(
          MasterEntry{replica.position, request.id, &replica});
    }
  }
  for (auto& list : master_.sorted) {
    std::sort(list.begin(), list.end(),
              [](const MasterEntry& a, const MasterEntry& b) {
                return a.position < b.position ||
                       (a.position == b.position && a.id < b.id);
              });
  }
  master_.generation = catalog_->generation();
  master_.valid = true;
  ++counters_.master_rebuilds;
}

void EnvelopeScheduler::RefreshMaster() {
  if (!options_.persistent_ext_cache) return;
  if (!master_.valid || master_.generation != catalog_->generation()) {
    RebuildMaster();
    return;
  }
  const auto by_position_id = [](const MasterEntry& a, const MasterEntry& b) {
    return a.position < b.position ||
           (a.position == b.position && a.id < b.id);
  };
  const size_t num_tapes = static_cast<size_t>(jukebox_->num_tapes());
  for (size_t t = 0; t < num_tapes; ++t) {
    auto& base = master_.sorted[t];
    auto& tail = master_.tail[t];
    if (!master_.removed.empty()) {
      const auto is_removed = [&](const MasterEntry& e) {
        return master_.removed.contains(e.id);
      };
      base.erase(std::remove_if(base.begin(), base.end(), is_removed),
                 base.end());
      // A request can arrive and be removed between two refreshes, so the
      // tail must be filtered too.
      tail.erase(std::remove_if(tail.begin(), tail.end(), is_removed),
                 tail.end());
    }
    if (!tail.empty()) {
      std::sort(tail.begin(), tail.end(), by_position_id);
      const auto middle =
          static_cast<std::ptrdiff_t>(base.size());
      base.insert(base.end(), tail.begin(), tail.end());
      std::inplace_merge(base.begin(), base.begin() + middle, base.end(),
                         by_position_id);
      tail.clear();
    }
  }
  master_.removed.clear();
}

std::vector<TapeCandidate> EnvelopeScheduler::BuildCandidatesFromMaster(
    const std::vector<Position>& envelope) const {
  const int32_t num_tapes = jukebox_->num_tapes();
  const int64_t block_mb = jukebox_->config().block_size_mb;
  std::vector<TapeCandidate> candidates(static_cast<size_t>(num_tapes));
  const RequestId oldest = pending_.front().id;
  // The cache may be unrefreshed here (epoch fast path): lazily-removed
  // ids are skipped and the unsorted arrival tails are scanned linearly,
  // so the result still mirrors pending x live replicas exactly. Right
  // after a refresh both sets are empty and this is a pure prefix read.
  const bool masked = !master_.removed.empty();
  for (TapeId t = 0; t < num_tapes; ++t) {
    TapeCandidate& c = candidates[static_cast<size_t>(t)];
    c.tape = t;
    const auto& list = master_.sorted[static_cast<size_t>(t)];
    // In-envelope prefix: position + block_mb <= envelope[t].
    const Position limit = envelope[static_cast<size_t>(t)] - block_mb;
    const auto end = std::upper_bound(
        list.begin(), list.end(), limit,
        [](Position p, const MasterEntry& e) { return p < e.position; });
    c.positions.reserve(static_cast<size_t>(end - list.begin()));
    for (auto it = list.begin(); it != end; ++it) {
      if (masked && master_.removed.contains(it->id)) continue;
      c.positions.push_back(it->position);
      if (it->id == oldest) c.serves_oldest = true;
    }
    for (const MasterEntry& entry : master_.tail[static_cast<size_t>(t)]) {
      if (entry.position > limit) continue;
      if (masked && master_.removed.contains(entry.id)) continue;
      c.positions.push_back(entry.position);
      if (entry.id == oldest) c.serves_oldest = true;
    }
    c.num_requests = static_cast<int64_t>(c.positions.size());
  }
  return candidates;
}

TapeId EnvelopeScheduler::TryEpochReschedule() {
  if (options_.persistent_ext_cache && master_.valid &&
      master_.generation != catalog_->generation()) {
    // A catalog mutation landed mid-epoch (single-replica media error,
    // repair completing, replica added): the cached lists may hold dead
    // replicas, miss new ones, and their entry pointers may dangle after
    // a CSR reallocation. Rebuild before reading; the persisted envelope
    // itself stays reusable, since the candidate reads below re-derive
    // servability from live replicas only.
    RebuildMaster();
  }
  const bool from_master = options_.persistent_ext_cache && master_.valid;
  std::vector<TapeCandidate> candidates =
      from_master ? BuildCandidatesFromMaster(envelope_)
                  : CandidatesWithinEnvelope(*catalog_, pending_, envelope_,
                                             jukebox_->config().block_size_mb,
                                             jukebox_->num_tapes());
  if (from_master && options_.validate_envelope) {
    // The unrefreshed-cache read (masked ids + tails) must still mirror
    // the pending list exactly.
    CheckCandidatesMatchSlowWalk(candidates, *catalog_, pending_, envelope_,
                                 jukebox_->config().block_size_mb,
                                 jukebox_->num_tapes());
  }
  const TapeId tape =
      SelectTape(policy_, candidates, jukebox_->mounted_tape(),
                 jukebox_->head(), jukebox_->num_tapes(), cost_);
  if (tape == kInvalidTape) return kInvalidTape;
  RecordDecision(/*background=*/false, tape, candidates);
  const Position limit = envelope_[static_cast<size_t>(tape)];
  ExtractAndBuildSweep(tape, &limit);
  TJ_CHECK(!sweep_.empty());
  RemoveMasterExtracted();
  PiggybackBackground(tape);
  return tape;
}

TapeId EnvelopeScheduler::MajorReschedule() {
  TJ_CHECK(sweep_.empty());
  // Batched arrivals join the pending list through the normal incremental
  // path before anything is decided from it.
  FlushArrivals();
  if (pending_.empty()) {
    // No client work: the envelope does not apply to background-only
    // sweeps, so fall back to the shared background rescheduler.
    envelope_valid_ = false;
    epoch_visits_ = 0;
    return BackgroundReschedule();
  }
  const bool use_master = options_.persistent_ext_cache;

  // Epoch fast path: reuse the previous envelope for another tape visit.
  // Runs against the *unrefreshed* master cache (candidate reads mask the
  // lazily-removed ids and scan the unsorted tails), so the merge/compact
  // cost is only paid when the kernel actually runs below.
  if (options_.reschedule_epoch > 1 && envelope_valid_ &&
      epoch_visits_ < options_.reschedule_epoch) {
    const TapeId tape = TryEpochReschedule();
    if (tape != kInvalidTape) {
      ++epoch_visits_;
      ++counters_.epoch_reuses;
      return tape;
    }
    // Nothing pending is inside the stale envelope: recompute below.
  }
  if (use_master) RefreshMaster();

  const int64_t block_mb = jukebox_->config().block_size_mb;
  const std::vector<Request> requests(pending_.begin(), pending_.end());
  ++counters_.major_reschedules;
  const int64_t rounds_before = counters_.extension_rounds;
  const int64_t rescored_before = counters_.tapes_rescored;
  // The assignment map is only materialized for the oracle comparison;
  // the reschedule itself consumes the envelope alone.
  EnvelopeResult result = RunIncrementalKernel(
      requests, &counters_, use_master ? &master_ : nullptr,
      /*want_assignment=*/options_.validate_envelope);
  if (options_.validate_envelope) {
    EnvelopeCounters scratch;
    CheckEnvelopeResultsEqual(result, RunReferenceKernel(requests, &scratch));
  }

  // Tape choice: apply the policy to the set of requests each tape can
  // satisfy within the upper envelope (a superset of the per-tape
  // assignment built above).
  std::vector<TapeCandidate> candidates =
      use_master ? BuildCandidatesFromMaster(result.envelope)
                 : CandidatesWithinEnvelope(*catalog_, pending_,
                                            result.envelope, block_mb,
                                            jukebox_->num_tapes());
  if (use_master && options_.validate_envelope) {
    CheckCandidatesMatchSlowWalk(candidates, *catalog_, pending_,
                                 result.envelope, block_mb,
                                 jukebox_->num_tapes());
  }
  const TapeId tape =
      SelectTape(policy_, candidates, jukebox_->mounted_tape(),
                 jukebox_->head(), jukebox_->num_tapes(), cost_);
  TJ_CHECK_NE(tape, kInvalidTape);
  RecordDecision(/*background=*/false, tape, candidates,
                 counters_.extension_rounds - rounds_before,
                 counters_.tapes_rescored - rescored_before);
  const Position limit = result.envelope[static_cast<size_t>(tape)];
  ExtractAndBuildSweep(tape, &limit);
  TJ_CHECK(!sweep_.empty());
  RemoveMasterExtracted();
  // Background riders may lie beyond the envelope edge: the mount is paid
  // for anyway, and client insertions never depend on riders (the sweep
  // edge check in ShrinkActiveSweep compares against the envelope, which
  // riders by definition exceed, so shrinking simply stops there).
  PiggybackBackground(tape);
  envelope_ = std::move(result.envelope);
  envelope_valid_ = true;
  epoch_visits_ = 1;
  return tape;
}

std::vector<Request> EnvelopeScheduler::DrainSweep() {
  envelope_valid_ = false;
  epoch_visits_ = 0;
  return Scheduler::DrainSweep();
}

std::vector<Request> EnvelopeScheduler::EvictUnservablePending() {
  std::vector<Request> evicted = Scheduler::EvictUnservablePending();
  for (const Request& request : evicted) {
    if (request.cls != RequestClass::kBackground) {
      RemoveMasterId(request.id);
    }
  }
  return evicted;
}

std::vector<Request> EnvelopeScheduler::EvictExpired(double now) {
  std::vector<Request> expired = Scheduler::EvictExpired(now);
  // Expired requests leave the master cache like any other pending
  // removal; only client requests live there (background never expires).
  for (const Request& request : expired) RemoveMasterId(request.id);
  return expired;
}

void EnvelopeScheduler::AbsorbStagedToPending() {
  for (const Request& request : staged_) {
    pending_.push_back(request);
    InsertMaster(request);
  }
  staged_.clear();
}

void EnvelopeScheduler::DeferInOrder(const Request& request) {
  // A trimmed block's riders go back to the background queue, not the
  // client pending list (they must never pin a client envelope).
  std::deque<Request>& queue =
      request.cls == RequestClass::kBackground ? background_ : pending_;
  auto it = std::lower_bound(
      queue.begin(), queue.end(), request.id,
      [](const Request& r, RequestId id) { return r.id < id; });
  queue.insert(it, request);
  if (request.cls != RequestClass::kBackground) InsertMaster(request);
}

void EnvelopeScheduler::ShrinkActiveSweep(TapeId extended_tape,
                                          Position committed_head) {
  const TapeId mounted = jukebox_->mounted_tape();
  if (mounted == kInvalidTape || mounted == extended_tape) return;
  const int64_t block_mb = jukebox_->config().block_size_mb;
  while (!sweep_.empty()) {
    // The sweep's outermost block: end of the forward phase or start of the
    // reverse phase, whichever is farther out.
    Position edge_pos = -1;
    BlockId edge_block = kInvalidBlock;
    if (!sweep_.forward().empty()) {
      edge_pos = sweep_.forward().back().position;
      edge_block = sweep_.forward().back().block;
    }
    if (!sweep_.reverse().empty() &&
        sweep_.reverse().front().position > edge_pos) {
      edge_pos = sweep_.reverse().front().position;
      edge_block = sweep_.reverse().front().block;
    }
    // Shrinking only applies when the envelope edge is a scheduled block.
    if (edge_pos + block_mb !=
        envelope_[static_cast<size_t>(mounted)]) {
      return;
    }
    const Replica* replica =
        catalog_->LiveReplicaOn(edge_block, extended_tape);
    if (replica == nullptr ||
        replica->position + block_mb >
            envelope_[static_cast<size_t>(extended_tape)]) {
      return;
    }
    // Move the edge block's requests off the active sweep; they will be
    // rescheduled (normally on `extended_tape`) at the next reschedule.
    std::optional<ServiceEntry> removed = sweep_.RemoveBlock(edge_block);
    TJ_CHECK(removed.has_value());
    ++counters_.sweep_trims;
    for (const Request& request : removed->requests) DeferInOrder(request);
    Position new_edge = std::max<Position>(committed_head, 0);
    if (!sweep_.forward().empty()) {
      new_edge = std::max(new_edge,
                          sweep_.forward().back().position + block_mb);
    }
    if (!sweep_.reverse().empty()) {
      new_edge = std::max(new_edge,
                          sweep_.reverse().front().position + block_mb);
    }
    envelope_[static_cast<size_t>(mounted)] = new_edge;
  }
}

void EnvelopeScheduler::OnArrivalNow(const Request& request,
                                     Position committed_head) {
  const TapeId mounted = jukebox_->mounted_tape();
  if (!envelope_valid_ || sweep_.empty() || mounted == kInvalidTape) {
    pending_.push_back(request);
    InsertMaster(request);
    return;
  }
  const int64_t block_mb = jukebox_->config().block_size_mb;
  const TimingModel& model = jukebox_->model();

  // (a) Satisfiable by the mounted tape within the upper envelope: insert
  // into the running sweep like the dynamic incremental scheduler.
  const Replica* on_mounted = catalog_->LiveReplicaOn(request.block, mounted);
  if (on_mounted != nullptr &&
      on_mounted->position + block_mb <=
          envelope_[static_cast<size_t>(mounted)] &&
      sweep_.InsertRequest(request, on_mounted->position, committed_head,
                           options_.allow_reverse_phase)) {
    ++counters_.incremental_inserts;
    return;
  }

  // (b) A replica inside some tape's envelope: no extension needed; the
  // request waits for that tape's next visit.
  for (const Replica& replica : catalog_->ReplicasOf(request.block)) {
    if (!catalog_->IsAlive(replica)) continue;
    if (replica.position + block_mb <=
        envelope_[static_cast<size_t>(replica.tape)]) {
      pending_.push_back(request);
      InsertMaster(request);
      return;
    }
  }

  // (c) Outside the envelope everywhere: apply the extension step (3-5) to
  // this one request — pick the replica with the cheapest incremental cost.
  const Replica* best = nullptr;
  double best_cost = 0;
  for (const Replica& replica : catalog_->ReplicasOf(request.block)) {
    if (!catalog_->IsAlive(replica)) continue;
    const Position edge = envelope_[static_cast<size_t>(replica.tape)];
    const double surcharge =
        (edge == 0 && replica.tape != mounted) ? model.SwitchTime() : 0.0;
    const double cost =
        surcharge + model.LocateAndReadTime(edge, replica.position, block_mb) +
        model.LocateTime(replica.position + block_mb, edge);
    if (best == nullptr || cost < best_cost) {
      best = &replica;
      best_cost = cost;
    }
  }
  TJ_CHECK(best != nullptr);

  if (best->tape == mounted) {
    if (sweep_.InsertRequest(request, best->position, committed_head,
                             options_.allow_reverse_phase)) {
      ++counters_.incremental_inserts;
      ++counters_.incremental_extensions;
      envelope_[static_cast<size_t>(mounted)] =
          std::max(envelope_[static_cast<size_t>(mounted)],
                   best->position + block_mb);
      return;
    }
    pending_.push_back(request);
    InsertMaster(request);
    return;
  }
  // Extend the envelope on the winning tape; this can make the mounted
  // tape's outermost scheduled block redundant (step 5), trimming the
  // active sweep.
  ++counters_.incremental_extensions;
  envelope_[static_cast<size_t>(best->tape)] =
      std::max(envelope_[static_cast<size_t>(best->tape)],
               best->position + block_mb);
  if (options_.envelope_shrink) {
    ShrinkActiveSweep(best->tape, committed_head);
  }
  pending_.push_back(request);
  InsertMaster(request);
}

}  // namespace tapejuke
