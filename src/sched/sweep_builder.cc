#include "sched/sweep_builder.h"

#include <map>

#include "util/check.h"

namespace tapejuke {

void ExtractSweepForTape(const Catalog& catalog, TapeId tape,
                         Position start_head, int64_t block_size_mb,
                         const Position* envelope_limit,
                         std::deque<Request>* pending, Sweep* sweep) {
  TJ_CHECK(pending != nullptr);
  TJ_CHECK(sweep != nullptr);
  TJ_CHECK(sweep->empty()) << "sweep must be drained before rebuilding";

  std::map<Position, ServiceEntry> by_position;
  std::deque<Request> keep;
  for (const Request& request : *pending) {
    const Replica* replica = catalog.LiveReplicaOn(request.block, tape);
    const bool within =
        replica != nullptr &&
        (envelope_limit == nullptr ||
         replica->position + block_size_mb <= *envelope_limit);
    if (!within) {
      keep.push_back(request);
      continue;
    }
    ServiceEntry& entry = by_position[replica->position];
    entry.position = replica->position;
    entry.block = request.block;
    entry.requests.push_back(request);
  }
  *pending = std::move(keep);

  // Forward phase: ascending positions >= the start head.
  for (const auto& [position, entry] : by_position) {
    if (position >= start_head) sweep->AppendForward(entry);
  }
  // Reverse phase: descending positions below the start head.
  for (auto it = by_position.rbegin(); it != by_position.rend(); ++it) {
    if (it->first < start_head) sweep->AppendReverse(it->second);
  }
}

}  // namespace tapejuke
