#include "sched/sweep_builder.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace tapejuke {

void ExtractSweepForTape(const Catalog& catalog, TapeId tape,
                         Position start_head, int64_t block_size_mb,
                         const Position* envelope_limit,
                         std::deque<Request>* pending, Sweep* sweep) {
  TJ_CHECK(pending != nullptr);
  TJ_CHECK(sweep != nullptr);
  TJ_CHECK(sweep->empty()) << "sweep must be drained before rebuilding";

  // Partition the pending list into extracted (position-tagged) and kept
  // requests, then group the extracted ones by position with one stable
  // sort: same result as a position-keyed ordered map, without the
  // per-distinct-position node allocations. Stability keeps each entry's
  // requests in pending order.
  struct Tagged {
    Position position;
    Request request;
  };
  std::vector<Tagged> extracted;
  extracted.reserve(pending->size());
  std::deque<Request> keep;
  for (const Request& request : *pending) {
    const Replica* replica = catalog.LiveReplicaOn(request.block, tape);
    const bool within =
        replica != nullptr &&
        (envelope_limit == nullptr ||
         replica->position + block_size_mb <= *envelope_limit);
    if (!within) {
      keep.push_back(request);
      continue;
    }
    extracted.push_back(Tagged{replica->position, request});
  }
  *pending = std::move(keep);
  std::stable_sort(extracted.begin(), extracted.end(),
                   [](const Tagged& a, const Tagged& b) {
                     return a.position < b.position;
                   });

  // One entry per distinct position (one block per position per tape).
  // Forward phase: ascending positions >= the start head; reverse phase:
  // descending positions below it.
  const auto build_entry = [&](size_t begin, size_t end) {
    ServiceEntry entry;
    entry.position = extracted[begin].position;
    entry.block = extracted[begin].request.block;
    entry.requests.reserve(end - begin);
    for (size_t k = begin; k < end; ++k) {
      entry.requests.push_back(extracted[k].request);
    }
    return entry;
  };
  size_t reverse_end = 0;  // first index with position >= start_head
  for (size_t i = 0; i < extracted.size();) {
    size_t j = i + 1;
    while (j < extracted.size() &&
           extracted[j].position == extracted[i].position) {
      ++j;
    }
    if (extracted[i].position >= start_head) {
      sweep->AppendForward(build_entry(i, j));
    } else {
      reverse_end = j;
    }
    i = j;
  }
  for (size_t end = reverse_end; end > 0;) {
    size_t begin = end - 1;
    while (begin > 0 &&
           extracted[begin - 1].position == extracted[end - 1].position) {
      --begin;
    }
    sweep->AppendReverse(build_entry(begin, end));
    end = begin;
  }
}

}  // namespace tapejuke
