#include "sched/validating_scheduler.h"

#include <vector>

#include "sched/envelope_scheduler.h"
#include "util/check.h"

namespace tapejuke {

ValidatingScheduler::ValidatingScheduler(std::unique_ptr<Scheduler> inner,
                                         const Jukebox* jukebox,
                                         const Catalog* catalog)
    : Scheduler(jukebox, catalog, SchedulerOptions{}),
      inner_(std::move(inner)) {
  TJ_CHECK(inner_ != nullptr);
}

std::string ValidatingScheduler::name() const {
  return "validated " + inner_->name();
}

void ValidatingScheduler::OnArrivalNow(const Request& request,
                                       Position committed_head) {
  TJ_CHECK(request.cls == RequestClass::kClient)
      << "background requests must use EnqueueBackground";
  TJ_CHECK(outstanding_.insert(request.id))
      << "request" << request.id << "enqueued twice";
  ++arrivals_seen_;
  inner_->OnArrival(request, committed_head);
}

void ValidatingScheduler::EnqueueBackground(const Request& request) {
  TJ_CHECK(request.cls == RequestClass::kBackground)
      << "client requests must use OnArrival";
  TJ_CHECK(outstanding_.insert(request.id))
      << "request" << request.id << "enqueued twice";
  ++arrivals_seen_;
  inner_->EnqueueBackground(request);
}

TapeId ValidatingScheduler::MajorReschedule() {
  TJ_CHECK(inner_->sweep_empty())
      << "major reschedule with a non-empty sweep";
  // The oracle must see the same pending snapshot the inner reschedule
  // will use, so staged arrival batches are applied first.
  inner_->FlushArrivals();
  // Envelope oracle: run the incremental and from-scratch extension kernels
  // on the same pending snapshot the inner reschedule is about to use and
  // TJ_CHECK they agree (byte-identical envelopes and assignments).
  if (const auto* envelope =
          dynamic_cast<const EnvelopeScheduler*>(inner_.get());
      envelope != nullptr && !inner_->pending().empty()) {
    envelope->CrossCheckEnvelope(std::vector<Request>(
        inner_->pending().begin(), inner_->pending().end()));
  }
  const TapeId tape = inner_->MajorReschedule();
  if (tape == kInvalidTape) {
    TJ_CHECK(!inner_->HasWork())
        << "scheduler declined to schedule while work was pending";
    return tape;
  }
  TJ_CHECK(tape >= 0 && tape < jukebox_->num_tapes());
  TJ_CHECK(!inner_->sweep_empty())
      << "major rescheduler chose a tape but built no sweep";
  sweep_tape_ = tape;
  mount_head_ = (tape == jukebox_->mounted_tape()) ? jukebox_->head() : 0;
  last_position_ = -1;
  in_reverse_ = false;
  return tape;
}

std::vector<Request> ValidatingScheduler::DrainSweep() {
  std::vector<Request> drained = inner_->DrainSweep();
  TJ_CHECK(inner_->sweep_empty());
  for (const Request& request : drained) {
    TJ_CHECK(outstanding_.erase(request.id) == 1)
        << "drained request" << request.id << "was not outstanding";
  }
  // The sweep is gone; any pop before the next major reschedule is a bug.
  sweep_tape_ = kInvalidTape;
  return drained;
}

std::vector<Request> ValidatingScheduler::EvictUnservablePending() {
  std::vector<Request> evicted = inner_->EvictUnservablePending();
  for (const Request& request : evicted) {
    TJ_CHECK(outstanding_.erase(request.id) == 1)
        << "evicted request" << request.id << "was not outstanding";
  }
  return evicted;
}

std::vector<Request> ValidatingScheduler::EvictExpired(double now) {
  std::vector<Request> expired = inner_->EvictExpired(now);
  for (const Request& request : expired) {
    TJ_CHECK(request.deadline > 0 && request.deadline <= now)
        << "request" << request.id << "evicted before its deadline";
    TJ_CHECK(outstanding_.erase(request.id) == 1)
        << "expired request" << request.id << "was not outstanding";
  }
  return expired;
}

std::optional<ServiceEntry> ValidatingScheduler::PopNext() {
  std::optional<ServiceEntry> entry = inner_->PopNext();
  if (!entry.has_value()) return entry;
  TJ_CHECK_NE(sweep_tape_, kInvalidTape)
      << "entry popped before any major reschedule";

  // The read must target a real replica of the block on the chosen tape.
  const Replica* replica =
      catalog_->ReplicaOn(entry->block, sweep_tape_);
  TJ_CHECK(replica != nullptr)
      << "block" << entry->block << "has no replica on tape" << sweep_tape_;
  TJ_CHECK_EQ(replica->position, entry->position);

  // Single-sweep order: ascending positions >= the mount head, then a
  // descending reverse phase.
  // A request arriving while a block is being read may legally trigger a
  // second read of the same position (a one-block reverse locate), so the
  // descent checks are <=, not <.
  if (!in_reverse_) {
    const bool forward_ok =
        entry->position >= mount_head_ && entry->position > last_position_;
    if (!forward_ok) {
      in_reverse_ = true;  // the sweep turned around
      TJ_CHECK(last_position_ == -1 || entry->position <= last_position_)
          << "reverse phase must descend: " << entry->position << " after "
          << last_position_;
    }
  } else {
    TJ_CHECK_LE(entry->position, last_position_)
        << "reverse phase must descend";
  }
  last_position_ = entry->position;

  // Every satisfied request must be outstanding, exactly once.
  TJ_CHECK(!entry->requests.empty()) << "service entry with no requests";
  for (const Request& request : entry->requests) {
    TJ_CHECK_EQ(request.block, entry->block);
    TJ_CHECK(outstanding_.erase(request.id) == 1)
        << "request" << request.id << "served twice or never enqueued";
    ++requests_served_;
  }
  return entry;
}

}  // namespace tapejuke
