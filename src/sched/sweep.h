// Sweep: the retrieval schedule ("service list") for one mounted tape.
//
// A sweep executes in a single pass over the tape (paper §2.2): a forward
// phase visiting ascending positions, followed by a reverse phase visiting
// descending positions. Entries group all requests satisfied by one block
// read. The incremental (dynamic) schedulers insert newly arrived requests
// into whichever phase still lies ahead of the head.

#ifndef TAPEJUKE_SCHED_SWEEP_H_
#define TAPEJUKE_SCHED_SWEEP_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "sched/request.h"
#include "tape/types.h"
#include "util/flat_hash.h"

namespace tapejuke {

/// One block read in a sweep, satisfying one or more requests.
struct ServiceEntry {
  Position position = -1;  ///< block start position on the mounted tape
  BlockId block = kInvalidBlock;
  std::vector<Request> requests;  ///< requests satisfied by this read
};

/// Ordered service list with a forward and a reverse phase.
class Sweep {
 public:
  enum class Phase { kForward, kReverse };

  Sweep() = default;

  bool empty() const { return forward_.empty() && reverse_.empty(); }
  size_t size() const { return forward_.size() + reverse_.size(); }

  /// The phase the next popped entry belongs to.
  Phase phase() const {
    return forward_.empty() ? Phase::kReverse : Phase::kForward;
  }

  /// Clears both phases.
  void Clear();

  /// Appends an entry to the forward phase; positions must be appended in
  /// strictly ascending order.
  void AppendForward(ServiceEntry entry);

  /// Appends an entry to the reverse phase; positions must be appended in
  /// strictly descending order.
  void AppendReverse(ServiceEntry entry);

  /// Removes and returns the next entry to service (forward first).
  std::optional<ServiceEntry> Pop();

  /// Inserts `request` (for its block at `position` on the mounted tape)
  /// if that point still lies ahead of `committed_head` in the remaining
  /// trajectory of the sweep: ahead in the forward phase (position >=
  /// committed_head while the forward phase is active), or ahead in the
  /// reverse phase (position < committed_head). If the block is already
  /// scheduled, the request joins the existing entry for free. If
  /// `allow_reverse` is false, insertion into the reverse phase is refused
  /// (ablation knob). Returns true if the request was absorbed.
  bool InsertRequest(const Request& request, Position position,
                     Position committed_head, bool allow_reverse);

  /// True if `position` still lies ahead of `committed_head` (an
  /// InsertRequest at this position would succeed).
  bool IsAhead(Position position, Position committed_head,
               bool allow_reverse) const;

  /// All entries in execution order (forward then reverse); for inspection.
  std::vector<ServiceEntry> Entries() const;

  /// Finds the scheduled entry for `block`, if any (either phase).
  const ServiceEntry* FindBlock(BlockId block) const;

  /// Removes the entry for `block` (either phase); returns the removed
  /// entry's requests, or nullopt if not scheduled.
  std::optional<ServiceEntry> RemoveBlock(BlockId block);

  /// Positions of all remaining entries in execution order.
  std::vector<Position> Positions() const;

  const std::deque<ServiceEntry>& forward() const { return forward_; }
  const std::deque<ServiceEntry>& reverse() const { return reverse_; }

 private:
  /// The entry holding `position`, in either phase (both phases are
  /// position-sorted, so this is two binary searches). nullptr if absent.
  ServiceEntry* EntryAt(Position position);

  std::deque<ServiceEntry> forward_;  ///< ascending positions
  std::deque<ServiceEntry> reverse_;  ///< descending positions
  /// Block index: block -> its entry's position. Keyed by position (not
  /// deque index) so pops and mid-phase insertions never invalidate it;
  /// the entry itself is recovered with a binary search. Makes the
  /// scheduled-block test in InsertRequest/FindBlock/RemoveBlock O(log n)
  /// instead of a linear walk of both phases.
  FlatMap<BlockId, Position> index_;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_SCHED_SWEEP_H_
