// Scheduler interface (paper §2.2 service model).
//
// A scheduling algorithm is a *major rescheduler* that runs at tape-switch
// time (whenever the service list is empty): it chooses the next tape and
// builds a retrieval sweep from the pending list; plus an *incremental
// scheduler* that handles requests arriving during sweep execution, either
// inserting them into the running sweep or deferring them to the pending
// list. The simulator drives this interface through the four-step service
// cycle.

#ifndef TAPEJUKE_SCHED_SCHEDULER_H_
#define TAPEJUKE_SCHED_SCHEDULER_H_

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "layout/catalog.h"
#include "obs/decision.h"
#include "sched/request.h"
#include "sched/schedule_cost.h"
#include "sched/sweep.h"
#include "tape/jukebox.h"
#include "tape/types.h"

namespace tapejuke {

/// Tape selection policy applied by the major rescheduler (paper §3.1).
enum class TapePolicy {
  kRoundRobin,          ///< next tape in jukebox order with pending work
  kMaxRequests,         ///< tape with the most satisfiable pending requests
  kMaxBandwidth,        ///< tape with the highest effective bandwidth
  kOldestMaxRequests,   ///< serves the oldest request; ties by max requests
  kOldestMaxBandwidth,  ///< serves the oldest request; ties by max bandwidth
};

/// Short lowercase name ("max-bandwidth", ...) for display.
const char* TapePolicyName(TapePolicy policy);

/// Behaviour knobs shared by all schedulers (ablation switches).
struct SchedulerOptions {
  /// Allow the incremental scheduler to insert below-head arrivals into the
  /// sweep's reverse phase (on-the-way-back-down reads). Disabling this
  /// restricts insertion to the forward phase (ablation).
  bool allow_reverse_phase = true;
  /// Enable step 5 (envelope shrinking) of the envelope-extension
  /// algorithm. Disabling it is the abl_envelope_shrink ablation.
  bool envelope_shrink = true;
  /// Use the paper's replica tie-break in envelope step 2 (prefer the
  /// mounted tape, then the tape with the most scheduled requests, then
  /// jukebox order). When false, always take the first replica in jukebox
  /// order (abl_replica_choice ablation).
  bool paper_replica_tiebreak = true;
  /// Debug oracle for the envelope scheduler: cross-check the incremental
  /// extension kernel against the from-scratch reference computation on
  /// every major reschedule, and validate the incrementally maintained
  /// extension lists / cached tape scores on every extension round.
  /// TJ_CHECK-fails on any divergence. Expensive; test/debug builds only.
  bool validate_envelope = false;
  /// Envelope fast path: keep per-tape candidate scores on an indexed
  /// max-heap so each extension round reads the best tape from the top and
  /// re-heapifies only the dirty tapes, instead of a linear scan over all
  /// tapes. Exactly equivalent to the scan (the near-equal tie group at the
  /// heap top is re-run through the scan's tie-break); validate_envelope
  /// additionally checks the two selections against each other per round.
  bool use_selection_heap = true;
  /// Envelope fast path: maintain the per-tape extension lists (sorted
  /// replica candidates of the pending requests) persistently across major
  /// reschedules, so a reschedule merges a small sorted tail instead of
  /// re-enumerating and re-sorting every pending replica. Guarded by the
  /// catalog mutation generation (any replica death/repair/add forces a
  /// full rebuild). Exactly equivalent; oracle-checked like the rest.
  bool persistent_ext_cache = true;
  /// Batched rescheduling: when > 0, arrivals are staged and only applied
  /// to the scheduler once `arrival_batch` of them have accumulated (or a
  /// major reschedule / fault event flushes the batch early). 0 preserves
  /// the legacy per-arrival behaviour. Staged requests still count toward
  /// pending_size()/HasWork(). This is a policy knob, not an equivalence-
  /// preserving fast path: it trades arrival-insertion opportunities for
  /// amortized scheduling cost at deep queues.
  int32_t arrival_batch = 0;
  /// Envelope epoch rescheduling: when > 1, one upper-envelope computation
  /// is reused for up to `reschedule_epoch` consecutive tape visits — the
  /// follow-up visits serve in-envelope pending work without re-running
  /// the extension kernel, falling back to a full recompute when the
  /// envelope has no servable work left. 1 preserves legacy behaviour
  /// (recompute on every major reschedule). Policy knob, like
  /// arrival_batch.
  int32_t reschedule_epoch = 1;
};

/// Candidate work available on one tape, used for tape selection.
struct TapeCandidate {
  TapeId tape = kInvalidTape;
  int64_t num_requests = 0;          ///< pending requests satisfiable here
  std::vector<Position> positions;   ///< block positions (may repeat)
  bool serves_oldest = false;        ///< can satisfy the oldest request
};

/// Applies `policy` to the candidate tapes. `mounted`/`head` describe the
/// drive state (for bandwidth estimates and jukebox-order tie-breaks).
/// Returns kInvalidTape if no candidate has requests.
TapeId SelectTape(TapePolicy policy, const std::vector<TapeCandidate>& tapes,
                  TapeId mounted, Position head, int32_t num_tapes,
                  const ScheduleCost& cost);

/// Base class holding the pending list, the active sweep, and shared
/// helpers. Subclasses implement tape selection + sweep construction and
/// the incremental arrival rule.
class Scheduler {
 public:
  /// `jukebox` and `catalog` must outlive the scheduler.
  Scheduler(const Jukebox* jukebox, const Catalog* catalog,
            const SchedulerOptions& options);
  virtual ~Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Human-readable algorithm name ("dynamic max-bandwidth", ...).
  virtual std::string name() const = 0;

  /// Incremental scheduler: a request arrived. `committed_head` is the head
  /// position after the operation currently in flight (== the current head
  /// when the drive is idle); insertions may only target positions still
  /// ahead of it. With arrival_batch > 0 the request is staged and applied
  /// later (see FlushArrivals); otherwise it is applied immediately via the
  /// subclass's OnArrivalNow.
  void OnArrival(const Request& request, Position committed_head);

  /// Applies every staged arrival (in arrival order) through the normal
  /// incremental-scheduling path, using the most recent committed head.
  /// Positions ahead of the latest committed head are ahead of every
  /// earlier head too, so the late insertions remain legal. No-op when
  /// nothing is staged.
  void FlushArrivals();

  /// Major rescheduler: called when the service list is empty. Chooses the
  /// next tape, moves the requests it will serve from the pending list into
  /// the sweep, and returns the tape to mount (kInvalidTape if there is no
  /// pending work).
  virtual TapeId MajorReschedule() = 0;

  /// Pops the next service entry of the active sweep. (Virtual so
  /// decorators like ValidatingScheduler can intercept the execution
  /// stream.)
  virtual std::optional<ServiceEntry> PopNext() { return sweep_.Pop(); }

  /// Enqueues a background (repair-source) read. Background requests are
  /// never handed to OnArrival: they are ordered strictly behind client
  /// work — MajorReschedule only builds a sweep for them when the pending
  /// list is empty — but they piggyback for free on any client sweep that
  /// visits a tape holding a live replica of their block.
  virtual void EnqueueBackground(const Request& request);

  virtual bool sweep_empty() const { return sweep_.empty(); }
  virtual size_t sweep_size() const { return sweep_.size(); }
  virtual size_t pending_size() const {
    return pending_.size() + staged_.size();
  }
  virtual size_t background_size() const { return background_.size(); }
  virtual bool HasWork() const {
    return !pending_.empty() || !staged_.empty() || !sweep_.empty() ||
           !background_.empty();
  }

  /// Arrivals staged by the batching layer but not yet applied.
  size_t staged_size() const { return staged_.size(); }

  /// Fault recovery: abandons the active sweep and returns every request it
  /// held, so the simulator can fail them over (the mounted tape died or
  /// its drive failed). Subclasses with derived sweep state override to
  /// invalidate it.
  virtual std::vector<Request> DrainSweep();

  /// Fault recovery: removes and returns every pending request whose block
  /// no longer has any live replica (the simulator completes them with an
  /// error). Called after replicas are masked dead.
  virtual std::vector<Request> EvictUnservablePending();

  /// Overload protection: removes and returns every pending (or staged)
  /// request whose deadline is at or before `now` (the simulator completes
  /// them as expired). Deadlines are a queueing bound, so the active sweep
  /// is left alone — a request already committed to a sweep finishes
  /// normally. Background requests never carry deadlines.
  virtual std::vector<Request> EvictExpired(double now);

  /// The active sweep (virtual so decorators expose the wrapped one; the
  /// simulator reads it to trace scheduled-into-sweep transitions).
  virtual const Sweep& sweep() const { return sweep_; }
  const std::deque<Request>& pending() const { return pending_; }
  const std::deque<Request>& background() const { return background_; }

  /// Observability: attaches a sink that receives one DecisionRecord per
  /// major reschedule (candidates, scores, the chosen tape). Null (the
  /// default) detaches; with no sink attached the hook costs one branch.
  /// Decorators override to forward to the wrapped scheduler.
  virtual void set_decision_sink(obs::DecisionSink* sink) {
    decision_sink_ = sink;
  }
  obs::DecisionSink* decision_sink() const { return decision_sink_; }

 protected:
  /// The subclass's incremental-scheduling rule, applied to one request
  /// (immediately, or deferred through the staging buffer — see OnArrival).
  virtual void OnArrivalNow(const Request& request,
                            Position committed_head) = 0;

  /// Moves staged arrivals straight onto the pending list, bypassing
  /// OnArrivalNow. Used on the fault paths (DrainSweep /
  /// EvictUnservablePending), where sweep insertion would race the drain.
  /// Subclasses that mirror the pending list in derived state override to
  /// keep it consistent.
  virtual void AbsorbStagedToPending();

  /// MajorReschedule fallback when no client work is pending: picks the
  /// tape satisfying the most background requests (ties in jukebox order)
  /// and builds their sweep. Returns kInvalidTape when the background
  /// queue is empty too.
  TapeId BackgroundReschedule();

  /// Folds every queued background request with a live replica on `tape`
  /// into the just-built sweep (free piggyback riders on the client pass);
  /// the rest stay queued.
  void PiggybackBackground(TapeId tape);

  /// Builds per-tape candidates from the current pending list.
  std::vector<TapeCandidate> BuildCandidates() const;

  /// Pushes one DecisionRecord to the attached sink; no-op without one.
  /// Call after tape selection but before extracting the sweep, so queue
  /// depths reflect the decision's inputs. Candidates without work are
  /// dropped; the rest are scored with the bandwidth estimator.
  void RecordDecision(bool background, TapeId chosen,
                      const std::vector<TapeCandidate>& candidates,
                      int64_t envelope_rounds = 0,
                      int64_t tapes_rescored = 0) const;

  /// Removes every pending request with a replica on `tape` and builds the
  /// sweep for them (grouped by block, forward phase from the start head,
  /// below-head blocks in the reverse phase). The start head is the current
  /// drive head if `tape` is mounted, else 0. `within_envelope`, if
  /// non-null, restricts to replicas whose block end is <= the envelope
  /// value for `tape`.
  void ExtractAndBuildSweep(TapeId tape, const Position* envelope_limit);

  const Jukebox* jukebox_;
  const Catalog* catalog_;
  SchedulerOptions options_;
  ScheduleCost cost_;
  std::deque<Request> pending_;
  std::deque<Request> background_;
  Sweep sweep_;
  obs::DecisionSink* decision_sink_ = nullptr;

  /// Arrival-batching buffer (see SchedulerOptions::arrival_batch) and the
  /// most recent committed head, used when the batch is flushed.
  std::vector<Request> staged_;
  Position staged_head_ = 0;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_SCHED_SCHEDULER_H_
