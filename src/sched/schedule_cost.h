// Schedule cost evaluation: execution time C(S) and effective bandwidth.
//
// The paper defines the effective bandwidth of a schedule as the total bytes
// retrieved divided by the seconds to perform the retrieval, where the time
// includes tape-switch overhead (rewind, eject, robot, load) and schedule
// execution time (locates and reads through the service list), evaluated
// with the §2.1 timing model. This evaluator is shared by the max-bandwidth
// tape-selection policies, the envelope-extension algorithm's incremental
// bandwidths, and the theory tests around Theorems 1-2.

#ifndef TAPEJUKE_SCHED_SCHEDULE_COST_H_
#define TAPEJUKE_SCHED_SCHEDULE_COST_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "tape/timing_model.h"
#include "tape/types.h"

namespace tapejuke {

/// Relative-epsilon equality for schedule cost / bandwidth comparisons.
/// Cost sums accumulated along different code paths can disagree in the
/// last few ulps even when mathematically equal, so tie-break rules must
/// never compare these doubles exactly (a `==` tie essentially never
/// fires and makes the winner platform-dependent).
inline bool NearlyEqual(double a, double b, double rel_eps = 1e-9) {
  return std::abs(a - b) <= rel_eps * std::max(std::abs(a), std::abs(b));
}

/// Cost breakdown of visiting one tape and executing a sweep on it.
struct SweepCostBreakdown {
  double switch_seconds = 0;     ///< rewind + eject + robot + load, if any
  double execution_seconds = 0;  ///< locates + reads in the service list
  int64_t blocks = 0;            ///< distinct blocks read
  int64_t bytes_mb = 0;          ///< blocks * block size

  double TotalSeconds() const { return switch_seconds + execution_seconds; }

  /// Effective bandwidth in MB/s; 0 for an empty or zero-time schedule.
  double BandwidthMBps() const {
    const double total = TotalSeconds();
    return total > 0 ? static_cast<double>(bytes_mb) / total : 0.0;
  }
};

/// Evaluates schedule costs against a timing model and fixed block size.
class ScheduleCost {
 public:
  /// `model` must outlive this object.
  ScheduleCost(const TimingModel* model, int64_t block_size_mb);

  int64_t block_size_mb() const { return block_size_mb_; }
  const TimingModel& model() const { return *model_; }

  /// Time to execute reads at `ordered_positions` (already in execution
  /// order) starting with the head at `start_head`: the sum of locate and
  /// read times, with read startup determined by each locate's direction.
  double ExecutionSeconds(Position start_head,
                          const std::vector<Position>& ordered_positions) const;

  /// Arranges unordered block positions into single-sweep execution order
  /// from `head`: ascending positions >= head (forward phase), then
  /// descending positions < head (reverse phase).
  static std::vector<Position> SweepOrder(Position head,
                                          std::vector<Position> positions);

  /// Full cost of servicing the distinct `positions` (unordered) on tape
  /// `target` when `mounted` (with head at `head`) is currently in the
  /// drive: tape-switch overhead if target differs, then a single sweep.
  SweepCostBreakdown EstimateVisit(TapeId target, TapeId mounted,
                                   Position head,
                                   std::vector<Position> positions) const;

 private:
  const TimingModel* model_;
  int64_t block_size_mb_;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_SCHED_SCHEDULE_COST_H_
