#include "sched/sweep.h"

#include <algorithm>

#include "util/check.h"

namespace tapejuke {

void Sweep::Clear() {
  forward_.clear();
  reverse_.clear();
  index_.clear();
}

void Sweep::AppendForward(ServiceEntry entry) {
  TJ_CHECK(forward_.empty() || forward_.back().position < entry.position)
      << "forward phase must be appended in ascending position order";
  const bool inserted = index_.insert(entry.block, entry.position);
  TJ_DCHECK(inserted) << "block scheduled twice";
  forward_.push_back(std::move(entry));
}

void Sweep::AppendReverse(ServiceEntry entry) {
  TJ_CHECK(reverse_.empty() || reverse_.back().position > entry.position)
      << "reverse phase must be appended in descending position order";
  const bool inserted = index_.insert(entry.block, entry.position);
  TJ_DCHECK(inserted) << "block scheduled twice";
  reverse_.push_back(std::move(entry));
}

std::optional<ServiceEntry> Sweep::Pop() {
  if (!forward_.empty()) {
    ServiceEntry entry = std::move(forward_.front());
    forward_.pop_front();
    index_.erase(entry.block);
    return entry;
  }
  if (!reverse_.empty()) {
    ServiceEntry entry = std::move(reverse_.front());
    reverse_.pop_front();
    index_.erase(entry.block);
    return entry;
  }
  return std::nullopt;
}

bool Sweep::IsAhead(Position position, Position committed_head,
                    bool allow_reverse) const {
  if (empty()) return false;
  if (phase() == Phase::kForward) {
    if (position >= committed_head) return true;
    return allow_reverse;  // joins (or opens) the reverse phase
  }
  // Reverse phase: the head is moving down; only lower positions remain.
  return allow_reverse && position < committed_head;
}

ServiceEntry* Sweep::EntryAt(Position position) {
  const auto fit = std::lower_bound(
      forward_.begin(), forward_.end(), position,
      [](const ServiceEntry& e, Position p) { return e.position < p; });
  if (fit != forward_.end() && fit->position == position) return &*fit;
  const auto rit = std::lower_bound(
      reverse_.begin(), reverse_.end(), position,
      [](const ServiceEntry& e, Position p) { return e.position > p; });
  if (rit != reverse_.end() && rit->position == position) return &*rit;
  return nullptr;
}

bool Sweep::InsertRequest(const Request& request, Position position,
                          Position committed_head, bool allow_reverse) {
  // A read already scheduled for this block satisfies the request for free.
  if (const auto it = index_.find(request.block); it != index_.end()) {
    ServiceEntry* entry = EntryAt(it->second);
    TJ_CHECK(entry != nullptr && entry->block == request.block)
        << "sweep block index out of sync for block" << request.block;
    entry->requests.push_back(request);
    return true;
  }
  if (!IsAhead(position, committed_head, allow_reverse)) return false;

  ServiceEntry entry{position, request.block, {request}};
  if (phase() == Phase::kForward && position >= committed_head) {
    auto it = std::lower_bound(
        forward_.begin(), forward_.end(), position,
        [](const ServiceEntry& e, Position p) { return e.position < p; });
    TJ_CHECK(it == forward_.end() || it->position != position)
        << "two blocks cannot share position" << position;
    forward_.insert(it, std::move(entry));
    index_.insert(request.block, position);
    return true;
  }
  // Reverse phase insertion (descending order).
  auto it = std::lower_bound(
      reverse_.begin(), reverse_.end(), position,
      [](const ServiceEntry& e, Position p) { return e.position > p; });
  TJ_CHECK(it == reverse_.end() || it->position != position)
      << "two blocks cannot share position" << position;
  reverse_.insert(it, std::move(entry));
  index_.insert(request.block, position);
  return true;
}

std::vector<ServiceEntry> Sweep::Entries() const {
  std::vector<ServiceEntry> all(forward_.begin(), forward_.end());
  all.insert(all.end(), reverse_.begin(), reverse_.end());
  return all;
}

const ServiceEntry* Sweep::FindBlock(BlockId block) const {
  const auto it = index_.find(block);
  if (it == index_.end()) return nullptr;
  const ServiceEntry* entry = const_cast<Sweep*>(this)->EntryAt(it->second);
  TJ_CHECK(entry != nullptr && entry->block == block)
      << "sweep block index out of sync for block" << block;
  return entry;
}

std::optional<ServiceEntry> Sweep::RemoveBlock(BlockId block) {
  const auto it = index_.find(block);
  if (it == index_.end()) return std::nullopt;
  const Position position = it->second;
  index_.erase(block);
  const auto fit = std::lower_bound(
      forward_.begin(), forward_.end(), position,
      [](const ServiceEntry& e, Position p) { return e.position < p; });
  if (fit != forward_.end() && fit->position == position) {
    ServiceEntry entry = std::move(*fit);
    forward_.erase(fit);
    return entry;
  }
  const auto rit = std::lower_bound(
      reverse_.begin(), reverse_.end(), position,
      [](const ServiceEntry& e, Position p) { return e.position > p; });
  TJ_CHECK(rit != reverse_.end() && rit->position == position)
      << "sweep block index out of sync for block" << block;
  ServiceEntry entry = std::move(*rit);
  reverse_.erase(rit);
  return entry;
}

std::vector<Position> Sweep::Positions() const {
  std::vector<Position> positions;
  positions.reserve(size());
  for (const auto& entry : forward_) positions.push_back(entry.position);
  for (const auto& entry : reverse_) positions.push_back(entry.position);
  return positions;
}

}  // namespace tapejuke
