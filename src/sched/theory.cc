#include "sched/theory.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "util/check.h"

namespace tapejuke {

double HarmonicNumber(int64_t n) {
  double h = 0;
  for (int64_t i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
  return h;
}

double ExtensionCost(const ExtensionProblem& problem,
                     const std::vector<int>& choice) {
  TJ_CHECK(problem.model != nullptr);
  TJ_CHECK_EQ(choice.size(), problem.options.size());
  const TimingModel& model = *problem.model;
  const int64_t block_mb = problem.block_mb;

  // Distinct positions visited per tape.
  std::map<TapeId, std::set<Position>> visits;
  for (size_t i = 0; i < choice.size(); ++i) {
    const auto& opts = problem.options[i];
    TJ_CHECK(choice[i] >= 0 &&
             static_cast<size_t>(choice[i]) < opts.size());
    const Replica& replica = opts[static_cast<size_t>(choice[i])];
    const Position edge =
        problem.initial_envelope[static_cast<size_t>(replica.tape)];
    TJ_CHECK_GE(replica.position, edge)
        << "extension options must lie outside the initial envelope";
    visits[replica.tape].insert(replica.position);
  }

  double total = 0;
  for (const auto& [tape, positions] : visits) {
    const Position edge =
        problem.initial_envelope[static_cast<size_t>(tape)];
    if (edge == 0 && tape != problem.mounted) total += model.SwitchTime();
    Position cursor = edge;
    for (const Position p : positions) {  // ascending
      total += model.LocateAndReadTime(cursor, p, block_mb);
      cursor = p + block_mb;
    }
    total += model.LocateTime(cursor, edge);
  }
  return total;
}

double OptimalExtensionCost(const ExtensionProblem& problem) {
  const size_t n = problem.options.size();
  if (n == 0) return 0;
  double combinations = 1;
  for (const auto& opts : problem.options) {
    TJ_CHECK(!opts.empty());
    combinations *= static_cast<double>(opts.size());
    TJ_CHECK_LE(combinations, 1e6)
        << "instance too large for exhaustive search";
  }
  std::vector<int> choice(n, 0);
  double best = std::numeric_limits<double>::infinity();
  for (;;) {
    best = std::min(best, ExtensionCost(problem, choice));
    // Odometer increment over the option product.
    size_t i = 0;
    while (i < n) {
      if (static_cast<size_t>(++choice[i]) < problem.options[i].size()) break;
      choice[i] = 0;
      ++i;
    }
    if (i == n) break;
  }
  return best;
}

double Theorem2Bound(const ExtensionProblem& problem, double optimal_cost,
                     int64_t n) {
  const TimingParams& p = problem.model->params();
  const double h_n = HarmonicNumber(n);
  const double c_s = p.fwd_short_startup;
  const double c_r =
      problem.model->ReadTime(problem.block_mb, LocateKind::kForward);
  const double c_d = p.fwd_long_startup - p.fwd_short_startup;
  return h_n * optimal_cost -
         static_cast<double>(n) * (h_n - 1.0) * (c_s + c_r) +
         static_cast<double>(n) * c_d;
}

}  // namespace tapejuke
