#include "sched/scheduler.h"

#include <algorithm>

#include "sched/sweep_builder.h"
#include "util/check.h"

namespace tapejuke {

const char* TapePolicyName(TapePolicy policy) {
  switch (policy) {
    case TapePolicy::kRoundRobin:
      return "round-robin";
    case TapePolicy::kMaxRequests:
      return "max-requests";
    case TapePolicy::kMaxBandwidth:
      return "max-bandwidth";
    case TapePolicy::kOldestMaxRequests:
      return "oldest-max-requests";
    case TapePolicy::kOldestMaxBandwidth:
      return "oldest-max-bandwidth";
  }
  return "unknown";
}

namespace {

/// Rank of `tape` in jukebox scan order starting at `origin` (origin itself
/// first). Lower rank wins ties.
int32_t ScanRank(TapeId tape, TapeId origin, int32_t num_tapes) {
  if (origin < 0) origin = 0;
  return (tape - origin + num_tapes) % num_tapes;
}

}  // namespace

TapeId SelectTape(TapePolicy policy, const std::vector<TapeCandidate>& tapes,
                  TapeId mounted, Position head, int32_t num_tapes,
                  const ScheduleCost& cost) {
  // Collect candidates with work, honoring the oldest-request restriction.
  const bool restrict_oldest = policy == TapePolicy::kOldestMaxRequests ||
                               policy == TapePolicy::kOldestMaxBandwidth;
  std::vector<const TapeCandidate*> eligible;
  for (const TapeCandidate& c : tapes) {
    if (c.num_requests <= 0) continue;
    if (restrict_oldest && !c.serves_oldest) continue;
    eligible.push_back(&c);
  }
  if (eligible.empty()) return kInvalidTape;

  if (policy == TapePolicy::kRoundRobin) {
    // Next tape in jukebox order strictly after the mounted tape (wrapping;
    // the mounted tape itself is considered last).
    const TapeCandidate* best = nullptr;
    int32_t best_rank = num_tapes + 1;
    for (const TapeCandidate* c : eligible) {
      // Rank 0 (the mounted tape) maps to num_tapes: visited last.
      int32_t rank = ScanRank(c->tape, mounted, num_tapes);
      if (rank == 0) rank = num_tapes;
      if (rank < best_rank) {
        best_rank = rank;
        best = c;
      }
    }
    return best->tape;
  }

  const bool by_bandwidth = policy == TapePolicy::kMaxBandwidth ||
                            policy == TapePolicy::kOldestMaxBandwidth;
  const TapeCandidate* best = nullptr;
  double best_score = -1;
  int32_t best_rank = num_tapes + 1;
  for (const TapeCandidate* c : eligible) {
    double score;
    if (by_bandwidth) {
      score =
          cost.EstimateVisit(c->tape, mounted, head, c->positions)
              .BandwidthMBps();
    } else {
      score = static_cast<double>(c->num_requests);
    }
    const int32_t rank = ScanRank(c->tape, mounted, num_tapes);
    if (score > best_score ||
        (score == best_score && rank < best_rank)) {
      best_score = score;
      best_rank = rank;
      best = c;
    }
  }
  return best->tape;
}

Scheduler::Scheduler(const Jukebox* jukebox, const Catalog* catalog,
                     const SchedulerOptions& options)
    : jukebox_(jukebox),
      catalog_(catalog),
      options_(options),
      cost_(&jukebox->model(), jukebox->config().block_size_mb) {
  TJ_CHECK(jukebox != nullptr);
  TJ_CHECK(catalog != nullptr);
}

void Scheduler::OnArrival(const Request& request, Position committed_head) {
  if (options_.arrival_batch <= 0) {
    OnArrivalNow(request, committed_head);
    return;
  }
  staged_.push_back(request);
  staged_head_ = committed_head;
  // Epoch edge: the arrival that fills the batch flushes it immediately.
  if (static_cast<int32_t>(staged_.size()) >= options_.arrival_batch) {
    FlushArrivals();
  }
}

void Scheduler::FlushArrivals() {
  if (staged_.empty()) return;
  // OnArrivalNow may re-enter scheduling paths that flush again (e.g. a
  // subclass deferring to pending); swap the buffer out first.
  std::vector<Request> batch;
  batch.swap(staged_);
  for (const Request& request : batch) {
    OnArrivalNow(request, staged_head_);
  }
}

void Scheduler::AbsorbStagedToPending() {
  for (const Request& request : staged_) pending_.push_back(request);
  staged_.clear();
}

std::vector<TapeCandidate> Scheduler::BuildCandidates() const {
  std::vector<TapeCandidate> candidates(
      static_cast<size_t>(jukebox_->num_tapes()));
  for (TapeId t = 0; t < jukebox_->num_tapes(); ++t) {
    candidates[static_cast<size_t>(t)].tape = t;
  }
  const BlockId oldest_block =
      pending_.empty() ? kInvalidBlock : pending_.front().block;
  for (const Request& request : pending_) {
    for (const Replica& replica : catalog_->ReplicasOf(request.block)) {
      if (!catalog_->IsAlive(replica)) continue;
      TapeCandidate& c = candidates[static_cast<size_t>(replica.tape)];
      ++c.num_requests;
      c.positions.push_back(replica.position);
      if (request.block == oldest_block && request.id == pending_.front().id) {
        c.serves_oldest = true;
      }
    }
  }
  return candidates;
}

void Scheduler::RecordDecision(bool background, TapeId chosen,
                               const std::vector<TapeCandidate>& candidates,
                               int64_t envelope_rounds,
                               int64_t tapes_rescored) const {
  if (decision_sink_ == nullptr) return;
  obs::DecisionRecord record;
  record.scheduler = name();
  record.background = background;
  record.chosen = chosen;
  record.mounted = jukebox_->mounted_tape();
  record.pending = static_cast<int64_t>(pending_.size());
  record.background_queue = static_cast<int64_t>(background_.size());
  record.envelope_rounds = envelope_rounds;
  record.tapes_rescored = tapes_rescored;
  const Position head = jukebox_->head();
  for (const TapeCandidate& c : candidates) {
    if (c.num_requests <= 0) continue;
    obs::TapeCandidateScore score;
    score.tape = c.tape;
    score.num_requests = c.num_requests;
    score.bandwidth_mbps =
        cost_.EstimateVisit(c.tape, record.mounted, head, c.positions)
            .BandwidthMBps();
    score.serves_oldest = c.serves_oldest;
    record.candidates.push_back(score);
  }
  decision_sink_->RecordDecision(record);
}

std::vector<Request> Scheduler::DrainSweep() {
  // A fault is forcing the sweep out mid-batch: staged arrivals go to the
  // pending list (inserting into the sweep being drained would be wasted
  // work — the drain would hand them right back).
  AbsorbStagedToPending();
  std::vector<Request> drained;
  while (std::optional<ServiceEntry> entry = sweep_.Pop()) {
    for (const Request& request : entry->requests) drained.push_back(request);
  }
  return drained;
}

std::vector<Request> Scheduler::EvictUnservablePending() {
  // Staged arrivals must be visible to the eviction scan (their block may
  // have just lost its last replica).
  AbsorbStagedToPending();
  std::vector<Request> evicted;
  std::deque<Request> keep;
  for (const Request& request : pending_) {
    if (catalog_->HasLiveReplica(request.block)) {
      keep.push_back(request);
    } else {
      evicted.push_back(request);
    }
  }
  pending_ = std::move(keep);
  keep.clear();
  for (const Request& request : background_) {
    if (catalog_->HasLiveReplica(request.block)) {
      keep.push_back(request);
    } else {
      evicted.push_back(request);
    }
  }
  background_ = std::move(keep);
  return evicted;
}

std::vector<Request> Scheduler::EvictExpired(double now) {
  // Staged arrivals can expire before their batch flushes; absorb them so
  // the scan sees every queued request.
  AbsorbStagedToPending();
  std::vector<Request> expired;
  std::deque<Request> keep;
  for (const Request& request : pending_) {
    if (request.deadline > 0 && request.deadline <= now) {
      expired.push_back(request);
    } else {
      keep.push_back(request);
    }
  }
  pending_ = std::move(keep);
  return expired;
}

void Scheduler::EnqueueBackground(const Request& request) {
  TJ_DCHECK(request.cls == RequestClass::kBackground);
  background_.push_back(request);
}

TapeId Scheduler::BackgroundReschedule() {
  if (background_.empty()) return kInvalidTape;
  // Client candidates are empty here, so candidate work is exactly the
  // background queue; max-requests batches the most source reads per
  // mount, which is what repair throughput wants.
  std::vector<TapeCandidate> candidates(
      static_cast<size_t>(jukebox_->num_tapes()));
  for (TapeId t = 0; t < jukebox_->num_tapes(); ++t) {
    candidates[static_cast<size_t>(t)].tape = t;
  }
  for (const Request& request : background_) {
    for (const Replica& replica : catalog_->ReplicasOf(request.block)) {
      if (!catalog_->IsAlive(replica)) continue;
      TapeCandidate& c = candidates[static_cast<size_t>(replica.tape)];
      ++c.num_requests;
      c.positions.push_back(replica.position);
    }
  }
  const TapeId tape =
      SelectTape(TapePolicy::kMaxRequests, candidates,
                 jukebox_->mounted_tape(), jukebox_->head(),
                 jukebox_->num_tapes(), cost_);
  TJ_CHECK_NE(tape, kInvalidTape)
      << "background request with no live replica";
  RecordDecision(/*background=*/true, tape, candidates);
  const Position start_head =
      (tape == jukebox_->mounted_tape()) ? jukebox_->head() : 0;
  ExtractSweepForTape(*catalog_, tape, start_head,
                      jukebox_->config().block_size_mb,
                      /*envelope_limit=*/nullptr, &background_, &sweep_);
  TJ_CHECK(!sweep_.empty());
  return tape;
}

void Scheduler::PiggybackBackground(TapeId tape) {
  if (background_.empty()) return;
  const Position start_head =
      (tape == jukebox_->mounted_tape()) ? jukebox_->head() : 0;
  std::deque<Request> keep;
  for (const Request& request : background_) {
    const Replica* replica = catalog_->LiveReplicaOn(request.block, tape);
    if (replica == nullptr ||
        !sweep_.InsertRequest(request, replica->position, start_head,
                              options_.allow_reverse_phase)) {
      keep.push_back(request);
    }
  }
  background_ = std::move(keep);
}

void Scheduler::ExtractAndBuildSweep(TapeId tape,
                                     const Position* envelope_limit) {
  const Position start_head =
      (tape == jukebox_->mounted_tape()) ? jukebox_->head() : 0;
  ExtractSweepForTape(*catalog_, tape, start_head,
                      jukebox_->config().block_size_mb, envelope_limit,
                      &pending_, &sweep_);
}

}  // namespace tapejuke
