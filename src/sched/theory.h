// Formal-results machinery for paper §3.3 (Theorems 1 and 2).
//
// Theorem 1 states that extending the step-2 schedule S1 to cover the
// remaining unscheduled requests at minimum extra cost is NP-hard. Theorem 2
// bounds the envelope algorithm's extension: with n requests unscheduled at
// the end of step 2,
//
//   C(S2) - C(S1) <= H_n * (C(S2_opt) - C(S1))
//                    - n * (H_n - 1) * (C_s + C_r) + n * C_d
//
// where C_s is the short-forward-locate startup, C_r the block transfer
// time, C_d the difference between the long and short forward-locate
// startups, and H_n the n-th harmonic number.
//
// This header defines the extension-cost function C(S2) - C(S1) used on both
// sides of the bound, plus a brute-force optimal extension for tiny
// instances (the NP-hardness means brute force is the only exact oracle),
// which the property tests use to validate the bound empirically.

#ifndef TAPEJUKE_SCHED_THEORY_H_
#define TAPEJUKE_SCHED_THEORY_H_

#include <cstdint>
#include <vector>

#include "layout/catalog.h"
#include "tape/timing_model.h"
#include "tape/types.h"

namespace tapejuke {

/// An instance of the schedule-extension problem: the envelope at the end
/// of step 2 plus, for each still-unscheduled request, its replica options.
struct ExtensionProblem {
  const TimingModel* model = nullptr;
  int64_t block_mb = 16;
  TapeId mounted = kInvalidTape;
  /// Per-tape envelope of S1 (block-aligned).
  std::vector<Position> initial_envelope;
  /// options[i] lists the replicas that could serve unscheduled request i;
  /// every option position must lie outside the initial envelope.
  std::vector<std::vector<Replica>> options;
};

/// n-th harmonic number H_n = sum_{i=1..n} 1/i (H_0 = 0).
double HarmonicNumber(int64_t n);

/// C(S2) - C(S1) for a concrete extension: `choice[i]` selects
/// options[i][choice[i]]. Per tape, the extension visits the chosen
/// positions beyond the envelope in one ascending pass and locates back to
/// the envelope edge; a tape whose envelope is 0 and is not mounted adds
/// the eject + robot + load surcharge. Duplicate positions (two requests
/// choosing the same block) are read once.
double ExtensionCost(const ExtensionProblem& problem,
                     const std::vector<int>& choice);

/// Minimum ExtensionCost over all replica choices (exhaustive; the option
/// product must be <= ~1e6).
double OptimalExtensionCost(const ExtensionProblem& problem);

/// The Theorem-2 right-hand side for this problem given the optimal
/// extension cost and n unscheduled requests.
double Theorem2Bound(const ExtensionProblem& problem, double optimal_cost,
                     int64_t n);

}  // namespace tapejuke

#endif  // TAPEJUKE_SCHED_THEORY_H_
