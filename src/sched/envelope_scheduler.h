// The envelope-extension scheduling algorithm (paper §3.2).
//
// Unlike the greedy algorithms, envelope extension takes a global view over
// all tapes and all replicas. The requests for *non-replicated* blocks pin
// down an initial "envelope" — the set of tape prefixes that must be
// traversed no matter what. Requests with a replica inside the envelope are
// absorbed for free. The remaining requests are scheduled by repeatedly
// extending the envelope with the extension-list prefix of highest
// *incremental bandwidth* (bytes fetched per extra second, including the
// locate out, the reads, the locate back, and a tape-switch surcharge for
// previously untouched tapes), then shrinking the envelope wherever a
// just-enclosed replica makes an edge block on another tape redundant.
//
// The scheduling-extension problem is NP-hard (Theorem 1); the greedy
// bandwidth extension is within a harmonic factor of the optimal extension
// (Theorem 2) — see theory.h for the cost functions used to validate this.
//
// When no data are replicated, every request is absorbed in step 2, steps
// 3-6 have nothing to do, and the algorithm degenerates into the
// corresponding dynamic greedy algorithm.
//
// The extension kernel is *incremental*: the per-tape extension lists are
// built and sorted once per upper-envelope computation and maintained in
// place as requests are scheduled, and per-tape prefix-bandwidth scores
// are cached and re-evaluated only for tapes whose envelope edge or list
// contents changed since the last round. The original from-scratch
// computation is kept as ComputeUpperEnvelopeReference and serves as a
// correctness oracle (SchedulerOptions::validate_envelope and the
// ValidatingScheduler cross-check the two on live workloads).

#ifndef TAPEJUKE_SCHED_ENVELOPE_SCHEDULER_H_
#define TAPEJUKE_SCHED_ENVELOPE_SCHEDULER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "sched/scheduler.h"

namespace tapejuke {

/// Envelope-extension scheduler with a pluggable tape-selection policy
/// (oldest-request / max-requests / max-bandwidth envelope variants).
class EnvelopeScheduler : public Scheduler {
 public:
  EnvelopeScheduler(const Jukebox* jukebox, const Catalog* catalog,
                    TapePolicy policy, const SchedulerOptions& options = {});

  std::string name() const override;

  TapePolicy policy() const { return policy_; }

  void OnArrival(const Request& request, Position committed_head) override;

  TapeId MajorReschedule() override;

  /// Fault recovery: abandons the sweep and invalidates the persisted
  /// envelope (it described a schedule that included the drained work).
  std::vector<Request> DrainSweep() override;

  /// Output of the upper-envelope computation (exposed for tests and the
  /// Theorem-2 validation).
  struct EnvelopeResult {
    /// Per-tape upper envelope (position up to which the tape prefix is
    /// traversed; block-aligned).
    std::vector<Position> envelope;
    /// Chosen replica for every input request.
    std::unordered_map<RequestId, Replica> assignment;
    /// Number of requests assigned per tape.
    std::vector<int64_t> scheduled_per_tape;
    /// Per-tape envelope at the end of step 2 (before any extension) and
    /// the requests that were still unscheduled then — the (S1, remaining)
    /// pair of Theorems 1-2.
    std::vector<Position> initial_envelope;
    std::vector<Request> initially_unscheduled;
  };

  /// Runs steps 1-6 of the major rescheduler on `requests` against the
  /// current drive state using the incremental extension kernel. Pure
  /// (does not modify scheduler state beyond the behaviour counters).
  EnvelopeResult ComputeUpperEnvelope(
      const std::vector<Request>& requests) const;

  /// The from-scratch reference computation: identical semantics, but the
  /// extension lists are re-enumerated, re-sorted, and fully re-scored on
  /// every round. Serves as the oracle for the incremental kernel; does
  /// not touch the behaviour counters.
  EnvelopeResult ComputeUpperEnvelopeReference(
      const std::vector<Request>& requests) const;

  /// Debug oracle entry point (used by ValidatingScheduler): runs both
  /// kernels on `requests` with scratch counters and TJ_CHECK-fails unless
  /// they produce identical results.
  void CrossCheckEnvelope(const std::vector<Request>& requests) const;

  /// The upper envelope persisted from the last major reschedule (empty
  /// before the first). For inspection in tests.
  const std::vector<Position>& current_envelope() const { return envelope_; }

  /// Algorithm-behaviour counters (cumulative over the scheduler's life).
  struct EnvelopeCounters {
    int64_t major_reschedules = 0;
    int64_t extension_rounds = 0;     ///< step 3-4 iterations
    int64_t tapes_rescored = 0;       ///< per-tape prefix re-evaluations
    int64_t shrink_moves = 0;         ///< step 5 reassignments
    int64_t multi_replica_choices = 0;  ///< step-2 picks among >1 option
    int64_t incremental_inserts = 0;  ///< arrivals inserted into the sweep
    int64_t incremental_extensions = 0;  ///< arrivals that extended the envelope
    int64_t sweep_trims = 0;          ///< active-sweep blocks removed by shrink
  };
  const EnvelopeCounters& counters() const { return counters_; }

 private:
  /// Shared mutable state of one upper-envelope computation (defined in
  /// the .cc).
  struct KernelState;

  /// Steps 1-2: pins the initial envelope and absorbs every request with
  /// an in-envelope replica; fills state->unscheduled with the rest.
  void BuildInitialEnvelope(const std::vector<Request>& requests,
                            KernelState* state,
                            EnvelopeCounters* counters) const;

  /// If some replica of `request` lies inside the envelope, assigns the
  /// request there (per the step-2 tie-break) and returns true.
  bool TryAbsorb(const Request& request, KernelState* state,
                 EnvelopeCounters* counters) const;

  /// Step 5: moves redundant envelope-edge blocks to covered replicas and
  /// retracts the donor envelopes. Tapes whose edge retreated are flagged
  /// in `dirty` when non-null (the incremental kernel's re-score set).
  void RunShrinkLoop(KernelState* state, EnvelopeCounters* counters,
                     std::vector<bool>* dirty) const;

  /// Kernel bodies behind the public entry points.
  EnvelopeResult RunIncrementalKernel(const std::vector<Request>& requests,
                                      EnvelopeCounters* counters) const;
  EnvelopeResult RunReferenceKernel(const std::vector<Request>& requests,
                                    EnvelopeCounters* counters) const;

  /// Picks a replica for a request among `inside` (replicas inside the
  /// envelope) per the step-2 tie-break. Requires `inside` non-empty.
  const Replica* ChooseInsideReplica(
      const std::vector<const Replica*>& inside,
      const std::vector<int64_t>& scheduled_per_tape, TapeId mounted) const;

  /// Step 5: shrink the active sweep's envelope after `extended_tape` was
  /// extended (incremental variant): any block scheduled at the outer edge
  /// of the mounted tape's envelope that has a replica inside the extended
  /// tape's envelope is removed from the sweep, its requests re-deferred.
  void ShrinkActiveSweep(TapeId extended_tape, Position committed_head);

  /// Re-adds `request` to the pending list keeping arrival (id) order.
  void DeferInOrder(const Request& request);

  TapePolicy policy_;
  std::vector<Position> envelope_;  ///< persisted between major reschedules
  bool envelope_valid_ = false;
  mutable EnvelopeCounters counters_;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_SCHED_ENVELOPE_SCHEDULER_H_
