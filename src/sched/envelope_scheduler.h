// The envelope-extension scheduling algorithm (paper §3.2).
//
// Unlike the greedy algorithms, envelope extension takes a global view over
// all tapes and all replicas. The requests for *non-replicated* blocks pin
// down an initial "envelope" — the set of tape prefixes that must be
// traversed no matter what. Requests with a replica inside the envelope are
// absorbed for free. The remaining requests are scheduled by repeatedly
// extending the envelope with the extension-list prefix of highest
// *incremental bandwidth* (bytes fetched per extra second, including the
// locate out, the reads, the locate back, and a tape-switch surcharge for
// previously untouched tapes), then shrinking the envelope wherever a
// just-enclosed replica makes an edge block on another tape redundant.
//
// The scheduling-extension problem is NP-hard (Theorem 1); the greedy
// bandwidth extension is within a harmonic factor of the optimal extension
// (Theorem 2) — see theory.h for the cost functions used to validate this.
//
// When no data are replicated, every request is absorbed in step 2, steps
// 3-6 have nothing to do, and the algorithm degenerates into the
// corresponding dynamic greedy algorithm.
//
// The extension kernel is *incremental*: the per-tape extension lists are
// maintained in place as requests are scheduled, and per-tape
// prefix-bandwidth scores are cached and re-evaluated only for tapes whose
// envelope edge or list contents changed since the last round. Three fast
// paths stack on top for deep queues (see docs/PERFORMANCE.md for the
// methodology and docs/ALGORITHM.md for the equivalence arguments):
//
//  * persistent extension lists (SchedulerOptions::persistent_ext_cache):
//    the sorted per-tape candidate lists survive across major reschedules —
//    arrivals append to a small unsorted tail merged at the next
//    reschedule, departures are lazily masked, and any catalog mutation
//    (replica death / repair / add) forces a rebuild via the catalog's
//    generation counter;
//  * heap-backed tape selection (SchedulerOptions::use_selection_heap):
//    per-tape best-prefix scores live on an indexed max-heap so each round
//    re-heapifies only the dirty tapes instead of scanning all of them;
//  * batched arrivals / epoch rescheduling (SchedulerOptions::
//    arrival_batch, reschedule_epoch): policy knobs that amortize the
//    kernel over many arrivals or tape visits.
//
// The original from-scratch computation is kept as
// ComputeUpperEnvelopeReference and serves as the correctness oracle
// (SchedulerOptions::validate_envelope and the ValidatingScheduler
// cross-check the fast paths against it on live workloads).

#ifndef TAPEJUKE_SCHED_ENVELOPE_SCHEDULER_H_
#define TAPEJUKE_SCHED_ENVELOPE_SCHEDULER_H_

#include <memory>
#include <string>
#include <vector>

#include "sched/scheduler.h"
#include "util/flat_hash.h"

namespace tapejuke {

/// Envelope-extension scheduler with a pluggable tape-selection policy
/// (oldest-request / max-requests / max-bandwidth envelope variants).
class EnvelopeScheduler : public Scheduler {
 public:
  EnvelopeScheduler(const Jukebox* jukebox, const Catalog* catalog,
                    TapePolicy policy, const SchedulerOptions& options = {});
  ~EnvelopeScheduler() override;

  std::string name() const override;

  TapePolicy policy() const { return policy_; }

  TapeId MajorReschedule() override;

  /// Fault recovery: abandons the sweep and invalidates the persisted
  /// envelope (it described a schedule that included the drained work).
  std::vector<Request> DrainSweep() override;

  /// Fault recovery: evicted requests also leave the persistent extension
  /// lists.
  std::vector<Request> EvictUnservablePending() override;

  /// Overload: expired requests also leave the persistent extension lists.
  std::vector<Request> EvictExpired(double now) override;

  /// Output of the upper-envelope computation (exposed for tests and the
  /// Theorem-2 validation).
  struct EnvelopeResult {
    /// Per-tape upper envelope (position up to which the tape prefix is
    /// traversed; block-aligned).
    std::vector<Position> envelope;
    /// Chosen replica for every input request.
    FlatMap<RequestId, Replica> assignment;
    /// Number of requests assigned per tape.
    std::vector<int64_t> scheduled_per_tape;
    /// Per-tape envelope at the end of step 2 (before any extension) and
    /// the requests that were still unscheduled then — the (S1, remaining)
    /// pair of Theorems 1-2.
    std::vector<Position> initial_envelope;
    std::vector<Request> initially_unscheduled;
  };

  /// Runs steps 1-6 of the major rescheduler on `requests` against the
  /// current drive state using the incremental extension kernel. Pure
  /// (does not modify scheduler state beyond the behaviour counters and
  /// reusable scratch buffers).
  EnvelopeResult ComputeUpperEnvelope(
      const std::vector<Request>& requests) const;

  /// The from-scratch reference computation: identical semantics, but the
  /// extension lists are re-enumerated, re-sorted, and fully re-scored on
  /// every round. Serves as the oracle for the incremental kernel; does
  /// not touch the behaviour counters.
  EnvelopeResult ComputeUpperEnvelopeReference(
      const std::vector<Request>& requests) const;

  /// Debug oracle entry point (used by ValidatingScheduler): runs both
  /// kernels on `requests` with scratch counters and TJ_CHECK-fails unless
  /// they produce identical results.
  void CrossCheckEnvelope(const std::vector<Request>& requests) const;

  /// The upper envelope persisted from the last major reschedule (empty
  /// before the first). For inspection in tests.
  const std::vector<Position>& current_envelope() const { return envelope_; }

  /// Algorithm-behaviour counters (cumulative over the scheduler's life).
  struct EnvelopeCounters {
    int64_t major_reschedules = 0;
    int64_t extension_rounds = 0;     ///< step 3-4 iterations
    int64_t tapes_rescored = 0;       ///< per-tape prefix re-evaluations
    int64_t shrink_moves = 0;         ///< step 5 reassignments
    int64_t multi_replica_choices = 0;  ///< step-2 picks among >1 option
    int64_t incremental_inserts = 0;  ///< arrivals inserted into the sweep
    int64_t incremental_extensions = 0;  ///< arrivals that extended the envelope
    int64_t sweep_trims = 0;          ///< active-sweep blocks removed by shrink
    int64_t master_rebuilds = 0;      ///< persistent ext lists rebuilt from scratch
    int64_t epoch_reuses = 0;  ///< reschedules served from a reused envelope
  };
  const EnvelopeCounters& counters() const { return counters_; }

 protected:
  void OnArrivalNow(const Request& request, Position committed_head) override;

  /// Staged arrivals absorbed on fault paths enter the persistent
  /// extension lists with the pending list.
  void AbsorbStagedToPending() override;

 private:
  /// Shared mutable state of one upper-envelope computation and the
  /// reusable scratch buffers (defined in the .cc).
  struct KernelState;
  struct KernelScratch;

  /// One candidate entry of the persistent extension lists: a replica of a
  /// pending request. `replica` points into the catalog; the cache's
  /// generation stamp guards against dangling pointers (AddReplica
  /// reallocates the CSR storage).
  struct MasterEntry {
    Position position;
    RequestId id;
    const Replica* replica;
  };

  /// Persistent per-tape extension lists mirroring pending_ x live
  /// replicas, maintained across major reschedules. `sorted` is ordered by
  /// (position, id); arrivals land in `tail` and are merged at the next
  /// refresh; departures are masked in `removed` and compacted out at the
  /// next refresh. Invalid (or stale by catalog generation) caches are
  /// rebuilt from the pending list.
  struct MasterCache {
    std::vector<std::vector<MasterEntry>> sorted;
    std::vector<std::vector<MasterEntry>> tail;
    FlatSet<RequestId> removed;
    int64_t generation = -1;
    bool valid = false;
  };

  /// Steps 1-2: pins the initial envelope and absorbs every request with
  /// an in-envelope replica; fills state->unscheduled with the rest.
  void BuildInitialEnvelope(const std::vector<Request>& requests,
                            KernelState* state,
                            EnvelopeCounters* counters) const;

  /// If some replica of `request` lies inside the envelope, assigns the
  /// request there (per the step-2 tie-break) and returns true.
  bool TryAbsorb(const Request& request, KernelState* state,
                 EnvelopeCounters* counters) const;

  /// Step 5: moves redundant envelope-edge blocks to covered replicas and
  /// retracts the donor envelopes. Tapes whose edge retreated are flagged
  /// in `dirty` when non-null (the incremental kernel's re-score set).
  void RunShrinkLoop(KernelState* state, EnvelopeCounters* counters,
                     std::vector<char>* dirty) const;

  /// Kernel bodies behind the public entry points. `master`, when
  /// non-null, supplies pre-sorted extension lists (the persistent cache)
  /// so the incremental kernel skips the per-call enumerate + sort. With
  /// `want_assignment` false the per-request assignment map is not
  /// materialized (the production reschedule path only reads the
  /// envelope; the map feeds the oracle and the theory checks).
  EnvelopeResult RunIncrementalKernel(const std::vector<Request>& requests,
                                      EnvelopeCounters* counters,
                                      const MasterCache* master,
                                      bool want_assignment) const;
  EnvelopeResult RunReferenceKernel(const std::vector<Request>& requests,
                                    EnvelopeCounters* counters) const;

  /// Picks a replica for a request among `inside` (replicas inside the
  /// envelope) per the step-2 tie-break. Requires `inside` non-empty.
  const Replica* ChooseInsideReplica(
      const std::vector<const Replica*>& inside,
      const std::vector<int64_t>& scheduled_per_tape, TapeId mounted) const;

  /// Step 5: shrink the active sweep's envelope after `extended_tape` was
  /// extended (incremental variant): any block scheduled at the outer edge
  /// of the mounted tape's envelope that has a replica inside the extended
  /// tape's envelope is removed from the sweep, its requests re-deferred.
  void ShrinkActiveSweep(TapeId extended_tape, Position committed_head);

  /// Re-adds `request` to the pending list keeping arrival (id) order.
  void DeferInOrder(const Request& request);

  /// Persistent-cache maintenance. InsertMaster mirrors a request entering
  /// pending_; RemoveMasterId mirrors one leaving it; RefreshMaster makes
  /// the cache exact again (merge tails, compact removals, or rebuild).
  void InsertMaster(const Request& request);
  void RemoveMasterId(RequestId id);
  void RefreshMaster();
  void RebuildMaster();
  /// Masks every client request of the just-built sweep out of the cache.
  void RemoveMasterExtracted();

  /// Tape-choice candidates for the current pending list restricted to
  /// `envelope`, read off the master cache prefixes (equivalent to walking
  /// pending x replicas, without re-sorting positions). Works on an
  /// unrefreshed cache too: lazily-removed ids are masked out and the
  /// unsorted arrival tails are scanned, so the epoch fast path never
  /// pays the refresh merge.
  std::vector<TapeCandidate> BuildCandidatesFromMaster(
      const std::vector<Position>& envelope) const;

  /// Epoch fast path: serve another tape from the persisted envelope
  /// without recomputing it. Returns kInvalidTape when no pending request
  /// has an in-envelope replica (caller falls back to a full recompute).
  TapeId TryEpochReschedule();

  /// Lazily allocated reusable scratch (kernel temporaries survive across
  /// calls to avoid per-reschedule vector churn).
  KernelScratch& Scratch() const;

  TapePolicy policy_;
  std::vector<Position> envelope_;  ///< persisted between major reschedules
  bool envelope_valid_ = false;
  int32_t epoch_visits_ = 0;  ///< tape visits served by the current envelope
  MasterCache master_;
  mutable EnvelopeCounters counters_;
  mutable std::unique_ptr<KernelScratch> scratch_;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_SCHED_ENVELOPE_SCHEDULER_H_
