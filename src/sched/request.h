// Retrieval request representation (paper §2.2 service model).
//
// The unit of I/O is one fixed-size logical block; each request names one
// block. Requests carry their arrival time so the metrics layer can compute
// response delays, and a monotonically increasing id that doubles as the
// arrival order ("oldest request" policies use it).

#ifndef TAPEJUKE_SCHED_REQUEST_H_
#define TAPEJUKE_SCHED_REQUEST_H_

#include <cstdint>

#include "tape/types.h"

namespace tapejuke {

/// Unique request identifier; ids increase in arrival order.
using RequestId = int64_t;

/// Service class of a request. Background requests (repair-source reads
/// issued by the RepairManager) are ordered strictly behind client work: a
/// tape is chosen for them only when no client request is pending, though
/// they piggyback for free on client sweeps that pass their replica.
enum class RequestClass : uint8_t {
  kClient,
  kBackground,
};

/// Base id for background requests, far above any client id so the two
/// streams never collide (client ids count up from 0).
inline constexpr RequestId kBackgroundIdBase = RequestId{1} << 40;

/// One pending block-read request.
struct Request {
  RequestId id = -1;
  BlockId block = kInvalidBlock;
  double arrival_time = 0.0;
  RequestClass cls = RequestClass::kClient;
  /// Tenant (priority) class, 0 = most protected. Only meaningful for
  /// client requests; the workload generator assigns it from the per-class
  /// mix and the admission/metrics layers key their SLO accounting on it.
  uint8_t tenant = 0;
  /// Absolute simulation time after which the request is worthless and the
  /// simulator completes it as *expired*; 0 means no deadline. Deadlines
  /// are a queueing bound: a request already inside a committed sweep (or
  /// in flight on a drive) finishes normally even past its deadline.
  double deadline = 0.0;

  friend bool operator==(const Request&, const Request&) = default;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_SCHED_REQUEST_H_
