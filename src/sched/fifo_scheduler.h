// FIFO baseline: service requests strictly in arrival order (paper §3.1).
//
// Every retrieval typically pays a tape switch and a long locate; the paper
// uses FIFO as the "terrible" baseline whose throughput/delay curve is a
// vertical line. The only concession made here is that additional pending
// requests for the *same block* are satisfied by the same read (which costs
// nothing extra).

#ifndef TAPEJUKE_SCHED_FIFO_SCHEDULER_H_
#define TAPEJUKE_SCHED_FIFO_SCHEDULER_H_

#include <string>

#include "sched/scheduler.h"

namespace tapejuke {

/// First-in-first-out scheduler.
class FifoScheduler : public Scheduler {
 public:
  FifoScheduler(const Jukebox* jukebox, const Catalog* catalog,
                const SchedulerOptions& options = {});

  std::string name() const override { return "fifo"; }

  /// Services the single oldest pending request (preferring a replica on
  /// the mounted tape when the block is replicated).
  TapeId MajorReschedule() override;

 protected:
  /// FIFO always defers arrivals to the pending list.
  void OnArrivalNow(const Request& request, Position committed_head) override;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_SCHED_FIFO_SCHEDULER_H_
