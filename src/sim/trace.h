// Request-trace capture and replay (extension).
//
// A trace is a time-ordered list of (arrival_seconds, block) records. CSV
// on disk (header "arrival_seconds,block"), so traces can be produced or
// consumed by external tools. Synthetic traces generated from the paper's
// hot/cold workload model make replay runs byte-for-byte reproducible
// across machines and let the same request sequence be replayed against
// different layouts and schedulers (the generator-driven simulator cannot
// do that for closed queuing, where the request stream depends on service
// completions).

#ifndef TAPEJUKE_SIM_TRACE_H_
#define TAPEJUKE_SIM_TRACE_H_

#include <string>
#include <vector>

#include "layout/catalog.h"
#include "sched/request.h"
#include "sim/workload.h"
#include "util/status.h"

namespace tapejuke {

/// One trace record.
struct TraceRecord {
  double arrival_seconds = 0;
  BlockId block = kInvalidBlock;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// Writes `records` as CSV. Fails if the file cannot be created.
Status SaveTrace(const std::string& path,
                 const std::vector<TraceRecord>& records);

/// Reads a CSV trace; validates ordering and well-formedness.
StatusOr<std::vector<TraceRecord>> LoadTrace(const std::string& path);

/// Generates a Poisson trace of `duration_seconds` against `catalog` using
/// the hot/cold skew and interarrival parameters of `config` (model must
/// be kOpen).
std::vector<TraceRecord> SynthesizeTrace(const Catalog& catalog,
                                         const WorkloadConfig& config,
                                         double duration_seconds);

/// Converts trace records to simulator requests (ids assigned by the
/// Simulator's trace constructor).
std::vector<Request> TraceToRequests(const std::vector<TraceRecord>& records);

}  // namespace tapejuke

#endif  // TAPEJUKE_SIM_TRACE_H_
