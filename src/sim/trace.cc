#include "sim/trace.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace tapejuke {

Status SaveTrace(const std::string& path,
                 const std::vector<TraceRecord>& records) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  out << "arrival_seconds,block\n";
  out.precision(9);
  for (const TraceRecord& record : records) {
    out << record.arrival_seconds << "," << record.block << "\n";
  }
  out.flush();
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::Ok();
}

StatusOr<std::vector<TraceRecord>> LoadTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open trace '" + path + "'");
  }
  std::vector<TraceRecord> records;
  std::string line;
  bool first = true;
  double previous = 0;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (line == "arrival_seconds,block") continue;  // header optional
    }
    const size_t comma = line.find(',');
    if (comma == std::string::npos) {
      return Status::InvalidArgument("trace line " +
                                     std::to_string(line_number) +
                                     ": expected 'time,block'");
    }
    char* end = nullptr;
    TraceRecord record;
    record.arrival_seconds = std::strtod(line.c_str(), &end);
    if (end != line.c_str() + comma) {
      return Status::InvalidArgument("trace line " +
                                     std::to_string(line_number) +
                                     ": bad arrival time");
    }
    const std::string block_text = line.substr(comma + 1);
    record.block = std::strtoll(block_text.c_str(), &end, 10);
    if (end == block_text.c_str() || *end != '\0' || record.block < 0) {
      return Status::InvalidArgument("trace line " +
                                     std::to_string(line_number) +
                                     ": bad block id");
    }
    if (record.arrival_seconds < previous) {
      return Status::InvalidArgument("trace line " +
                                     std::to_string(line_number) +
                                     ": arrivals out of order");
    }
    previous = record.arrival_seconds;
    records.push_back(record);
  }
  return records;
}

std::vector<TraceRecord> SynthesizeTrace(const Catalog& catalog,
                                         const WorkloadConfig& config,
                                         double duration_seconds) {
  WorkloadConfig open_config = config;
  open_config.model = QueuingModel::kOpen;
  WorkloadGenerator generator(&catalog, open_config);
  std::vector<TraceRecord> records;
  double now = generator.NextInterarrival();
  while (now <= duration_seconds) {
    records.push_back(TraceRecord{now, generator.NextBlock()});
    now += generator.NextInterarrival();
  }
  return records;
}

std::vector<Request> TraceToRequests(
    const std::vector<TraceRecord>& records) {
  std::vector<Request> requests;
  requests.reserve(records.size());
  for (const TraceRecord& record : records) {
    requests.push_back(Request{-1, record.block, record.arrival_seconds});
  }
  return requests;
}

}  // namespace tapejuke
