#include "sim/admission.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "util/check.h"

namespace tapejuke {

Status AdmissionConfig::Validate(const WorkloadConfig& workload) const {
  if (!enabled()) return Status::Ok();
  if (workload.model != QueuingModel::kOpen) {
    return Status::InvalidArgument(
        "admission control applies to the open model only (a closed "
        "population re-issues on completion, so there is nothing to shed)");
  }
  if (policy == AdmissionPolicy::kStaticCap && queue_cap <= 0) {
    return Status::InvalidArgument("static-cap admission needs queue_cap >= 1");
  }
  if (policy == AdmissionPolicy::kAdaptive) {
    if (window_seconds <= 0) {
      return Status::InvalidArgument(
          "adaptive admission needs a positive window");
    }
    if (workload.tenant_classes.size() < 2) {
      return Status::InvalidArgument(
          "adaptive admission needs >= 2 tenant classes (it protects the "
          "high classes by shedding the low ones)");
    }
    bool any_slo = false;
    for (const TenantClassConfig& cls : workload.tenant_classes) {
      if (cls.p99_slo_seconds > 0) any_slo = true;
    }
    if (!any_slo) {
      return Status::InvalidArgument(
          "adaptive admission needs at least one class with a p99 SLO");
    }
  }
  return Status::Ok();
}

AdmissionController::AdmissionController(
    const AdmissionConfig& config,
    const std::vector<TenantClassConfig>& classes)
    : config_(config),
      classes_(classes),
      num_classes_(std::max<int>(1, static_cast<int>(classes.size()))) {}

bool AdmissionController::Admit(uint8_t tenant, double now,
                                int64_t outstanding) {
  switch (config_.policy) {
    case AdmissionPolicy::kNone:
      return true;
    case AdmissionPolicy::kStaticCap: {
      // Graded ladder: class c keeps headroom (K - c) / K of the cap.
      const int64_t k = num_classes_;
      const int64_t share =
          config_.queue_cap * (k - static_cast<int64_t>(tenant)) / k;
      return outstanding < std::max<int64_t>(1, share);
    }
    case AdmissionPolicy::kAdaptive: {
      UpdateLevel(now, outstanding);
      return static_cast<int>(tenant) < num_classes_ - shed_level_;
    }
  }
  return true;
}

void AdmissionController::OnCompletion(uint8_t tenant, double delay,
                                       double now) {
  if (config_.policy != AdmissionPolicy::kAdaptive) return;
  window_.push_back(WindowEntry{now, tenant, delay});
}

void AdmissionController::UpdateLevel(double now, int64_t outstanding) {
  // Re-evaluate at most 8x per window; in between, Admit reuses the
  // current level so arrival bursts stay O(1).
  const double step = config_.window_seconds / 8.0;
  if (last_update_ >= 0 && now - last_update_ < step) return;
  last_update_ = now;

  while (!window_.empty() &&
         window_.front().time < now - config_.window_seconds) {
    window_.pop_front();
  }

  // Little's-law estimate of the wait a request admitted now would see:
  // every class shares one queue, so one estimate serves them all.
  const double rate =
      static_cast<double>(window_.size()) / config_.window_seconds;
  const double est_wait =
      rate > 0 ? static_cast<double>(outstanding) / rate
               : (outstanding > 0 ? std::numeric_limits<double>::infinity()
                                  : 0.0);

  bool violated = false;
  bool all_comfortable = true;
  for (int c = 0; c < static_cast<int>(classes_.size()); ++c) {
    const double slo = classes_[static_cast<size_t>(c)].p99_slo_seconds;
    if (slo <= 0) continue;
    scratch_.clear();
    for (const WindowEntry& entry : window_) {
      if (entry.tenant == c) scratch_.push_back(entry.delay);
    }
    double p99 = 0;
    if (!scratch_.empty()) {
      const size_t idx =
          std::min(scratch_.size() - 1,
                   static_cast<size_t>(
                       0.99 * static_cast<double>(scratch_.size())));
      std::nth_element(scratch_.begin(),
                       scratch_.begin() + static_cast<ptrdiff_t>(idx),
                       scratch_.end());
      p99 = scratch_[idx];
    }
    // The measured p99 confirms a violation at the full SLO, but it lags
    // by the delays themselves (thousands of seconds of queue already
    // admitted). The Little's-law estimate predicts the wait a request
    // admitted *now* would see, so it triggers at 40% of the SLO — the
    // headroom absorbs the backlog that accumulates before the next
    // evaluation and keeps the realized p99 under the SLO, not at it.
    if (p99 > slo || est_wait > 0.4 * slo) violated = true;
    if (p99 > 0.7 * slo || est_wait > 0.25 * slo) all_comfortable = false;
  }

  // Ratchet up immediately on violation; ratchet down only after several
  // consecutive comfortable evaluations. The asymmetry damps the limit
  // cycle where re-admitting the bulk classes instantly re-floods the
  // queue and the protected class pays for every oscillation.
  if (violated) {
    shed_level_ = std::min(shed_level_ + 1, num_classes_ - 1);
    comfort_streak_ = 0;
  } else if (all_comfortable) {
    if (++comfort_streak_ >= kComfortStreak && shed_level_ > 0) {
      --shed_level_;
      comfort_streak_ = 0;
    }
  } else {
    comfort_streak_ = 0;
  }
}

}  // namespace tapejuke
