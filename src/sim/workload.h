// Workload generation: hot/cold skewed block selection and the two request
// arrival processes of the paper (§4).
//
// The skew model has two parameters: PH, the fraction of tape-resident data
// that is hot (a property of the Catalog), and RH, the fraction of requests
// directed to hot data. A hot request picks a hot block uniformly; a cold
// request picks a cold block uniformly. Requested blocks are independent.
//
// Two arrival scenarios: *closed queuing* models a fixed number of
// I/O-bound processes — a constant population of outstanding requests where
// each completion immediately spawns a new request; *open queuing* models a
// large client pool — a Poisson arrival process whose rate is independent
// of the service rate.

#ifndef TAPEJUKE_SIM_WORKLOAD_H_
#define TAPEJUKE_SIM_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "layout/catalog.h"
#include "sched/request.h"
#include "util/rng.h"
#include "util/status.h"

namespace tapejuke {

/// Which arrival process drives the simulation.
enum class QueuingModel {
  kClosed,  ///< constant outstanding-request population
  kOpen,    ///< Poisson arrivals, rate independent of service
};

/// How request popularity is distributed over blocks.
enum class SkewModel {
  /// The paper's two-level model: RH of requests uniformly over the hot
  /// blocks, the rest uniformly over the cold blocks.
  kHotCold,
  /// Zipf(theta) over block rank (block id == popularity rank; the layout
  /// already places the lowest ids — the catalog's "hot" set — in the hot
  /// region, so placement studies carry over). theta = 0 is uniform;
  /// higher theta is more skewed.
  kZipf,
};

/// One tenant (priority) class in the overload mix. Class index = position
/// in WorkloadConfig::tenant_classes; lower index = more protected (the
/// adaptive admission policy sheds the highest index first).
struct TenantClassConfig {
  /// Relative arrival share; normalized across the mix.
  double weight = 1.0;
  /// Relative deadline: a request of this class expires
  /// `deadline_seconds` after arrival if still queued. 0 = no deadline.
  double deadline_seconds = 0.0;
  /// p99 response-delay target the admission layer defends. 0 = best
  /// effort (never triggers shedding, shed first under pressure).
  double p99_slo_seconds = 0.0;
};

/// Workload parameters.
struct WorkloadConfig {
  QueuingModel model = QueuingModel::kClosed;
  /// Closed model: the constant population of outstanding requests.
  int64_t queue_length = 60;
  /// Closed model: mean think time between a completion and the process's
  /// next request, seconds (exponential; 0 = the paper's I/O-bound
  /// processes that re-request immediately).
  double think_time_seconds = 0.0;
  /// Open model: mean interarrival time, seconds.
  double mean_interarrival_seconds = 60.0;
  SkewModel skew = SkewModel::kHotCold;
  /// RH: fraction of requests directed to hot blocks (kHotCold).
  double hot_request_fraction = 0.40;
  /// Zipf exponent (kZipf).
  double zipf_theta = 0.8;
  uint64_t seed = 1;

  /// Tenant mix. Empty = the historical single-class workload: every
  /// request is tenant 0 with no deadline, and no overload draws are made
  /// (output stays byte-identical to pre-overload builds).
  std::vector<TenantClassConfig> tenant_classes;
  /// Open model: sinusoidal rate modulation. The instantaneous arrival
  /// rate is (1 + a*sin(2*pi*t/period)) / mean_interarrival_seconds with
  /// a = diurnal_amplitude in [0, 1). 0 = off.
  double diurnal_amplitude = 0.0;
  double diurnal_period_seconds = 86400.0;
  /// Open model: correlated bursts layered on the base process. Burst
  /// onsets are Poisson with this mean gap (0 = off); each burst adds
  /// 1 + Exponential(burst_size - 1) extra arrivals spread uniformly over
  /// [onset, onset + burst_spread_seconds].
  double burst_interval_seconds = 0.0;
  double burst_size = 1.0;
  double burst_spread_seconds = 0.0;

  /// True when any knob that changes arrival timing or request fields
  /// beyond the historical generator is set.
  bool HasOverloadShaping() const {
    return diurnal_amplitude > 0 || burst_interval_seconds > 0;
  }
  bool HasTenantClasses() const { return !tenant_classes.empty(); }

  Status Validate() const;
};

/// Draws skewed block ids and mints sequential request ids.
class WorkloadGenerator {
 public:
  /// `catalog` must outlive the generator. If the catalog has no hot (or no
  /// cold) blocks, all requests go to the other class.
  WorkloadGenerator(const Catalog* catalog, const WorkloadConfig& config);

  /// Draws the next requested block id.
  BlockId NextBlock();

  /// kZipf only: maps a uniform quantile `u` to a block rank through the
  /// popularity CDF. Quantiles at or above the final CDF entry (possible
  /// when u == 1.0, or if rounding leaves the normalized CDF just short of
  /// 1.0) clamp to the last block instead of indexing past the catalog.
  /// Exposed so tests can drive the boundary directly.
  BlockId ZipfBlockForQuantile(double u) const;

  /// Mints the next request at `arrival_time`. With a tenant mix
  /// configured, also assigns the tenant class (weighted draw from the
  /// dedicated overload stream) and the absolute deadline.
  Request NextRequest(double arrival_time);

  /// Open model: sample the next interarrival gap (seconds).
  double NextInterarrival();

  /// Open model: gap to the next arrival given the current clock. With no
  /// shaping configured this is exactly NextInterarrival() (same stream,
  /// same draws); with diurnal modulation and/or bursts it merges the
  /// thinned base process with the burst process, drawing all shaping
  /// randomness from the dedicated overload stream.
  double NextArrivalGap(double now);

  /// Closed model: sample a think-time gap (0 when think time is 0).
  double NextThinkTime();

  const WorkloadConfig& config() const { return config_; }

 private:
  /// Weighted tenant draw from the overload stream (mix is non-empty).
  uint8_t NextTenant();
  /// Extends the burst arrival queue with every burst whose onset falls
  /// at or before `horizon`.
  void EnsureBurstsUpTo(double horizon);
  /// Next base-process arrival time from `now` (thinned when diurnal
  /// modulation is on, plain exponential otherwise).
  double NextBaseArrival(double now);

  const Catalog* catalog_;
  WorkloadConfig config_;
  Rng rng_;
  /// Dedicated stream for every overload draw (tenant mix, diurnal
  /// thinning, bursts) so enabling them never perturbs the base block /
  /// interarrival sequence.
  Rng overload_rng_;
  RequestId next_id_ = 0;
  /// kZipf: cumulative popularity by block rank.
  std::vector<double> zipf_cdf_;
  /// Cumulative tenant weights, normalized to [0, 1].
  std::vector<double> tenant_cdf_;
  /// Burst process state: pending burst arrival times (sorted, absolute),
  /// the onset of the next not-yet-expanded burst, and a stashed base
  /// arrival drawn past a burst that fired first.
  std::vector<double> burst_queue_;
  size_t burst_head_ = 0;
  double next_burst_onset_ = -1.0;
  double stashed_base_arrival_ = -1.0;
};

/// Deterministic seed for the overload stream, decorrelated from the main
/// workload stream the same way DeriveFaultSeed decorrelates faults.
uint64_t DeriveOverloadSeed(uint64_t workload_seed);

}  // namespace tapejuke

#endif  // TAPEJUKE_SIM_WORKLOAD_H_
