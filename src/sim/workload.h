// Workload generation: hot/cold skewed block selection and the two request
// arrival processes of the paper (§4).
//
// The skew model has two parameters: PH, the fraction of tape-resident data
// that is hot (a property of the Catalog), and RH, the fraction of requests
// directed to hot data. A hot request picks a hot block uniformly; a cold
// request picks a cold block uniformly. Requested blocks are independent.
//
// Two arrival scenarios: *closed queuing* models a fixed number of
// I/O-bound processes — a constant population of outstanding requests where
// each completion immediately spawns a new request; *open queuing* models a
// large client pool — a Poisson arrival process whose rate is independent
// of the service rate.

#ifndef TAPEJUKE_SIM_WORKLOAD_H_
#define TAPEJUKE_SIM_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "layout/catalog.h"
#include "sched/request.h"
#include "util/rng.h"
#include "util/status.h"

namespace tapejuke {

/// Which arrival process drives the simulation.
enum class QueuingModel {
  kClosed,  ///< constant outstanding-request population
  kOpen,    ///< Poisson arrivals, rate independent of service
};

/// How request popularity is distributed over blocks.
enum class SkewModel {
  /// The paper's two-level model: RH of requests uniformly over the hot
  /// blocks, the rest uniformly over the cold blocks.
  kHotCold,
  /// Zipf(theta) over block rank (block id == popularity rank; the layout
  /// already places the lowest ids — the catalog's "hot" set — in the hot
  /// region, so placement studies carry over). theta = 0 is uniform;
  /// higher theta is more skewed.
  kZipf,
};

/// Workload parameters.
struct WorkloadConfig {
  QueuingModel model = QueuingModel::kClosed;
  /// Closed model: the constant population of outstanding requests.
  int64_t queue_length = 60;
  /// Closed model: mean think time between a completion and the process's
  /// next request, seconds (exponential; 0 = the paper's I/O-bound
  /// processes that re-request immediately).
  double think_time_seconds = 0.0;
  /// Open model: mean interarrival time, seconds.
  double mean_interarrival_seconds = 60.0;
  SkewModel skew = SkewModel::kHotCold;
  /// RH: fraction of requests directed to hot blocks (kHotCold).
  double hot_request_fraction = 0.40;
  /// Zipf exponent (kZipf).
  double zipf_theta = 0.8;
  uint64_t seed = 1;

  Status Validate() const;
};

/// Draws skewed block ids and mints sequential request ids.
class WorkloadGenerator {
 public:
  /// `catalog` must outlive the generator. If the catalog has no hot (or no
  /// cold) blocks, all requests go to the other class.
  WorkloadGenerator(const Catalog* catalog, const WorkloadConfig& config);

  /// Draws the next requested block id.
  BlockId NextBlock();

  /// kZipf only: maps a uniform quantile `u` to a block rank through the
  /// popularity CDF. Quantiles at or above the final CDF entry (possible
  /// when u == 1.0, or if rounding leaves the normalized CDF just short of
  /// 1.0) clamp to the last block instead of indexing past the catalog.
  /// Exposed so tests can drive the boundary directly.
  BlockId ZipfBlockForQuantile(double u) const;

  /// Mints the next request at `arrival_time`.
  Request NextRequest(double arrival_time);

  /// Open model: sample the next interarrival gap (seconds).
  double NextInterarrival();

  /// Closed model: sample a think-time gap (0 when think time is 0).
  double NextThinkTime();

  const WorkloadConfig& config() const { return config_; }

 private:
  const Catalog* catalog_;
  WorkloadConfig config_;
  Rng rng_;
  RequestId next_id_ = 0;
  /// kZipf: cumulative popularity by block rank.
  std::vector<double> zipf_cdf_;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_SIM_WORKLOAD_H_
