// Gradual-fill lifecycle: replicas "for free" (paper §4.8 recommendation).
//
// The paper's closing advice: while a jukebox fills, keep the hottest data
// on a dedicated tape, leave the other tapes partly empty, and append
// replicas of hot data to the tape *ends* when convenient — piggybacked on
// read schedules that already have the tape loaded — so performance
// improves without dedicated write passes. This simulator implements that
// lifecycle: it starts from a spare-capacity layout with no replicas and
// opportunistically writes replicas into the free space at sweep ends (the
// drive is already positioned on the tape) and during idle periods,
// reporting performance per epoch so the "free" improvement is visible as
// the replica population grows.

#ifndef TAPEJUKE_SIM_LIFECYCLE_H_
#define TAPEJUKE_SIM_LIFECYCLE_H_

#include <cstdint>
#include <vector>

#include "layout/catalog.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "sim/workload.h"
#include "tape/jukebox.h"
#include "util/status.h"

namespace tapejuke {

/// Gradual-fill parameters.
struct LifecycleConfig {
  /// Maximum seconds of replica writing appended to one read sweep.
  double fill_budget_seconds = 120.0;
  /// Also fill during idle periods (open queuing).
  bool fill_on_idle = true;
  /// Stop once every hot block has this many copies in total.
  int32_t target_copies = 10;
  /// Number of reporting windows.
  int32_t num_epochs = 10;

  Status Validate() const;
};

/// Performance within one reporting window.
struct EpochStats {
  double start_seconds = 0;
  double end_seconds = 0;
  int64_t completed_requests = 0;
  double requests_per_minute = 0;
  double mean_delay_minutes = 0;
  /// Fraction of the replica-fill target reached by the end of the epoch.
  double fill_fraction = 0;
};

/// Single-drive simulator that grows hot-data replicas while serving reads.
class LifecycleSimulator {
 public:
  /// `catalog` is mutated as replicas are written. The jukebox layout must
  /// have spare slots for them (e.g. LayoutSpec with pack_cold or a
  /// logical_blocks_override below the maximum).
  LifecycleSimulator(Jukebox* jukebox, Catalog* catalog,
                     Scheduler* scheduler, const SimulationConfig& sim,
                     const LifecycleConfig& lifecycle);

  /// Runs to completion; call once. Returns per-epoch performance.
  std::vector<EpochStats> Run();

  /// Replicas written so far.
  int64_t replicas_written() const { return replicas_written_; }

  /// Total replicas the fill target implies.
  int64_t fill_target() const { return fill_target_; }

 private:
  /// Writes replicas of hot blocks onto the mounted tape until the budget
  /// or the tape's capacity/need runs out; returns elapsed seconds.
  double FillMountedTape(double budget_seconds);

  /// The tape that most needs replicas (free slots + missing copies), or
  /// kInvalidTape.
  TapeId NeediestTape() const;

  Jukebox* jukebox_;
  Catalog* catalog_;
  Scheduler* scheduler_;
  SimulationConfig sim_config_;
  LifecycleConfig lifecycle_;
  WorkloadGenerator workload_;

  /// Per-tape free slots (descending, so fills start at the tape end) and
  /// a round-robin cursor over hot blocks per tape.
  std::vector<std::vector<int64_t>> free_slots_;
  std::vector<BlockId> next_hot_;
  int64_t replicas_written_ = 0;
  int64_t fill_target_ = 0;

  std::vector<EpochStats> epochs_;
  double clock_ = 0;
  double next_arrival_ = 0;
  bool ran_ = false;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_SIM_LIFECYCLE_H_
