// Multi-drive jukebox simulation (extension; paper §2 names multi-drive
// scheduling as future work).
//
// One cabinet holds D drives, one robotic arm, and the shared tape pool.
// Drives serve a common pending list: when a drive's service list empties,
// a per-drive major reschedule picks a tape *not claimed by any other
// drive* with the usual tape-selection policies and extracts that tape's
// requests into the drive's sweep. Drive-local mechanics (rewind, eject,
// locate, read, load) proceed in parallel across drives, but the robot arm
// is a serialized resource: concurrent tape swaps queue on it. The dynamic
// incremental scheduler inserts arrivals into whichever drive's running
// sweep can still satisfy them.
//
// Scaling is sub-linear for three reasons the bench quantifies: robot
// contention, tape-claim conflicts (two drives cannot mount one tape), and
// the fragmentation of each tape's batch across more frequent visits.

#ifndef TAPEJUKE_SIM_MULTI_DRIVE_H_
#define TAPEJUKE_SIM_MULTI_DRIVE_H_

#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "layout/catalog.h"
#include "obs/recorder.h"
#include "obs/time_in_state.h"
#include "sched/schedule_cost.h"
#include "sched/scheduler.h"
#include "sched/sweep.h"
#include "sim/admission.h"
#include "sim/event_queue.h"
#include "sim/fault_model.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "sim/workload.h"
#include "tape/drive.h"
#include "tape/jukebox.h"
#include "util/flat_hash.h"
#include "util/status.h"

namespace tapejuke {

/// Multi-drive extension parameters.
struct MultiDriveConfig {
  int32_t num_drives = 2;
  TapePolicy policy = TapePolicy::kMaxBandwidth;
  /// Insert arrivals into running sweeps (the dynamic incremental rule).
  bool dynamic_insertion = true;
  SchedulerOptions options;

  Status Validate() const;
};

/// Extra observability for the multi-drive run.
struct MultiDriveStats {
  /// Seconds tape swaps spent queued waiting for the robot arm.
  double robot_wait_seconds = 0;
  /// Reschedule attempts that found work only on tapes claimed by other
  /// drives (the drive idled despite a non-empty pending list).
  int64_t claim_conflicts = 0;
};

/// Simulates D drives over one jukebox's tape pool.
class MultiDriveSimulator {
 public:
  /// `jukebox` supplies the tape pool, timing model, and layout geometry
  /// (its built-in single drive is unused). All pointers must outlive the
  /// simulator. This overload is fault-free only: sim.faults must be
  /// disabled (permanent media errors mask catalog replicas, which needs
  /// the mutable-catalog overload below).
  MultiDriveSimulator(Jukebox* jukebox, const Catalog* catalog,
                      const MultiDriveConfig& drives,
                      const SimulationConfig& sim);

  /// Mutable-catalog overload: enables fault injection per sim.faults.
  /// Drive failures reroute queued and in-flight requests to surviving
  /// drives; permanent media errors mask replicas in `catalog`.
  MultiDriveSimulator(Jukebox* jukebox, Catalog* catalog,
                      const MultiDriveConfig& drives,
                      const SimulationConfig& sim);

  /// Runs to completion; call once.
  SimulationResult Run();

  const MultiDriveStats& stats() const { return stats_; }

  /// Raw metrics collector and cumulative activity counters, for callers
  /// that aggregate several runs into one result (the farm merges per-box
  /// collectors). Valid after Run.
  const MetricsCollector& metrics() const { return metrics_; }
  const JukeboxCounters& counters() const { return counters_; }

  /// Buffered timeline rows/summary, for callers that merge per-box
  /// timelines (the farm). Null unless sim.timeline is enabled; valid
  /// after Run.
  const obs::TimelineSampler* timeline() const {
    return timeline_.has_value() ? &*timeline_ : nullptr;
  }

 private:
  struct DriveState {
    explicit DriveState(const TimingModel* model) : unit(model) {}
    Drive unit;
    Sweep sweep;
    /// Tape this drive has claimed (mounted or switching to).
    TapeId claim = kInvalidTape;
    /// Head position after the in-flight operation completes.
    Position committed_head = 0;
    /// In-flight service entry (completions fire when the op ends).
    std::optional<ServiceEntry> in_flight;
    /// Fault draw for the in-flight read, processed at completion.
    ReadOutcome in_flight_outcome;
    /// Next failure epoch for this drive (meaningful only with drive
    /// faults enabled; processed lazily when the drive next acts).
    double next_failure = 0;
    bool busy = false;
    /// Time-in-state segments of the in-flight operation, in temporal
    /// order as (activity, absolute end time). Charged to the accounting
    /// when the operation's completion event fires — never before — so
    /// drive cursors never outrun the simulation clock and a run that
    /// ends mid-operation clips the charge at the final clock.
    std::vector<std::pair<obs::DriveActivity, double>> pending_charge;
  };

  /// True if `tape` is claimed by any drive other than `self`.
  bool ClaimedElsewhere(TapeId tape, int self) const;

  /// Attempts to give idle drive `d` work at time `now`; schedules its
  /// next completion event if successful.
  void Dispatch(int d, double now);

  /// Starts the next sweep entry on drive `d` (sweep must be non-empty).
  void BeginNextRead(int d, double now);

  /// Routes one request through the incremental rule (no metrics side
  /// effects; the caller has already counted the arrival).
  void Route(const Request& request, double now);

  /// Counts the arrival and routes it. With faults on, an arrival whose
  /// every replica is dead completes instantly with an error instead.
  /// Returns true if the request was routed.
  bool DeliverOrFail(const Request& request, double now);

  /// Closed model under faults: draws until a servable request is issued
  /// (dead draws count as issued + failed), or the whole archive is lost.
  void IssueClosedRequest(double now);

  /// Completes `request` with an error; in the closed model the issuing
  /// process then issues its next request.
  void FailRequest(const Request& request, double now);

  /// Hands requests back to the shared pending list (a failover) or fails
  /// those whose every replica is dead.
  void Requeue(const std::vector<Request>& requests, double now);

  /// Fails every pending request whose last live replica is gone.
  void EvictUnservablePending(double now);

  /// Registers `request`'s deadline with the expiry queue (no-op when it
  /// has none).
  void TrackDeadline(const Request& request);

  /// Completes `request` as expired at `now`; in the closed model the
  /// issuing process then issues its next request.
  void ExpireRequest(const Request& request, double now);

  /// Evicts every pending request whose deadline has passed (requests
  /// already extracted into a drive's sweep are committed and complete
  /// normally) and settles each as expired.
  void ExpirePendingPastDeadline(double now);

  /// Masks the media under drive `d`'s failed read and fails the affected
  /// requests over to surviving replicas.
  void HandlePermanentError(int d, const ServiceEntry& entry,
                            bool whole_tape, double now);

  /// Takes drive `d` down for an Exponential(MTTR) repair: voids its
  /// in-flight read, hands its sweep back to the pending list, and
  /// schedules the repair-complete event (payload num_drives + d).
  void FailDrive(int d, double now);

  /// Wakes every idle drive (called after arrivals and completions).
  void WakeIdleDrives(double now);

  /// Charges drive `d`'s pending time-in-state segments, each clipped at
  /// `limit`, and clears them.
  void FlushCharges(int d, double limit);

  /// Pushes one DecisionRecord for drive `d`'s tape selection (the
  /// multi-drive dispatcher does its own selection, so it builds records
  /// itself instead of going through a Scheduler). Call with the recorder
  /// engaged, after SelectTape but before extracting the sweep.
  void RecordDispatchDecision(int d, TapeId chosen, TapeId mounted,
                              const std::vector<TapeCandidate>& candidates,
                              double now);

  /// Emits scheduled-into-sweep instants for drive `d`'s just-built sweep.
  void TraceSweepContents(int d, TapeId tape, double now);

  /// Engages the timeline sampler and registers every probe. Must run
  /// last in both constructors, after the optional subsystems are engaged.
  void SetupTimeline();

  Jukebox* jukebox_;
  const Catalog* catalog_;
  /// Non-null only via the mutable-catalog constructor (fault injection).
  Catalog* mutable_catalog_ = nullptr;
  MultiDriveConfig drives_config_;
  SimulationConfig sim_config_;
  WorkloadGenerator workload_;
  MetricsCollector metrics_;
  ScheduleCost cost_;

  std::vector<DriveState> drives_;
  std::deque<Request> pending_;
  EventQueue<int> events_;  ///< payload: drive index
  double robot_free_at_ = 0;
  double clock_ = 0;
  double next_arrival_ = 0;
  bool warmup_marked_ = false;
  bool ran_ = false;
  bool closed_ = false;

  /// Engaged by the mutable-catalog constructor when any fault rate is set.
  std::optional<FaultModel> faults_;
  FaultStats fault_stats_;
  bool drive_faults_ = false;

  /// Overload protection (mirrors Simulator): admission_ is engaged iff
  /// sim.admission.enabled(); expiry events carry the request id and
  /// deadline_live_ filters events whose request already settled;
  /// deadlines_possible_ gates the machinery so deadline-free runs make no
  /// extra queue operations.
  std::optional<AdmissionController> admission_;
  EventQueue<RequestId> expiries_;
  FlatSet<RequestId> deadline_live_;
  bool deadlines_possible_ = false;

  JukeboxCounters counters_;
  MultiDriveStats stats_;

  /// Per-drive time-in-state accounting (always on; folded into the
  /// result). Cursors advance only at event-processing time via
  /// FlushCharges, so they track the clock exactly.
  obs::TimeInStateAccounting accounting_;
  /// Engaged only when sim.obs asks for output (tracing is opt-in).
  std::optional<obs::TraceRecorder> recorder_;
  /// Engaged iff sim.timeline.enabled(). Samples are emitted before each
  /// main-loop event is processed — pure observation, never a clock
  /// advance, drive wake-up, or warm-up mark, so enabling the timeline
  /// cannot change simulation results.
  std::optional<obs::TimelineSampler> timeline_;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_SIM_MULTI_DRIVE_H_
