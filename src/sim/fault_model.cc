#include "sim/fault_model.h"

#include <algorithm>

#include "util/check.h"

namespace tapejuke {

Status FaultConfig::Validate() const {
  if (transient_read_error_prob < 0.0 || transient_read_error_prob >= 1.0) {
    return Status::InvalidArgument(
        "transient_read_error_prob must be in [0, 1)");
  }
  if (max_read_retries < 0) {
    return Status::InvalidArgument("max_read_retries must be >= 0");
  }
  if (permanent_media_error_prob < 0.0 || permanent_media_error_prob >= 1.0) {
    return Status::InvalidArgument(
        "permanent_media_error_prob must be in [0, 1)");
  }
  if (whole_tape_fraction < 0.0 || whole_tape_fraction > 1.0) {
    return Status::InvalidArgument("whole_tape_fraction must be in [0, 1]");
  }
  if (drive_mtbf_seconds < 0.0) {
    return Status::InvalidArgument("drive_mtbf_seconds must be >= 0");
  }
  if (drive_mtbf_seconds > 0.0 && drive_mttr_seconds <= 0.0) {
    return Status::InvalidArgument(
        "drive_mtbf_seconds > 0 requires drive_mttr_seconds > 0");
  }
  if (drive_mttr_seconds < 0.0) {
    return Status::InvalidArgument("drive_mttr_seconds must be >= 0");
  }
  if (robot_fault_prob < 0.0 || robot_fault_prob >= 1.0) {
    return Status::InvalidArgument("robot_fault_prob must be in [0, 1)");
  }
  if (retry_backoff_base_seconds < 0.0 || retry_backoff_max_seconds < 0.0) {
    return Status::InvalidArgument("retry backoff must be >= 0");
  }
  return Status::Ok();
}

FaultStats& FaultStats::operator+=(const FaultStats& other) {
  transient_read_errors += other.transient_read_errors;
  read_retries += other.read_retries;
  reads_escalated += other.reads_escalated;
  permanent_media_errors += other.permanent_media_errors;
  dead_tapes += other.dead_tapes;
  replicas_masked += other.replicas_masked;
  drive_failures += other.drive_failures;
  drive_repair_seconds += other.drive_repair_seconds;
  robot_faults += other.robot_faults;
  robot_retry_seconds += other.robot_retry_seconds;
  failovers += other.failovers;
  degraded_reads += other.degraded_reads;
  blocks_lost += other.blocks_lost;
  return *this;
}

bool FaultStats::operator==(const FaultStats& other) const {
  return transient_read_errors == other.transient_read_errors &&
         read_retries == other.read_retries &&
         reads_escalated == other.reads_escalated &&
         permanent_media_errors == other.permanent_media_errors &&
         dead_tapes == other.dead_tapes &&
         replicas_masked == other.replicas_masked &&
         drive_failures == other.drive_failures &&
         drive_repair_seconds == other.drive_repair_seconds &&
         robot_faults == other.robot_faults &&
         robot_retry_seconds == other.robot_retry_seconds &&
         failovers == other.failovers &&
         degraded_reads == other.degraded_reads &&
         blocks_lost == other.blocks_lost;
}

namespace {

// Mixes the workload seed into a distinct fault-stream seed so the two
// streams never collide even when FaultConfig::seed is left at 0.
uint64_t DeriveFaultSeed(uint64_t workload_seed) {
  uint64_t state = workload_seed ^ 0xfa17ab1e5eedULL;
  return SplitMix64(&state);
}

}  // namespace

FaultModel::FaultModel(const FaultConfig& config, uint64_t workload_seed)
    : config_(config),
      rng_(config.seed != 0 ? config.seed : DeriveFaultSeed(workload_seed)) {
  TJ_CHECK(config.Validate().ok()) << config.Validate().message();
}

ReadOutcome FaultModel::NextReadOutcome() {
  ReadOutcome outcome;
  // Permanent errors are drawn first: a read that lands on bad media fails
  // outright, no matter how many transient retries the drive would allow.
  if (config_.permanent_media_error_prob > 0.0 &&
      rng_.Bernoulli(config_.permanent_media_error_prob)) {
    outcome.permanent_error = true;
    outcome.whole_tape = config_.whole_tape_fraction > 0.0 &&
                         rng_.Bernoulli(config_.whole_tape_fraction);
    return outcome;
  }
  if (config_.transient_read_error_prob <= 0.0) return outcome;
  // Each attempt independently suffers a transient error; the retry budget
  // bounds the chain, and exhausting it escalates to a permanent error.
  while (rng_.Bernoulli(config_.transient_read_error_prob)) {
    if (outcome.retries == config_.max_read_retries) {
      outcome.permanent_error = true;
      outcome.escalated = true;
      outcome.whole_tape = config_.whole_tape_fraction > 0.0 &&
                           rng_.Bernoulli(config_.whole_tape_fraction);
      return outcome;
    }
    ++outcome.retries;
  }
  return outcome;
}

int FaultModel::NextRobotFaults() {
  if (config_.robot_fault_prob <= 0.0) return 0;
  int faults = 0;
  while (rng_.Bernoulli(config_.robot_fault_prob)) ++faults;
  return faults;
}

double FaultModel::NextFailureGap() {
  TJ_CHECK_GT(config_.drive_mtbf_seconds, 0.0);
  return rng_.Exponential(config_.drive_mtbf_seconds);
}

double FaultModel::NextRepairTime() {
  TJ_CHECK_GT(config_.drive_mttr_seconds, 0.0);
  return rng_.Exponential(config_.drive_mttr_seconds);
}

double FaultModel::NextRetryBackoff(int attempt) {
  if (config_.retry_backoff_base_seconds <= 0.0) return 0.0;
  TJ_CHECK_GE(attempt, 0);
  // Cap the doubling exponent so the shift below cannot overflow; the
  // config cap (when set) applies on top.
  const int exponent = attempt < 60 ? attempt : 60;
  double wait = config_.retry_backoff_base_seconds *
                static_cast<double>(uint64_t{1} << exponent);
  if (config_.retry_backoff_max_seconds > 0.0) {
    wait = std::min(wait, config_.retry_backoff_max_seconds);
  }
  // Jitter in [0.5, 1.0]: desynchronizes retry storms across drives while
  // staying a deterministic function of the fault stream.
  return wait * (0.5 + 0.5 * rng_.UniformDouble());
}

}  // namespace tapejuke
