#include "sim/metrics.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/check.h"

namespace tapejuke {

namespace {
// Delay histogram range: 0 .. ~55 hours. Even FIFO at queue 140 (mean
// delay ~10 hours) keeps its tail inside this range; 4000 buckets give
// 50-second quantile resolution.
constexpr double kDelayHistMax = 200000.0;
constexpr int kDelayHistBuckets = 4000;
}  // namespace

MetricsCollector::MetricsCollector(double warmup_seconds,
                                   int64_t block_size_mb)
    : warmup_seconds_(warmup_seconds),
      block_size_mb_(block_size_mb),
      delay_histogram_(0.0, kDelayHistMax, kDelayHistBuckets) {
  TJ_CHECK_GE(warmup_seconds, 0.0);
  TJ_CHECK_GT(block_size_mb, 0);
}

void MetricsCollector::AccumulateOutstandingArea(double now) {
  const double from = std::max(last_transition_, warmup_seconds_);
  if (now > from) {
    outstanding_area_ += static_cast<double>(outstanding_) * (now - from);
  }
  last_transition_ = std::max(last_transition_, now);
}

void MetricsCollector::OnArrival(double now) {
  AccumulateOutstandingArea(now);
  ++outstanding_;
  ++issued_total_;
}

void MetricsCollector::ConfigureClasses(int num_classes) {
  TJ_CHECK(classes_.empty()) << "classes already configured";
  TJ_CHECK_EQ(issued_total_, 0) << "configure classes before any event";
  TJ_CHECK_GT(num_classes, 0);
  classes_.reserve(static_cast<size_t>(num_classes));
  for (int i = 0; i < num_classes; ++i) {
    classes_.emplace_back(0.0, kDelayHistMax, kDelayHistBuckets);
  }
}

void MetricsCollector::AttachTimeline(obs::StatRegistry* registry) {
  registry->AddCounter("issued", [this] { return issued_total_; });
  registry->AddCounter("completed", [this] { return completed_total_; });
  registry->AddCounter("failed", [this] { return failed_total_; });
  registry->AddCounter("expired", [this] { return expired_total_; });
  registry->AddCounter("shed", [this] { return shed_total_; });
  for (size_t i = 0; i < classes_.size(); ++i) {
    const std::string prefix = "class" + std::to_string(i);
    // Per-class counts are post-warm-up, matching TenantClassResult.
    registry->AddCounter(prefix + "_completed",
                         [this, i] { return classes_[i].completed; });
    registry->AddCounter(prefix + "_expired",
                         [this, i] { return classes_[i].expired; });
    registry->AddCounter(prefix + "_shed",
                         [this, i] { return classes_[i].shed; });
  }
  registry->AddGauge("outstanding", [this] {
    return static_cast<double>(outstanding_);
  });
  timeline_delay_ =
      registry->AddWindow("delay", 0.0, kDelayHistMax, kDelayHistBuckets);
  timeline_class_delay_.clear();
  for (size_t i = 0; i < classes_.size(); ++i) {
    timeline_class_delay_.push_back(
        registry->AddWindow("class" + std::to_string(i) + "_delay", 0.0,
                            kDelayHistMax, kDelayHistBuckets));
  }
}

void MetricsCollector::OnCompletion(double arrival, double now, int tenant) {
  TJ_CHECK_LE(arrival, now + 1e-9);
  AccumulateOutstandingArea(now);
  --outstanding_;
  TJ_CHECK_GE(outstanding_, 0);
  ++completed_total_;
  if (timeline_delay_ != nullptr) {
    timeline_delay_->Add(now - arrival);
    if (!timeline_class_delay_.empty()) {
      TJ_CHECK_LT(static_cast<size_t>(tenant), timeline_class_delay_.size());
      timeline_class_delay_[static_cast<size_t>(tenant)]->Add(now - arrival);
    }
  }
  if (now <= warmup_seconds_) return;
  ++completed_;
  delay_.Add(now - arrival);
  delay_histogram_.Add(now - arrival);
  if (!classes_.empty()) {
    TJ_CHECK_LT(static_cast<size_t>(tenant), classes_.size());
    ClassAccum& cls = classes_[static_cast<size_t>(tenant)];
    ++cls.completed;
    cls.delay.Add(now - arrival);
    cls.histogram.Add(now - arrival);
  }
}

void MetricsCollector::OnFailure(double arrival, double now) {
  TJ_CHECK_LE(arrival, now + 1e-9);
  AccumulateOutstandingArea(now);
  --outstanding_;
  TJ_CHECK_GE(outstanding_, 0);
  ++failed_total_;
}

void MetricsCollector::OnExpired(double arrival, double now, int tenant) {
  TJ_CHECK_LE(arrival, now + 1e-9);
  AccumulateOutstandingArea(now);
  --outstanding_;
  TJ_CHECK_GE(outstanding_, 0);
  ++expired_total_;
  if (now <= warmup_seconds_) return;
  if (!classes_.empty()) {
    TJ_CHECK_LT(static_cast<size_t>(tenant), classes_.size());
    ++classes_[static_cast<size_t>(tenant)].expired;
  }
}

void MetricsCollector::OnShed(double now, int tenant) {
  AccumulateOutstandingArea(now);
  ++issued_total_;
  ++shed_total_;
  if (now <= warmup_seconds_) return;
  if (!classes_.empty()) {
    TJ_CHECK_LT(static_cast<size_t>(tenant), classes_.size());
    ++classes_[static_cast<size_t>(tenant)].shed;
  }
}

void MetricsCollector::MarkWarmupBoundary(const JukeboxCounters& counters) {
  TJ_CHECK(!warmup_marked_) << "warm-up boundary already marked";
  warmup_marked_ = true;
  warmup_counters_ = counters;
}

void MetricsCollector::Merge(const MetricsCollector& other) {
  TJ_CHECK_EQ(warmup_seconds_, other.warmup_seconds_);
  // An unmarked collector (its run never reached the warm-up boundary)
  // contributes a zero counter baseline, matching Finalize's documented
  // unmarked behavior.
  warmup_marked_ = warmup_marked_ || other.warmup_marked_;
  delay_.Merge(other.delay_);
  delay_histogram_.Merge(other.delay_histogram_);
  completed_ += other.completed_;
  TJ_CHECK_EQ(classes_.size(), other.classes_.size())
      << "merging collectors with different tenant-class counts";
  for (size_t i = 0; i < classes_.size(); ++i) {
    ClassAccum& mine = classes_[i];
    const ClassAccum& theirs = other.classes_[i];
    mine.delay.Merge(theirs.delay);
    mine.histogram.Merge(theirs.histogram);
    mine.completed += theirs.completed;
    mine.expired += theirs.expired;
    mine.shed += theirs.shed;
  }
  issued_total_ += other.issued_total_;
  completed_total_ += other.completed_total_;
  failed_total_ += other.failed_total_;
  expired_total_ += other.expired_total_;
  shed_total_ += other.shed_total_;
  outstanding_ += other.outstanding_;
  last_transition_ = std::max(last_transition_, other.last_transition_);
  outstanding_area_ += other.outstanding_area_;
  warmup_counters_.tape_switches += other.warmup_counters_.tape_switches;
  warmup_counters_.blocks_read += other.warmup_counters_.blocks_read;
  warmup_counters_.mb_read += other.warmup_counters_.mb_read;
  warmup_counters_.rewind_seconds += other.warmup_counters_.rewind_seconds;
  warmup_counters_.switch_seconds += other.warmup_counters_.switch_seconds;
  warmup_counters_.locate_seconds += other.warmup_counters_.locate_seconds;
  warmup_counters_.read_seconds += other.warmup_counters_.read_seconds;
}

SimulationResult MetricsCollector::Finalize(
    double end_time, const JukeboxCounters& final_counters,
    const obs::TimeInStateAccounting* accounting) const {
  SimulationResult result;
  result.simulated_seconds = end_time;
  result.measured_seconds = std::max(0.0, end_time - warmup_seconds_);
  result.completed_requests = completed_;

  if (result.measured_seconds > 0) {
    const double mb =
        static_cast<double>(completed_ * block_size_mb_);
    result.throughput_mb_per_s = mb / result.measured_seconds;
    result.throughput_kb_per_s = result.throughput_mb_per_s * 1024.0;
    result.requests_per_minute =
        static_cast<double>(completed_) / (result.measured_seconds / 60.0);
    result.mean_outstanding = outstanding_area_ / result.measured_seconds;
  }

  result.mean_delay_seconds = delay_.mean();
  result.mean_delay_minutes = delay_.mean() / 60.0;
  result.delay_stddev_seconds = delay_.stddev();
  // Quantiles landing in the histogram's overflow mass report the tracked
  // true maximum instead of saturating at kDelayHistMax — deep farm queues
  // push p99 past the histogram range, and a silent ~55 h ceiling would
  // hide exactly the tail the quantile exists to expose.
  result.p50_delay_seconds = delay_histogram_.Quantile(0.50, delay_.max());
  result.p95_delay_seconds = delay_histogram_.Quantile(0.95, delay_.max());
  result.p99_delay_seconds = delay_histogram_.Quantile(0.99, delay_.max());
  result.max_delay_seconds = delay_.max();
  result.delay_hist_overflow = delay_histogram_.overflow();

  // Activity deltas over the measurement window.
  const JukeboxCounters& base = warmup_counters_;
  JukeboxCounters delta;
  delta.tape_switches = final_counters.tape_switches - base.tape_switches;
  delta.blocks_read = final_counters.blocks_read - base.blocks_read;
  delta.mb_read = final_counters.mb_read - base.mb_read;
  delta.rewind_seconds =
      final_counters.rewind_seconds - base.rewind_seconds;
  delta.switch_seconds =
      final_counters.switch_seconds - base.switch_seconds;
  delta.locate_seconds =
      final_counters.locate_seconds - base.locate_seconds;
  delta.read_seconds = final_counters.read_seconds - base.read_seconds;
  result.counters = delta;
  if (result.measured_seconds > 0) {
    result.tape_switches_per_hour =
        static_cast<double>(delta.tape_switches) /
        (result.measured_seconds / 3600.0);
  }
  const double busy = delta.BusySeconds();
  result.transfer_utilization = busy > 0 ? delta.read_seconds / busy : 0.0;

  if (accounting != nullptr) {
    result.time_in_state = accounting->per_drive();
    double busy_total = 0;
    for (int drive = 0; drive < accounting->num_drives(); ++drive) {
      const obs::DriveTimeInState& tis = result.time_in_state[drive];
      // Per-drive identity: charged states cover the measurement window
      // exactly. Charging uses absolute-until cursors so the only slack
      // is floating-point accumulation across the per-state sums.
      const double tolerance =
          1e-6 * std::max(1.0, result.measured_seconds);
      TJ_CHECK_LE(std::abs(tis.Total() - result.measured_seconds),
                  tolerance)
          << "drive " << drive << " time-in-state total " << tis.Total()
          << " != measured " << result.measured_seconds;
      busy_total += tis.BusySeconds();
    }
    if (result.measured_seconds > 0) {
      result.drive_utilization =
          busy_total /
          (result.measured_seconds * accounting->num_drives());
    }
  }

  // Whole-run conservation totals. The simulator fills fault_injection and
  // result.faults; the identity below holds for every run.
  result.issued_requests = issued_total_;
  result.completed_total = completed_total_;
  result.failed_requests = failed_total_;
  result.outstanding_at_end = outstanding_;
  const int64_t settled = completed_total_ + failed_total_;
  result.availability =
      settled > 0 ? static_cast<double>(completed_total_) /
                        static_cast<double>(settled)
                  : 1.0;
  TJ_CHECK_EQ(
      completed_total_ + failed_total_ + expired_total_ + shed_total_ +
          outstanding_,
      issued_total_)
      << "request conservation violated";

  // Overload accounting: emitted only when the run actually used the
  // subsystem, so overload-free results stay byte-identical.
  result.expired_requests = expired_total_;
  result.shed_requests = shed_total_;
  result.overload_enabled =
      !classes_.empty() || expired_total_ > 0 || shed_total_ > 0;
  if (result.overload_enabled && !classes_.empty()) {
    result.tenant_classes.reserve(classes_.size());
    for (const ClassAccum& cls : classes_) {
      TenantClassResult out;
      out.completed = cls.completed;
      out.expired = cls.expired;
      out.shed = cls.shed;
      out.mean_delay_seconds = cls.delay.mean();
      out.p99_delay_seconds = cls.histogram.Quantile(0.99, cls.delay.max());
      if (result.measured_seconds > 0) {
        out.goodput_per_minute = static_cast<double>(cls.completed) /
                                 (result.measured_seconds / 60.0);
      }
      result.tenant_classes.push_back(out);
    }
  }
  return result;
}

}  // namespace tapejuke
