#include "sim/repair.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <sstream>

#include "tape/drive.h"
#include "tape/tape.h"
#include "util/check.h"
#include "util/json.h"

namespace tapejuke {

namespace {
// A wakeup scheduled at TokenReadyTime must find the bucket full enough
// despite floating-point rounding in the refill arithmetic.
constexpr double kTokenSlack = 1e-9;
}  // namespace

Status RepairConfig::Validate() const {
  if (scrub_interval_seconds < 0.0) {
    return Status::InvalidArgument("scrub_interval_seconds must be >= 0");
  }
  if (repair_bandwidth_mb_per_s < 0.0) {
    return Status::InvalidArgument("repair_bandwidth_mb_per_s must be >= 0");
  }
  if (repair_bandwidth_mb_per_s > 0.0 && repair_burst_mb <= 0.0) {
    return Status::InvalidArgument(
        "repair_bandwidth_mb_per_s > 0 requires repair_burst_mb > 0");
  }
  return Status::Ok();
}

RepairManager::RepairManager(const RepairConfig& config, Jukebox* jukebox,
                             Catalog* catalog, Scheduler* scheduler,
                             FaultModel* faults, FaultStats* fault_stats)
    : config_(config),
      jukebox_(jukebox),
      catalog_(catalog),
      scheduler_(scheduler),
      faults_(faults),
      fault_stats_(fault_stats),
      block_mb_(jukebox->config().block_size_mb) {
  TJ_CHECK(jukebox_ != nullptr && catalog_ != nullptr &&
           scheduler_ != nullptr && faults_ != nullptr &&
           fault_stats_ != nullptr);
  TJ_CHECK(config_.enabled());
  TJ_CHECK(config_.Validate().ok()) << config_.Validate().message();
  if (config_.repair_bandwidth_mb_per_s > 0.0) {
    TJ_CHECK_GE(config_.repair_burst_mb, static_cast<double>(block_mb_))
        << "repair burst must cover at least one block";
  }
  const TapeId num_tapes = jukebox_->num_tapes();
  free_slots_.resize(static_cast<size_t>(num_tapes));
  dead_tape_.assign(static_cast<size_t>(num_tapes), 0);
  for (TapeId t = 0; t < num_tapes; ++t) {
    const Tape& tape = jukebox_->tape(t);
    std::vector<int64_t>& pool = free_slots_[static_cast<size_t>(t)];
    for (int64_t slot = tape.num_slots() - 1; slot >= 0; --slot) {
      if (tape.BlockAtSlot(slot) == kInvalidBlock) pool.push_back(slot);
    }
  }
  tokens_ = config_.repair_burst_mb;
  token_time_ = 0.0;
  // The first scrub pass is due one interval into the run, not at t=0.
  next_scrub_due_ = config_.scrub_interval_seconds;
}

// --- token bucket --------------------------------------------------------

double RepairManager::TokensAt(double now) const {
  if (config_.repair_bandwidth_mb_per_s <= 0.0) {
    return std::numeric_limits<double>::max();
  }
  return std::min(
      config_.repair_burst_mb,
      tokens_ + (now - token_time_) * config_.repair_bandwidth_mb_per_s);
}

void RepairManager::SpendTokens(double now, double mb) {
  if (config_.repair_bandwidth_mb_per_s <= 0.0) return;
  tokens_ = std::max(0.0, TokensAt(now) - mb);
  token_time_ = now;
}

double RepairManager::TokenReadyTime(double now, double mb) const {
  if (config_.repair_bandwidth_mb_per_s <= 0.0) return now;
  const double tokens = TokensAt(now);
  if (tokens >= mb - kTokenSlack) return now;
  return now + (mb - tokens) / config_.repair_bandwidth_mb_per_s;
}

// --- task bookkeeping ----------------------------------------------------

bool RepairManager::ChooseTarget(BlockId block, RepairTask* task) {
  const auto already_targeted = [&](TapeId t) {
    const auto it = tasks_.find(block);
    if (it == tasks_.end()) return false;
    for (const RepairTask& other : it->second.tasks) {
      if (other.target_tape == t) return true;
    }
    return false;
  };
  TapeId best = kInvalidTape;
  size_t best_free = 0;
  for (TapeId t = 0; t < jukebox_->num_tapes(); ++t) {
    const size_t free = free_slots_[static_cast<size_t>(t)].size();
    if (free == 0 || dead_tape_[static_cast<size_t>(t)] != 0) continue;
    if (catalog_->ReplicaOn(block, t) != nullptr) continue;
    if (already_targeted(t)) continue;
    if (best == kInvalidTape || free > best_free) {
      best = t;
      best_free = free;
    }
  }
  if (best == kInvalidTape) return false;
  std::vector<int64_t>& pool = free_slots_[static_cast<size_t>(best)];
  task->target_tape = best;
  task->target_slot = pool.back();
  pool.pop_back();
  return true;
}

void RepairManager::ReleaseSlot(TapeId tape, int64_t slot) {
  if (dead_tape_[static_cast<size_t>(tape)] != 0) return;
  std::vector<int64_t>& pool = free_slots_[static_cast<size_t>(tape)];
  const auto it = std::lower_bound(pool.begin(), pool.end(), slot,
                                   std::greater<int64_t>());
  pool.insert(it, slot);
}

void RepairManager::AbandonBlock(BlockId block) {
  const auto it = tasks_.find(block);
  if (it == tasks_.end()) return;
  for (const RepairTask& task : it->second.tasks) {
    ReleaseSlot(task.target_tape, task.target_slot);
    ++stats_.repairs_abandoned;
    --outstanding_tasks_;
  }
  // If a source read is still queued, the block has no live replica left,
  // so the scheduler will evict it and OnBackgroundEvicted will find no
  // state here — which is fine.
  tasks_.erase(it);
}

void RepairManager::RequestSourceRead(BlockId block, double now) {
  Request request;
  request.id = next_background_id_++;
  request.block = block;
  request.arrival_time = now;
  request.cls = RequestClass::kBackground;
  tasks_[block].source_outstanding = true;
  if (recorder_ != nullptr) {
    recorder_->RequestArrived(request.id, request.block,
                              /*background=*/true, now);
  }
  scheduler_->EnqueueBackground(request);
}

void RepairManager::OnReplicaDead(BlockId block, TapeId tape, double now) {
  if (!catalog_->HasLiveReplica(block)) {
    // No surviving copy to read from: nothing can be rebuilt.
    AbandonBlock(block);
    return;
  }
  if (!config_.enable_repair) return;
  RepairTask task;
  task.dead_tape = tape;
  task.dead_at = now;
  if (!ChooseTarget(block, &task)) {
    ++stats_.repairs_impossible;
    return;
  }
  BlockState& state = tasks_[block];
  state.tasks.push_back(task);
  ++stats_.repairs_enqueued;
  ++outstanding_tasks_;
  stats_.backlog_peak = std::max(stats_.backlog_peak, outstanding_tasks_);
  if (!state.payload_buffered && !state.source_outstanding) {
    RequestSourceRead(block, now);
  }
}

void RepairManager::OnTapeDead(TapeId tape,
                               const std::vector<BlockId>& newly_masked,
                               double now) {
  dead_tape_[static_cast<size_t>(tape)] = 1;
  free_slots_[static_cast<size_t>(tape)].clear();
  // Tasks that were going to write onto the dead tape lost their reserved
  // slots with it; re-target them or drop them.
  std::vector<BlockId> emptied;
  for (auto& [block, state] : tasks_) {
    for (auto it = state.tasks.begin(); it != state.tasks.end();) {
      if (it->target_tape != tape) {
        ++it;
        continue;
      }
      RepairTask moved = *it;
      moved.target_tape = kInvalidTape;
      moved.target_slot = -1;
      if (ChooseTarget(block, &moved)) {
        *it = moved;
        ++it;
      } else {
        ++stats_.repairs_abandoned;
        --outstanding_tasks_;
        it = state.tasks.erase(it);
      }
    }
    if (state.tasks.empty() && !state.source_outstanding) {
      emptied.push_back(block);
    }
  }
  for (const BlockId block : emptied) tasks_.erase(block);
  for (const BlockId block : newly_masked) OnReplicaDead(block, tape, now);
}

void RepairManager::OnSourceReadComplete(BlockId block, double now) {
  (void)now;
  const auto it = tasks_.find(block);
  if (it == tasks_.end()) return;  // tasks abandoned while the read flew
  it->second.source_outstanding = false;
  ++stats_.source_reads;
  if (it->second.tasks.empty()) {
    tasks_.erase(it);
    return;
  }
  it->second.payload_buffered = true;
}

void RepairManager::OnBackgroundDisplaced(const Request& request,
                                          double now) {
  const auto it = tasks_.find(request.block);
  if (it == tasks_.end() || !it->second.source_outstanding) return;
  it->second.source_outstanding = false;
  if (it->second.tasks.empty()) {
    tasks_.erase(it);
    return;
  }
  if (catalog_->HasLiveReplica(request.block)) {
    // Re-issue against a surviving replica under a fresh id (the displaced
    // request is gone from the scheduler for good).
    RequestSourceRead(request.block, now);
  } else {
    AbandonBlock(request.block);
  }
}

void RepairManager::OnBackgroundEvicted(BlockId block) {
  const auto it = tasks_.find(block);
  if (it == tasks_.end()) return;
  it->second.source_outstanding = false;
  AbandonBlock(block);
}

// --- staged-write queries ------------------------------------------------

bool RepairManager::FindStaged(TapeId tape, BlockId* block,
                               size_t* idx) const {
  for (const auto& [b, state] : tasks_) {
    if (!state.payload_buffered) continue;
    for (size_t i = 0; i < state.tasks.size(); ++i) {
      if (state.tasks[i].target_tape == tape) {
        *block = b;
        *idx = i;
        return true;
      }
    }
  }
  return false;
}

TapeId RepairManager::BestStagedTarget() const {
  std::vector<int64_t> staged(static_cast<size_t>(jukebox_->num_tapes()), 0);
  for (const auto& [b, state] : tasks_) {
    if (!state.payload_buffered) continue;
    for (const RepairTask& task : state.tasks) {
      ++staged[static_cast<size_t>(task.target_tape)];
    }
  }
  TapeId best = kInvalidTape;
  for (TapeId t = 0; t < jukebox_->num_tapes(); ++t) {
    if (staged[static_cast<size_t>(t)] == 0) continue;
    if (best == kInvalidTape ||
        staged[static_cast<size_t>(t)] > staged[static_cast<size_t>(best)]) {
      best = t;
    }
  }
  return best;
}

bool RepairManager::HasStagedPayload() const {
  for (const auto& [block, state] : tasks_) {
    if (state.payload_buffered && !state.tasks.empty()) return true;
  }
  return false;
}

// --- execution -----------------------------------------------------------

double RepairManager::CompleteTask(BlockId block, size_t idx, double now) {
  const auto it = tasks_.find(block);
  TJ_CHECK(it != tasks_.end());
  BlockState& state = it->second;
  TJ_CHECK(state.payload_buffered);
  TJ_CHECK(idx < state.tasks.size());
  const RepairTask task = state.tasks[idx];
  state.tasks.erase(state.tasks.begin() + static_cast<std::ptrdiff_t>(idx));
  TJ_CHECK_EQ(jukebox_->mounted_tape(), task.target_tape);

  Tape& target = jukebox_->tape(task.target_tape);
  const Position position = target.PositionOfSlot(task.target_slot);
  Drive& drive = jukebox_->drive();
  // The write is charged like a read of the same block (the writeback
  // idiom): locate to the reserved slot, stream one block.
  const double seconds = drive.LocateTo(position) + drive.Read(block_mb_);
  SpendTokens(now, static_cast<double>(block_mb_));

  const Status placed = target.PlaceBlock(block, task.target_slot);
  TJ_CHECK(placed.ok()) << placed.message();
  // Retire the dead copy's physical slot mapping; bad media is never
  // returned to the free pool.
  Tape& old = jukebox_->tape(task.dead_tape);
  if (const std::optional<int64_t> old_slot = old.SlotOf(block);
      old_slot.has_value()) {
    old.ClearSlot(*old_slot);
  }
  catalog_->RepairReplica(
      block, task.dead_tape,
      Replica{task.target_tape, task.target_slot, position});

  ++stats_.repairs_completed;
  stats_.repair_write_seconds += seconds;
  const double reprotect = now + seconds - task.dead_at;
  stats_.reprotect_seconds_sum += reprotect;
  stats_.reprotect_seconds_max =
      std::max(stats_.reprotect_seconds_max, reprotect);
  if (recorder_ != nullptr) {
    std::ostringstream args;
    args << "{\"block\":" << block << ",\"target_tape\":" << task.target_tape
         << ",\"reprotect_seconds\":" << JsonDouble(reprotect) << '}';
    recorder_->Instant("repair-complete", now + seconds, args.str());
  }
  --outstanding_tasks_;
  if (state.tasks.empty() && !state.source_outstanding) tasks_.erase(it);
  return seconds;
}

double RepairManager::AtSweepBoundary(double now) {
  if (!config_.enable_repair) return 0.0;
  const TapeId mounted = jukebox_->mounted_tape();
  if (mounted == kInvalidTape) return 0.0;
  double seconds = 0.0;
  BlockId block = kInvalidBlock;
  size_t idx = 0;
  // Re-scan from scratch after every completion: CompleteTask may erase
  // map entries, and each flush can stage nothing new, so this terminates.
  while (FindStaged(mounted, &block, &idx)) {
    if (TokensAt(now + seconds) <
        static_cast<double>(block_mb_) - kTokenSlack) {
      break;
    }
    seconds += CompleteTask(block, idx, now + seconds);
  }
  return seconds;
}

double RepairManager::Mount(TapeId tape, int64_t* mounts) {
  TJ_CHECK_NE(tape, jukebox_->mounted_tape());
  double seconds = jukebox_->SwitchTo(tape);
  if (seconds > 0) {
    // Mirror the simulator's robot-fault accounting for client mounts.
    const int slips = faults_->NextRobotFaults();
    if (slips > 0) {
      const double extra = jukebox_->ChargeRobotRetries(slips);
      fault_stats_->robot_faults += slips;
      fault_stats_->robot_retry_seconds += extra;
      seconds += extra;
    }
  }
  ++*mounts;
  return seconds;
}

void RepairManager::MaybeStartScrubPass(double now) {
  if (scrub_tape_ != kInvalidTape || now < next_scrub_due_) return;
  const TapeId num_tapes = jukebox_->num_tapes();
  for (TapeId i = 0; i < num_tapes; ++i) {
    const TapeId t = (scrub_cursor_ + i) % num_tapes;
    if (dead_tape_[static_cast<size_t>(t)] != 0) continue;
    const Tape& tape = jukebox_->tape(t);
    bool has_live = false;
    for (int64_t slot = 0; slot < tape.num_slots(); ++slot) {
      const BlockId block = tape.BlockAtSlot(slot);
      if (block != kInvalidBlock &&
          catalog_->LiveReplicaOn(block, t) != nullptr) {
        has_live = true;
        break;
      }
    }
    if (!has_live) continue;
    scrub_tape_ = t;
    scrub_slot_ = 0;
    scrub_cursor_ = (t + 1) % num_tapes;
    return;
  }
  // Nothing live to scrub anywhere; skip this pass.
  next_scrub_due_ = now + config_.scrub_interval_seconds;
}

RepairManager::Quantum RepairManager::ScrubStep(double now) {
  Quantum quantum;
  const TapeId scrubbed = scrub_tape_;
  TJ_CHECK_NE(scrubbed, kInvalidTape);
  TJ_CHECK_EQ(jukebox_->mounted_tape(), scrubbed);
  Tape& tape = jukebox_->tape(scrubbed);
  const int64_t num_slots = tape.num_slots();
  while (scrub_slot_ < num_slots) {
    const BlockId block = tape.BlockAtSlot(scrub_slot_);
    if (block != kInvalidBlock &&
        catalog_->LiveReplicaOn(block, scrubbed) != nullptr) {
      break;
    }
    ++scrub_slot_;
  }
  if (scrub_slot_ >= num_slots) {
    ++stats_.scrub_passes;
    if (recorder_ != nullptr) {
      std::ostringstream args;
      args << "{\"tape\":" << scrubbed
           << ",\"passes\":" << stats_.scrub_passes
           << ",\"errors_detected\":" << stats_.scrub_errors_detected
           << '}';
      recorder_->Instant("scrub-pass-complete", now, args.str());
    }
    scrub_tape_ = kInvalidTape;
    next_scrub_due_ = now + config_.scrub_interval_seconds;
    return quantum;
  }

  const int64_t slot = scrub_slot_++;
  const BlockId block = tape.BlockAtSlot(slot);
  const Position position = tape.PositionOfSlot(slot);
  Drive& drive = jukebox_->drive();
  double seconds = drive.LocateTo(position) + drive.Read(block_mb_);
  // Scrub reads draw from the same fault stream and charge the same retry
  // costs as client reads — that is the whole point of scrubbing.
  const ReadOutcome outcome = faults_->NextReadOutcome();
  for (int retry = 0; retry < outcome.retries; ++retry) {
    seconds += drive.LocateTo(position) + drive.Read(block_mb_);
  }
  fault_stats_->transient_read_errors +=
      outcome.retries + (outcome.escalated ? 1 : 0);
  fault_stats_->read_retries += outcome.retries;
  if (outcome.escalated) ++fault_stats_->reads_escalated;
  ++stats_.scrub_blocks_read;
  stats_.scrub_seconds += seconds;
  SpendTokens(now, static_cast<double>(block_mb_));
  quantum.seconds = seconds;
  if (!outcome.permanent_error) return quantum;

  // A latent error, found before any client tripped over it.
  ++fault_stats_->permanent_media_errors;
  ++stats_.scrub_errors_detected;
  quantum.masked_replicas = true;
  const double end = now + seconds;
  if (outcome.whole_tape) {
    ++fault_stats_->dead_tapes;
    std::vector<BlockId> newly_masked;
    fault_stats_->replicas_masked +=
        catalog_->MarkTapeDead(scrubbed, &newly_masked);
    for (const BlockId b : newly_masked) {
      if (!catalog_->HasLiveReplica(b)) ++fault_stats_->blocks_lost;
    }
    // The pass dies with the tape.
    scrub_tape_ = kInvalidTape;
    next_scrub_due_ = end + config_.scrub_interval_seconds;
    OnTapeDead(scrubbed, newly_masked, end);
  } else if (catalog_->MarkReplicaDead(block, scrubbed)) {
    ++fault_stats_->replicas_masked;
    if (!catalog_->HasLiveReplica(block)) ++fault_stats_->blocks_lost;
    OnReplicaDead(block, scrubbed, end);
  }
  return quantum;
}

double RepairManager::NextIdleWorkTime(double now) const {
  double best = std::numeric_limits<double>::infinity();
  const double block_mb = static_cast<double>(block_mb_);
  const double token_ready = TokenReadyTime(now, block_mb);
  if (config_.enable_repair && HasStagedPayload()) best = token_ready;
  if (config_.scrub_interval_seconds > 0.0 && catalog_->HasAnyLive()) {
    const double scrub_at =
        scrub_tape_ != kInvalidTape ? now : next_scrub_due_;
    best = std::min(best, std::max(scrub_at, token_ready));
  }
  return best;
}

RepairManager::Quantum RepairManager::IdleQuantum(double now) {
  Quantum quantum;
  const double block_mb = static_cast<double>(block_mb_);
  // Staged repair writes first: they restore redundancy, scrub only looks
  // for more work.
  if (config_.enable_repair && TokensAt(now) >= block_mb - kTokenSlack) {
    const TapeId mounted = jukebox_->mounted_tape();
    BlockId block = kInvalidBlock;
    size_t idx = 0;
    if (mounted != kInvalidTape && FindStaged(mounted, &block, &idx)) {
      quantum.seconds = CompleteTask(block, idx, now);
      return quantum;
    }
    const TapeId target = BestStagedTarget();
    if (target != kInvalidTape && target != mounted) {
      quantum.seconds = Mount(target, &stats_.repair_mounts);
      return quantum;
    }
  }
  if (config_.scrub_interval_seconds > 0.0) {
    MaybeStartScrubPass(now);
    if (scrub_tape_ != kInvalidTape) {
      if (jukebox_->mounted_tape() != scrub_tape_) {
        quantum.seconds = Mount(scrub_tape_, &stats_.scrub_mounts);
        return quantum;
      }
      if (TokensAt(now) >= block_mb - kTokenSlack) return ScrubStep(now);
    }
  }
  return quantum;
}

RepairStats RepairManager::Finalize() {
  stats_.backlog_final = outstanding_tasks_;
  return stats_;
}

}  // namespace tapejuke
