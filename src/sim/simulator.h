// The jukebox simulator: drives a Scheduler through the paper's four-step
// service model (§2.2) under a closed- or open-queuing workload.
//
//   1. When the service list is empty, invoke the major rescheduler, which
//      picks a tape and builds the retrieval sweep from the pending list.
//   2. Switch to the selected tape if it is not already mounted.
//   3. Execute the service list entry by entry; requests arriving during
//      execution go to the incremental scheduler, which may insert them
//      into the running sweep or defer them. The head stays where the last
//      block finished; the next major reschedule decides about rewinds.
//   4. When nothing is pending, wait for an arrival (open model).
//
// Arrivals that occur while a locate/read/switch is in flight are delivered
// at their exact timestamps with the *committed head* — the head position
// the drive will have when the in-flight operation completes — so the
// incremental scheduler can only insert work that is still genuinely ahead.

#ifndef TAPEJUKE_SIM_SIMULATOR_H_
#define TAPEJUKE_SIM_SIMULATOR_H_

#include "layout/catalog.h"
#include "sched/scheduler.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "sim/workload.h"
#include "tape/jukebox.h"
#include "util/status.h"

namespace tapejuke {

/// Run-level simulation parameters.
struct SimulationConfig {
  /// Simulated wall-clock length of the run, seconds. (The paper uses 10M
  /// seconds; 2M gives the same curve shapes with tight enough confidence.)
  double duration_seconds = 2'000'000;
  /// Leading window excluded from all statistics.
  double warmup_seconds = 100'000;
  WorkloadConfig workload;

  Status Validate() const;
};

/// Single-jukebox, single-drive discrete-event simulator.
class Simulator {
 public:
  /// All pointers must outlive the simulator. The jukebox must already hold
  /// the layout the catalog describes.
  Simulator(Jukebox* jukebox, const Catalog* catalog, Scheduler* scheduler,
            const SimulationConfig& config);

  /// Trace-replay constructor: arrivals come verbatim from `trace`
  /// (ascending arrival times; request ids are reassigned sequentially)
  /// instead of the configured arrival process. The workload model is
  /// treated as open queuing.
  Simulator(Jukebox* jukebox, const Catalog* catalog, Scheduler* scheduler,
            const SimulationConfig& config, std::vector<Request> trace);

  /// Runs the simulation to completion and returns steady-state metrics.
  /// Call at most once per Simulator instance.
  SimulationResult Run();

 private:
  /// Delivers every open-model arrival with timestamp <= `until` to the
  /// incremental scheduler.
  void DeliverArrivalsUpTo(double until, Position committed_head);

  /// Marks the metrics warm-up boundary the first time the clock passes it.
  void MaybeMarkWarmup();

  Jukebox* jukebox_;
  const Catalog* catalog_;
  Scheduler* scheduler_;
  SimulationConfig config_;
  WorkloadGenerator workload_;
  MetricsCollector metrics_;

  double clock_ = 0;
  double next_arrival_ = 0;  ///< open model only
  bool warmup_marked_ = false;
  bool ran_ = false;

  bool trace_mode_ = false;
  std::vector<Request> trace_;
  size_t trace_pos_ = 0;

  /// Closed model with think time: pending regeneration instants.
  EventQueue<char> thinking_;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_SIM_SIMULATOR_H_
