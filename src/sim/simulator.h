// The jukebox simulator: drives a Scheduler through the paper's four-step
// service model (§2.2) under a closed- or open-queuing workload.
//
//   1. When the service list is empty, invoke the major rescheduler, which
//      picks a tape and builds the retrieval sweep from the pending list.
//   2. Switch to the selected tape if it is not already mounted.
//   3. Execute the service list entry by entry; requests arriving during
//      execution go to the incremental scheduler, which may insert them
//      into the running sweep or defer them. The head stays where the last
//      block finished; the next major reschedule decides about rewinds.
//   4. When nothing is pending, wait for an arrival (open model).
//
// Arrivals that occur while a locate/read/switch is in flight are delivered
// at their exact timestamps with the *committed head* — the head position
// the drive will have when the in-flight operation completes — so the
// incremental scheduler can only insert work that is still genuinely ahead.

#ifndef TAPEJUKE_SIM_SIMULATOR_H_
#define TAPEJUKE_SIM_SIMULATOR_H_

#include <optional>

#include "layout/catalog.h"
#include "obs/recorder.h"
#include "obs/time_in_state.h"
#include "sched/scheduler.h"
#include "sim/admission.h"
#include "sim/event_queue.h"
#include "sim/fault_model.h"
#include "sim/metrics.h"
#include "sim/repair.h"
#include "sim/workload.h"
#include "tape/jukebox.h"
#include "util/flat_hash.h"
#include "util/status.h"

namespace tapejuke {

/// Run-level simulation parameters.
struct SimulationConfig {
  /// Simulated wall-clock length of the run, seconds. (The paper uses 10M
  /// seconds; 2M gives the same curve shapes with tight enough confidence.)
  double duration_seconds = 2'000'000;
  /// Leading window excluded from all statistics.
  double warmup_seconds = 100'000;
  WorkloadConfig workload;
  /// Fault injection (all rates zero by default: nothing is injected and
  /// the run is bit-identical to a fault-free build). Enabling any rate
  /// requires constructing the Simulator with a mutable Catalog.
  FaultConfig faults;
  /// Background scrub and repair (disabled by default). Requires fault
  /// injection — without faults there is nothing to scrub for or repair.
  RepairConfig repair;
  /// Admission control / load shedding (disabled by default: every arrival
  /// is admitted and output is byte-identical to a build without the
  /// overload subsystem). Open model only.
  AdmissionConfig admission;
  /// Observability (disabled by default; never serialized into results
  /// JSON). When enabled the simulator owns a TraceRecorder, feeds it
  /// drive state slices / request lifecycles / scheduler decisions, and
  /// writes the configured files at the end of Run.
  obs::TraceConfig obs;
  /// Time-series telemetry (disabled by default; never serialized into
  /// results JSON). When enabled the simulator owns a TimelineSampler,
  /// samples every registered stat on a fixed simulated-time cadence, and
  /// writes one JSONL timeline at the end of Run. Results JSON stays
  /// byte-identical with the timeline on or off.
  obs::TimelineConfig timeline;

  Status Validate() const;
};

/// Single-jukebox, single-drive discrete-event simulator.
class Simulator {
 public:
  /// All pointers must outlive the simulator. The jukebox must already hold
  /// the layout the catalog describes. This overload cannot mutate the
  /// catalog, so `config.faults` must be disabled (TJ_CHECK).
  Simulator(Jukebox* jukebox, const Catalog* catalog, Scheduler* scheduler,
            const SimulationConfig& config);

  /// Mutable-catalog overload: required when `config.faults` is enabled
  /// (permanent media errors mask replicas dead in the catalog).
  Simulator(Jukebox* jukebox, Catalog* catalog, Scheduler* scheduler,
            const SimulationConfig& config);

  /// Trace-replay constructor: arrivals come verbatim from `trace`
  /// (ascending arrival times; request ids are reassigned sequentially)
  /// instead of the configured arrival process. The workload model is
  /// treated as open queuing.
  Simulator(Jukebox* jukebox, const Catalog* catalog, Scheduler* scheduler,
            const SimulationConfig& config, std::vector<Request> trace);

  /// Runs the simulation to completion and returns steady-state metrics.
  /// Call at most once per Simulator instance.
  SimulationResult Run();

  /// Raw metrics collector, for callers that aggregate several runs into
  /// one result (the farm merges per-box collectors). Valid after Run.
  const MetricsCollector& metrics() const { return metrics_; }

  /// Buffered timeline rows/summary, for callers that merge per-box
  /// timelines (the farm). Null unless config.timeline is enabled; valid
  /// after Run.
  const obs::TimelineSampler* timeline() const {
    return timeline_.has_value() ? &*timeline_ : nullptr;
  }

 private:
  /// Delivers every open-model arrival with timestamp <= `until` to the
  /// incremental scheduler, interleaved in time order with deadline-expiry
  /// events so the outstanding-population integral stays exact.
  void DeliverArrivalsUpTo(double until, Position committed_head);

  /// Pops every expiry event with timestamp <= `until` and evicts the
  /// queued requests whose deadline has passed. No-op (and no queue
  /// lookups) when no request can carry a deadline.
  void ProcessExpiriesUpTo(double until, Position committed_head);

  /// Completes `request` as expired at `now` and, in the closed model,
  /// lets the issuing process continue like any other settled request.
  void ExpireRequest(const Request& request, double now,
                     Position committed_head);

  /// Registers `request`'s deadline with the expiry queue (no-op when it
  /// has none).
  void TrackDeadline(const Request& request);

  /// Marks the metrics warm-up boundary the first time the clock passes it.
  void MaybeMarkWarmup();

  /// Delivers `request` (arrival already counted by the caller) to the
  /// scheduler, or fails it immediately when every replica of its block is
  /// dead. Returns true if the request entered the scheduler.
  bool DeliverOrFail(const Request& request, Position committed_head);

  /// Closed model: a process issues its next request at `now`, redrawing
  /// past blocks whose every replica is dead (each dead draw is counted as
  /// issued + failed, so conservation holds). Stops issuing when the whole
  /// archive is lost.
  void IssueClosedRequest(double now, Position committed_head);

  /// Completes `request` with an error (every replica of its block is
  /// dead) and, in the closed model, lets the issuing process continue.
  void FailRequest(const Request& request);

  /// Re-enqueues a request displaced by a fault onto a surviving replica,
  /// or fails it when none is left. Background requests route back to the
  /// repair manager instead.
  void Requeue(const Request& request);

  /// Evicts now-unservable queued requests: client requests fail, repair
  /// source reads are handed back to the repair manager.
  void EvictUnservable();

  /// Masks the media lost by a permanent error during the read of `entry`
  /// on the mounted tape and fails over every displaced request.
  void HandlePermanentError(const ServiceEntry& entry, bool whole_tape);

  /// Lazily processes drive-failure epochs that the clock has passed: each
  /// charges an Exponential(MTTR) repair during which the drive is down
  /// (arrivals are still delivered). Called before the drive starts work.
  void AdvancePastDriveRepairs();

  /// Emits a "scheduled" trace instant for every request in the active
  /// sweep (called right after a major reschedule); no-op unless tracing.
  void TraceSweepContents(TapeId tape);

  /// Engages the timeline sampler and registers every probe (scheduler
  /// depths, admission state, repair backlog, replica health, metrics
  /// counters/windows, time-in-state accums). Must run last in every
  /// constructor, after the optional subsystems are engaged.
  void SetupTimeline();

  Jukebox* jukebox_;
  const Catalog* catalog_;
  /// Non-null only via the mutable-catalog constructor; required (and
  /// used) only when fault injection is enabled.
  Catalog* mutable_catalog_ = nullptr;
  Scheduler* scheduler_;
  SimulationConfig config_;
  WorkloadGenerator workload_;
  MetricsCollector metrics_;
  /// Always-on per-drive activity accounting (a few double adds per clock
  /// advance); feeds SimulationResult::time_in_state/drive_utilization.
  obs::TimeInStateAccounting accounting_;
  /// Engaged iff config_.obs.enabled().
  std::optional<obs::TraceRecorder> recorder_;
  /// Engaged iff config_.timeline.enabled(); probes registered by
  /// SetupTimeline at the end of construction.
  std::optional<obs::TimelineSampler> timeline_;

  /// Engaged iff config_.faults.enabled().
  std::optional<FaultModel> faults_;
  FaultStats fault_stats_;
  /// Engaged iff config_.repair.enabled() (which implies faults_).
  std::optional<RepairManager> repair_;
  double next_drive_failure_ = 0;  ///< absolute time; only with MTBF > 0
  bool drive_faults_ = false;
  bool closed_ = false;

  double clock_ = 0;
  double next_arrival_ = 0;  ///< open model only
  bool warmup_marked_ = false;
  bool ran_ = false;

  bool trace_mode_ = false;
  std::vector<Request> trace_;
  size_t trace_pos_ = 0;

  /// Closed model with think time: pending regeneration instants.
  EventQueue<char> thinking_;

  /// Overload protection. admission_ is engaged iff
  /// config_.admission.enabled(). Expiry events carry the request id;
  /// deadline_live_ filters events whose request already settled (the
  /// calendar queue has no random deletion). deadlines_possible_ gates the
  /// whole machinery so deadline-free runs make no extra queue operations.
  std::optional<AdmissionController> admission_;
  EventQueue<RequestId> expiries_;
  FlatSet<RequestId> deadline_live_;
  bool deadlines_possible_ = false;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_SIM_SIMULATOR_H_
