// SLO-aware admission control: the policy layer that decides, at arrival
// time, whether a request may enter the scheduler at all (overload
// protection, ROADMAP `tapejuked` item).
//
// Three policies:
//  * kNone      — admit everything (the historical behavior).
//  * kStaticCap — a graded queue cap: with K tenant classes, class c is
//    admitted only while outstanding < cap * (K - c) / K, so best-effort
//    traffic backs off first and the most protected class keeps the whole
//    cap. With no tenant mix this degenerates to a plain cap.
//  * kAdaptive  — SLO-driven shedding: a sliding window of completions
//    estimates each class's p99 delay and the queue's expected wait
//    (Little's law: outstanding / completion rate). When either crosses a
//    protected class's p99 SLO the controller ratchets its shed level up,
//    dropping the lowest-priority classes; when every protected class is
//    comfortably below its SLO (hysteresis at 70%) the level ratchets back
//    down.
//
// The controller is purely event-driven (no RNG, no wall clock), so runs
// remain bit-identical at any thread count.

#ifndef TAPEJUKE_SIM_ADMISSION_H_
#define TAPEJUKE_SIM_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/workload.h"
#include "util/status.h"

namespace tapejuke {

enum class AdmissionPolicy {
  kNone,
  kStaticCap,
  kAdaptive,
};

/// Admission-control parameters (part of SimulationConfig).
struct AdmissionConfig {
  AdmissionPolicy policy = AdmissionPolicy::kNone;
  /// kStaticCap: the outstanding-request cap for the most protected class.
  int64_t queue_cap = 0;
  /// kAdaptive: sliding-window length for the p99 / completion-rate
  /// estimates. The shed level is re-evaluated at most 8x per window.
  double window_seconds = 2000.0;

  bool enabled() const { return policy != AdmissionPolicy::kNone; }

  /// Checks the policy against the workload it will gate.
  Status Validate(const WorkloadConfig& workload) const;
};

/// Decides admission per arrival and tracks the adaptive shed level.
class AdmissionController {
 public:
  /// `classes` is the workload's tenant mix (may be empty for kStaticCap;
  /// kAdaptive requires >= 2 classes, enforced by Validate).
  AdmissionController(const AdmissionConfig& config,
                      const std::vector<TenantClassConfig>& classes);

  /// True if a request of class `tenant` arriving at `now` with
  /// `outstanding` requests currently in the system may be enqueued.
  bool Admit(uint8_t tenant, double now, int64_t outstanding);

  /// Feeds a completed request's delay into the adaptive window.
  void OnCompletion(uint8_t tenant, double delay, double now);

  /// Current number of lowest-priority classes being shed (kAdaptive).
  int shed_level() const { return shed_level_; }

 private:
  struct WindowEntry {
    double time;
    uint8_t tenant;
    double delay;
  };

  void UpdateLevel(double now, int64_t outstanding);

  AdmissionConfig config_;
  std::vector<TenantClassConfig> classes_;
  int num_classes_;

  /// kAdaptive state. Un-shedding requires kComfortStreak consecutive
  /// comfortable evaluations, so one quiet window cannot restart the
  /// overload.
  static constexpr int kComfortStreak = 3;
  std::deque<WindowEntry> window_;
  int shed_level_ = 0;
  int comfort_streak_ = 0;
  double last_update_ = -1.0;
  std::vector<double> scratch_;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_SIM_ADMISSION_H_
