#include "sim/multi_drive.h"

#include <algorithm>
#include <limits>

#include "sched/sweep_builder.h"
#include "util/check.h"

namespace tapejuke {

Status MultiDriveConfig::Validate() const {
  if (num_drives < 1) {
    return Status::InvalidArgument("need at least one drive");
  }
  return Status::Ok();
}

MultiDriveSimulator::MultiDriveSimulator(Jukebox* jukebox,
                                         const Catalog* catalog,
                                         const MultiDriveConfig& drives,
                                         const SimulationConfig& sim)
    : jukebox_(jukebox),
      catalog_(catalog),
      drives_config_(drives),
      sim_config_(sim),
      workload_(catalog, sim.workload),
      metrics_(sim.warmup_seconds, jukebox->config().block_size_mb),
      cost_(&jukebox->model(), jukebox->config().block_size_mb) {
  TJ_CHECK(jukebox != nullptr);
  TJ_CHECK(catalog != nullptr);
  Status status = drives.Validate();
  TJ_CHECK(status.ok()) << status.ToString();
  TJ_CHECK_LE(drives.num_drives, jukebox->num_tapes())
      << "more drives than tapes is pointless";
  status = sim.Validate();
  TJ_CHECK(status.ok()) << status.ToString();
  drives_.reserve(static_cast<size_t>(drives.num_drives));
  for (int32_t d = 0; d < drives.num_drives; ++d) {
    drives_.emplace_back(&jukebox->model());
  }
}

bool MultiDriveSimulator::ClaimedElsewhere(TapeId tape, int self) const {
  for (size_t d = 0; d < drives_.size(); ++d) {
    if (static_cast<int>(d) != self && drives_[d].claim == tape) {
      return true;
    }
  }
  return false;
}

void MultiDriveSimulator::BeginNextRead(int d, double now) {
  DriveState& ds = drives_[static_cast<size_t>(d)];
  std::optional<ServiceEntry> entry = ds.sweep.Pop();
  TJ_CHECK(entry.has_value());
  const double locate = ds.unit.LocateTo(entry->position);
  counters_.locate_seconds += locate;
  const double read = ds.unit.Read(jukebox_->config().block_size_mb);
  counters_.read_seconds += read;
  ++counters_.blocks_read;
  counters_.mb_read += jukebox_->config().block_size_mb;
  ds.committed_head = ds.unit.head();
  ds.in_flight = std::move(entry);
  ds.busy = true;
  events_.Schedule(now + locate + read, d);
}

void MultiDriveSimulator::Dispatch(int d, double now) {
  DriveState& ds = drives_[static_cast<size_t>(d)];
  if (ds.busy) return;
  if (!ds.sweep.empty()) {
    BeginNextRead(d, now);
    return;
  }
  if (pending_.empty()) return;

  // Candidates over unclaimed tapes only.
  const int32_t num_tapes = jukebox_->num_tapes();
  std::vector<TapeCandidate> candidates(static_cast<size_t>(num_tapes));
  for (TapeId t = 0; t < num_tapes; ++t) {
    candidates[static_cast<size_t>(t)].tape = t;
  }
  bool saw_claimed_work = false;
  const RequestId oldest = pending_.front().id;
  for (const Request& request : pending_) {
    for (const Replica& replica : catalog_->ReplicasOf(request.block)) {
      if (ClaimedElsewhere(replica.tape, d)) {
        saw_claimed_work = true;
        continue;
      }
      TapeCandidate& c = candidates[static_cast<size_t>(replica.tape)];
      ++c.num_requests;
      c.positions.push_back(replica.position);
      if (request.id == oldest) c.serves_oldest = true;
    }
  }
  const TapeId mounted = ds.unit.loaded_tape();
  const TapeId tape = SelectTape(drives_config_.policy, candidates, mounted,
                                 ds.unit.head(), num_tapes, cost_);
  if (tape == kInvalidTape) {
    // Work exists but only on tapes other drives hold: idle until a claim
    // releases (WakeIdleDrives retries after every event).
    if (saw_claimed_work) ++stats_.claim_conflicts;
    return;
  }

  const Position start_head = (tape == mounted) ? ds.unit.head() : 0;
  ExtractSweepForTape(*catalog_, tape, start_head,
                      jukebox_->config().block_size_mb,
                      /*envelope_limit=*/nullptr, &pending_, &ds.sweep);
  TJ_CHECK(!ds.sweep.empty());
  ds.claim = tape;

  if (tape == mounted) {
    ds.committed_head = ds.unit.head();
    BeginNextRead(d, now);
    return;
  }

  // Tape switch: drive-local rewind + eject run in parallel with other
  // drives; the robot arm swap is serialized; the load is drive-local.
  double local_done = now;
  if (ds.unit.has_tape()) {
    const double rewind = ds.unit.Rewind();
    counters_.rewind_seconds += rewind;
    const double eject = ds.unit.Eject();
    counters_.switch_seconds += eject;
    local_done += rewind + eject;
  }
  const double robot_start = std::max(local_done, robot_free_at_);
  stats_.robot_wait_seconds += robot_start - local_done;
  const double robot_seconds = jukebox_->model().params().robot_seconds;
  robot_free_at_ = robot_start + robot_seconds;
  counters_.switch_seconds += robot_seconds;
  const double load = ds.unit.Load(tape);
  counters_.switch_seconds += load;
  ++counters_.tape_switches;
  ds.committed_head = 0;
  ds.busy = true;
  events_.Schedule(robot_free_at_ + load, d);
}

void MultiDriveSimulator::Arrive(const Request& request, double now) {
  metrics_.OnArrival(now);
  if (drives_config_.dynamic_insertion) {
    for (DriveState& ds : drives_) {
      if (ds.sweep.empty() || ds.claim == kInvalidTape) continue;
      const Replica* replica = catalog_->ReplicaOn(request.block, ds.claim);
      if (replica != nullptr &&
          ds.sweep.InsertRequest(request, replica->position,
                                 ds.committed_head,
                                 drives_config_.options
                                     .allow_reverse_phase)) {
        return;
      }
    }
  }
  pending_.push_back(request);
}

void MultiDriveSimulator::WakeIdleDrives(double now) {
  for (size_t d = 0; d < drives_.size(); ++d) {
    if (!drives_[d].busy) Dispatch(static_cast<int>(d), now);
  }
}

SimulationResult MultiDriveSimulator::Run() {
  TJ_CHECK(!ran_) << "Run may be called once";
  ran_ = true;
  const bool closed = sim_config_.workload.model == QueuingModel::kClosed;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  if (closed) {
    for (int64_t i = 0; i < sim_config_.workload.queue_length; ++i) {
      Arrive(workload_.NextRequest(0.0), 0.0);
    }
  } else {
    next_arrival_ = workload_.NextInterarrival();
  }
  WakeIdleDrives(0.0);
  if (sim_config_.warmup_seconds == 0) {
    warmup_marked_ = true;
    metrics_.MarkWarmupBoundary(counters_);
  }

  while (clock_ < sim_config_.duration_seconds) {
    const double event_time = events_.empty() ? kInf : events_.NextTime();
    const double arrival_time = closed ? kInf : next_arrival_;
    const double next = std::min(event_time, arrival_time);
    if (next == kInf || next > sim_config_.duration_seconds) break;
    clock_ = next;

    if (arrival_time <= event_time) {
      Arrive(workload_.NextRequest(clock_), clock_);
      next_arrival_ = clock_ + workload_.NextInterarrival();
    } else {
      const auto [time, d] = events_.Pop();
      DriveState& ds = drives_[static_cast<size_t>(d)];
      ds.busy = false;
      if (ds.in_flight.has_value()) {
        const ServiceEntry entry = std::move(*ds.in_flight);
        ds.in_flight.reset();
        for (const Request& request : entry.requests) {
          metrics_.OnCompletion(request.arrival_time, clock_);
          if (closed) Arrive(workload_.NextRequest(clock_), clock_);
        }
      }
      Dispatch(d, clock_);
    }
    WakeIdleDrives(clock_);
    if (!warmup_marked_ && clock_ >= sim_config_.warmup_seconds) {
      warmup_marked_ = true;
      metrics_.MarkWarmupBoundary(counters_);
    }
  }
  if (!warmup_marked_) metrics_.MarkWarmupBoundary(counters_);
  return metrics_.Finalize(clock_, counters_);
}

}  // namespace tapejuke
