#include "sim/multi_drive.h"

#include <algorithm>
#include <iostream>
#include <limits>
#include <string>

#include "sched/sweep_builder.h"
#include "util/check.h"

namespace tapejuke {

Status MultiDriveConfig::Validate() const {
  if (num_drives < 1) {
    return Status::InvalidArgument("need at least one drive");
  }
  return Status::Ok();
}

MultiDriveSimulator::MultiDriveSimulator(Jukebox* jukebox,
                                         const Catalog* catalog,
                                         const MultiDriveConfig& drives,
                                         const SimulationConfig& sim)
    : jukebox_(jukebox),
      catalog_(catalog),
      drives_config_(drives),
      sim_config_(sim),
      workload_(catalog, sim.workload),
      metrics_(sim.warmup_seconds, jukebox->config().block_size_mb),
      cost_(&jukebox->model(), jukebox->config().block_size_mb),
      accounting_(drives.num_drives, sim.warmup_seconds) {
  TJ_CHECK(jukebox != nullptr);
  TJ_CHECK(catalog != nullptr);
  Status status = drives.Validate();
  TJ_CHECK(status.ok()) << status.ToString();
  TJ_CHECK_LE(drives.num_drives, jukebox->num_tapes())
      << "more drives than tapes is pointless";
  status = sim.Validate();
  TJ_CHECK(status.ok()) << status.ToString();
  TJ_CHECK(!sim.faults.enabled())
      << "fault injection requires the mutable-catalog MultiDriveSimulator "
         "constructor (permanent media errors mask catalog replicas)";
  TJ_CHECK(!sim.repair.enabled())
      << "scrub/repair is single-drive only (use Simulator)";
  drives_.reserve(static_cast<size_t>(drives.num_drives));
  for (int32_t d = 0; d < drives.num_drives; ++d) {
    drives_.emplace_back(&jukebox->model());
  }
  if (sim_config_.obs.enabled()) {
    recorder_.emplace(sim_config_.obs);
    recorder_->SetTopology("jukebox", drives_config_.num_drives);
    accounting_.set_recorder(&*recorder_);
  }
  if (sim_config_.workload.HasTenantClasses()) {
    metrics_.ConfigureClasses(
        static_cast<int>(sim_config_.workload.tenant_classes.size()));
    for (const TenantClassConfig& cls : sim_config_.workload.tenant_classes) {
      if (cls.deadline_seconds > 0) deadlines_possible_ = true;
    }
  }
  if (sim_config_.admission.enabled()) {
    admission_.emplace(sim_config_.admission,
                       sim_config_.workload.tenant_classes);
  }
  SetupTimeline();
}

MultiDriveSimulator::MultiDriveSimulator(Jukebox* jukebox, Catalog* catalog,
                                         const MultiDriveConfig& drives,
                                         const SimulationConfig& sim)
    : jukebox_(jukebox),
      catalog_(catalog),
      mutable_catalog_(catalog),
      drives_config_(drives),
      sim_config_(sim),
      workload_(catalog, sim.workload),
      metrics_(sim.warmup_seconds, jukebox->config().block_size_mb),
      cost_(&jukebox->model(), jukebox->config().block_size_mb),
      accounting_(drives.num_drives, sim.warmup_seconds) {
  TJ_CHECK(jukebox != nullptr);
  TJ_CHECK(catalog != nullptr);
  Status status = drives.Validate();
  TJ_CHECK(status.ok()) << status.ToString();
  TJ_CHECK_LE(drives.num_drives, jukebox->num_tapes())
      << "more drives than tapes is pointless";
  status = sim.Validate();
  TJ_CHECK(status.ok()) << status.ToString();
  TJ_CHECK(!sim.repair.enabled())
      << "scrub/repair is single-drive only (use Simulator)";
  drives_.reserve(static_cast<size_t>(drives.num_drives));
  for (int32_t d = 0; d < drives.num_drives; ++d) {
    drives_.emplace_back(&jukebox->model());
  }
  if (sim_config_.obs.enabled()) {
    recorder_.emplace(sim_config_.obs);
    recorder_->SetTopology("jukebox", drives_config_.num_drives);
    accounting_.set_recorder(&*recorder_);
  }
  if (sim_config_.faults.enabled()) {
    faults_.emplace(sim_config_.faults, sim_config_.workload.seed);
    if (sim_config_.faults.drive_mtbf_seconds > 0) {
      drive_faults_ = true;
      // Epochs drawn in drive order so the fault stream is deterministic.
      for (DriveState& ds : drives_) {
        ds.next_failure = faults_->NextFailureGap();
      }
    }
  }
  if (sim_config_.workload.HasTenantClasses()) {
    metrics_.ConfigureClasses(
        static_cast<int>(sim_config_.workload.tenant_classes.size()));
    for (const TenantClassConfig& cls : sim_config_.workload.tenant_classes) {
      if (cls.deadline_seconds > 0) deadlines_possible_ = true;
    }
  }
  if (sim_config_.admission.enabled()) {
    admission_.emplace(sim_config_.admission,
                       sim_config_.workload.tenant_classes);
  }
  SetupTimeline();
}

void MultiDriveSimulator::SetupTimeline() {
  if (!sim_config_.timeline.enabled()) return;
  timeline_.emplace(sim_config_.timeline);
  obs::StatRegistry* reg = timeline_->registry();
  reg->AddGauge("queue_depth", [this] {
    return static_cast<double>(pending_.size());
  });
  reg->AddGauge("sweep_depth", [this] {
    size_t depth = 0;
    for (const DriveState& ds : drives_) depth += ds.sweep.size();
    return static_cast<double>(depth);
  });
  reg->AddGauge("shed_level", [this] {
    return admission_.has_value() ? static_cast<double>(admission_->shed_level())
                                  : 0.0;
  });
  reg->AddGauge("live_replica_fraction", [this] {
    const int64_t total = catalog_->TotalCopies();
    if (total <= 0) return 1.0;
    return static_cast<double>(total - catalog_->dead_replicas()) /
           static_cast<double>(total);
  });
  // Scrub/repair is single-drive only; the gauge stays so the schema is
  // uniform across simulators.
  reg->AddGauge("repair_backlog", [] { return 0.0; });
  metrics_.AttachTimeline(reg);
  for (int s = 0; s < obs::kNumDriveActivities; ++s) {
    const std::string name =
        std::string("state_") +
        obs::DriveActivityName(static_cast<obs::DriveActivity>(s));
    reg->AddAccum(name, [this, s] {
      double total = 0;
      for (const obs::DriveTimeInState& drive : accounting_.per_drive()) {
        total += drive.seconds[static_cast<size_t>(s)];
      }
      return total;
    });
  }
}

bool MultiDriveSimulator::ClaimedElsewhere(TapeId tape, int self) const {
  for (size_t d = 0; d < drives_.size(); ++d) {
    if (static_cast<int>(d) != self && drives_[d].claim == tape) {
      return true;
    }
  }
  return false;
}

void MultiDriveSimulator::BeginNextRead(int d, double now) {
  DriveState& ds = drives_[static_cast<size_t>(d)];
  std::optional<ServiceEntry> entry = ds.sweep.Pop();
  TJ_CHECK(entry.has_value());
  const int64_t block_mb = jukebox_->config().block_size_mb;
  const double locate = ds.unit.LocateTo(entry->position);
  counters_.locate_seconds += locate;
  const double read = ds.unit.Read(block_mb);
  counters_.read_seconds += read;
  ++counters_.blocks_read;
  counters_.mb_read += block_mb;
  double op_seconds = locate + read;
  double op_t = now + locate;
  ds.pending_charge.emplace_back(obs::DriveActivity::kLocating, op_t);
  op_t += read;
  ds.pending_charge.emplace_back(obs::DriveActivity::kReading, op_t);
  ReadOutcome outcome;
  if (faults_.has_value()) {
    outcome = faults_->NextReadOutcome();
    // Each transient retry locates back to the block start and re-reads,
    // after an optional exponential-backoff wait (charged as locating so
    // the drive stays visibly occupied by the faulted operation).
    for (int r = 0; r < outcome.retries; ++r) {
      const double backoff = faults_->NextRetryBackoff(r);
      if (backoff > 0) {
        op_seconds += backoff;
        op_t += backoff;
        ds.pending_charge.emplace_back(obs::DriveActivity::kLocating, op_t);
      }
      const double back = ds.unit.LocateTo(entry->position);
      counters_.locate_seconds += back;
      const double again = ds.unit.Read(block_mb);
      counters_.read_seconds += again;
      ++counters_.blocks_read;
      counters_.mb_read += block_mb;
      op_seconds += back + again;
      op_t += back;
      ds.pending_charge.emplace_back(obs::DriveActivity::kLocating, op_t);
      op_t += again;
      ds.pending_charge.emplace_back(obs::DriveActivity::kReading, op_t);
    }
    fault_stats_.transient_read_errors +=
        outcome.retries + (outcome.escalated ? 1 : 0);
    fault_stats_.read_retries += outcome.retries;
    if (outcome.escalated) ++fault_stats_.reads_escalated;
  }
  const double end = now + op_seconds;
  // Absorb accumulation drift between the per-segment sums and op_seconds
  // into the final reading segment, so the flush lands exactly on the
  // completion event's timestamp.
  ds.pending_charge.back().second = end;
  if (recorder_.has_value() && outcome.retries > 0) {
    for (const Request& request : entry->requests) {
      recorder_->RequestRetry(request.id, outcome.retries, end);
    }
  }
  ds.committed_head = ds.unit.head();
  ds.in_flight = std::move(entry);
  ds.in_flight_outcome = outcome;
  ds.busy = true;
  events_.Schedule(end, d);
}

void MultiDriveSimulator::Dispatch(int d, double now) {
  DriveState& ds = drives_[static_cast<size_t>(d)];
  if (ds.busy) return;
  // The gap since the drive's last charged activity was spent idle.
  accounting_.ChargeTo(d, obs::DriveActivity::kIdle, now);
  if (drive_faults_ && ds.next_failure <= now) {
    // A failure epoch the clock has passed is charged lazily, when the
    // drive next acts (mirrors the single-drive simulator).
    FailDrive(d, now);
    return;
  }
  if (!ds.sweep.empty()) {
    BeginNextRead(d, now);
    return;
  }
  if (pending_.empty()) return;

  // Candidates over unclaimed tapes only.
  const int32_t num_tapes = jukebox_->num_tapes();
  std::vector<TapeCandidate> candidates(static_cast<size_t>(num_tapes));
  for (TapeId t = 0; t < num_tapes; ++t) {
    candidates[static_cast<size_t>(t)].tape = t;
  }
  bool saw_claimed_work = false;
  const RequestId oldest = pending_.front().id;
  for (const Request& request : pending_) {
    for (const Replica& replica : catalog_->ReplicasOf(request.block)) {
      if (!catalog_->IsAlive(replica)) continue;
      if (ClaimedElsewhere(replica.tape, d)) {
        saw_claimed_work = true;
        continue;
      }
      TapeCandidate& c = candidates[static_cast<size_t>(replica.tape)];
      ++c.num_requests;
      c.positions.push_back(replica.position);
      if (request.id == oldest) c.serves_oldest = true;
    }
  }
  const TapeId mounted = ds.unit.loaded_tape();
  const TapeId tape = SelectTape(drives_config_.policy, candidates, mounted,
                                 ds.unit.head(), num_tapes, cost_);
  if (tape == kInvalidTape) {
    // Work exists but only on tapes other drives hold: idle until a claim
    // releases (WakeIdleDrives retries after every event).
    if (saw_claimed_work) ++stats_.claim_conflicts;
    return;
  }

  if (recorder_.has_value()) {
    RecordDispatchDecision(d, tape, mounted, candidates, now);
  }

  const Position start_head = (tape == mounted) ? ds.unit.head() : 0;
  ExtractSweepForTape(*catalog_, tape, start_head,
                      jukebox_->config().block_size_mb,
                      /*envelope_limit=*/nullptr, &pending_, &ds.sweep);
  TJ_CHECK(!ds.sweep.empty());
  ds.claim = tape;
  TraceSweepContents(d, tape, now);

  if (tape == mounted) {
    ds.committed_head = ds.unit.head();
    BeginNextRead(d, now);
    return;
  }

  // Tape switch: drive-local rewind + eject run in parallel with other
  // drives; the robot arm swap is serialized; the load is drive-local.
  double local_done = now;
  if (ds.unit.has_tape()) {
    const double rewind = ds.unit.Rewind();
    counters_.rewind_seconds += rewind;
    const double eject = ds.unit.Eject();
    counters_.switch_seconds += eject;
    ds.pending_charge.emplace_back(obs::DriveActivity::kRewinding,
                                   now + rewind);
    local_done += rewind + eject;
    ds.pending_charge.emplace_back(obs::DriveActivity::kSwitching,
                                   local_done);
  }
  const double robot_start = std::max(local_done, robot_free_at_);
  stats_.robot_wait_seconds += robot_start - local_done;
  const double robot_seconds = jukebox_->model().params().robot_seconds;
  double robot_busy = robot_seconds;
  if (faults_.has_value()) {
    // Robot handoff faults: each slip repeats the robot move, extending
    // the serialized arm occupancy other drives queue behind.
    const int slips = faults_->NextRobotFaults();
    if (slips > 0) {
      const double extra = slips * robot_seconds;
      fault_stats_.robot_faults += slips;
      fault_stats_.robot_retry_seconds += extra;
      counters_.switch_seconds += extra;
      robot_busy += extra;
    }
  }
  robot_free_at_ = robot_start + robot_busy;
  counters_.switch_seconds += robot_seconds;
  const double load = ds.unit.Load(tape);
  counters_.switch_seconds += load;
  ++counters_.tape_switches;
  // The robot state covers both the queue wait and the (possibly
  // fault-extended) serialized arm occupancy; the drive-local load is a
  // switching segment ending exactly on the completion event.
  ds.pending_charge.emplace_back(obs::DriveActivity::kRobot, robot_free_at_);
  ds.pending_charge.emplace_back(obs::DriveActivity::kSwitching,
                                 robot_free_at_ + load);
  ds.committed_head = 0;
  ds.busy = true;
  events_.Schedule(robot_free_at_ + load, d);
}

void MultiDriveSimulator::Route(const Request& request, double now) {
  (void)now;
  if (drives_config_.dynamic_insertion) {
    for (DriveState& ds : drives_) {
      if (ds.sweep.empty() || ds.claim == kInvalidTape) continue;
      const Replica* replica =
          catalog_->LiveReplicaOn(request.block, ds.claim);
      if (replica != nullptr &&
          ds.sweep.InsertRequest(request, replica->position,
                                 ds.committed_head,
                                 drives_config_.options
                                     .allow_reverse_phase)) {
        return;
      }
    }
  }
  pending_.push_back(request);
}

bool MultiDriveSimulator::DeliverOrFail(const Request& request, double now) {
  metrics_.OnArrival(now);
  if (recorder_.has_value() && recorder_->SampleRequest(request.id)) {
    recorder_->RequestArrived(request.id, request.block,
                              /*background=*/false, now);
  }
  if (faults_.has_value() && !catalog_->HasLiveReplica(request.block)) {
    if (recorder_.has_value()) {
      recorder_->RequestDone(request.id, obs::RequestOutcome::kFailed, now);
    }
    metrics_.OnFailure(request.arrival_time, now);
    return false;
  }
  Route(request, now);
  TrackDeadline(request);
  return true;
}

void MultiDriveSimulator::IssueClosedRequest(double now) {
  // Draw until a servable request is issued. A draw for a block whose
  // every replica is dead completes instantly with an error (counted as
  // issued + failed, so conservation holds) and the process retries; once
  // the whole archive is lost the process stops issuing.
  while (true) {
    if (DeliverOrFail(workload_.NextRequest(now), now)) return;
    if (!catalog_->HasAnyLive()) return;
  }
}

void MultiDriveSimulator::FailRequest(const Request& request, double now) {
  if (deadlines_possible_) deadline_live_.erase(request.id);
  if (recorder_.has_value()) {
    recorder_->RequestDone(request.id, obs::RequestOutcome::kFailed, now);
  }
  metrics_.OnFailure(request.arrival_time, now);
  if (closed_) IssueClosedRequest(now);
}

void MultiDriveSimulator::Requeue(const std::vector<Request>& requests,
                                  double now) {
  for (const Request& request : requests) {
    if (request.deadline > 0 && request.deadline <= now) {
      // The fault drained a sweep holding an already-past-deadline request
      // (its expiry event fired while it was committed and was skipped).
      // Re-enqueueing it would lose the expiry forever, so settle it now.
      ExpireRequest(request, now);
      continue;
    }
    if (catalog_->HasLiveReplica(request.block)) {
      ++fault_stats_.failovers;
      if (recorder_.has_value()) {
        recorder_->RequestFailover(request.id, now);
      }
      pending_.push_back(request);
    } else {
      FailRequest(request, now);
    }
  }
}

void MultiDriveSimulator::EvictUnservablePending(double now) {
  std::vector<Request> dead;
  std::deque<Request> keep;
  for (const Request& request : pending_) {
    if (catalog_->HasLiveReplica(request.block)) {
      keep.push_back(request);
    } else {
      dead.push_back(request);
    }
  }
  pending_.swap(keep);
  // Failed after the swap: closed-model regeneration pushes into pending_.
  for (const Request& request : dead) FailRequest(request, now);
}

void MultiDriveSimulator::TrackDeadline(const Request& request) {
  if (request.deadline <= 0) return;
  deadline_live_.insert(request.id);
  expiries_.Schedule(request.deadline, request.id);
}

void MultiDriveSimulator::ExpireRequest(const Request& request, double now) {
  deadline_live_.erase(request.id);
  metrics_.OnExpired(request.arrival_time, now, request.tenant);
  if (recorder_.has_value()) {
    recorder_->RequestDone(request.id, obs::RequestOutcome::kExpired, now);
  }
  if (closed_) {
    // The issuing process moves on exactly as it would after a completion.
    if (faults_.has_value()) {
      IssueClosedRequest(now);
    } else {
      DeliverOrFail(workload_.NextRequest(now), now);
    }
  }
}

void MultiDriveSimulator::ExpirePendingPastDeadline(double now) {
  std::vector<Request> expired;
  std::deque<Request> keep;
  for (const Request& request : pending_) {
    if (request.deadline > 0 && request.deadline <= now) {
      expired.push_back(request);
    } else {
      keep.push_back(request);
    }
  }
  pending_.swap(keep);
  // Settled after the swap: closed-model regeneration pushes into pending_.
  for (const Request& request : expired) ExpireRequest(request, now);
}

void MultiDriveSimulator::HandlePermanentError(int d,
                                               const ServiceEntry& entry,
                                               bool whole_tape, double now) {
  DriveState& ds = drives_[static_cast<size_t>(d)];
  const TapeId tape = ds.claim;
  TJ_CHECK_NE(tape, kInvalidTape);
  ++fault_stats_.permanent_media_errors;
  if (whole_tape) {
    ++fault_stats_.dead_tapes;
    std::vector<BlockId> newly_masked;
    fault_stats_.replicas_masked +=
        mutable_catalog_->MarkTapeDead(tape, &newly_masked);
    for (const BlockId block : newly_masked) {
      if (!catalog_->HasLiveReplica(block)) ++fault_stats_.blocks_lost;
    }
    // The rest of this drive's sweep read the dead tape (claims are
    // exclusive, so no other drive's sweep does); fail each request over
    // to a surviving replica.
    while (!ds.sweep.empty()) {
      Requeue(ds.sweep.Pop()->requests, now);
    }
  } else if (mutable_catalog_->MarkReplicaDead(entry.block, tape)) {
    ++fault_stats_.replicas_masked;
    if (!catalog_->HasLiveReplica(entry.block)) ++fault_stats_.blocks_lost;
  }
  Requeue(entry.requests, now);
  EvictUnservablePending(now);
}

void MultiDriveSimulator::FailDrive(int d, double now) {
  DriveState& ds = drives_[static_cast<size_t>(d)];
  ++fault_stats_.drive_failures;
  const double repair = faults_->NextRepairTime();
  fault_stats_.drive_repair_seconds += repair;
  // Void in-flight work and hand everything back to the shared pending
  // list so surviving drives pick it up. The tape stays jammed in this
  // drive — the claim is kept, so requests living only on it wait out the
  // repair (claim conflicts, not deadlock: the repair event is scheduled).
  if (ds.in_flight.has_value()) {
    const ServiceEntry entry = std::move(*ds.in_flight);
    ds.in_flight.reset();
    ds.in_flight_outcome = ReadOutcome{};
    Requeue(entry.requests, now);
  }
  while (!ds.sweep.empty()) {
    Requeue(ds.sweep.Pop()->requests, now);
  }
  ds.busy = true;
  // The repair interval is down time, charged when its event fires.
  ds.pending_charge.emplace_back(obs::DriveActivity::kDown, now + repair);
  ds.next_failure = now + repair + faults_->NextFailureGap();
  events_.Schedule(now + repair, drives_config_.num_drives + d);
}

void MultiDriveSimulator::WakeIdleDrives(double now) {
  for (size_t d = 0; d < drives_.size(); ++d) {
    if (!drives_[d].busy) Dispatch(static_cast<int>(d), now);
  }
}

void MultiDriveSimulator::FlushCharges(int d, double limit) {
  DriveState& ds = drives_[static_cast<size_t>(d)];
  for (const auto& [activity, end] : ds.pending_charge) {
    accounting_.ChargeTo(d, activity, std::min(end, limit));
  }
  ds.pending_charge.clear();
}

void MultiDriveSimulator::RecordDispatchDecision(
    int d, TapeId chosen, TapeId mounted,
    const std::vector<TapeCandidate>& candidates, double now) {
  obs::DecisionRecord record;
  record.scheduler =
      std::string("multi-drive ") + TapePolicyName(drives_config_.policy);
  record.drive = d;
  record.chosen = chosen;
  record.mounted = mounted;
  record.pending = static_cast<int64_t>(pending_.size());
  const Position head = drives_[static_cast<size_t>(d)].unit.head();
  for (const TapeCandidate& c : candidates) {
    if (c.num_requests <= 0) continue;
    obs::TapeCandidateScore score;
    score.tape = c.tape;
    score.num_requests = c.num_requests;
    score.bandwidth_mbps =
        cost_.EstimateVisit(c.tape, mounted, head, c.positions)
            .BandwidthMBps();
    score.serves_oldest = c.serves_oldest;
    record.candidates.push_back(score);
  }
  recorder_->SetNow(now);
  recorder_->RecordDecision(record);
}

void MultiDriveSimulator::TraceSweepContents(int d, TapeId tape, double now) {
  if (!recorder_.has_value() || !recorder_->trace_enabled()) return;
  const Sweep& sweep = drives_[static_cast<size_t>(d)].sweep;
  for (const ServiceEntry& entry : sweep.forward()) {
    for (const Request& request : entry.requests) {
      recorder_->RequestScheduled(request.id, tape, now);
    }
  }
  for (const ServiceEntry& entry : sweep.reverse()) {
    for (const Request& request : entry.requests) {
      recorder_->RequestScheduled(request.id, tape, now);
    }
  }
}

SimulationResult MultiDriveSimulator::Run() {
  TJ_CHECK(!ran_) << "Run may be called once";
  ran_ = true;
  closed_ = sim_config_.workload.model == QueuingModel::kClosed;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  if (closed_) {
    for (int64_t i = 0; i < sim_config_.workload.queue_length; ++i) {
      DeliverOrFail(workload_.NextRequest(0.0), 0.0);
    }
  } else {
    next_arrival_ = workload_.NextArrivalGap(0.0);
  }
  WakeIdleDrives(0.0);
  if (sim_config_.warmup_seconds == 0) {
    warmup_marked_ = true;
    metrics_.MarkWarmupBoundary(counters_);
  }

  while (clock_ < sim_config_.duration_seconds) {
    const double event_time = events_.empty() ? kInf : events_.NextTime();
    const double arrival_time = closed_ ? kInf : next_arrival_;
    const double expiry_time = (deadlines_possible_ && !expiries_.empty())
                                   ? expiries_.NextTime()
                                   : kInf;
    const double next = std::min({event_time, arrival_time, expiry_time});
    if (next == kInf || next > sim_config_.duration_seconds) break;
    // Timeline samples due before the next event read the state as of
    // their sample time. Pure observation: the sampler never advances
    // clock_, wakes a drive, or marks warm-up, so results are unchanged.
    if (timeline_.has_value()) timeline_->SampleUpTo(next);
    clock_ = next;

    if (expiry_time <= event_time && expiry_time <= arrival_time) {
      const auto [time, id] = expiries_.Pop();
      (void)time;
      // Stale events (the request completed, failed, or was evicted by an
      // earlier scan) are skipped; requests already extracted into a
      // drive's sweep are committed and left to complete normally.
      if (deadline_live_.contains(id)) ExpirePendingPastDeadline(clock_);
    } else if (arrival_time <= event_time) {
      const Request request = workload_.NextRequest(clock_);
      if (admission_.has_value() &&
          !admission_->Admit(request.tenant, clock_,
                             metrics_.outstanding_now())) {
        metrics_.OnShed(clock_, request.tenant);
        if (recorder_.has_value() && recorder_->SampleRequest(request.id)) {
          recorder_->RequestArrived(request.id, request.block,
                                    /*background=*/false, clock_);
          recorder_->RequestDone(request.id, obs::RequestOutcome::kShed,
                                 clock_);
        }
      } else {
        DeliverOrFail(request, clock_);
      }
      next_arrival_ = clock_ + workload_.NextArrivalGap(clock_);
    } else {
      const auto [time, payload] = events_.Pop();
      (void)time;
      if (payload >= drives_config_.num_drives) {
        // Repair complete: the drive rejoins the farm.
        const int d = payload - drives_config_.num_drives;
        FlushCharges(d, clock_);
        drives_[static_cast<size_t>(d)].busy = false;
        Dispatch(d, clock_);
      } else {
        const int d = payload;
        DriveState& ds = drives_[static_cast<size_t>(d)];
        FlushCharges(d, clock_);
        if (drive_faults_ && ds.next_failure <= clock_) {
          // The drive failed during this operation: void it and repair.
          FailDrive(d, clock_);
        } else {
          ds.busy = false;
          if (ds.in_flight.has_value()) {
            const ServiceEntry entry = std::move(*ds.in_flight);
            ds.in_flight.reset();
            const ReadOutcome outcome = ds.in_flight_outcome;
            ds.in_flight_outcome = ReadOutcome{};
            if (outcome.permanent_error) {
              HandlePermanentError(d, entry, outcome.whole_tape, clock_);
            } else {
              for (const Request& request : entry.requests) {
                if (faults_.has_value() &&
                    catalog_->LiveReplicaCount(request.block) <
                        static_cast<int64_t>(
                            catalog_->ReplicasOf(request.block).size())) {
                  ++fault_stats_.degraded_reads;
                }
                if (recorder_.has_value()) {
                  recorder_->RequestDone(request.id,
                                         obs::RequestOutcome::kCompleted,
                                         clock_);
                }
                metrics_.OnCompletion(request.arrival_time, clock_,
                                      request.tenant);
                if (admission_.has_value()) {
                  admission_->OnCompletion(request.tenant,
                                           clock_ - request.arrival_time,
                                           clock_);
                }
                if (deadlines_possible_) deadline_live_.erase(request.id);
                if (closed_) {
                  if (faults_.has_value()) {
                    IssueClosedRequest(clock_);
                  } else {
                    DeliverOrFail(workload_.NextRequest(clock_), clock_);
                  }
                }
              }
            }
          }
          Dispatch(d, clock_);
        }
      }
    }
    WakeIdleDrives(clock_);
    if (!warmup_marked_ && clock_ >= sim_config_.warmup_seconds) {
      warmup_marked_ = true;
      metrics_.MarkWarmupBoundary(counters_);
    }
  }
  if (!warmup_marked_) metrics_.MarkWarmupBoundary(counters_);
  // Clip the segments of operations still in flight at the final clock
  // (their completion events never fired), then close every drive's
  // interval so per-drive state time sums to the measured window.
  for (size_t d = 0; d < drives_.size(); ++d) {
    FlushCharges(static_cast<int>(d), clock_);
  }
  accounting_.FinishAt(clock_);
  if (timeline_.has_value()) {
    // After accounting_.FinishAt so the final row's time-in-state deltas
    // cover the whole run. Timeline output must never fail the run.
    const Status timeline_status = timeline_->FinishAt(clock_);
    if (!timeline_status.ok()) {
      std::cerr << "warning: timeline output failed: "
                << timeline_status.ToString() << "\n";
    }
  }
  SimulationResult result = metrics_.Finalize(clock_, counters_, &accounting_);
  if (faults_.has_value()) {
    result.fault_injection = true;
    result.faults = fault_stats_;
    const int64_t total = catalog_->TotalCopies();
    if (total > 0) {
      result.live_replica_fraction =
          static_cast<double>(total - catalog_->dead_replicas()) /
          static_cast<double>(total);
    }
  }
  if (recorder_.has_value()) {
    const Status obs_status = recorder_->Finalize(clock_);
    if (!obs_status.ok()) {
      std::cerr << "warning: observability output failed: "
                << obs_status.ToString() << "\n";
    }
  }
  return result;
}

}  // namespace tapejuke
