#include "sim/write_path.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "sched/schedule_cost.h"
#include "util/check.h"

namespace tapejuke {

Status WritePathConfig::Validate() const {
  if (buffer_capacity_blocks <= 0) {
    return Status::InvalidArgument("buffer capacity must be positive");
  }
  if (piggyback_min_blocks < 1) {
    return Status::InvalidArgument("piggyback_min_blocks must be >= 1");
  }
  if (hot_write_fraction < 0 || hot_write_fraction > 1) {
    return Status::InvalidArgument("hot_write_fraction must be in [0, 1]");
  }
  return Status::Ok();
}

WritebackSimulator::WritebackSimulator(Jukebox* jukebox,
                                       const Catalog* catalog,
                                       Scheduler* scheduler,
                                       const SimulationConfig& sim,
                                       const WritePathConfig& writes)
    : jukebox_(jukebox),
      catalog_(catalog),
      scheduler_(scheduler),
      sim_config_(sim),
      write_config_(writes),
      read_workload_(catalog, sim.workload),
      write_rng_(sim.workload.seed ^ 0x9e3779b97f4a7c15ULL),
      metrics_(sim.warmup_seconds, jukebox->config().block_size_mb) {
  Status status = sim.Validate();
  TJ_CHECK(status.ok()) << status.ToString();
  status = writes.Validate();
  TJ_CHECK(status.ok()) << status.ToString();
  TJ_CHECK(!sim.faults.enabled())
      << "fault injection is not supported by the writeback simulator";
}

void WritebackSimulator::AcceptWrite(BlockId block, double now) {
  (void)now;
  ++stats_.writes_accepted;
  // A write must eventually update every tape-resident copy of the block.
  for (const Replica& replica : catalog_->ReplicasOf(block)) {
    auto [it, inserted] = dirty_[replica.tape].insert(replica.position);
    if (inserted) {
      ++buffer_occupancy_;
      ++stats_.dirty_updates_created;
    }
  }
  stats_.max_buffer_occupancy =
      std::max(stats_.max_buffer_occupancy, buffer_occupancy_);
}

TapeId WritebackSimulator::DirtiestTape() const {
  TapeId best = kInvalidTape;
  size_t best_count = 0;
  for (const auto& [tape, positions] : dirty_) {
    if (positions.size() > best_count) {
      best_count = positions.size();
      best = tape;
    }
  }
  return best;
}

double WritebackSimulator::FlushTape(TapeId tape) {
  auto it = dirty_.find(tape);
  if (it == dirty_.end() || it->second.empty()) return 0;
  TJ_CHECK_EQ(jukebox_->mounted_tape(), tape);
  std::vector<Position> positions(it->second.begin(), it->second.end());
  const std::vector<Position> order =
      ScheduleCost::SweepOrder(jukebox_->head(), std::move(positions));
  double elapsed = 0;
  Drive& drive = jukebox_->drive();
  for (const Position p : order) {
    elapsed += drive.LocateTo(p);
    elapsed += drive.Read(jukebox_->config().block_size_mb);  // write ~ read
    ++stats_.blocks_flushed;
  }
  buffer_occupancy_ -= static_cast<int64_t>(it->second.size());
  TJ_CHECK_GE(buffer_occupancy_, 0);
  dirty_.erase(it);
  stats_.write_seconds += elapsed;
  return elapsed;
}

SimulationResult WritebackSimulator::Run() {
  TJ_CHECK(!ran_) << "Run may be called once";
  ran_ = true;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const bool closed = sim_config_.workload.model == QueuingModel::kClosed;
  const bool writes_enabled =
      write_config_.mean_write_interarrival_seconds > 0;

  if (closed) {
    for (int64_t i = 0; i < sim_config_.workload.queue_length; ++i) {
      const Request request = read_workload_.NextRequest(0.0);
      metrics_.OnArrival(0.0);
      scheduler_->OnArrival(request, jukebox_->head());
    }
  } else {
    next_read_arrival_ = read_workload_.NextInterarrival();
  }
  next_write_arrival_ =
      writes_enabled
          ? write_rng_.Exponential(
                write_config_.mean_write_interarrival_seconds)
          : kInf;

  auto deliver_reads = [&](double until, Position committed_head) {
    if (closed) return;
    while (next_read_arrival_ <= until) {
      const Request request =
          read_workload_.NextRequest(next_read_arrival_);
      metrics_.OnArrival(next_read_arrival_);
      scheduler_->OnArrival(request, committed_head);
      next_read_arrival_ += read_workload_.NextInterarrival();
    }
  };
  auto deliver_writes = [&](double until) {
    while (next_write_arrival_ <= until) {
      // Writes pick blocks with their own skew, independent of reads.
      const int64_t hot = catalog_->num_hot_blocks();
      const int64_t cold = catalog_->num_cold_blocks();
      bool pick_hot = write_rng_.Bernoulli(write_config_.hot_write_fraction);
      if (hot == 0) pick_hot = false;
      if (cold == 0) pick_hot = true;
      const BlockId block =
          pick_hot
              ? static_cast<BlockId>(write_rng_.UniformUint64(
                    static_cast<uint64_t>(hot)))
              : hot + static_cast<BlockId>(write_rng_.UniformUint64(
                          static_cast<uint64_t>(cold)));
      AcceptWrite(block, next_write_arrival_);
      next_write_arrival_ +=
          write_rng_.Exponential(
              write_config_.mean_write_interarrival_seconds);
    }
  };
  auto maybe_warmup = [&]() {
    if (!warmup_marked_ && clock_ >= sim_config_.warmup_seconds) {
      warmup_marked_ = true;
      metrics_.MarkWarmupBoundary(jukebox_->counters());
    }
  };
  maybe_warmup();

  while (clock_ < sim_config_.duration_seconds) {
    deliver_writes(clock_);

    if (scheduler_->sweep_empty()) {
      // Forced flush: the staging buffer is over capacity; reads wait.
      if (buffer_occupancy_ > write_config_.buffer_capacity_blocks) {
        const TapeId tape = DirtiestTape();
        TJ_CHECK_NE(tape, kInvalidTape);
        clock_ += jukebox_->SwitchTo(tape);
        clock_ += FlushTape(tape);
        ++stats_.forced_flushes;
        maybe_warmup();
        continue;
      }
      if (!scheduler_->HasWork()) {
        // Idle: clean ahead of demand, then wait for the next arrival.
        if (write_config_.idle_flush && buffer_occupancy_ > 0) {
          const TapeId tape = DirtiestTape();
          clock_ += jukebox_->SwitchTo(tape);
          clock_ += FlushTape(tape);
          ++stats_.idle_flushes;
          maybe_warmup();
          continue;
        }
        const double next =
            std::min(closed ? kInf : next_read_arrival_,
                     next_write_arrival_);
        if (next == kInf || next > sim_config_.duration_seconds) break;
        clock_ = next;
        deliver_reads(clock_, jukebox_->head());
        deliver_writes(clock_);
        maybe_warmup();
        continue;
      }
      const TapeId tape = scheduler_->MajorReschedule();
      TJ_CHECK_NE(tape, kInvalidTape);
      const double switch_seconds = jukebox_->SwitchTo(tape);
      const double end = clock_ + switch_seconds;
      deliver_reads(end, jukebox_->head());
      clock_ = end;
      maybe_warmup();
      continue;
    }

    const std::optional<ServiceEntry> entry = scheduler_->PopNext();
    TJ_CHECK(entry.has_value());
    const double op_seconds = jukebox_->ReadBlockAt(entry->position);
    const double end = clock_ + op_seconds;
    deliver_reads(end, jukebox_->head());
    clock_ = end;
    maybe_warmup();
    for (const Request& request : entry->requests) {
      metrics_.OnCompletion(request.arrival_time, clock_);
      if (closed) {
        const Request next = read_workload_.NextRequest(clock_);
        metrics_.OnArrival(clock_);
        scheduler_->OnArrival(next, jukebox_->head());
      }
    }

    // Piggyback: the sweep just drained and the drive is already on this
    // tape — clean its dirty blocks before the next reschedule.
    if (write_config_.piggyback && scheduler_->sweep_empty()) {
      const TapeId mounted = jukebox_->mounted_tape();
      auto it = dirty_.find(mounted);
      if (it != dirty_.end() &&
          static_cast<int64_t>(it->second.size()) >=
              write_config_.piggyback_min_blocks) {
        clock_ += FlushTape(mounted);
        ++stats_.piggyback_flushes;
        maybe_warmup();
      }
    }
  }
  if (!warmup_marked_) metrics_.MarkWarmupBoundary(jukebox_->counters());
  return metrics_.Finalize(clock_, jukebox_->counters());
}

}  // namespace tapejuke
