#include "sim/lifecycle.h"

#include <algorithm>

#include "util/check.h"

namespace tapejuke {

Status LifecycleConfig::Validate() const {
  if (fill_budget_seconds < 0) {
    return Status::InvalidArgument("fill budget must be >= 0");
  }
  if (target_copies < 1) {
    return Status::InvalidArgument("target_copies must be >= 1");
  }
  if (num_epochs < 1) {
    return Status::InvalidArgument("need at least one epoch");
  }
  return Status::Ok();
}

LifecycleSimulator::LifecycleSimulator(Jukebox* jukebox, Catalog* catalog,
                                       Scheduler* scheduler,
                                       const SimulationConfig& sim,
                                       const LifecycleConfig& lifecycle)
    : jukebox_(jukebox),
      catalog_(catalog),
      scheduler_(scheduler),
      sim_config_(sim),
      lifecycle_(lifecycle),
      workload_(catalog, sim.workload) {
  Status status = sim.Validate();
  TJ_CHECK(status.ok()) << status.ToString();
  status = lifecycle.Validate();
  TJ_CHECK(status.ok()) << status.ToString();
  TJ_CHECK(!sim.faults.enabled())
      << "fault injection is not supported by the lifecycle simulator";
  TJ_CHECK_LE(lifecycle.target_copies, jukebox->num_tapes());

  const int32_t num_tapes = jukebox->num_tapes();
  free_slots_.resize(static_cast<size_t>(num_tapes));
  next_hot_.assign(static_cast<size_t>(num_tapes), 0);
  for (TapeId t = 0; t < num_tapes; ++t) {
    const Tape& tape = jukebox->tape(t);
    // Descending order: replicas land at the tape end first (§4.5).
    for (int64_t s = tape.num_slots() - 1; s >= 0; --s) {
      if (tape.BlockAtSlot(s) == kInvalidBlock) {
        free_slots_[static_cast<size_t>(t)].push_back(s);
      }
    }
  }
  // Fill target: every hot block reaches target_copies copies (bounded by
  // what distinct tapes allow).
  for (BlockId b = 0; b < catalog->num_hot_blocks(); ++b) {
    const auto have = static_cast<int64_t>(catalog->ReplicasOf(b).size());
    fill_target_ += std::max<int64_t>(0, lifecycle.target_copies - have);
  }
}

TapeId LifecycleSimulator::NeediestTape() const {
  TapeId best = kInvalidTape;
  int64_t best_need = 0;
  for (TapeId t = 0; t < jukebox_->num_tapes(); ++t) {
    if (free_slots_[static_cast<size_t>(t)].empty()) continue;
    // Count hot blocks still missing a copy here (capped: exact counts are
    // only needed to rank tapes).
    int64_t missing = 0;
    for (BlockId b = 0; b < catalog_->num_hot_blocks(); ++b) {
      if (static_cast<int32_t>(catalog_->ReplicasOf(b).size()) >=
          lifecycle_.target_copies) {
        continue;
      }
      if (catalog_->ReplicaOn(b, t) == nullptr) ++missing;
    }
    const int64_t need = std::min(
        missing,
        static_cast<int64_t>(free_slots_[static_cast<size_t>(t)].size()));
    if (need > best_need) {
      best_need = need;
      best = t;
    }
  }
  return best;
}

double LifecycleSimulator::FillMountedTape(double budget_seconds) {
  const TapeId tape_id = jukebox_->mounted_tape();
  if (tape_id == kInvalidTape) return 0;
  auto& free = free_slots_[static_cast<size_t>(tape_id)];
  BlockId& cursor = next_hot_[static_cast<size_t>(tape_id)];
  const int64_t hot = catalog_->num_hot_blocks();
  if (hot == 0) return 0;

  double elapsed = 0;
  Drive& drive = jukebox_->drive();
  Tape& tape = jukebox_->tape(tape_id);
  while (!free.empty() && elapsed < budget_seconds) {
    // Next hot block that still wants a copy and lacks one on this tape.
    BlockId chosen = kInvalidBlock;
    for (int64_t scanned = 0; scanned < hot; ++scanned) {
      const BlockId candidate = cursor;
      cursor = (cursor + 1) % hot;
      if (static_cast<int32_t>(catalog_->ReplicasOf(candidate).size()) >=
          lifecycle_.target_copies) {
        continue;
      }
      if (catalog_->ReplicaOn(candidate, tape_id) == nullptr) {
        chosen = candidate;
        break;
      }
    }
    if (chosen == kInvalidBlock) break;  // tape already has all it can take

    const int64_t slot = free.front();
    free.erase(free.begin());
    const Position position = tape.PositionOfSlot(slot);
    // The source data is read from the disk/memory tier (hot data is
    // cached there per §2); only the tape-side locate + write costs time.
    elapsed += drive.LocateTo(position);
    elapsed += drive.Read(jukebox_->config().block_size_mb);  // write cost
    const Status placed = tape.PlaceBlock(chosen, slot);
    TJ_CHECK(placed.ok()) << placed.ToString();
    catalog_->AddReplica(chosen, Replica{tape_id, slot, position});
    ++replicas_written_;
  }
  return elapsed;
}

std::vector<EpochStats> LifecycleSimulator::Run() {
  TJ_CHECK(!ran_) << "Run may be called once";
  ran_ = true;
  const bool closed = sim_config_.workload.model == QueuingModel::kClosed;
  const double epoch_len =
      sim_config_.duration_seconds / lifecycle_.num_epochs;

  struct Accum {
    int64_t completed = 0;
    double delay_sum = 0;
  };
  std::vector<Accum> accums(static_cast<size_t>(lifecycle_.num_epochs));
  auto record = [&](double arrival, double completion) {
    auto epoch = static_cast<size_t>(completion / epoch_len);
    epoch = std::min(epoch, accums.size() - 1);
    ++accums[epoch].completed;
    accums[epoch].delay_sum += completion - arrival;
  };
  std::vector<double> fill_at_epoch_end(
      static_cast<size_t>(lifecycle_.num_epochs), 0);
  auto note_fill = [&]() {
    auto epoch = std::min(static_cast<size_t>(clock_ / epoch_len),
                          fill_at_epoch_end.size() - 1);
    const double fraction =
        fill_target_ > 0 ? static_cast<double>(replicas_written_) /
                               static_cast<double>(fill_target_)
                         : 1.0;
    for (size_t e = epoch; e < fill_at_epoch_end.size(); ++e) {
      fill_at_epoch_end[e] = fraction;
    }
  };

  if (closed) {
    for (int64_t i = 0; i < sim_config_.workload.queue_length; ++i) {
      scheduler_->OnArrival(workload_.NextRequest(0.0), jukebox_->head());
    }
  } else {
    next_arrival_ = workload_.NextInterarrival();
  }

  auto deliver = [&](double until, Position committed_head) {
    if (closed) return;
    while (next_arrival_ <= until) {
      scheduler_->OnArrival(workload_.NextRequest(next_arrival_),
                            committed_head);
      next_arrival_ += workload_.NextInterarrival();
    }
  };

  while (clock_ < sim_config_.duration_seconds) {
    if (scheduler_->sweep_empty()) {
      if (!scheduler_->HasWork()) {
        if (lifecycle_.fill_on_idle && replicas_written_ < fill_target_) {
          TapeId tape = NeediestTape();
          if (tape != kInvalidTape) {
            clock_ += jukebox_->SwitchTo(tape);
            clock_ += FillMountedTape(lifecycle_.fill_budget_seconds);
            note_fill();
            continue;
          }
        }
        if (closed || next_arrival_ > sim_config_.duration_seconds) break;
        clock_ = next_arrival_;
        deliver(clock_, jukebox_->head());
        continue;
      }
      const TapeId tape = scheduler_->MajorReschedule();
      TJ_CHECK_NE(tape, kInvalidTape);
      const double switch_seconds = jukebox_->SwitchTo(tape);
      const double end = clock_ + switch_seconds;
      deliver(end, jukebox_->head());
      clock_ = end;
      continue;
    }

    const std::optional<ServiceEntry> entry = scheduler_->PopNext();
    const double op_seconds = jukebox_->ReadBlockAt(entry->position);
    const double end = clock_ + op_seconds;
    deliver(end, jukebox_->head());
    clock_ = end;
    for (const Request& request : entry->requests) {
      record(request.arrival_time, clock_);
      if (closed) {
        scheduler_->OnArrival(workload_.NextRequest(clock_),
                              jukebox_->head());
      }
    }

    // Piggyback fill: the sweep drained and the drive is already here.
    if (scheduler_->sweep_empty() && replicas_written_ < fill_target_) {
      clock_ += FillMountedTape(lifecycle_.fill_budget_seconds);
      note_fill();
    }
  }
  note_fill();

  std::vector<EpochStats> epochs;
  for (size_t e = 0; e < accums.size(); ++e) {
    EpochStats stats;
    stats.start_seconds = static_cast<double>(e) * epoch_len;
    stats.end_seconds = stats.start_seconds + epoch_len;
    stats.completed_requests = accums[e].completed;
    stats.requests_per_minute =
        static_cast<double>(accums[e].completed) / (epoch_len / 60.0);
    stats.mean_delay_minutes =
        accums[e].completed > 0
            ? accums[e].delay_sum / static_cast<double>(accums[e].completed) /
                  60.0
            : 0.0;
    stats.fill_fraction = fill_at_epoch_end[e];
    epochs.push_back(stats);
  }
  return epochs;
}

}  // namespace tapejuke
