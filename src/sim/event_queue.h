// Discrete-event simulation core: a deterministic time-ordered event queue.
//
// Events with equal timestamps are delivered in insertion order (a strictly
// increasing sequence number breaks ties), which keeps simulations
// reproducible regardless of heap implementation details.

#ifndef TAPEJUKE_SIM_EVENT_QUEUE_H_
#define TAPEJUKE_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "util/check.h"

namespace tapejuke {

/// Min-heap of timestamped events carrying a payload of type T.
template <typename T>
class EventQueue {
 public:
  EventQueue() = default;

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Schedules `payload` at simulation time `time` (seconds). Times may not
  /// be NaN; scheduling in the past relative to already-popped events is
  /// the caller's responsibility to avoid.
  void Schedule(double time, T payload) {
    TJ_DCHECK(time == time) << "event time is NaN";
    heap_.push(Node{time, next_seq_++, std::move(payload)});
  }

  /// Timestamp of the earliest event; queue must be non-empty.
  double NextTime() const {
    TJ_CHECK(!heap_.empty());
    return heap_.top().time;
  }

  /// Pops the earliest event; queue must be non-empty.
  std::pair<double, T> Pop() {
    TJ_CHECK(!heap_.empty());
    // top() is const-qualified; moving the payload out just before pop()
    // is safe because the node is removed without being read again (the
    // heap ordering only touches `time` and `seq`, which stay valid).
    Node node = std::move(const_cast<Node&>(heap_.top()));
    heap_.pop();
    return {node.time, std::move(node.payload)};
  }

  /// Pops the earliest event if its time is <= `time`.
  std::optional<std::pair<double, T>> PopUntil(double time) {
    if (heap_.empty() || heap_.top().time > time) return std::nullopt;
    return Pop();
  }

 private:
  struct Node {
    double time;
    uint64_t seq;
    T payload;

    bool operator>(const Node& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Node, std::vector<Node>, std::greater<>> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_SIM_EVENT_QUEUE_H_
