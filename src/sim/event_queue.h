// Discrete-event simulation core: a deterministic time-ordered event queue.
//
// Events with equal timestamps are delivered in insertion order (a strictly
// increasing sequence number breaks ties), which keeps simulations
// reproducible regardless of queue implementation details.
//
// Implementation: a calendar queue (Brown 1988). Time is divided into
// fixed-width "days"; day d hashes to bucket d % nbuckets, so one pass over
// the bucket array covers one "year". Pop scans forward from the cursor day
// for the first bucket holding an event of the current day and takes that
// bucket's minimum; when a whole year is empty, it jumps directly to the
// globally earliest event. For the near-stationary event populations a
// discrete-event simulation produces (a hold model: one pop, one push), both
// enqueue and dequeue are O(1) amortized, versus O(log n) for the binary
// heap this replaced (bench/micro_engine measures the difference).
//
// Event state lives in pooled SoA storage: timestamps and sequence numbers
// in their own contiguous arrays (the only fields ordering ever touches),
// payloads in a third, and freed slots recycled through a free list — no
// per-event heap allocation, and no payload moves during bucket upkeep.
//
// Determinism: ordering depends only on (time, seq), never on bucket
// geometry, so any resize schedule yields the same pop order. Scheduling in
// the past (before the last popped timestamp) would silently corrupt the
// order and is rejected by a TJ_DCHECK.

#ifndef TAPEJUKE_SIM_EVENT_QUEUE_H_
#define TAPEJUKE_SIM_EVENT_QUEUE_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "util/check.h"

namespace tapejuke {

/// Calendar queue of timestamped events carrying a payload of type T.
template <typename T>
class EventQueue {
 public:
  EventQueue() : buckets_(kMinBuckets) {}

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  /// Schedules `payload` at simulation time `time` (seconds). Times may not
  /// be NaN, and may not precede the last popped timestamp: the queue only
  /// moves forward, and a past event would be delivered out of order.
  void Schedule(double time, T payload) {
    TJ_DCHECK(time == time) << "event time is NaN";
    TJ_DCHECK(time >= last_popped_)
        << "scheduling in the past: " << time << " < last popped "
        << last_popped_;
    const uint32_t slot = AllocSlot(time, std::move(payload));
    const uint64_t day = DayOf(time);
    // An event earlier than the cursor day would be skipped for a whole
    // year; pull the cursor back so the next search starts at or before it.
    if (day < day_) day_ = day;
    InsertSorted(&buckets_[BucketOf(day)], slot);
    ++size_;
    if (size_ > buckets_.size() * 2) Resize(buckets_.size() * 2);
  }

  /// Timestamp of the earliest event; queue must be non-empty.
  double NextTime() const {
    TJ_CHECK(size_ > 0);
    return time_[FindEarliest()];
  }

  /// Pops the earliest event; queue must be non-empty.
  std::pair<double, T> Pop() {
    TJ_CHECK(size_ > 0);
    const uint32_t slot = FindEarliest();
    buckets_[BucketOf(day_)].pop_back();
    --size_;
    const double time = time_[slot];
    last_popped_ = time;
    std::pair<double, T> event{time, std::move(payload_[slot])};
    free_.push_back(slot);
    if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 4) {
      Resize(buckets_.size() / 2);
    }
    return event;
  }

  /// Pops the earliest event if its time is <= `time`.
  std::optional<std::pair<double, T>> PopUntil(double time) {
    if (size_ == 0 || time_[FindEarliest()] > time) return std::nullopt;
    return Pop();
  }

 private:
  static constexpr size_t kMinBuckets = 16;
  static constexpr double kMinWidth = 1e-9;

  uint64_t DayOf(double time) const {
    return static_cast<uint64_t>(time / width_);
  }
  size_t BucketOf(uint64_t day) const { return day & (buckets_.size() - 1); }

  /// True if slot `a` orders strictly before slot `b`.
  bool Earlier(uint32_t a, uint32_t b) const {
    if (time_[a] != time_[b]) return time_[a] < time_[b];
    return seq_[a] < seq_[b];
  }

  uint32_t AllocSlot(double time, T payload) {
    if (!free_.empty()) {
      const uint32_t slot = free_.back();
      free_.pop_back();
      time_[slot] = time;
      seq_[slot] = next_seq_++;
      payload_[slot] = std::move(payload);
      return slot;
    }
    const auto slot = static_cast<uint32_t>(time_.size());
    time_.push_back(time);
    seq_.push_back(next_seq_++);
    payload_.push_back(std::move(payload));
    return slot;
  }

  /// Buckets are kept sorted descending by (time, seq): back() is the
  /// bucket minimum, so the common dequeue is a pop_back. Average bucket
  /// occupancy is held near constant by Resize, so the insertion scan is
  /// O(1) amortized.
  void InsertSorted(std::vector<uint32_t>* bucket, uint32_t slot) {
    const auto pos = std::upper_bound(
        bucket->begin(), bucket->end(), slot,
        [this](uint32_t a, uint32_t b) { return Earlier(b, a); });
    bucket->insert(pos, slot);
  }

  /// Positions the cursor day so that buckets_[BucketOf(day_)].back() is
  /// the globally earliest event, and returns that slot. Cursor motion is
  /// logical search state, not observable queue content, hence `mutable`
  /// day_ and the const qualifier (NextTime must not mutate the queue).
  uint32_t FindEarliest() const {
    while (true) {
      // One year's worth of buckets forward from the cursor: the first
      // event dated in its bucket's current day is the global minimum
      // (earlier buckets held nothing current, later ones start no
      // earlier than this day ends).
      for (size_t i = 0; i < buckets_.size(); ++i) {
        const std::vector<uint32_t>& bucket = buckets_[BucketOf(day_)];
        if (!bucket.empty() && DayOf(time_[bucket.back()]) <= day_) {
          return bucket.back();
        }
        ++day_;
      }
      // A whole year is empty: jump straight to the earliest event
      // instead of walking rotation by rotation toward it.
      uint32_t best = UINT32_MAX;
      for (const std::vector<uint32_t>& bucket : buckets_) {
        if (bucket.empty()) continue;
        if (best == UINT32_MAX || Earlier(bucket.back(), best)) {
          best = bucket.back();
        }
      }
      TJ_CHECK(best != UINT32_MAX);
      day_ = DayOf(time_[best]);
      // Loop once more so the normal scan re-establishes its invariant.
    }
  }

  /// Rebuilds the bucket array at `new_count` buckets (a power of two) and
  /// recalibrates the day width to ~3x the mean gap between live events,
  /// estimated from a deterministic sample. Ordering is unaffected: only
  /// (time, seq) ever decide pop order.
  void Resize(size_t new_count) {
    std::vector<uint32_t> slots;
    slots.reserve(size_);
    for (const std::vector<uint32_t>& bucket : buckets_) {
      slots.insert(slots.end(), bucket.begin(), bucket.end());
    }
    double sample_lo = 0, sample_hi = 0;
    const size_t sample = std::min<size_t>(slots.size(), 64);
    for (size_t i = 0; i < sample; ++i) {
      const double t = time_[slots[i]];
      if (i == 0) {
        sample_lo = sample_hi = t;
      } else {
        sample_lo = std::min(sample_lo, t);
        sample_hi = std::max(sample_hi, t);
      }
    }
    if (!slots.empty() && sample_hi > sample_lo) {
      width_ = std::max(
          kMinWidth, 3.0 * (sample_hi - sample_lo) /
                         static_cast<double>(slots.size()));
    }
    buckets_.assign(new_count, {});
    uint64_t min_day = 0;
    bool have_min = false;
    for (const uint32_t slot : slots) {
      const uint64_t day = DayOf(time_[slot]);
      if (!have_min || day < min_day) {
        min_day = day;
        have_min = true;
      }
      InsertSorted(&buckets_[BucketOf(day)], slot);
    }
    day_ = min_day;
  }

  // Pooled event state (SoA): parallel arrays indexed by slot id.
  std::vector<double> time_;
  std::vector<uint64_t> seq_;
  std::vector<T> payload_;
  std::vector<uint32_t> free_;

  std::vector<std::vector<uint32_t>> buckets_;  ///< size is a power of two
  double width_ = 1.0;          ///< seconds per day (bucket time span)
  mutable uint64_t day_ = 0;    ///< search cursor: absolute day index
  double last_popped_ = 0;      ///< monotone floor for Schedule
  size_t size_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_SIM_EVENT_QUEUE_H_
