#include "sim/workload.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace tapejuke {

Status WorkloadConfig::Validate() const {
  if (model == QueuingModel::kClosed && queue_length <= 0) {
    return Status::InvalidArgument("closed model needs queue_length >= 1");
  }
  if (model == QueuingModel::kOpen && mean_interarrival_seconds <= 0) {
    return Status::InvalidArgument(
        "open model needs a positive mean interarrival time");
  }
  if (hot_request_fraction < 0 || hot_request_fraction > 1) {
    return Status::InvalidArgument("hot_request_fraction must be in [0, 1]");
  }
  if (think_time_seconds < 0) {
    return Status::InvalidArgument("think time must be >= 0");
  }
  if (zipf_theta < 0) {
    return Status::InvalidArgument("zipf_theta must be >= 0");
  }
  return Status::Ok();
}

WorkloadGenerator::WorkloadGenerator(const Catalog* catalog,
                                     const WorkloadConfig& config)
    : catalog_(catalog), config_(config), rng_(config.seed) {
  TJ_CHECK(catalog != nullptr);
  const Status status = config.Validate();
  TJ_CHECK(status.ok()) << status.ToString();
  TJ_CHECK_GT(catalog->num_blocks(), 0);
  if (config.skew == SkewModel::kZipf) {
    // Popularity of rank r (0-based) proportional to 1 / (r+1)^theta.
    zipf_cdf_.reserve(static_cast<size_t>(catalog->num_blocks()));
    double cumulative = 0;
    for (BlockId r = 0; r < catalog->num_blocks(); ++r) {
      cumulative += 1.0 / std::pow(static_cast<double>(r + 1),
                                   config.zipf_theta);
      zipf_cdf_.push_back(cumulative);
    }
    for (double& value : zipf_cdf_) value /= cumulative;
  }
}

BlockId WorkloadGenerator::ZipfBlockForQuantile(double u) const {
  TJ_CHECK(config_.skew == SkewModel::kZipf);
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  if (it == zipf_cdf_.end()) {
    // u landed at/above the final CDF entry; without the clamp this would
    // mint a BlockId one past the catalog.
    return static_cast<BlockId>(zipf_cdf_.size()) - 1;
  }
  return static_cast<BlockId>(it - zipf_cdf_.begin());
}

BlockId WorkloadGenerator::NextBlock() {
  if (config_.skew == SkewModel::kZipf) {
    return ZipfBlockForQuantile(rng_.UniformDouble());
  }
  const int64_t hot = catalog_->num_hot_blocks();
  const int64_t cold = catalog_->num_cold_blocks();
  bool pick_hot = rng_.Bernoulli(config_.hot_request_fraction);
  if (hot == 0) pick_hot = false;
  if (cold == 0) pick_hot = true;
  if (pick_hot) {
    return static_cast<BlockId>(
        rng_.UniformUint64(static_cast<uint64_t>(hot)));
  }
  return hot + static_cast<BlockId>(
                   rng_.UniformUint64(static_cast<uint64_t>(cold)));
}

Request WorkloadGenerator::NextRequest(double arrival_time) {
  return Request{next_id_++, NextBlock(), arrival_time};
}

double WorkloadGenerator::NextInterarrival() {
  return rng_.Exponential(config_.mean_interarrival_seconds);
}

double WorkloadGenerator::NextThinkTime() {
  if (config_.think_time_seconds <= 0) return 0.0;
  return rng_.Exponential(config_.think_time_seconds);
}

}  // namespace tapejuke
