#include "sim/workload.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace tapejuke {

Status WorkloadConfig::Validate() const {
  if (model == QueuingModel::kClosed && queue_length <= 0) {
    return Status::InvalidArgument("closed model needs queue_length >= 1");
  }
  if (model == QueuingModel::kOpen && mean_interarrival_seconds <= 0) {
    return Status::InvalidArgument(
        "open model needs a positive mean interarrival time");
  }
  if (hot_request_fraction < 0 || hot_request_fraction > 1) {
    return Status::InvalidArgument("hot_request_fraction must be in [0, 1]");
  }
  if (think_time_seconds < 0) {
    return Status::InvalidArgument("think time must be >= 0");
  }
  if (zipf_theta < 0) {
    return Status::InvalidArgument("zipf_theta must be >= 0");
  }
  if (tenant_classes.size() > 16) {
    return Status::InvalidArgument("at most 16 tenant classes");
  }
  for (const TenantClassConfig& cls : tenant_classes) {
    if (cls.weight <= 0) {
      return Status::InvalidArgument("tenant class weight must be > 0");
    }
    if (cls.deadline_seconds != 0 && cls.deadline_seconds < 1e-3) {
      return Status::InvalidArgument(
          "tenant deadline must be 0 (none) or >= 1ms; sub-millisecond "
          "deadlines expire faster than any tape service");
    }
    if (cls.p99_slo_seconds < 0) {
      return Status::InvalidArgument("p99 SLO must be >= 0");
    }
  }
  if (diurnal_amplitude < 0 || diurnal_amplitude >= 1) {
    return Status::InvalidArgument("diurnal_amplitude must be in [0, 1)");
  }
  if (diurnal_amplitude > 0 && diurnal_period_seconds <= 0) {
    return Status::InvalidArgument(
        "diurnal modulation needs a positive period");
  }
  if (burst_interval_seconds < 0 || burst_spread_seconds < 0) {
    return Status::InvalidArgument("burst knobs must be >= 0");
  }
  if (burst_interval_seconds > 0 && burst_size < 1) {
    return Status::InvalidArgument("bursts need a mean size >= 1");
  }
  if (HasOverloadShaping() && model != QueuingModel::kOpen) {
    return Status::InvalidArgument(
        "diurnal/burst arrival shaping applies to the open model only");
  }
  return Status::Ok();
}

uint64_t DeriveOverloadSeed(uint64_t workload_seed) {
  uint64_t state = workload_seed ^ 0xdead11e55eedULL;
  return SplitMix64(&state);
}

WorkloadGenerator::WorkloadGenerator(const Catalog* catalog,
                                     const WorkloadConfig& config)
    : catalog_(catalog),
      config_(config),
      rng_(config.seed),
      overload_rng_(DeriveOverloadSeed(config.seed)) {
  TJ_CHECK(catalog != nullptr);
  const Status status = config.Validate();
  TJ_CHECK(status.ok()) << status.ToString();
  TJ_CHECK_GT(catalog->num_blocks(), 0);
  if (!config.tenant_classes.empty()) {
    tenant_cdf_.reserve(config.tenant_classes.size());
    double cumulative = 0;
    for (const TenantClassConfig& cls : config.tenant_classes) {
      cumulative += cls.weight;
      tenant_cdf_.push_back(cumulative);
    }
    for (double& value : tenant_cdf_) value /= cumulative;
  }
  if (config.skew == SkewModel::kZipf) {
    // Popularity of rank r (0-based) proportional to 1 / (r+1)^theta.
    zipf_cdf_.reserve(static_cast<size_t>(catalog->num_blocks()));
    double cumulative = 0;
    for (BlockId r = 0; r < catalog->num_blocks(); ++r) {
      cumulative += 1.0 / std::pow(static_cast<double>(r + 1),
                                   config.zipf_theta);
      zipf_cdf_.push_back(cumulative);
    }
    for (double& value : zipf_cdf_) value /= cumulative;
  }
}

BlockId WorkloadGenerator::ZipfBlockForQuantile(double u) const {
  TJ_CHECK(config_.skew == SkewModel::kZipf);
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  if (it == zipf_cdf_.end()) {
    // u landed at/above the final CDF entry; without the clamp this would
    // mint a BlockId one past the catalog.
    return static_cast<BlockId>(zipf_cdf_.size()) - 1;
  }
  return static_cast<BlockId>(it - zipf_cdf_.begin());
}

BlockId WorkloadGenerator::NextBlock() {
  if (config_.skew == SkewModel::kZipf) {
    return ZipfBlockForQuantile(rng_.UniformDouble());
  }
  const int64_t hot = catalog_->num_hot_blocks();
  const int64_t cold = catalog_->num_cold_blocks();
  bool pick_hot = rng_.Bernoulli(config_.hot_request_fraction);
  if (hot == 0) pick_hot = false;
  if (cold == 0) pick_hot = true;
  if (pick_hot) {
    return static_cast<BlockId>(
        rng_.UniformUint64(static_cast<uint64_t>(hot)));
  }
  return hot + static_cast<BlockId>(
                   rng_.UniformUint64(static_cast<uint64_t>(cold)));
}

uint8_t WorkloadGenerator::NextTenant() {
  const double u = overload_rng_.UniformDouble();
  const auto it =
      std::lower_bound(tenant_cdf_.begin(), tenant_cdf_.end(), u);
  if (it == tenant_cdf_.end()) {
    return static_cast<uint8_t>(tenant_cdf_.size() - 1);
  }
  return static_cast<uint8_t>(it - tenant_cdf_.begin());
}

Request WorkloadGenerator::NextRequest(double arrival_time) {
  Request request{next_id_++, NextBlock(), arrival_time};
  if (!tenant_cdf_.empty()) {
    request.tenant = NextTenant();
    const double deadline =
        config_.tenant_classes[request.tenant].deadline_seconds;
    if (deadline > 0) request.deadline = arrival_time + deadline;
  }
  return request;
}

double WorkloadGenerator::NextInterarrival() {
  return rng_.Exponential(config_.mean_interarrival_seconds);
}

double WorkloadGenerator::NextBaseArrival(double now) {
  if (config_.diurnal_amplitude <= 0) {
    return now + overload_rng_.Exponential(config_.mean_interarrival_seconds);
  }
  // Lewis-Shedler thinning at the peak rate (1 + a) / mean: candidates at
  // the peak rate, accepted with probability rate(t) / peak.
  constexpr double kTwoPi = 6.283185307179586;
  const double a = config_.diurnal_amplitude;
  const double peak_gap = config_.mean_interarrival_seconds / (1.0 + a);
  double t = now;
  for (;;) {
    t += overload_rng_.Exponential(peak_gap);
    const double phase = kTwoPi * t / config_.diurnal_period_seconds;
    const double accept = (1.0 + a * std::sin(phase)) / (1.0 + a);
    if (overload_rng_.UniformDouble() < accept) return t;
  }
}

void WorkloadGenerator::EnsureBurstsUpTo(double horizon) {
  if (config_.burst_interval_seconds <= 0) return;
  if (next_burst_onset_ < 0) {
    next_burst_onset_ =
        overload_rng_.Exponential(config_.burst_interval_seconds);
  }
  bool expanded = false;
  while (next_burst_onset_ <= horizon) {
    int64_t extra = 1;
    if (config_.burst_size > 1.0) {
      extra += static_cast<int64_t>(
          overload_rng_.Exponential(config_.burst_size - 1.0));
    }
    for (int64_t i = 0; i < extra; ++i) {
      const double offset =
          config_.burst_spread_seconds > 0
              ? overload_rng_.UniformDouble(0.0,
                                            config_.burst_spread_seconds)
              : 0.0;
      burst_queue_.push_back(next_burst_onset_ + offset);
    }
    next_burst_onset_ +=
        overload_rng_.Exponential(config_.burst_interval_seconds);
    expanded = true;
  }
  if (expanded) {
    // Bursts can overlap when the spread exceeds the onset gap, so keep
    // the whole unconsumed region sorted, not just the new segment.
    std::sort(burst_queue_.begin() + static_cast<ptrdiff_t>(burst_head_),
              burst_queue_.end());
  }
}

double WorkloadGenerator::NextArrivalGap(double now) {
  if (!config_.HasOverloadShaping()) return NextInterarrival();
  // Candidate base-process arrival; reuse the stashed draw if a burst
  // arrival preempted it last time.
  double base = stashed_base_arrival_;
  if (base < 0) base = NextBaseArrival(now);
  EnsureBurstsUpTo(base);
  if (burst_head_ < burst_queue_.size() &&
      burst_queue_[burst_head_] <= base) {
    const double t = burst_queue_[burst_head_++];
    stashed_base_arrival_ = base;
    if (burst_head_ > 1024 && burst_head_ * 2 > burst_queue_.size()) {
      burst_queue_.erase(
          burst_queue_.begin(),
          burst_queue_.begin() + static_cast<ptrdiff_t>(burst_head_));
      burst_head_ = 0;
    }
    return std::max(0.0, t - now);
  }
  stashed_base_arrival_ = -1.0;
  return std::max(0.0, base - now);
}

double WorkloadGenerator::NextThinkTime() {
  if (config_.think_time_seconds <= 0) return 0.0;
  return rng_.Exponential(config_.think_time_seconds);
}

}  // namespace tapejuke
