// Deterministic fault injection for the jukebox simulators.
//
// Tape archives deploy replication first as a *reliability* mechanism; the
// paper studies its performance side. This module lets the simulators study
// both at once by injecting four fault classes, all drawn from a dedicated
// util/rng stream so a run is bit-identical for a given seed regardless of
// how many sweep threads execute around it:
//
//  * transient read errors — the drive re-locates to the block start and
//    retries in place, up to `max_read_retries` times; each retry costs a
//    locate back to the block plus the re-read;
//  * permanent media errors — the region under the head (or, with
//    probability `whole_tape_fraction`, the entire tape) becomes unreadable;
//    the affected replicas are masked in the Catalog and the request fails
//    over to a surviving replica, or completes with a Status error if none
//    remains;
//  * drive failures — each drive fails after an Exponential(MTBF) uptime and
//    returns to service after an Exponential(MTTR) repair; queued and
//    in-flight work is rerouted to surviving drives;
//  * robot faults — a load/eject handoff slips and the robot repeats the
//    move, charging one extra robot cycle per fault.
//
// With every rate zero, FaultConfig::enabled() is false, no random draws are
// made, and simulation output is bit-identical to a build without this file.

#ifndef TAPEJUKE_SIM_FAULT_MODEL_H_
#define TAPEJUKE_SIM_FAULT_MODEL_H_

#include <cstdint>

#include "util/rng.h"
#include "util/status.h"

namespace tapejuke {

/// Fault-injection rates and repair parameters. All rates default to zero:
/// the default-constructed config injects nothing.
struct FaultConfig {
  /// Probability that any single block read suffers a transient error
  /// (retried in place). In [0, 1).
  double transient_read_error_prob = 0.0;
  /// Retry budget for transient read errors; when exhausted the error
  /// escalates to a permanent media error on the block's region. >= 0.
  int max_read_retries = 3;
  /// Probability that a block read hits a permanent media error. In [0, 1).
  double permanent_media_error_prob = 0.0;
  /// Given a permanent media error, probability that the whole tape (rather
  /// than just the region under the head) is lost. In [0, 1].
  double whole_tape_fraction = 0.0;
  /// Mean drive uptime between failures, seconds. 0 disables drive faults;
  /// when > 0, drive_mttr_seconds must also be > 0.
  double drive_mtbf_seconds = 0.0;
  /// Mean drive repair time, seconds.
  double drive_mttr_seconds = 0.0;
  /// Probability that a robot load/eject handoff slips and must be repeated
  /// (each repeat re-drawn, so the retry count is geometric). In [0, 1).
  double robot_fault_prob = 0.0;
  /// Exponential backoff before each transient-read retry: retry k (0-based)
  /// waits base * 2^k seconds, scaled by a deterministic jitter factor in
  /// [0.5, 1.0] drawn from the fault stream. 0 (the default) preserves the
  /// historical immediate retries, with no extra draws.
  double retry_backoff_base_seconds = 0.0;
  /// Cap on a single backoff wait (before jitter). 0 = uncapped.
  double retry_backoff_max_seconds = 0.0;
  /// Seed for the fault stream. 0 derives the stream from the workload seed
  /// so distinct experiments see distinct fault sequences by default.
  uint64_t seed = 0;

  /// True when any fault class can fire. When false the simulators make no
  /// fault-related draws and produce bit-identical output to a fault-free
  /// build.
  bool enabled() const {
    return transient_read_error_prob > 0.0 || permanent_media_error_prob > 0.0 ||
           drive_mtbf_seconds > 0.0 || robot_fault_prob > 0.0;
  }

  /// Rejects negative rates, probabilities outside their ranges, certain-
  /// failure probabilities (which would retry forever), a negative retry
  /// budget, and MTBF without a positive MTTR.
  Status Validate() const;
};

/// Counters for every fault-machinery event. Aggregated into
/// SimulationResult and serialized by results_io when fault injection is on.
struct FaultStats {
  /// Transient read errors drawn (each consumes >= 1 retry).
  int64_t transient_read_errors = 0;
  /// Individual retry attempts charged (locate-back + re-read).
  int64_t read_retries = 0;
  /// Transient errors that exhausted the retry budget and escalated to a
  /// permanent media error.
  int64_t reads_escalated = 0;
  /// Permanent media errors (drawn directly or escalated).
  int64_t permanent_media_errors = 0;
  /// Permanent errors that destroyed a whole tape.
  int64_t dead_tapes = 0;
  /// Catalog replicas masked dead by permanent errors.
  int64_t replicas_masked = 0;
  /// Drive failure events.
  int64_t drive_failures = 0;
  /// Total seconds of drive downtime across all repairs.
  double drive_repair_seconds = 0.0;
  /// Robot handoff faults (each charges one extra robot cycle).
  int64_t robot_faults = 0;
  /// Extra robot seconds charged by handoff faults.
  double robot_retry_seconds = 0.0;
  /// Requests rerouted to a surviving replica or drive after a fault.
  int64_t failovers = 0;
  /// Client reads completed while their block was missing at least one
  /// replica (service continued at degraded redundancy).
  int64_t degraded_reads = 0;
  /// Durability events: blocks whose last live replica was lost (each
  /// block counted once, at the moment it became unreadable).
  int64_t blocks_lost = 0;

  FaultStats& operator+=(const FaultStats& other);
  bool operator==(const FaultStats& other) const;
};

/// Outcome of the fault draw for one block read.
struct ReadOutcome {
  /// Transient retries to charge before the read succeeds (0 = clean read).
  int retries = 0;
  /// The read ends in a permanent media error (possibly after retries).
  bool permanent_error = false;
  /// With permanent_error: the whole tape is lost, not just the region.
  bool whole_tape = false;
  /// The permanent error came from exhausting the transient retry budget
  /// (rather than a direct bad-media draw).
  bool escalated = false;
};

/// Draws fault events from a private RNG stream. One FaultModel per
/// simulation run; the stream is independent of the workload stream so
/// enabling faults never perturbs which blocks are requested.
class FaultModel {
 public:
  /// `config` must already be validated. `workload_seed` seeds the stream
  /// when config.seed == 0 (hashed so the fault and workload streams differ
  /// even then).
  FaultModel(const FaultConfig& config, uint64_t workload_seed);

  /// Draws the fault outcome for one block read. Never draws from the RNG
  /// for fault classes whose rate is zero.
  ReadOutcome NextReadOutcome();

  /// Draws the number of robot handoff slips for one load/eject cycle
  /// (geometric; 0 = clean handoff).
  int NextRobotFaults();

  /// Draws the uptime until the next failure of one drive, seconds.
  /// Requires drive_mtbf_seconds > 0.
  double NextFailureGap();

  /// Draws a repair duration, seconds. Requires drive_mttr_seconds > 0.
  double NextRepairTime();

  /// Backoff wait before transient-read retry `attempt` (0-based):
  /// min(base * 2^attempt, max) scaled by a jittered factor in [0.5, 1.0].
  /// Returns 0 without touching the RNG when backoff is disabled, so
  /// existing fault runs stay bit-identical.
  double NextRetryBackoff(int attempt);

  const FaultConfig& config() const { return config_; }

 private:
  FaultConfig config_;
  Rng rng_;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_SIM_FAULT_MODEL_H_
