// Write path: disk-resident delta staging with piggybacked tape writeback
// (extension; paper §4 assumes "writes would be directed to disk-resident
// delta files, occasionally written to tape during idle time or piggybacked
// on the read schedule" — this module implements that machinery and lets
// the bench quantify its interference with reads).
//
// Writes complete instantly from the client's view: they land in a bounded
// disk buffer and dirty every tape position holding a replica of the
// written block. Dirty data reaches tape three ways:
//
//   * piggyback flush — when a read sweep on tape t finishes, the drive is
//     already positioned there: append a write pass over t's dirty
//     positions before the next reschedule;
//   * idle flush — when no reads are pending (open queuing), mount and
//     clean the dirtiest tape;
//   * forced flush — when the buffer exceeds its capacity, reads wait
//     while the dirtiest tapes are cleaned (the interference the buffer is
//     meant to avoid).

#ifndef TAPEJUKE_SIM_WRITE_PATH_H_
#define TAPEJUKE_SIM_WRITE_PATH_H_

#include <cstdint>
#include <map>
#include <set>

#include "layout/catalog.h"
#include "sched/scheduler.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "sim/workload.h"
#include "tape/jukebox.h"
#include "util/status.h"

namespace tapejuke {

/// Write-path parameters.
struct WritePathConfig {
  /// Mean interarrival time of write operations (Poisson, independent of
  /// the read stream). <= 0 disables writes.
  double mean_write_interarrival_seconds = 120.0;
  /// Fraction of writes directed to hot blocks (usually matches RH).
  double hot_write_fraction = 0.40;
  /// Disk staging capacity, in dirty tape-block updates. Exceeding it
  /// triggers forced flushes.
  int64_t buffer_capacity_blocks = 256;
  /// Enable appending a write pass to the end of read sweeps.
  bool piggyback = true;
  /// Piggyback only when the mounted tape has at least this many dirty
  /// updates — smaller batches are not worth the extra locates; they wait
  /// for more dirt or for an idle/forced flush.
  int64_t piggyback_min_blocks = 8;
  /// Enable cleaning during idle periods (open queuing only).
  bool idle_flush = true;

  Status Validate() const;
};

/// Observability for the write path.
struct WritePathStats {
  int64_t writes_accepted = 0;
  int64_t dirty_updates_created = 0;  ///< replica positions dirtied
  int64_t blocks_flushed = 0;
  int64_t piggyback_flushes = 0;  ///< flush passes appended to read sweeps
  int64_t idle_flushes = 0;
  int64_t forced_flushes = 0;
  int64_t max_buffer_occupancy = 0;
  double write_seconds = 0;  ///< drive time spent locating + writing
};

/// Single-drive simulator with a read scheduler plus the delta write path.
class WritebackSimulator {
 public:
  /// All pointers must outlive the simulator; `scheduler` handles reads.
  WritebackSimulator(Jukebox* jukebox, const Catalog* catalog,
                     Scheduler* scheduler, const SimulationConfig& sim,
                     const WritePathConfig& writes);

  /// Runs to completion; call once. The returned metrics cover *reads*
  /// (write latency is ~0 by construction); write-path behaviour is in
  /// stats().
  SimulationResult Run();

  const WritePathStats& stats() const { return stats_; }

  /// Dirty updates currently staged (for tests).
  int64_t buffer_occupancy() const { return buffer_occupancy_; }

 private:
  /// Stages a write to `block` at time `now`.
  void AcceptWrite(BlockId block, double now);

  /// Writes out all dirty positions of `tape` (drive must be mounted on
  /// it); returns elapsed seconds.
  double FlushTape(TapeId tape);

  /// Tape with the most dirty updates, or kInvalidTape.
  TapeId DirtiestTape() const;

  Jukebox* jukebox_;
  const Catalog* catalog_;
  Scheduler* scheduler_;
  SimulationConfig sim_config_;
  WritePathConfig write_config_;
  WorkloadGenerator read_workload_;
  Rng write_rng_;
  MetricsCollector metrics_;

  std::map<TapeId, std::set<Position>> dirty_;
  int64_t buffer_occupancy_ = 0;
  WritePathStats stats_;

  double clock_ = 0;
  double next_read_arrival_ = 0;
  double next_write_arrival_ = 0;
  bool warmup_marked_ = false;
  bool ran_ = false;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_SIM_WRITE_PATH_H_
