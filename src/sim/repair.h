// Self-healing replication: background scrub and repair with a bounded
// foreground impact (the TALICS-style scrub/rebuild loop applied to the
// paper's NR-replica layouts).
//
// The RepairManager closes the loop that fault injection opened. Permanent
// media errors mask catalog replicas dead; without repair that redundancy
// is lost for the rest of the run and latent errors are only discovered
// when a client read trips over them. With repair enabled the manager
//
//  * runs background **scrub** passes: sequential scans of one tape at a
//    time on the idle drive, reading every slot that still holds a live
//    replica. Scrub reads draw from the same fault-model stream as client
//    reads, so latent permanent errors surface before clients hit them —
//    and runs stay bit-identical at any --threads value;
//  * maintains a **repair queue**: each dead replica becomes a task that
//    re-replicates its block onto a tape with spare capacity. The block is
//    first read back from a surviving copy (a *background request* the
//    schedulers order strictly behind client work), then written
//    writeback-style — piggybacked on a mount the schedule already paid
//    for, or on the idle drive — and finally resurrected in the catalog
//    via Catalog::RepairReplica, which clears the dead mask in place;
//  * enforces a **foreground-impact budget**: a token bucket meters repair
//    and scrub I/O (MB tokens refilled at repair_bandwidth_mb_per_s), and
//    scrub/repair quanta are one block long, so any client arrival
//    preempts background work at the next block boundary.
//
// The manager only exists when RepairConfig::enabled(); repair requires
// fault injection, so fault-free runs carry zero repair code and stay
// byte-identical to pre-repair output.

#ifndef TAPEJUKE_SIM_REPAIR_H_
#define TAPEJUKE_SIM_REPAIR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "layout/catalog.h"
#include "obs/recorder.h"
#include "sched/scheduler.h"
#include "sim/fault_model.h"
#include "tape/jukebox.h"
#include "util/status.h"

namespace tapejuke {

/// Scrub/repair knobs. Defaults disable everything.
struct RepairConfig {
  /// Re-replicate dead replicas onto tapes with spare capacity. When
  /// false (with scrub on), scrub is detection-only: latent errors are
  /// surfaced and masked but nothing is rebuilt.
  bool enable_repair = false;
  /// Seconds between background scrub passes (one pass = one full scan of
  /// one tape). 0 disables scrubbing.
  double scrub_interval_seconds = 0.0;
  /// Token-bucket refill rate for scrub reads and repair writes, MB/s.
  /// 0 = unmetered.
  double repair_bandwidth_mb_per_s = 0.0;
  /// Token-bucket capacity, MB. Must cover at least one block when the
  /// rate is nonzero.
  double repair_burst_mb = 64.0;

  /// True when the manager has anything to do.
  bool enabled() const {
    return enable_repair || scrub_interval_seconds > 0.0;
  }

  Status Validate() const;
};

/// Counters for the scrub/repair machinery. Serialized by results_io only
/// for runs that had repair enabled.
struct RepairStats {
  int64_t scrub_passes = 0;        ///< completed full-tape scans
  int64_t scrub_mounts = 0;        ///< tape switches made for scrubbing
  int64_t scrub_blocks_read = 0;
  int64_t scrub_errors_detected = 0;  ///< permanent errors found by scrub
  double scrub_seconds = 0.0;      ///< drive time spent on scrub reads

  int64_t repairs_enqueued = 0;    ///< dead replicas that got a repair task
  int64_t repairs_completed = 0;   ///< replicas re-replicated + resurrected
  int64_t repairs_abandoned = 0;   ///< enqueued tasks dropped (source lost
                                   ///< or no target tape left)
  int64_t repairs_impossible = 0;  ///< dead replicas never enqueued (no
                                   ///< source or no spare capacity)
  int64_t source_reads = 0;        ///< background source reads completed
  int64_t repair_mounts = 0;       ///< tape switches made to flush writes
  double repair_write_seconds = 0.0;

  int64_t backlog_peak = 0;        ///< max outstanding repair tasks
  int64_t backlog_final = 0;       ///< outstanding tasks at end of run

  /// Time-to-re-protection: completion time minus replica death time,
  /// summed / maxed over completed repairs (mean = sum / completed).
  double reprotect_seconds_sum = 0.0;
  double reprotect_seconds_max = 0.0;
};

/// Drives scrub passes and replica re-replication for one single-drive
/// simulation run. Owned by the Simulator; all hooks are called from the
/// simulation loop with the current simulated clock.
class RepairManager {
 public:
  /// All pointers must outlive the manager. `catalog` is the mutable
  /// catalog faults mask into; `scheduler` receives background source
  /// reads; `faults`/`fault_stats` are the run's fault stream and shared
  /// counters (scrub outcomes are accounted there too).
  RepairManager(const RepairConfig& config, Jukebox* jukebox,
                Catalog* catalog, Scheduler* scheduler, FaultModel* faults,
                FaultStats* fault_stats);

  /// A replica of `block` on `tape` was newly masked dead (by a client
  /// read or by scrub). Enqueues a repair task when possible.
  void OnReplicaDead(BlockId block, TapeId tape, double now);

  /// `tape` was lost whole; `newly_masked` lists the block of every
  /// replica it took down. Re-targets tasks that were going to write onto
  /// it, then enqueues repair work for the masked replicas.
  void OnTapeDead(TapeId tape, const std::vector<BlockId>& newly_masked,
                  double now);

  /// A background source read for `block` completed: its payload is now
  /// buffered and the block's staged writes may flush.
  void OnSourceReadComplete(BlockId block, double now);

  /// A background request was displaced from a sweep by a fault. Re-issues
  /// the source read against a surviving replica, or abandons the block's
  /// tasks when none is left.
  void OnBackgroundDisplaced(const Request& request, double now);

  /// A background request was evicted: its block has no live replica.
  void OnBackgroundEvicted(BlockId block);

  /// Tape-switch-boundary hook, called right before every major
  /// reschedule: flushes staged repair writes targeting the mounted tape
  /// while the token budget allows (piggybacked on a mount the client
  /// schedule already paid for). Returns drive seconds charged.
  double AtSweepBoundary(double now);

  /// Earliest time >= `now` at which IdleQuantum would have work to do
  /// (+infinity when it has none). The simulator only burns idle time on
  /// repair when this is at hand before the next arrival.
  double NextIdleWorkTime(double now) const;

  /// One idle-drive work quantum (a single mount, scrub read, or repair
  /// write — one block at most, so client arrivals preempt background
  /// work at block granularity).
  struct Quantum {
    double seconds = 0.0;
    /// A scrub read masked replicas dead (the simulator must evict
    /// now-unservable queued requests).
    bool masked_replicas = false;
  };
  Quantum IdleQuantum(double now);

  /// Fills backlog_final and returns the run's counters.
  RepairStats Finalize();

  const RepairStats& stats() const { return stats_; }

  /// Repair tasks discovered but not yet completed (timeline backlog
  /// gauge).
  int64_t outstanding_tasks() const { return outstanding_tasks_; }

  /// Observability: attaches the run's trace recorder. The manager emits
  /// scheduler-track instants for scrub-pass completions and finished
  /// repairs, and opens lifecycle spans for its background source reads.
  /// Null (the default) disables all of it.
  void set_recorder(obs::TraceRecorder* recorder) { recorder_ = recorder; }

 private:
  /// One pending re-replication: the dead copy it replaces and the
  /// reserved target slot the new copy will be written to.
  struct RepairTask {
    TapeId dead_tape = kInvalidTape;
    double dead_at = 0.0;
    TapeId target_tape = kInvalidTape;
    int64_t target_slot = -1;
  };
  /// All repair state for one block. The source payload is read once and
  /// shared by every task of the block.
  struct BlockState {
    std::vector<RepairTask> tasks;
    bool source_outstanding = false;  ///< background read in the scheduler
    bool payload_buffered = false;    ///< source read done; writes may go
  };

  /// Picks the target tape (most free slots; ties lowest id) and reserves
  /// a slot on it. Excludes dead tapes, tapes already holding a copy of
  /// the block, and tapes another task of this block already targets.
  bool ChooseTarget(BlockId block, RepairTask* task);
  void ReleaseSlot(TapeId tape, int64_t slot);

  /// Drops every task of `block` (its source is gone or no target fits).
  void AbandonBlock(BlockId block);

  /// Mints a background request for `block` and hands it to the scheduler.
  void RequestSourceRead(BlockId block, double now);

  /// Executes task `idx` of `block`: locates to the reserved slot, writes
  /// the block (charged like a read, the writeback idiom), resurrects the
  /// catalog entry, and retires the task. Returns drive seconds.
  double CompleteTask(BlockId block, size_t idx, double now);

  /// First staged task targeting `tape` (map order), if any.
  bool FindStaged(TapeId tape, BlockId* block, size_t* idx) const;
  /// Target tape with the most staged blocks (ties lowest id).
  TapeId BestStagedTarget() const;
  bool HasStagedPayload() const;

  /// Mounts `tape` for background work, mirroring the simulator's robot
  /// fault accounting. Returns seconds; bumps *mounts.
  double Mount(TapeId tape, int64_t* mounts);

  /// One scrub step on the mounted scrub tape: reads the next live slot
  /// and applies its fault outcome (masking + repair enqueue on a
  /// permanent error), or completes the pass.
  Quantum ScrubStep(double now);
  /// Starts a pass on the next round-robin tape with live data, if due.
  void MaybeStartScrubPass(double now);

  // Token bucket over MB of background I/O.
  double TokensAt(double now) const;
  void SpendTokens(double now, double mb);
  double TokenReadyTime(double now, double mb) const;

  RepairConfig config_;
  Jukebox* jukebox_;
  Catalog* catalog_;
  Scheduler* scheduler_;
  FaultModel* faults_;
  FaultStats* fault_stats_;
  obs::TraceRecorder* recorder_ = nullptr;
  RepairStats stats_;

  int64_t block_mb_;
  RequestId next_background_id_ = kBackgroundIdBase;
  int64_t outstanding_tasks_ = 0;

  /// Per-block repair state, deterministic iteration order.
  std::map<BlockId, BlockState> tasks_;

  /// Unused (spare) slots per tape, descending so pop_back takes the
  /// lowest slot first. Built once at construction; a reserved slot is
  /// removed immediately and returned only if its task is abandoned.
  std::vector<std::vector<int64_t>> free_slots_;
  std::vector<uint8_t> dead_tape_;

  // Scrub state.
  double next_scrub_due_ = 0.0;
  TapeId scrub_cursor_ = 0;             ///< next tape to consider
  TapeId scrub_tape_ = kInvalidTape;    ///< pass in progress
  int64_t scrub_slot_ = 0;              ///< next slot of the pass

  // Token bucket.
  double tokens_ = 0.0;
  double token_time_ = 0.0;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_SIM_REPAIR_H_
