#include "sim/simulator.h"

#include <iostream>
#include <limits>

#include "util/check.h"

namespace tapejuke {

Status SimulationConfig::Validate() const {
  if (duration_seconds <= 0) {
    return Status::InvalidArgument("duration must be positive");
  }
  if (obs.sample < 1) {
    return Status::InvalidArgument("trace sample must be >= 1");
  }
  if (timeline.interval_seconds < 0) {
    return Status::InvalidArgument("timeline interval must be >= 0");
  }
  if (!timeline.out.empty() && timeline.interval_seconds <= 0) {
    return Status::InvalidArgument(
        "timeline output requires a positive --timeline-interval");
  }
  if (warmup_seconds < 0 || warmup_seconds >= duration_seconds) {
    return Status::InvalidArgument(
        "warmup must be in [0, duration_seconds)");
  }
  const Status fault_status = faults.Validate();
  if (!fault_status.ok()) return fault_status;
  const Status repair_status = repair.Validate();
  if (!repair_status.ok()) return repair_status;
  if (repair.enabled() && !faults.enabled()) {
    return Status::InvalidArgument(
        "scrub/repair requires fault injection (config.faults)");
  }
  const Status admission_status = admission.Validate(workload);
  if (!admission_status.ok()) return admission_status;
  return workload.Validate();
}

Simulator::Simulator(Jukebox* jukebox, const Catalog* catalog,
                     Scheduler* scheduler, const SimulationConfig& config)
    : jukebox_(jukebox),
      catalog_(catalog),
      scheduler_(scheduler),
      config_(config),
      workload_(catalog, config.workload),
      metrics_(config.warmup_seconds, jukebox->config().block_size_mb),
      accounting_(/*num_drives=*/1, config.warmup_seconds) {
  TJ_CHECK(jukebox != nullptr);
  TJ_CHECK(catalog != nullptr);
  TJ_CHECK(scheduler != nullptr);
  const Status status = config.Validate();
  TJ_CHECK(status.ok()) << status.ToString();
  TJ_CHECK(!config.faults.enabled())
      << "fault injection requires the mutable-catalog Simulator "
         "constructor (permanent media errors mask catalog replicas)";
  if (config_.obs.enabled()) {
    recorder_.emplace(config_.obs);
    recorder_->SetTopology("jukebox", /*num_drives=*/1);
    accounting_.set_recorder(&*recorder_);
    scheduler_->set_decision_sink(&*recorder_);
  }
  if (config_.workload.HasTenantClasses()) {
    metrics_.ConfigureClasses(
        static_cast<int>(config_.workload.tenant_classes.size()));
    for (const TenantClassConfig& cls : config_.workload.tenant_classes) {
      if (cls.deadline_seconds > 0) deadlines_possible_ = true;
    }
  }
  if (config_.admission.enabled()) {
    admission_.emplace(config_.admission, config_.workload.tenant_classes);
  }
  SetupTimeline();
}

Simulator::Simulator(Jukebox* jukebox, Catalog* catalog, Scheduler* scheduler,
                     const SimulationConfig& config)
    : jukebox_(jukebox),
      catalog_(catalog),
      mutable_catalog_(catalog),
      scheduler_(scheduler),
      config_(config),
      workload_(catalog, config.workload),
      metrics_(config.warmup_seconds, jukebox->config().block_size_mb),
      accounting_(/*num_drives=*/1, config.warmup_seconds) {
  TJ_CHECK(jukebox != nullptr);
  TJ_CHECK(catalog != nullptr);
  TJ_CHECK(scheduler != nullptr);
  const Status status = config.Validate();
  TJ_CHECK(status.ok()) << status.ToString();
  if (config_.obs.enabled()) {
    recorder_.emplace(config_.obs);
    recorder_->SetTopology("jukebox", /*num_drives=*/1);
    accounting_.set_recorder(&*recorder_);
    scheduler_->set_decision_sink(&*recorder_);
  }
  if (config_.faults.enabled()) {
    faults_.emplace(config_.faults, config_.workload.seed);
    if (config_.faults.drive_mtbf_seconds > 0) {
      drive_faults_ = true;
      next_drive_failure_ = faults_->NextFailureGap();
    }
    if (config_.repair.enabled()) {
      repair_.emplace(config_.repair, jukebox_, mutable_catalog_, scheduler_,
                      &*faults_, &fault_stats_);
      if (recorder_.has_value()) repair_->set_recorder(&*recorder_);
    }
  }
  if (config_.workload.HasTenantClasses()) {
    metrics_.ConfigureClasses(
        static_cast<int>(config_.workload.tenant_classes.size()));
    for (const TenantClassConfig& cls : config_.workload.tenant_classes) {
      if (cls.deadline_seconds > 0) deadlines_possible_ = true;
    }
  }
  if (config_.admission.enabled()) {
    admission_.emplace(config_.admission, config_.workload.tenant_classes);
  }
  SetupTimeline();
}

Simulator::Simulator(Jukebox* jukebox, const Catalog* catalog,
                     Scheduler* scheduler, const SimulationConfig& config,
                     std::vector<Request> trace)
    : Simulator(jukebox, catalog, scheduler, config) {
  trace_mode_ = true;
  trace_ = std::move(trace);
  RequestId next_id = 0;
  double previous = 0;
  for (Request& request : trace_) {
    TJ_CHECK_GE(request.arrival_time, previous)
        << "trace arrivals must be time-ordered";
    previous = request.arrival_time;
    TJ_CHECK(request.block >= 0 && request.block < catalog->num_blocks())
        << "trace references unknown block" << request.block;
    request.id = next_id++;
    if (request.deadline > 0) deadlines_possible_ = true;
  }
}

bool Simulator::DeliverOrFail(const Request& request,
                              Position committed_head) {
  if (recorder_.has_value()) {
    recorder_->RequestArrived(request.id, request.block,
                              /*background=*/false, request.arrival_time);
  }
  if (faults_.has_value() && !catalog_->HasLiveReplica(request.block)) {
    metrics_.OnFailure(request.arrival_time, request.arrival_time);
    if (recorder_.has_value()) {
      recorder_->RequestDone(request.id, obs::RequestOutcome::kFailed,
                             request.arrival_time);
    }
    return false;
  }
  scheduler_->OnArrival(request, committed_head);
  TrackDeadline(request);
  return true;
}

void Simulator::TrackDeadline(const Request& request) {
  if (request.deadline <= 0) return;
  deadline_live_.insert(request.id);
  expiries_.Schedule(request.deadline, request.id);
}

void Simulator::ExpireRequest(const Request& request, double now,
                              Position committed_head) {
  deadline_live_.erase(request.id);
  metrics_.OnExpired(request.arrival_time, now, request.tenant);
  if (recorder_.has_value()) {
    recorder_->RequestDone(request.id, obs::RequestOutcome::kExpired, now);
  }
  if (closed_) {
    // The issuing process moves on exactly as it would after a completion.
    if (config_.workload.think_time_seconds > 0) {
      thinking_.Schedule(now + workload_.NextThinkTime(), 0);
    } else {
      IssueClosedRequest(now, committed_head);
    }
  }
}

void Simulator::ProcessExpiriesUpTo(double until, Position committed_head) {
  if (!deadlines_possible_ && !timeline_.has_value()) return;
  if (deadlines_possible_) {
    while (auto event = expiries_.PopUntil(until)) {
      // Timeline samples due before this expiry read the queue state as it
      // was at their sample time, keeping rows in strict time order.
      if (timeline_.has_value()) timeline_->SampleUpTo(event->first);
      // Stale events (the request completed, failed, or was evicted by an
      // earlier sweep) are skipped; requests currently inside the active
      // sweep are left to finish and their event simply expires unused.
      if (!deadline_live_.contains(event->second)) continue;
      for (const Request& request : scheduler_->EvictExpired(event->first)) {
        ExpireRequest(request, event->first, committed_head);
      }
    }
  }
  // This runs before every clock advance (each run-loop path delivers
  // arrivals up to its end time first), so sampling here covers the whole
  // run; a sample due exactly at `until` fires before that event settles.
  if (timeline_.has_value()) timeline_->SampleUpTo(until);
}

void Simulator::IssueClosedRequest(double now, Position committed_head) {
  // Draw until a servable request is issued. A draw for a block whose
  // every replica is dead completes instantly with an error (counted as
  // issued + failed, so conservation holds) and the process retries; once
  // the whole archive is lost the process stops issuing.
  while (true) {
    const Request request = workload_.NextRequest(now);
    metrics_.OnArrival(now);
    if (DeliverOrFail(request, committed_head)) return;
    if (!catalog_->HasAnyLive()) return;
  }
}

void Simulator::FailRequest(const Request& request) {
  if (deadlines_possible_) deadline_live_.erase(request.id);
  metrics_.OnFailure(request.arrival_time, clock_);
  if (recorder_.has_value()) {
    recorder_->RequestDone(request.id, obs::RequestOutcome::kFailed, clock_);
  }
  if (closed_) {
    // The issuing process continues: it issues its next request,
    // immediately or after a think period, exactly as on completion.
    if (config_.workload.think_time_seconds > 0) {
      thinking_.Schedule(clock_ + workload_.NextThinkTime(), 0);
    } else {
      IssueClosedRequest(clock_, jukebox_->head());
    }
  }
}

void Simulator::Requeue(const Request& request) {
  if (request.cls == RequestClass::kBackground) {
    // A displaced repair source read goes back to the repair manager,
    // which re-issues or abandons it; it never counts as a failover.
    if (repair_.has_value()) repair_->OnBackgroundDisplaced(request, clock_);
    return;
  }
  if (request.deadline > 0 && request.deadline <= clock_) {
    // The fault drained a sweep holding an already-past-deadline request
    // (its expiry event fired while it was committed and was skipped).
    // Re-enqueueing it would lose the expiry forever, so settle it now.
    ExpireRequest(request, clock_, jukebox_->head());
    return;
  }
  if (catalog_->HasLiveReplica(request.block)) {
    ++fault_stats_.failovers;
    if (recorder_.has_value()) recorder_->RequestFailover(request.id, clock_);
    scheduler_->OnArrival(request, jukebox_->head());
  } else {
    FailRequest(request);
  }
}

void Simulator::HandlePermanentError(const ServiceEntry& entry,
                                     bool whole_tape) {
  const TapeId tape = jukebox_->mounted_tape();
  ++fault_stats_.permanent_media_errors;
  if (whole_tape) {
    ++fault_stats_.dead_tapes;
    std::vector<BlockId> newly_masked;
    fault_stats_.replicas_masked +=
        mutable_catalog_->MarkTapeDead(tape, &newly_masked);
    for (const BlockId block : newly_masked) {
      if (!catalog_->HasLiveReplica(block)) ++fault_stats_.blocks_lost;
    }
    // Every remaining sweep entry read this tape; drain them and fail each
    // request over to a surviving replica.
    for (const Request& request : scheduler_->DrainSweep()) {
      Requeue(request);
    }
    if (repair_.has_value()) repair_->OnTapeDead(tape, newly_masked, clock_);
  } else if (mutable_catalog_->MarkReplicaDead(entry.block, tape)) {
    ++fault_stats_.replicas_masked;
    if (!catalog_->HasLiveReplica(entry.block)) ++fault_stats_.blocks_lost;
    if (repair_.has_value()) repair_->OnReplicaDead(entry.block, tape, clock_);
  }
  // The requests this read was serving fail over (or fail outright).
  for (const Request& request : entry.requests) Requeue(request);
  // Pending requests whose last replica just died can never be served.
  EvictUnservable();
}

void Simulator::EvictUnservable() {
  for (const Request& request : scheduler_->EvictUnservablePending()) {
    if (request.cls == RequestClass::kBackground) {
      if (repair_.has_value()) repair_->OnBackgroundEvicted(request.block);
    } else {
      FailRequest(request);
    }
  }
}

void Simulator::AdvancePastDriveRepairs() {
  if (!drive_faults_) return;
  // Failure epochs are processed lazily, when the drive next starts work:
  // each one the clock has passed charges a repair interval during which
  // the drive is down. Arrivals keep flowing while it is repaired.
  while (next_drive_failure_ <= clock_) {
    const double repair = faults_->NextRepairTime();
    ++fault_stats_.drive_failures;
    fault_stats_.drive_repair_seconds += repair;
    const double end = clock_ + repair;
    DeliverArrivalsUpTo(end, jukebox_->head());
    clock_ = end;
    accounting_.ChargeTo(0, obs::DriveActivity::kDown, clock_);
    MaybeMarkWarmup();
    next_drive_failure_ = clock_ + faults_->NextFailureGap();
  }
}

void Simulator::DeliverArrivalsUpTo(double until, Position committed_head) {
  // Closed-model think-time expirations: the process issues its next
  // request when its think period ends.
  while (auto expired = thinking_.PopUntil(until)) {
    ProcessExpiriesUpTo(expired->first, committed_head);
    if (faults_.has_value()) {
      IssueClosedRequest(expired->first, committed_head);
    } else {
      const Request request = workload_.NextRequest(expired->first);
      metrics_.OnArrival(expired->first);
      if (recorder_.has_value()) {
        recorder_->RequestArrived(request.id, request.block,
                                  /*background=*/false, expired->first);
      }
      scheduler_->OnArrival(request, committed_head);
      TrackDeadline(request);
    }
  }
  if (trace_mode_) {
    while (trace_pos_ < trace_.size() &&
           trace_[trace_pos_].arrival_time <= until) {
      const Request& request = trace_[trace_pos_++];
      ProcessExpiriesUpTo(request.arrival_time, committed_head);
      if (admission_.has_value() &&
          !admission_->Admit(request.tenant, request.arrival_time,
                             metrics_.outstanding_now())) {
        metrics_.OnShed(request.arrival_time, request.tenant);
        if (recorder_.has_value()) {
          recorder_->RequestArrived(request.id, request.block,
                                    /*background=*/false,
                                    request.arrival_time);
          recorder_->RequestDone(request.id, obs::RequestOutcome::kShed,
                                 request.arrival_time);
        }
        continue;
      }
      metrics_.OnArrival(request.arrival_time);
      if (recorder_.has_value()) {
        recorder_->RequestArrived(request.id, request.block,
                                  /*background=*/false,
                                  request.arrival_time);
      }
      scheduler_->OnArrival(request, committed_head);
      TrackDeadline(request);
    }
    next_arrival_ = trace_pos_ < trace_.size()
                        ? trace_[trace_pos_].arrival_time
                        : config_.duration_seconds + 1;
    ProcessExpiriesUpTo(until, committed_head);
    return;
  }
  if (config_.workload.model != QueuingModel::kOpen) {
    ProcessExpiriesUpTo(until, committed_head);
    return;
  }
  while (next_arrival_ <= until) {
    ProcessExpiriesUpTo(next_arrival_, committed_head);
    const Request request = workload_.NextRequest(next_arrival_);
    if (admission_.has_value() &&
        !admission_->Admit(request.tenant, next_arrival_,
                           metrics_.outstanding_now())) {
      metrics_.OnShed(next_arrival_, request.tenant);
      if (recorder_.has_value()) {
        recorder_->RequestArrived(request.id, request.block,
                                  /*background=*/false, next_arrival_);
        recorder_->RequestDone(request.id, obs::RequestOutcome::kShed,
                               next_arrival_);
      }
    } else {
      metrics_.OnArrival(next_arrival_);
      DeliverOrFail(request, committed_head);
    }
    next_arrival_ += workload_.NextArrivalGap(next_arrival_);
  }
  ProcessExpiriesUpTo(until, committed_head);
}

void Simulator::TraceSweepContents(TapeId tape) {
  if (!recorder_.has_value() || !recorder_->trace_enabled()) return;
  const Sweep& sweep = scheduler_->sweep();
  for (const ServiceEntry& entry : sweep.forward()) {
    for (const Request& request : entry.requests) {
      recorder_->RequestScheduled(request.id, tape, clock_);
    }
  }
  for (const ServiceEntry& entry : sweep.reverse()) {
    for (const Request& request : entry.requests) {
      recorder_->RequestScheduled(request.id, tape, clock_);
    }
  }
}

void Simulator::SetupTimeline() {
  if (!config_.timeline.enabled()) return;
  timeline_.emplace(config_.timeline);
  obs::StatRegistry* reg = timeline_->registry();
  reg->AddGauge("queue_depth", [this] {
    return static_cast<double>(scheduler_->pending_size());
  });
  reg->AddGauge("sweep_depth", [this] {
    return static_cast<double>(scheduler_->sweep_size());
  });
  reg->AddGauge("shed_level", [this] {
    return admission_.has_value() ? static_cast<double>(admission_->shed_level())
                                  : 0.0;
  });
  reg->AddGauge("live_replica_fraction", [this] {
    const int64_t total = catalog_->TotalCopies();
    if (total <= 0) return 1.0;
    return static_cast<double>(total - catalog_->dead_replicas()) /
           static_cast<double>(total);
  });
  reg->AddGauge("repair_backlog", [this] {
    return repair_.has_value()
               ? static_cast<double>(repair_->outstanding_tasks())
               : 0.0;
  });
  metrics_.AttachTimeline(reg);
  for (int s = 0; s < obs::kNumDriveActivities; ++s) {
    const std::string name =
        std::string("state_") +
        obs::DriveActivityName(static_cast<obs::DriveActivity>(s));
    reg->AddAccum(name, [this, s] {
      double total = 0;
      for (const obs::DriveTimeInState& drive : accounting_.per_drive()) {
        total += drive.seconds[static_cast<size_t>(s)];
      }
      return total;
    });
  }
}

void Simulator::MaybeMarkWarmup() {
  if (!warmup_marked_ && clock_ >= config_.warmup_seconds) {
    warmup_marked_ = true;
    metrics_.MarkWarmupBoundary(jukebox_->counters());
  }
}

SimulationResult Simulator::Run() {
  TJ_CHECK(!ran_) << "Simulator::Run may be called once";
  ran_ = true;

  const bool closed =
      !trace_mode_ && config_.workload.model == QueuingModel::kClosed;
  closed_ = closed;
  if (trace_mode_) {
    next_arrival_ = trace_.empty() ? config_.duration_seconds + 1
                                   : trace_.front().arrival_time;
  } else if (closed) {
    // A fixed population of I/O-bound processes, all requesting at t = 0.
    for (int64_t i = 0; i < config_.workload.queue_length; ++i) {
      const Request request = workload_.NextRequest(0.0);
      metrics_.OnArrival(0.0);
      if (recorder_.has_value()) {
        recorder_->RequestArrived(request.id, request.block,
                                  /*background=*/false, 0.0);
      }
      scheduler_->OnArrival(request, jukebox_->head());
      TrackDeadline(request);
    }
  } else {
    next_arrival_ = workload_.NextArrivalGap(0.0);
  }
  MaybeMarkWarmup();

  while (clock_ < config_.duration_seconds) {
    if (scheduler_->sweep_empty()) {
      if (!scheduler_->HasWork()) {
        // Step 4: the drive is idle. With repair enabled, background
        // scrub/repair quanta use the idle drive until the next client
        // event; each quantum is at most one block, so arrivals preempt
        // background work at block granularity.
        if (repair_.has_value()) {
          AdvancePastDriveRepairs();
          const double next_event =
              closed ? (thinking_.empty()
                            ? std::numeric_limits<double>::infinity()
                            : thinking_.NextTime())
                     : next_arrival_;
          const double next_work = repair_->NextIdleWorkTime(clock_);
          if (next_work <= clock_ && clock_ < config_.duration_seconds) {
            const RepairManager::Quantum quantum =
                repair_->IdleQuantum(clock_);
            const double end = clock_ + quantum.seconds;
            DeliverArrivalsUpTo(end, jukebox_->head());
            clock_ = end;
            accounting_.ChargeTo(0, obs::DriveActivity::kBackground, clock_);
            MaybeMarkWarmup();
            if (quantum.masked_replicas) EvictUnservable();
            continue;
          }
          if (next_work < next_event &&
              next_work <= config_.duration_seconds) {
            // Background work is due before the next client event: wake
            // for it (e.g. a scrub pass or a refilled token bucket).
            clock_ = next_work;
            accounting_.ChargeTo(0, obs::DriveActivity::kIdle, clock_);
            DeliverArrivalsUpTo(clock_, jukebox_->head());
            MaybeMarkWarmup();
            continue;
          }
        }
        // Wait for an arrival (or a thinking process to wake).
        if (closed) {
          if (thinking_.empty() ||
              thinking_.NextTime() > config_.duration_seconds) {
            break;
          }
          clock_ = thinking_.NextTime();
          accounting_.ChargeTo(0, obs::DriveActivity::kIdle, clock_);
          DeliverArrivalsUpTo(clock_, jukebox_->head());
          MaybeMarkWarmup();
          continue;
        }
        if (next_arrival_ > config_.duration_seconds) break;
        clock_ = next_arrival_;
        accounting_.ChargeTo(0, obs::DriveActivity::kIdle, clock_);
        DeliverArrivalsUpTo(clock_, jukebox_->head());
        MaybeMarkWarmup();
        continue;
      }
      // Step 1: major reschedule; step 2: switch if needed. A failed drive
      // must be repaired before it can work again.
      AdvancePastDriveRepairs();
      if (repair_.has_value()) {
        // Tape-switch boundary: flush staged repair writes targeting the
        // mounted tape before the schedule switches away from it.
        const double flush = repair_->AtSweepBoundary(clock_);
        if (flush > 0) {
          const double end = clock_ + flush;
          DeliverArrivalsUpTo(end, jukebox_->head());
          clock_ = end;
          accounting_.ChargeTo(0, obs::DriveActivity::kBackground, clock_);
          MaybeMarkWarmup();
        }
      }
      if (recorder_.has_value()) recorder_->SetNow(clock_);
      const TapeId tape = scheduler_->MajorReschedule();
      TJ_CHECK_NE(tape, kInvalidTape)
          << "scheduler reported work but produced no schedule";
      TraceSweepContents(tape);
      SwitchBreakdown breakdown;
      double switch_seconds = jukebox_->SwitchTo(tape, &breakdown);
      double robot_seconds = breakdown.robot;
      if (faults_.has_value() && switch_seconds > 0) {
        // Robot handoff faults: each slip repeats the robot move.
        const int slips = faults_->NextRobotFaults();
        if (slips > 0) {
          const double extra = jukebox_->ChargeRobotRetries(slips);
          fault_stats_.robot_faults += slips;
          fault_stats_.robot_retry_seconds += extra;
          switch_seconds += extra;
          robot_seconds += extra;
        }
      }
      const double end = clock_ + switch_seconds;
      // During the switch the committed head is the post-load position.
      DeliverArrivalsUpTo(end, jukebox_->head());
      // Charge the switch components in temporal order (rewind, eject,
      // robot + retries, load); the final segment is charged to the
      // absolute end so the cursor tracks the clock exactly.
      double t = clock_ + breakdown.rewind;
      accounting_.ChargeTo(0, obs::DriveActivity::kRewinding, t);
      t += breakdown.eject;
      accounting_.ChargeTo(0, obs::DriveActivity::kSwitching, t);
      t += robot_seconds;
      accounting_.ChargeTo(0, obs::DriveActivity::kRobot, t);
      accounting_.ChargeTo(0, obs::DriveActivity::kSwitching, end);
      clock_ = end;
      MaybeMarkWarmup();
      continue;
    }

    // Step 3: execute the next service-list entry.
    AdvancePastDriveRepairs();
    const std::optional<ServiceEntry> entry = scheduler_->PopNext();
    TJ_CHECK(entry.has_value());
    ReadBreakdown read_breakdown;
    double op_seconds = jukebox_->ReadBlockAt(entry->position,
                                              &read_breakdown);
    // Locate/read segments of every attempt, in temporal order.
    double op_t = clock_ + read_breakdown.locate;
    accounting_.ChargeTo(0, obs::DriveActivity::kLocating, op_t);
    op_t += read_breakdown.read;
    accounting_.ChargeTo(0, obs::DriveActivity::kReading, op_t);
    ReadOutcome outcome;
    if (faults_.has_value()) {
      outcome = faults_->NextReadOutcome();
      // Each transient retry waits out its (jittered, exponentially
      // growing) backoff, then locates back to the block start and
      // re-reads. Backoff waits are charged as locating time.
      for (int r = 0; r < outcome.retries; ++r) {
        const double backoff = faults_->NextRetryBackoff(r);
        if (backoff > 0) {
          op_seconds += backoff;
          op_t += backoff;
          accounting_.ChargeTo(0, obs::DriveActivity::kLocating, op_t);
        }
        op_seconds += jukebox_->ReadBlockAt(entry->position,
                                            &read_breakdown);
        op_t += read_breakdown.locate;
        accounting_.ChargeTo(0, obs::DriveActivity::kLocating, op_t);
        op_t += read_breakdown.read;
        accounting_.ChargeTo(0, obs::DriveActivity::kReading, op_t);
      }
      fault_stats_.transient_read_errors +=
          outcome.retries + (outcome.escalated ? 1 : 0);
      fault_stats_.read_retries += outcome.retries;
      if (outcome.escalated) ++fault_stats_.reads_escalated;
    }
    const double end = clock_ + op_seconds;
    // Arrivals during the operation see the head the drive is committed to.
    DeliverArrivalsUpTo(end, jukebox_->head());
    // Absorb any accumulation drift between the per-segment charges and
    // op_seconds into the final reading segment.
    accounting_.ChargeTo(0, obs::DriveActivity::kReading, end);
    clock_ = end;
    MaybeMarkWarmup();
    if (recorder_.has_value() && outcome.retries > 0) {
      for (const Request& request : entry->requests) {
        recorder_->RequestRetry(request.id, outcome.retries, clock_);
      }
    }

    if (outcome.permanent_error) {
      // The media under this read is gone: mask it and fail the requests
      // over to surviving replicas (or fail them outright).
      HandlePermanentError(*entry, outcome.whole_tape);
      continue;
    }

    for (const Request& request : entry->requests) {
      if (request.cls == RequestClass::kBackground) {
        // A repair source read finished: its payload is buffered. Not a
        // client completion — no metrics, no closed-model reissue.
        if (recorder_.has_value()) {
          recorder_->RequestDone(request.id,
                                 obs::RequestOutcome::kCompleted, clock_);
        }
        repair_->OnSourceReadComplete(request.block, clock_);
        continue;
      }
      if (faults_.has_value() &&
          catalog_->LiveReplicaCount(request.block) <
              static_cast<int64_t>(
                  catalog_->ReplicasOf(request.block).size())) {
        ++fault_stats_.degraded_reads;
      }
      metrics_.OnCompletion(request.arrival_time, clock_, request.tenant);
      if (admission_.has_value()) {
        admission_->OnCompletion(request.tenant,
                                 clock_ - request.arrival_time, clock_);
      }
      if (deadlines_possible_) deadline_live_.erase(request.id);
      if (recorder_.has_value()) {
        recorder_->RequestDone(request.id,
                               obs::RequestOutcome::kCompleted, clock_);
      }
      if (closed) {
        // The completing process issues its next request, immediately
        // (the paper's I/O-bound processes) or after a think period.
        if (config_.workload.think_time_seconds > 0) {
          thinking_.Schedule(clock_ + workload_.NextThinkTime(), 0);
        } else if (faults_.has_value()) {
          IssueClosedRequest(clock_, jukebox_->head());
        } else {
          const Request next = workload_.NextRequest(clock_);
          metrics_.OnArrival(clock_);
          if (recorder_.has_value()) {
            recorder_->RequestArrived(next.id, next.block,
                                      /*background=*/false, clock_);
          }
          scheduler_->OnArrival(next, jukebox_->head());
          TrackDeadline(next);
        }
      }
    }
  }
  MaybeMarkWarmup();
  accounting_.FinishAt(clock_);
  SimulationResult result =
      metrics_.Finalize(clock_, jukebox_->counters(), &accounting_);
  if (faults_.has_value()) {
    result.fault_injection = true;
    result.faults = fault_stats_;
    const int64_t total = catalog_->TotalCopies();
    if (total > 0) {
      result.live_replica_fraction =
          static_cast<double>(total - catalog_->dead_replicas()) /
          static_cast<double>(total);
    }
  }
  if (repair_.has_value()) {
    result.repair_enabled = true;
    result.repair = repair_->Finalize();
  }
  if (timeline_.has_value()) {
    // After accounting_.FinishAt so the final row's time-in-state deltas
    // cover the whole run. Timeline output must never fail the run.
    const Status timeline_status = timeline_->FinishAt(clock_);
    if (!timeline_status.ok()) {
      std::cerr << "warning: timeline output failed: "
                << timeline_status.ToString() << '\n';
    }
  }
  if (recorder_.has_value()) {
    const Status obs_status = recorder_->Finalize(clock_);
    if (!obs_status.ok()) {
      // Trace output must never fail the run itself.
      std::cerr << "warning: observability output failed: "
                << obs_status.ToString() << '\n';
    }
  }
  return result;
}

}  // namespace tapejuke
