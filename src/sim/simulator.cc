#include "sim/simulator.h"

#include "util/check.h"

namespace tapejuke {

Status SimulationConfig::Validate() const {
  if (duration_seconds <= 0) {
    return Status::InvalidArgument("duration must be positive");
  }
  if (warmup_seconds < 0 || warmup_seconds >= duration_seconds) {
    return Status::InvalidArgument(
        "warmup must be in [0, duration_seconds)");
  }
  return workload.Validate();
}

Simulator::Simulator(Jukebox* jukebox, const Catalog* catalog,
                     Scheduler* scheduler, const SimulationConfig& config)
    : jukebox_(jukebox),
      catalog_(catalog),
      scheduler_(scheduler),
      config_(config),
      workload_(catalog, config.workload),
      metrics_(config.warmup_seconds, jukebox->config().block_size_mb) {
  TJ_CHECK(jukebox != nullptr);
  TJ_CHECK(catalog != nullptr);
  TJ_CHECK(scheduler != nullptr);
  const Status status = config.Validate();
  TJ_CHECK(status.ok()) << status.ToString();
}

Simulator::Simulator(Jukebox* jukebox, const Catalog* catalog,
                     Scheduler* scheduler, const SimulationConfig& config,
                     std::vector<Request> trace)
    : Simulator(jukebox, catalog, scheduler, config) {
  trace_mode_ = true;
  trace_ = std::move(trace);
  RequestId next_id = 0;
  double previous = 0;
  for (Request& request : trace_) {
    TJ_CHECK_GE(request.arrival_time, previous)
        << "trace arrivals must be time-ordered";
    previous = request.arrival_time;
    TJ_CHECK(request.block >= 0 && request.block < catalog->num_blocks())
        << "trace references unknown block" << request.block;
    request.id = next_id++;
  }
}

void Simulator::DeliverArrivalsUpTo(double until, Position committed_head) {
  // Closed-model think-time expirations: the process issues its next
  // request when its think period ends.
  while (auto expired = thinking_.PopUntil(until)) {
    const Request request = workload_.NextRequest(expired->first);
    metrics_.OnArrival(expired->first);
    scheduler_->OnArrival(request, committed_head);
  }
  if (trace_mode_) {
    while (trace_pos_ < trace_.size() &&
           trace_[trace_pos_].arrival_time <= until) {
      const Request& request = trace_[trace_pos_++];
      metrics_.OnArrival(request.arrival_time);
      scheduler_->OnArrival(request, committed_head);
    }
    next_arrival_ = trace_pos_ < trace_.size()
                        ? trace_[trace_pos_].arrival_time
                        : config_.duration_seconds + 1;
    return;
  }
  if (config_.workload.model != QueuingModel::kOpen) return;
  while (next_arrival_ <= until) {
    const Request request = workload_.NextRequest(next_arrival_);
    metrics_.OnArrival(next_arrival_);
    scheduler_->OnArrival(request, committed_head);
    next_arrival_ += workload_.NextInterarrival();
  }
}

void Simulator::MaybeMarkWarmup() {
  if (!warmup_marked_ && clock_ >= config_.warmup_seconds) {
    warmup_marked_ = true;
    metrics_.MarkWarmupBoundary(jukebox_->counters());
  }
}

SimulationResult Simulator::Run() {
  TJ_CHECK(!ran_) << "Simulator::Run may be called once";
  ran_ = true;

  const bool closed =
      !trace_mode_ && config_.workload.model == QueuingModel::kClosed;
  if (trace_mode_) {
    next_arrival_ = trace_.empty() ? config_.duration_seconds + 1
                                   : trace_.front().arrival_time;
  } else if (closed) {
    // A fixed population of I/O-bound processes, all requesting at t = 0.
    for (int64_t i = 0; i < config_.workload.queue_length; ++i) {
      const Request request = workload_.NextRequest(0.0);
      metrics_.OnArrival(0.0);
      scheduler_->OnArrival(request, jukebox_->head());
    }
  } else {
    next_arrival_ = workload_.NextInterarrival();
  }
  MaybeMarkWarmup();

  while (clock_ < config_.duration_seconds) {
    if (scheduler_->sweep_empty()) {
      if (!scheduler_->HasWork()) {
        // Step 4: wait for an arrival (or a thinking process to wake).
        if (closed) {
          if (thinking_.empty() ||
              thinking_.NextTime() > config_.duration_seconds) {
            break;
          }
          clock_ = thinking_.NextTime();
          DeliverArrivalsUpTo(clock_, jukebox_->head());
          MaybeMarkWarmup();
          continue;
        }
        if (next_arrival_ > config_.duration_seconds) break;
        clock_ = next_arrival_;
        DeliverArrivalsUpTo(clock_, jukebox_->head());
        MaybeMarkWarmup();
        continue;
      }
      // Step 1: major reschedule; step 2: switch if needed.
      const TapeId tape = scheduler_->MajorReschedule();
      TJ_CHECK_NE(tape, kInvalidTape)
          << "scheduler reported work but produced no schedule";
      const double switch_seconds = jukebox_->SwitchTo(tape);
      const double end = clock_ + switch_seconds;
      // During the switch the committed head is the post-load position.
      DeliverArrivalsUpTo(end, jukebox_->head());
      clock_ = end;
      MaybeMarkWarmup();
      continue;
    }

    // Step 3: execute the next service-list entry.
    const std::optional<ServiceEntry> entry = scheduler_->PopNext();
    TJ_CHECK(entry.has_value());
    const double op_seconds = jukebox_->ReadBlockAt(entry->position);
    const double end = clock_ + op_seconds;
    // Arrivals during the operation see the head the drive is committed to.
    DeliverArrivalsUpTo(end, jukebox_->head());
    clock_ = end;
    MaybeMarkWarmup();

    for (const Request& request : entry->requests) {
      metrics_.OnCompletion(request.arrival_time, clock_);
      if (closed) {
        // The completing process issues its next request, immediately
        // (the paper's I/O-bound processes) or after a think period.
        if (config_.workload.think_time_seconds > 0) {
          thinking_.Schedule(clock_ + workload_.NextThinkTime(), 0);
        } else {
          const Request next = workload_.NextRequest(clock_);
          metrics_.OnArrival(clock_);
          scheduler_->OnArrival(next, jukebox_->head());
        }
      }
    }
  }
  MaybeMarkWarmup();
  return metrics_.Finalize(clock_, jukebox_->counters());
}

}  // namespace tapejuke
