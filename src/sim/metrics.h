// Simulation metrics: throughput, response delay, and activity accounting.
//
// All statistics exclude a configurable warm-up period so steady-state
// numbers are not polluted by the empty-system start (the paper's runs are
// long enough — 10M simulated seconds — that warm-up hardly matters there;
// ours are shorter, so we trim it explicitly).

#ifndef TAPEJUKE_SIM_METRICS_H_
#define TAPEJUKE_SIM_METRICS_H_

#include <cstdint>
#include <vector>

#include "obs/time_in_state.h"
#include "obs/timeline.h"
#include "sim/fault_model.h"
#include "sim/repair.h"
#include "tape/jukebox.h"
#include "util/stats.h"

namespace tapejuke {

/// Per-tenant-class steady-state results (overload runs only). Counts are
/// post-warm-up, like the top-level completed_requests.
struct TenantClassResult {
  int64_t completed = 0;
  int64_t expired = 0;
  int64_t shed = 0;
  double mean_delay_seconds = 0;
  double p99_delay_seconds = 0;
  /// Post-warm-up completions per minute. Expired and shed requests are
  /// excluded — this is goodput, the number the SLO protects.
  double goodput_per_minute = 0;
};

/// Steady-state results of one simulation run.
struct SimulationResult {
  double simulated_seconds = 0;  ///< total, including warm-up
  double measured_seconds = 0;   ///< the post-warm-up window
  int64_t completed_requests = 0;

  double throughput_mb_per_s = 0;
  double throughput_kb_per_s = 0;  ///< the unit of paper Fig. 3
  double requests_per_minute = 0;

  double mean_delay_seconds = 0;
  double mean_delay_minutes = 0;
  double delay_stddev_seconds = 0;
  double p50_delay_seconds = 0;
  double p95_delay_seconds = 0;
  double p99_delay_seconds = 0;
  double max_delay_seconds = 0;
  /// Completions whose delay exceeded the histogram range (200000 s). When
  /// a quantile lands in this mass it reports max_delay_seconds instead of
  /// saturating at the histogram upper bound; a nonzero count flags that
  /// the p50/p95/p99 interpolation no longer resolves the far tail.
  int64_t delay_hist_overflow = 0;

  /// Time-averaged number of outstanding requests (arrived, not complete).
  double mean_outstanding = 0;

  /// Jukebox activity during the measurement window.
  JukeboxCounters counters;
  double tape_switches_per_hour = 0;
  /// Fraction of busy time spent transferring data (vs positioning).
  double transfer_utilization = 0;
  /// Whole-window utilization: drive-busy seconds / (measured seconds x
  /// drive count), from the time-in-state accounting. 0 for runs that do
  /// not collect it (farm aggregation, write path, lifecycle).
  double drive_utilization = 0;
  /// Per-drive seconds in each activity over the measurement window
  /// (obs::DriveActivity order). Each drive's Total() equals
  /// measured_seconds, TJ_CHECKed in Finalize. Empty when not collected.
  std::vector<obs::DriveTimeInState> time_in_state;

  /// Fault injection. The fields below are populated (and serialized) only
  /// when the run had fault injection enabled; `fault_injection` stays
  /// false otherwise so fault-free results are bit-identical to builds
  /// without the fault subsystem.
  bool fault_injection = false;
  /// Whole-run request conservation (not warm-up trimmed):
  /// completed_total + failed_requests + outstanding_at_end ==
  /// issued_requests in every run, fault injection or not.
  int64_t issued_requests = 0;
  int64_t completed_total = 0;
  /// Requests completed with an error because every replica of their block
  /// was lost to permanent media errors.
  int64_t failed_requests = 0;
  int64_t outstanding_at_end = 0;
  /// completed_total / (completed_total + failed_requests); 1.0 when
  /// nothing failed.
  double availability = 1.0;
  /// Live catalog replicas at end of run / total replicas (1.0 when no
  /// permanent error ever masked a replica, or without fault injection).
  double live_replica_fraction = 1.0;
  FaultStats faults;

  /// Scrub/repair. Populated (and serialized) only when the run had the
  /// repair subsystem enabled.
  bool repair_enabled = false;
  RepairStats repair;

  /// Overload protection. Populated (and serialized) only when the run
  /// used tenant classes, deadlines, or admission control; stays false
  /// otherwise so overload-free results are byte-identical to builds
  /// without the subsystem. The conservation identity extends to
  /// completed_total + failed + expired + shed + outstanding == issued.
  bool overload_enabled = false;
  int64_t expired_requests = 0;  ///< whole-run, not warm-up trimmed
  int64_t shed_requests = 0;     ///< whole-run, not warm-up trimmed
  std::vector<TenantClassResult> tenant_classes;
};

/// Accumulates completions and outstanding-population area during a run.
class MetricsCollector {
 public:
  /// Statistics cover completions at times > `warmup_seconds`.
  MetricsCollector(double warmup_seconds, int64_t block_size_mb);

  /// Arms per-tenant-class accounting (overload runs). Call once, before
  /// any event; completions/expiries/sheds then also accrue to the class
  /// passed via their `tenant` argument.
  void ConfigureClasses(int num_classes);

  /// Registers this collector's probes into a timeline registry: the
  /// whole-run conservation counters (issued/completed/failed/expired/
  /// shed), the outstanding gauge, a windowed whole-run delay histogram,
  /// and — when classes are configured — per-class counters (post-warm-up,
  /// like the end-of-run TenantClassResult counts) plus per-class delay
  /// windows. Call after ConfigureClasses and before the first sample.
  void AttachTimeline(obs::StatRegistry* registry);

  /// Records a request arrival at time `now`.
  void OnArrival(double now);

  /// Records a completed request that arrived at `arrival` and finished at
  /// `now`.
  void OnCompletion(double arrival, double now, int tenant = 0);

  /// Records a request that completed with an error at `now` (every
  /// replica of its block was lost). Excluded from throughput and delay
  /// statistics; counted in the whole-run conservation totals.
  void OnFailure(double arrival, double now);

  /// Records a queued request expiring at `now` (its deadline passed
  /// before service). Removed from the outstanding population; excluded
  /// from throughput/delay statistics; counted as expired in the extended
  /// conservation identity.
  void OnExpired(double arrival, double now, int tenant = 0);

  /// Records an arrival refused by admission control at `now`. The
  /// request never joins the outstanding population: it counts as issued
  /// and shed, keeping the extended conservation identity exact.
  void OnShed(double now, int tenant = 0);

  /// Whole-run totals (not warm-up trimmed), for conservation accounting.
  int64_t issued_total() const { return issued_total_; }
  int64_t completed_total() const { return completed_total_; }
  int64_t failed_total() const { return failed_total_; }
  int64_t expired_total() const { return expired_total_; }
  int64_t shed_total() const { return shed_total_; }
  int64_t outstanding_now() const { return outstanding_; }

  /// Snapshot of the jukebox counters at the warm-up boundary; call once
  /// when the clock first passes the warm-up time.
  void MarkWarmupBoundary(const JukeboxCounters& counters);

  /// Extends the outstanding-population integral to `now` without any
  /// arrival or completion (used to close a run's area at its final clock
  /// before merging collectors that stopped at different times).
  void AccumulateTo(double now) { AccumulateOutstandingArea(now); }

  /// The post-warm-up integral of outstanding requests dt accumulated so
  /// far (divide by the measurement window for the time-averaged mean).
  double outstanding_area() const { return outstanding_area_; }

  /// Folds another collector into this one: delay statistics, histograms,
  /// whole-run totals, outstanding areas, and warm-up counter snapshots
  /// all sum. Both collectors must share the warm-up boundary; a collector
  /// whose run never reached it contributes a zero counter baseline. Merge
  /// order is fixed by the caller, so merged floating-point results are
  /// deterministic.
  void Merge(const MetricsCollector& other);

  /// Finalizes the run at `end_time` with the final jukebox counters.
  /// When `accounting` is non-null its per-drive totals are folded into
  /// the result (time_in_state, drive_utilization) after TJ_CHECKing the
  /// per-drive identity sum(states) == measured_seconds; the caller must
  /// have called accounting->FinishAt(end_time) first.
  SimulationResult Finalize(
      double end_time, const JukeboxCounters& final_counters,
      const obs::TimeInStateAccounting* accounting = nullptr) const;

  double warmup_seconds() const { return warmup_seconds_; }

 private:
  /// Per-tenant-class accumulators (post-warm-up, like completed_).
  struct ClassAccum {
    ClassAccum(double lo, double hi, int buckets)
        : histogram(lo, hi, buckets) {}
    RunningStat delay;
    Histogram histogram;
    int64_t completed = 0;
    int64_t expired = 0;
    int64_t shed = 0;
  };

  void AccumulateOutstandingArea(double now);

  double warmup_seconds_;
  int64_t block_size_mb_;

  RunningStat delay_;
  Histogram delay_histogram_;
  int64_t completed_ = 0;
  std::vector<ClassAccum> classes_;

  int64_t issued_total_ = 0;
  int64_t completed_total_ = 0;
  int64_t failed_total_ = 0;
  int64_t expired_total_ = 0;
  int64_t shed_total_ = 0;

  int64_t outstanding_ = 0;
  double last_transition_ = 0;
  double outstanding_area_ = 0;  ///< integral of outstanding dt post warm-up

  bool warmup_marked_ = false;
  JukeboxCounters warmup_counters_;

  /// Non-owning timeline windows (owned by the sampler's StatRegistry),
  /// fed in OnCompletion regardless of warm-up — the timeline shows the
  /// whole run. Copies of a collector (the farm snapshots per-box
  /// collectors into its BoxOutput) carry stale pointers, but copies
  /// never observe events and Merge/Finalize never touch the windows, so
  /// the pointers are never dereferenced after the source run ends.
  obs::WindowStat* timeline_delay_ = nullptr;
  std::vector<obs::WindowStat*> timeline_class_delay_;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_SIM_METRICS_H_
