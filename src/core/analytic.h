// Closed-form performance model for the closed-queuing round-robin
// scheduler (extension).
//
// A companion to the simulator: predicts steady-state throughput and mean
// delay from first principles, so simulation results can be sanity-checked
// and rough capacity planning done without running anything.
//
// Model. In a closed system with population Q and round-robin tape
// selection, each cycle visits every tape once and serves every
// outstanding request exactly once (requests regenerate onto a random tape
// after completion), so the expected batch on tape t is Q * p_t with p_t
// the probability a request lands on t. One visit costs
//
//   switch (rewind from the previous sweep's end + eject + robot + load)
//   + sweep(b_t): b_t block reads plus forward locates covering the
//     span of the requested positions.
//
// The expected forward span of b draws from the per-tape position
// distribution F is E[max] = integral of (1 - F(x)^b); F is piecewise
// uniform (cold mass around a hot region of RH mass at start position SP).
// Throughput follows as X = Q / cycle_time and, by Little's law (zero
// think time), mean delay R = Q / X.
//
// The model targets the *static round-robin* algorithm (no on-the-fly
// insertions) without replication; the bench (ext_analytic) quantifies its
// accuracy against the simulator — within ~8% across moderate workloads.
// Known limitation: it charges one read per request, so it underpredicts
// throughput when many requests collide on the same hot block (very high
// skew at very long queues), where the simulator shares one read among
// them.

#ifndef TAPEJUKE_CORE_ANALYTIC_H_
#define TAPEJUKE_CORE_ANALYTIC_H_

#include "layout/placement.h"
#include "tape/jukebox.h"
#include "util/status.h"

namespace tapejuke {

/// Inputs to the closed-form model.
struct AnalyticInputs {
  JukeboxConfig jukebox;
  LayoutSpec layout;  ///< num_replicas must be 0
  double hot_request_fraction = 0.40;
  int64_t queue_length = 60;

  Status Validate() const;
};

/// Closed-form prediction.
struct AnalyticPrediction {
  double cycle_seconds = 0;        ///< one full round-robin pass
  double throughput_req_per_min = 0;
  double mean_delay_minutes = 0;   ///< Q / X by Little's law
  double mean_batch_per_visit = 0;
  double mean_span_mb = 0;         ///< expected forward span per sweep
};

/// Evaluates the model. Fails on replicated layouts (the batching algebra
/// assumes one copy per block).
StatusOr<AnalyticPrediction> PredictRoundRobin(const AnalyticInputs& inputs);

/// Expected maximum of `batch` i.i.d. draws from the per-tape position
/// distribution implied by (layout, RH) — the forward span one sweep must
/// traverse. Exposed for tests. `tape` selects the tape (only meaningful
/// for vertical layouts, where tape 0 is the hot tape).
double ExpectedSweepSpanMb(const AnalyticInputs& inputs, TapeId tape,
                           double batch);

}  // namespace tapejuke

#endif  // TAPEJUKE_CORE_ANALYTIC_H_
