// Jukebox-farm simulation (extension; the §4.8 cost-performance analysis
// in farm form).
//
// The paper's cost-performance argument assumes a farm of n jukeboxes with
// the total workload "spread evenly over the jukeboxes", so a replicated
// scheme (E times more jukeboxes) runs each jukebox at queue Q/E. The farm
// implements exactly that split, and exploits it: the boxes are mutually
// independent discrete-event simulations, so they shard across a thread
// pool (core/sweep_runner seed discipline) and each box runs on the full
// single- or multi-drive simulator — algorithms, fault injection, and
// (single-drive) scrub/repair all work per box.
//
// Workload split semantics (exact, not approximate):
//  * open model — uniformly routing a Poisson(lambda) stream over n boxes
//    is, by Poisson thinning, n independent Poisson(lambda/n) streams, so
//    each box runs an open workload with interarrival mean * n;
//  * closed model — the farm-wide population Q splits as floor(Q/n) per
//    box, +1 for the first Q mod n boxes (every box needs >= 1 process).
//    Earlier revisions migrated the population (a completion regenerated
//    onto a random box); the fixed split is what §4.8 assumes, and the
//    migration noise it discards was shown (ext_farm) to be statistically
//    negligible at the paper's operating points.
//  * Box i draws from workload seed DerivePointSeed(seed, i), so streams
//    are independent and the farm is reproducible from one seed at any
//    thread count — results are bit-identical at --threads 1 vs N.

#ifndef TAPEJUKE_CORE_FARM_H_
#define TAPEJUKE_CORE_FARM_H_

#include <memory>
#include <vector>

#include "core/experiment.h"
#include "sim/metrics.h"
#include "util/status.h"

namespace tapejuke {

/// Farm parameters: n identical jukeboxes, each built from the same
/// per-jukebox configuration (geometry, layout, algorithm). The workload
/// section describes the *farm-wide* load: closed queue_length is the total
/// population; open mean_interarrival_seconds is the farm-wide rate.
struct FarmConfig {
  int32_t num_jukeboxes = 2;
  /// Drives per box. 1 runs each box on the single-drive Simulator (every
  /// algorithm; faults and repair supported). > 1 runs each box on the
  /// MultiDriveSimulator (static/dynamic algorithms; faults supported,
  /// repair not).
  int32_t drives_per_jukebox = 1;
  /// Worker threads sharding the boxes; <= 0 selects hardware concurrency.
  /// Purely an execution knob: results are bit-identical at any value.
  int32_t threads = 0;
  ExperimentConfig per_jukebox;

  Status Validate() const;
};

/// Farm results: aggregate metrics plus per-jukebox breakdowns.
struct FarmResult {
  /// Exact merge of the per-box metrics collectors, finalized at the
  /// common farm end (the latest box clock). Fault and repair counters sum
  /// across boxes; time_in_state is per-run only and stays empty here.
  SimulationResult aggregate;
  /// Whole-run completions per box (not warm-up trimmed).
  std::vector<int64_t> completions_per_jukebox;
  /// Time-averaged outstanding requests per jukebox over the measurement
  /// window (area clipped at warm-up / divided by measured seconds, the
  /// same accounting as the aggregate — the per-box values sum to
  /// aggregate.mean_outstanding exactly).
  std::vector<double> mean_outstanding_per_jukebox;
};

/// Simulates the farm; deterministic in the workload seed at any thread
/// count.
class FarmSimulator {
 public:
  explicit FarmSimulator(const FarmConfig& config);

  /// Runs to completion; call once.
  FarmResult Run();

 private:
  struct BoxOutput;

  /// The experiment config box `index` actually runs: split workload,
  /// derived seed.
  ExperimentConfig BoxConfig(int32_t index) const;

  /// Runs one box to completion on its backend simulator.
  BoxOutput RunBox(int32_t index) const;

  /// When per_jukebox.sim.timeline names an output file, writes the
  /// per-box timelines ("out.boxN.jsonl") plus one merged farm timeline
  /// at the configured path: box rows interleaved in simulated-time order
  /// (stable in box order at equal times, so the file is byte-identical
  /// at any thread count) and a farm-wide summary line.
  void WriteTimelines(
      const std::vector<std::unique_ptr<BoxOutput>>& outputs) const;

  FarmConfig config_;
  bool ran_ = false;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_CORE_FARM_H_
