// Jukebox-farm simulation (extension; the §4.8 cost-performance analysis
// in farm form).
//
// The paper's cost-performance argument assumes a farm of n jukeboxes with
// the total workload "spread evenly over the jukeboxes", so a replicated
// scheme (E times more jukeboxes) runs each jukebox at queue Q/E. That is
// an approximation: in a real closed farm the population migrates — a
// completed request regenerates onto a *random* jukebox, so per-jukebox
// queue lengths fluctuate around Q/n rather than being pinned there. This
// simulator implements the real thing: n independent jukeboxes (each with
// its own tapes, drive, scheduler, and dataset partition) served by one
// shared request population (closed) or one Poisson stream (open), with
// uniform routing. The ext_farm bench quantifies how close the paper's
// fixed-split approximation is.

#ifndef TAPEJUKE_CORE_FARM_H_
#define TAPEJUKE_CORE_FARM_H_

#include <memory>
#include <vector>

#include "core/experiment.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "util/status.h"

namespace tapejuke {

/// Farm parameters: n identical jukeboxes, each built from the same
/// per-jukebox configuration (geometry, layout, algorithm). The workload
/// section describes the *farm-wide* load: closed queue_length is the total
/// population; open mean_interarrival_seconds is the farm-wide rate.
struct FarmConfig {
  int32_t num_jukeboxes = 2;
  ExperimentConfig per_jukebox;

  Status Validate() const;
};

/// Farm results: aggregate metrics plus per-jukebox breakdowns.
struct FarmResult {
  SimulationResult aggregate;
  std::vector<int64_t> completions_per_jukebox;
  /// Time-averaged outstanding requests per jukebox.
  std::vector<double> mean_outstanding_per_jukebox;
};

/// Simulates the farm; deterministic in the workload seed.
class FarmSimulator {
 public:
  explicit FarmSimulator(const FarmConfig& config);
  ~FarmSimulator();  // defined out of line: Box is incomplete here

  /// Runs to completion; call once.
  FarmResult Run();

 private:
  struct Box;  // one jukebox + scheduler + drive state

  void Arrive(const Request& request, double now);
  void Dispatch(int box_index, double now);

  FarmConfig config_;
  std::vector<std::unique_ptr<Box>> boxes_;
  EventQueue<int> events_;  ///< payload: jukebox index
  double clock_ = 0;
  double next_arrival_ = 0;
  bool ran_ = false;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_CORE_FARM_H_
