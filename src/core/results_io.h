// JSON serialization of sweep results (results/<bench>.json).
//
// Every bench emits, next to its text tables, a machine-readable JSON
// document holding the full configuration of every sweep point (all the
// paper knobs, including the derived per-point workload seed) and every
// SimulationResult field, so downstream tooling can re-plot or diff runs
// without re-simulating. See docs/RESULTS.md for the field-by-field
// schema.
//
// The writer itself (JsonWriter, util/json.h) is a small streaming JSON
// emitter — no third-party dependency — with deterministic output:
// doubles are printed in their shortest round-trip form (std::to_chars),
// keys are emitted in fixed order, and NaN/Inf become null. Identical
// results serialize to byte-identical JSON, which is what the
// thread-count invariance test compares.

#ifndef TAPEJUKE_CORE_RESULTS_IO_H_
#define TAPEJUKE_CORE_RESULTS_IO_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/farm.h"
#include "util/json.h"
#include "util/status.h"
#include "util/table.h"

namespace tapejuke {

// Serializers for the experiment types: each writes one JSON object (the
// writer must be positioned where a value is expected).
void WriteJson(JsonWriter* w, const JukeboxConfig& config);
void WriteJson(JsonWriter* w, const LayoutSpec& layout);
void WriteJson(JsonWriter* w, const WorkloadConfig& workload);
void WriteJson(JsonWriter* w, const FaultConfig& faults);
void WriteJson(JsonWriter* w, const FaultStats& stats);
void WriteJson(JsonWriter* w, const RepairConfig& repair);
void WriteJson(JsonWriter* w, const RepairStats& stats);
void WriteJson(JsonWriter* w, const SimulationConfig& sim);
void WriteJson(JsonWriter* w, const ExperimentConfig& config);
void WriteJson(JsonWriter* w, const JukeboxCounters& counters);
void WriteJson(JsonWriter* w, const SimulationResult& result);
void WriteJson(JsonWriter* w, const LayoutStats& stats);
void WriteJson(JsonWriter* w, const ExperimentResult& result);
void WriteJson(JsonWriter* w, const FarmConfig& config);
void WriteJson(JsonWriter* w, const FarmResult& result);
/// A table as {"columns": [...], "rows": [[...], ...]}.
void WriteJson(JsonWriter* w, const Table& table);

}  // namespace tapejuke

#endif  // TAPEJUKE_CORE_RESULTS_IO_H_
