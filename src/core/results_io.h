// JSON serialization of sweep results (results/<bench>.json).
//
// Every bench emits, next to its text tables, a machine-readable JSON
// document holding the full configuration of every sweep point (all the
// paper knobs, including the derived per-point workload seed) and every
// SimulationResult field, so downstream tooling can re-plot or diff runs
// without re-simulating. See docs/RESULTS.md for the field-by-field
// schema.
//
// The writer is a small streaming JSON emitter — no third-party
// dependency — with deterministic output: doubles are printed in their
// shortest round-trip form (std::to_chars), keys are emitted in fixed
// order, and NaN/Inf become null. Identical results serialize to
// byte-identical JSON, which is what the thread-count invariance test
// compares.

#ifndef TAPEJUKE_CORE_RESULTS_IO_H_
#define TAPEJUKE_CORE_RESULTS_IO_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/farm.h"
#include "util/status.h"
#include "util/table.h"

namespace tapejuke {

/// Streaming JSON writer with 2-space pretty printing. Usage:
///
///   JsonWriter w(&os);
///   w.BeginObject();
///   w.Key("name"); w.Value("fig04");
///   w.Key("points"); w.BeginArray(); ... w.EndArray();
///   w.EndObject();
///
/// The writer TJ_CHECKs on malformed call sequences (value without a key
/// inside an object, unbalanced End calls).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream* os);

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  void Key(const std::string& name);

  void Value(const std::string& value);
  void Value(const char* value);
  void Value(double value);
  void Value(int64_t value);
  void Value(uint64_t value);
  void Value(int value) { Value(static_cast<int64_t>(value)); }
  void Value(bool value);
  void Null();

  /// Key + Value in one call.
  template <typename T>
  void Field(const std::string& name, const T& value) {
    Key(name);
    Value(value);
  }

 private:
  enum class Scope { kObject, kArray };
  void BeforeValue();
  void NewlineIndent();

  std::ostream* os_;
  std::vector<Scope> stack_;
  std::vector<int> counts_;  ///< values emitted in each open scope
  bool pending_key_ = false;
};

/// Backslash-escapes `s` for use inside a JSON string literal (quotes not
/// included).
std::string JsonEscape(const std::string& s);

/// Shortest round-trip decimal form of `value`; "null" for NaN/Inf.
std::string JsonDouble(double value);

// Serializers for the experiment types: each writes one JSON object (the
// writer must be positioned where a value is expected).
void WriteJson(JsonWriter* w, const JukeboxConfig& config);
void WriteJson(JsonWriter* w, const LayoutSpec& layout);
void WriteJson(JsonWriter* w, const WorkloadConfig& workload);
void WriteJson(JsonWriter* w, const FaultConfig& faults);
void WriteJson(JsonWriter* w, const FaultStats& stats);
void WriteJson(JsonWriter* w, const RepairConfig& repair);
void WriteJson(JsonWriter* w, const RepairStats& stats);
void WriteJson(JsonWriter* w, const SimulationConfig& sim);
void WriteJson(JsonWriter* w, const ExperimentConfig& config);
void WriteJson(JsonWriter* w, const JukeboxCounters& counters);
void WriteJson(JsonWriter* w, const SimulationResult& result);
void WriteJson(JsonWriter* w, const LayoutStats& stats);
void WriteJson(JsonWriter* w, const ExperimentResult& result);
void WriteJson(JsonWriter* w, const FarmConfig& config);
void WriteJson(JsonWriter* w, const FarmResult& result);
/// A table as {"columns": [...], "rows": [[...], ...]}.
void WriteJson(JsonWriter* w, const Table& table);

/// Writes `content` to `path`, creating parent directories as needed.
Status WriteTextFile(const std::string& path, const std::string& content);

}  // namespace tapejuke

#endif  // TAPEJUKE_CORE_RESULTS_IO_H_
