#include "core/results_io.h"

#include "util/check.h"

namespace tapejuke {

namespace {

const char* LayoutName(HotLayout layout) {
  return layout == HotLayout::kVertical ? "vertical" : "horizontal";
}

const char* PlacementName(PlacementScheme scheme) {
  return scheme == PlacementScheme::kOrganPipe ? "organ-pipe"
                                               : "start-position";
}

const char* ModelName(QueuingModel model) {
  return model == QueuingModel::kOpen ? "open" : "closed";
}

const char* SkewName(SkewModel skew) {
  return skew == SkewModel::kZipf ? "zipf" : "hot-cold";
}

const char* AdmissionPolicyName(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kNone:
      return "none";
    case AdmissionPolicy::kStaticCap:
      return "static-cap";
    case AdmissionPolicy::kAdaptive:
      return "adaptive";
  }
  TJ_CHECK(false) << "unknown AdmissionPolicy";
  return "?";
}

}  // namespace

void WriteJson(JsonWriter* w, const JukeboxConfig& config) {
  w->BeginObject();
  w->Field("num_tapes", static_cast<int64_t>(config.num_tapes));
  w->Field("block_size_mb", config.block_size_mb);
  w->Field("tape_capacity_mb", config.timing.tape_capacity_mb);
  w->Field("rewind_before_eject", config.rewind_before_eject);
  w->EndObject();
}

void WriteJson(JsonWriter* w, const LayoutSpec& layout) {
  w->BeginObject();
  w->Field("hot_fraction", layout.hot_fraction);
  w->Field("num_replicas", static_cast<int64_t>(layout.num_replicas));
  w->Field("start_position", layout.start_position);
  w->Field("layout", LayoutName(layout.layout));
  w->Field("placement", PlacementName(layout.placement));
  w->Field("logical_blocks_override", layout.logical_blocks_override);
  w->Field("pack_cold", layout.pack_cold);
  w->EndObject();
}

void WriteJson(JsonWriter* w, const WorkloadConfig& workload) {
  w->BeginObject();
  w->Field("model", ModelName(workload.model));
  w->Field("queue_length", workload.queue_length);
  w->Field("think_time_seconds", workload.think_time_seconds);
  w->Field("mean_interarrival_seconds",
           workload.mean_interarrival_seconds);
  w->Field("skew", SkewName(workload.skew));
  w->Field("hot_request_fraction", workload.hot_request_fraction);
  w->Field("zipf_theta", workload.zipf_theta);
  w->Field("seed", workload.seed);
  // Tenant-mix and arrival-shaping knobs are emitted only when set, so
  // documents for overload-free workloads stay byte-identical to
  // pre-overload-subsystem output.
  if (workload.HasTenantClasses()) {
    w->Key("tenant_classes");
    w->BeginArray();
    for (const TenantClassConfig& cls : workload.tenant_classes) {
      w->BeginObject();
      w->Field("weight", cls.weight);
      w->Field("deadline_seconds", cls.deadline_seconds);
      w->Field("p99_slo_seconds", cls.p99_slo_seconds);
      w->EndObject();
    }
    w->EndArray();
  }
  if (workload.diurnal_amplitude > 0) {
    w->Field("diurnal_amplitude", workload.diurnal_amplitude);
    w->Field("diurnal_period_seconds", workload.diurnal_period_seconds);
  }
  if (workload.burst_interval_seconds > 0) {
    w->Field("burst_interval_seconds", workload.burst_interval_seconds);
    w->Field("burst_size", workload.burst_size);
    w->Field("burst_spread_seconds", workload.burst_spread_seconds);
  }
  w->EndObject();
}

void WriteJson(JsonWriter* w, const FaultConfig& faults) {
  w->BeginObject();
  w->Field("transient_read_error_prob", faults.transient_read_error_prob);
  w->Field("max_read_retries",
           static_cast<int64_t>(faults.max_read_retries));
  w->Field("permanent_media_error_prob", faults.permanent_media_error_prob);
  w->Field("whole_tape_fraction", faults.whole_tape_fraction);
  w->Field("drive_mtbf_seconds", faults.drive_mtbf_seconds);
  w->Field("drive_mttr_seconds", faults.drive_mttr_seconds);
  w->Field("robot_fault_prob", faults.robot_fault_prob);
  // Backoff knobs appear only when enabled, keeping documents for
  // backoff-free fault runs byte-identical to earlier output.
  if (faults.retry_backoff_base_seconds > 0) {
    w->Field("retry_backoff_base_seconds", faults.retry_backoff_base_seconds);
    w->Field("retry_backoff_max_seconds", faults.retry_backoff_max_seconds);
  }
  w->Field("seed", faults.seed);
  w->EndObject();
}

void WriteJson(JsonWriter* w, const FaultStats& stats) {
  w->BeginObject();
  w->Field("transient_read_errors", stats.transient_read_errors);
  w->Field("read_retries", stats.read_retries);
  w->Field("reads_escalated", stats.reads_escalated);
  w->Field("permanent_media_errors", stats.permanent_media_errors);
  w->Field("dead_tapes", stats.dead_tapes);
  w->Field("replicas_masked", stats.replicas_masked);
  w->Field("drive_failures", stats.drive_failures);
  w->Field("drive_repair_seconds", stats.drive_repair_seconds);
  w->Field("robot_faults", stats.robot_faults);
  w->Field("robot_retry_seconds", stats.robot_retry_seconds);
  w->Field("failovers", stats.failovers);
  w->Field("degraded_reads", stats.degraded_reads);
  w->Field("blocks_lost", stats.blocks_lost);
  w->EndObject();
}

void WriteJson(JsonWriter* w, const RepairConfig& repair) {
  w->BeginObject();
  w->Field("enable_repair", repair.enable_repair);
  w->Field("scrub_interval_seconds", repair.scrub_interval_seconds);
  w->Field("repair_bandwidth_mb_per_s", repair.repair_bandwidth_mb_per_s);
  w->Field("repair_burst_mb", repair.repair_burst_mb);
  w->EndObject();
}

void WriteJson(JsonWriter* w, const RepairStats& stats) {
  w->BeginObject();
  w->Field("scrub_passes", stats.scrub_passes);
  w->Field("scrub_mounts", stats.scrub_mounts);
  w->Field("scrub_blocks_read", stats.scrub_blocks_read);
  w->Field("scrub_errors_detected", stats.scrub_errors_detected);
  w->Field("scrub_seconds", stats.scrub_seconds);
  w->Field("repairs_enqueued", stats.repairs_enqueued);
  w->Field("repairs_completed", stats.repairs_completed);
  w->Field("repairs_abandoned", stats.repairs_abandoned);
  w->Field("repairs_impossible", stats.repairs_impossible);
  w->Field("source_reads", stats.source_reads);
  w->Field("repair_mounts", stats.repair_mounts);
  w->Field("repair_write_seconds", stats.repair_write_seconds);
  w->Field("backlog_peak", stats.backlog_peak);
  w->Field("backlog_final", stats.backlog_final);
  w->Field("reprotect_seconds_sum", stats.reprotect_seconds_sum);
  w->Field("reprotect_seconds_max", stats.reprotect_seconds_max);
  w->EndObject();
}

void WriteJson(JsonWriter* w, const SimulationConfig& sim) {
  w->BeginObject();
  w->Field("duration_seconds", sim.duration_seconds);
  w->Field("warmup_seconds", sim.warmup_seconds);
  w->Key("workload");
  WriteJson(w, sim.workload);
  // Emitted only when fault injection is on, so fault-free documents stay
  // byte-identical to pre-fault-subsystem output.
  if (sim.faults.enabled()) {
    w->Key("faults");
    WriteJson(w, sim.faults);
  }
  if (sim.repair.enabled()) {
    w->Key("repair");
    WriteJson(w, sim.repair);
  }
  if (sim.admission.enabled()) {
    w->Key("admission");
    w->BeginObject();
    w->Field("policy", AdmissionPolicyName(sim.admission.policy));
    w->Field("queue_cap", sim.admission.queue_cap);
    w->Field("window_seconds", sim.admission.window_seconds);
    w->EndObject();
  }
  w->EndObject();
}

void WriteJson(JsonWriter* w, const ExperimentConfig& config) {
  w->BeginObject();
  w->Field("algorithm", config.algorithm.Name());
  w->Key("algorithm_options");
  w->BeginObject();
  w->Field("allow_reverse_phase", config.algorithm.options.allow_reverse_phase);
  w->Field("envelope_shrink", config.algorithm.options.envelope_shrink);
  w->Field("paper_replica_tiebreak",
           config.algorithm.options.paper_replica_tiebreak);
  w->EndObject();
  w->Key("jukebox");
  WriteJson(w, config.jukebox);
  w->Key("layout");
  WriteJson(w, config.layout);
  w->Key("sim");
  WriteJson(w, config.sim);
  w->EndObject();
}

void WriteJson(JsonWriter* w, const JukeboxCounters& counters) {
  w->BeginObject();
  w->Field("tape_switches", counters.tape_switches);
  w->Field("blocks_read", counters.blocks_read);
  w->Field("mb_read", counters.mb_read);
  w->Field("rewind_seconds", counters.rewind_seconds);
  w->Field("switch_seconds", counters.switch_seconds);
  w->Field("locate_seconds", counters.locate_seconds);
  w->Field("read_seconds", counters.read_seconds);
  w->EndObject();
}

void WriteJson(JsonWriter* w, const SimulationResult& result) {
  w->BeginObject();
  w->Field("simulated_seconds", result.simulated_seconds);
  w->Field("measured_seconds", result.measured_seconds);
  w->Field("completed_requests", result.completed_requests);
  w->Field("throughput_mb_per_s", result.throughput_mb_per_s);
  w->Field("throughput_kb_per_s", result.throughput_kb_per_s);
  w->Field("requests_per_minute", result.requests_per_minute);
  w->Field("mean_delay_seconds", result.mean_delay_seconds);
  w->Field("mean_delay_minutes", result.mean_delay_minutes);
  w->Field("delay_stddev_seconds", result.delay_stddev_seconds);
  w->Field("p50_delay_seconds", result.p50_delay_seconds);
  w->Field("p95_delay_seconds", result.p95_delay_seconds);
  w->Field("p99_delay_seconds", result.p99_delay_seconds);
  w->Field("max_delay_seconds", result.max_delay_seconds);
  w->Field("delay_hist_overflow", result.delay_hist_overflow);
  w->Field("mean_outstanding", result.mean_outstanding);
  w->Field("tape_switches_per_hour", result.tape_switches_per_hour);
  w->Field("transfer_utilization", result.transfer_utilization);
  // Time-in-state block: present only when the run collected per-drive
  // accounting (single- and multi-drive simulators; farm/lifecycle paths
  // leave it empty).
  if (!result.time_in_state.empty()) {
    w->Field("drive_utilization", result.drive_utilization);
    w->Key("time_in_state");
    w->BeginArray();
    for (const obs::DriveTimeInState& tis : result.time_in_state) {
      w->BeginObject();
      for (int a = 0; a < obs::kNumDriveActivities; ++a) {
        w->Field(obs::DriveActivityName(
                     static_cast<obs::DriveActivity>(a)),
                 tis.seconds[static_cast<size_t>(a)]);
      }
      w->EndObject();
    }
    w->EndArray();
  }
  w->Key("counters");
  WriteJson(w, result.counters);
  // Fault-injection block: emitted only for runs that had faults enabled,
  // keeping fault-free documents byte-identical to pre-fault output.
  if (result.fault_injection) {
    w->Field("issued_requests", result.issued_requests);
    w->Field("completed_total", result.completed_total);
    w->Field("failed_requests", result.failed_requests);
    w->Field("outstanding_at_end", result.outstanding_at_end);
    w->Field("availability", result.availability);
    w->Field("live_replica_fraction", result.live_replica_fraction);
    w->Key("faults");
    WriteJson(w, result.faults);
  }
  // Overload block: emitted only for runs that used deadlines, tenant
  // classes, or admission control. The conservation quad is shared with
  // the fault block, so it is repeated here only when faults were off.
  if (result.overload_enabled) {
    if (!result.fault_injection) {
      w->Field("issued_requests", result.issued_requests);
      w->Field("completed_total", result.completed_total);
      w->Field("failed_requests", result.failed_requests);
      w->Field("outstanding_at_end", result.outstanding_at_end);
    }
    w->Field("expired_requests", result.expired_requests);
    w->Field("shed_requests", result.shed_requests);
    if (!result.tenant_classes.empty()) {
      w->Key("tenant_classes");
      w->BeginArray();
      for (const TenantClassResult& cls : result.tenant_classes) {
        w->BeginObject();
        w->Field("completed", cls.completed);
        w->Field("expired", cls.expired);
        w->Field("shed", cls.shed);
        w->Field("mean_delay_seconds", cls.mean_delay_seconds);
        w->Field("p99_delay_seconds", cls.p99_delay_seconds);
        w->Field("goodput_per_minute", cls.goodput_per_minute);
        w->EndObject();
      }
      w->EndArray();
    }
  }
  if (result.repair_enabled) {
    w->Key("repair");
    WriteJson(w, result.repair);
  }
  w->EndObject();
}

void WriteJson(JsonWriter* w, const LayoutStats& stats) {
  w->BeginObject();
  w->Field("logical_blocks", stats.logical_blocks);
  w->Field("hot_blocks", stats.hot_blocks);
  w->Field("cold_blocks", stats.cold_blocks);
  w->Field("total_copies", stats.total_copies);
  w->Field("used_slots", stats.used_slots);
  w->Field("total_slots", stats.total_slots);
  w->Field("measured_expansion", stats.measured_expansion);
  w->EndObject();
}

void WriteJson(JsonWriter* w, const ExperimentResult& result) {
  w->BeginObject();
  w->Field("algorithm", result.algorithm_name);
  w->Key("sim");
  WriteJson(w, result.sim);
  w->Key("layout");
  WriteJson(w, result.layout);
  w->EndObject();
}

void WriteJson(JsonWriter* w, const FarmConfig& config) {
  w->BeginObject();
  w->Field("num_jukeboxes", static_cast<int64_t>(config.num_jukeboxes));
  w->Field("drives_per_jukebox",
           static_cast<int64_t>(config.drives_per_jukebox));
  // config.threads is an execution knob (results are bit-identical at any
  // value) and is deliberately not serialized, so results files stay
  // byte-identical across thread counts.
  w->Key("per_jukebox");
  WriteJson(w, config.per_jukebox);
  w->EndObject();
}

void WriteJson(JsonWriter* w, const FarmResult& result) {
  w->BeginObject();
  w->Key("aggregate");
  WriteJson(w, result.aggregate);
  w->Key("completions_per_jukebox");
  w->BeginArray();
  for (const int64_t completions : result.completions_per_jukebox) {
    w->Value(completions);
  }
  w->EndArray();
  w->Key("mean_outstanding_per_jukebox");
  w->BeginArray();
  for (const double outstanding : result.mean_outstanding_per_jukebox) {
    w->Value(outstanding);
  }
  w->EndArray();
  w->EndObject();
}

void WriteJson(JsonWriter* w, const Table& table) {
  w->BeginObject();
  w->Key("columns");
  w->BeginArray();
  for (const std::string& header : table.headers()) w->Value(header);
  w->EndArray();
  w->Key("rows");
  w->BeginArray();
  for (const std::vector<Table::Cell>& row : table.rows()) {
    w->BeginArray();
    for (const Table::Cell& cell : row) {
      if (const auto* s = std::get_if<std::string>(&cell)) {
        w->Value(*s);
      } else if (const auto* d = std::get_if<double>(&cell)) {
        w->Value(*d);
      } else {
        w->Value(std::get<int64_t>(cell));
      }
    }
    w->EndArray();
  }
  w->EndArray();
  w->EndObject();
}

}  // namespace tapejuke
