// Cost-performance analysis of replication (paper §4.8, Figure 10).
//
// Replication expands storage by E = 1 + NR * PH. A farm serving a fixed
// total workload with replication needs E times more jukeboxes, so each
// jukebox sees 1/E of the load: the cost-performance *ratio* of a
// replicated scheme vs the non-replicated one reduces to the ratio of
// per-jukebox throughputs, with the replicated jukebox simulated at queue
// length Q/E instead of Q.

#ifndef TAPEJUKE_CORE_COST_PERFORMANCE_H_
#define TAPEJUKE_CORE_COST_PERFORMANCE_H_

#include <cstdint>
#include <vector>

#include "core/experiment.h"
#include "util/status.h"

namespace tapejuke {

/// One point of the Figure 10(b) curve family.
struct CostPerformancePoint {
  int32_t num_replicas = 0;
  double expansion_factor = 1.0;        ///< analytic E = 1 + NR * PH
  int64_t effective_queue = 0;          ///< round(Q / E)
  double throughput_mb_per_s = 0;       ///< per jukebox at effective queue
  double cost_performance_ratio = 1.0;  ///< vs the NR = 0 baseline
};

/// Runs the Figure 10(b) analysis: `base` describes the non-replicated
/// scheme (its layout.num_replicas and start_position are overridden per
/// point; replicated points place hot data at the tape end per §4.5).
/// `base_queue` is the non-replicated per-jukebox queue length.
StatusOr<std::vector<CostPerformancePoint>> CostPerformanceCurve(
    ExperimentConfig base, int64_t base_queue,
    const std::vector<int32_t>& replica_counts);

}  // namespace tapejuke

#endif  // TAPEJUKE_CORE_COST_PERFORMANCE_H_
