// Parallel sweep execution: runs a grid of independent experiment points
// across a worker pool and collects results in input order.
//
// The paper's study is a grid of independent simulation points (algorithm
// x queue length x PH/RH x replica count), so the sweep layer is
// embarrassingly parallel. Determinism is preserved by construction:
//
//  * Every point's RNG seed is derived from (base_seed, point index) with
//    a SplitMix64 mix, never from thread identity or execution order, so a
//    sweep produces bit-identical results at any thread count — including
//    --threads=1, which runs the points inline in index order.
//  * Results are collected into slot `i` for point `i`; callers see input
//    order regardless of completion order.
//
// Usage:
//
//   SweepOptions options;
//   options.threads = 8;
//   options.base_seed = 1;
//   SweepRunner runner(options);
//   std::vector<ExperimentResult> results = runner.Run(points).value();

#ifndef TAPEJUKE_CORE_SWEEP_RUNNER_H_
#define TAPEJUKE_CORE_SWEEP_RUNNER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/experiment.h"
#include "core/farm.h"
#include "util/status.h"

namespace tapejuke {

/// Sweep-wide execution knobs.
struct SweepOptions {
  /// Worker count; <= 0 selects hardware concurrency.
  int threads = 0;
  /// Seed the per-point seeds are derived from.
  uint64_t base_seed = 1;
  /// When true (the default), point i runs with workload seed
  /// DerivePointSeed(base_seed, i) — points are statistically independent
  /// and the sweep is reproducible from base_seed alone. When false, every
  /// point keeps the seed already present in its config.
  bool derive_point_seeds = true;
};

/// Deterministic per-point seed: a SplitMix64 mix of (base_seed, index).
/// Distinct indices yield distinct, well-scrambled seeds; the result never
/// depends on thread count or execution order.
uint64_t DerivePointSeed(uint64_t base_seed, uint64_t point_index);

/// Runs experiment grids across a fixed-size thread pool.
class SweepRunner {
 public:
  explicit SweepRunner(const SweepOptions& options = SweepOptions{});

  const SweepOptions& options() const { return options_; }

  /// The config point `index` actually runs with: `config` with the
  /// derived per-point workload seed applied (when enabled).
  ExperimentConfig EffectiveConfig(ExperimentConfig config,
                                   size_t index) const;
  FarmConfig EffectiveFarmConfig(FarmConfig config, size_t index) const;

  /// Validates every point, then runs them all across the pool. Results
  /// are in input order. Fails fast (before running anything) if any
  /// point's config fails Validate(), and propagates the first per-point
  /// run error otherwise; error messages name the failing point index.
  StatusOr<std::vector<ExperimentResult>> Run(
      const std::vector<ExperimentConfig>& points) const;

  /// Farm variant of Run() for FarmConfig grids.
  StatusOr<std::vector<FarmResult>> RunFarms(
      const std::vector<FarmConfig>& points) const;

  /// Escape hatch for benches with bespoke simulators: runs
  /// fn(point_index) for every index across the pool and returns the
  /// first non-OK status (lowest index wins, deterministically). `fn` is
  /// called concurrently for distinct indices and must only touch
  /// per-index state. An exception escaping `fn` is captured as an
  /// Internal status for that point rather than terminating the process.
  Status RunIndexed(size_t num_points,
                    const std::function<Status(size_t)>& fn) const;

 private:
  SweepOptions options_;
};

}  // namespace tapejuke

#endif  // TAPEJUKE_CORE_SWEEP_RUNNER_H_
