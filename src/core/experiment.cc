#include "core/experiment.h"

#include <cstdlib>

#include "sched/envelope_scheduler.h"
#include "sched/fifo_scheduler.h"
#include "sched/greedy_scheduler.h"
#include "util/check.h"

namespace tapejuke {

namespace {

StatusOr<TapePolicy> ParsePolicy(const std::string& name) {
  if (name == "round-robin") return TapePolicy::kRoundRobin;
  if (name == "max-requests") return TapePolicy::kMaxRequests;
  if (name == "max-bandwidth") return TapePolicy::kMaxBandwidth;
  if (name == "oldest-max-requests") return TapePolicy::kOldestMaxRequests;
  if (name == "oldest-max-bandwidth") return TapePolicy::kOldestMaxBandwidth;
  return Status::InvalidArgument("unknown tape policy '" + name + "'");
}

}  // namespace

std::string AlgorithmSpec::Name() const {
  switch (kind) {
    case AlgorithmKind::kFifo:
      return "fifo";
    case AlgorithmKind::kStatic:
      return std::string("static ") + TapePolicyName(policy);
    case AlgorithmKind::kDynamic:
      return std::string("dynamic ") + TapePolicyName(policy);
    case AlgorithmKind::kEnvelope:
      return std::string(TapePolicyName(policy)) + " envelope";
  }
  return "unknown";
}

StatusOr<AlgorithmSpec> AlgorithmSpec::Parse(const std::string& name) {
  AlgorithmSpec spec;
  if (name == "fifo") {
    spec.kind = AlgorithmKind::kFifo;
    return spec;
  }
  const auto dash = name.find('-');
  if (dash == std::string::npos) {
    return Status::InvalidArgument("unknown algorithm '" + name + "'");
  }
  const std::string family = name.substr(0, dash);
  const std::string policy_name = name.substr(dash + 1);
  if (family == "static") {
    spec.kind = AlgorithmKind::kStatic;
  } else if (family == "dynamic") {
    spec.kind = AlgorithmKind::kDynamic;
  } else if (family == "envelope") {
    spec.kind = AlgorithmKind::kEnvelope;
  } else {
    return Status::InvalidArgument("unknown algorithm family '" + family +
                                   "'");
  }
  StatusOr<TapePolicy> policy = ParsePolicy(policy_name);
  if (!policy.ok()) return policy.status();
  spec.policy = *policy;
  return spec;
}

std::vector<AlgorithmSpec> AlgorithmSpec::AllPaperAlgorithms() {
  std::vector<AlgorithmSpec> all;
  all.push_back(AlgorithmSpec{AlgorithmKind::kFifo, TapePolicy::kRoundRobin,
                              SchedulerOptions{}});
  const TapePolicy policies[] = {
      TapePolicy::kRoundRobin, TapePolicy::kMaxRequests,
      TapePolicy::kMaxBandwidth, TapePolicy::kOldestMaxRequests,
      TapePolicy::kOldestMaxBandwidth};
  for (const TapePolicy policy : policies) {
    all.push_back(
        AlgorithmSpec{AlgorithmKind::kStatic, policy, SchedulerOptions{}});
  }
  for (const TapePolicy policy : policies) {
    all.push_back(
        AlgorithmSpec{AlgorithmKind::kDynamic, policy, SchedulerOptions{}});
  }
  const TapePolicy envelope_policies[] = {TapePolicy::kOldestMaxRequests,
                                          TapePolicy::kMaxRequests,
                                          TapePolicy::kMaxBandwidth};
  for (const TapePolicy policy : envelope_policies) {
    all.push_back(
        AlgorithmSpec{AlgorithmKind::kEnvelope, policy, SchedulerOptions{}});
  }
  return all;
}

std::unique_ptr<Scheduler> CreateScheduler(const AlgorithmSpec& spec,
                                           const Jukebox* jukebox,
                                           const Catalog* catalog) {
  switch (spec.kind) {
    case AlgorithmKind::kFifo:
      return std::make_unique<FifoScheduler>(jukebox, catalog, spec.options);
    case AlgorithmKind::kStatic:
      return std::make_unique<GreedyScheduler>(jukebox, catalog, spec.policy,
                                               /*dynamic=*/false,
                                               spec.options);
    case AlgorithmKind::kDynamic:
      return std::make_unique<GreedyScheduler>(jukebox, catalog, spec.policy,
                                               /*dynamic=*/true,
                                               spec.options);
    case AlgorithmKind::kEnvelope:
      return std::make_unique<EnvelopeScheduler>(jukebox, catalog,
                                                 spec.policy, spec.options);
  }
  TJ_CHECK(false) << "unreachable algorithm kind";
  return nullptr;
}

Status ExperimentConfig::Validate() const {
  TJ_RETURN_IF_ERROR(jukebox.Validate());
  TJ_RETURN_IF_ERROR(sim.Validate());
  // Layout validation needs jukebox geometry; construct a throwaway.
  const Jukebox probe(jukebox);
  return layout.Validate(probe);
}

StatusOr<ExperimentResult> ExperimentRunner::Run(
    const ExperimentConfig& config) {
  TJ_RETURN_IF_ERROR(config.Validate());
  Jukebox jukebox(config.jukebox);
  StatusOr<Catalog> catalog = LayoutBuilder::Build(&jukebox, config.layout);
  if (!catalog.ok()) return catalog.status();
  const std::unique_ptr<Scheduler> scheduler =
      CreateScheduler(config.algorithm, &jukebox, &catalog.value());
  Simulator simulator(&jukebox, &catalog.value(), scheduler.get(),
                      config.sim);
  ExperimentResult result;
  result.sim = simulator.Run();
  result.layout = LayoutBuilder::ComputeStats(jukebox, catalog.value());
  result.algorithm_name = scheduler->name();
  return result;
}

double DefaultSimSeconds() {
  if (const char* env = std::getenv("TAPEJUKE_SIM_SECONDS")) {
    const double parsed = std::atof(env);
    if (parsed > 0) return parsed;
  }
  return 2'000'000.0;
}

StatusOr<std::vector<CurvePoint>> ThroughputDelayCurve(
    ExperimentConfig base, const std::vector<int64_t>& queue_lengths) {
  std::vector<CurvePoint> curve;
  base.sim.workload.model = QueuingModel::kClosed;
  for (const int64_t queue : queue_lengths) {
    base.sim.workload.queue_length = queue;
    StatusOr<ExperimentResult> result = ExperimentRunner::Run(base);
    if (!result.ok()) return result.status();
    CurvePoint point;
    point.queue_length = queue;
    point.throughput_req_per_min = result->sim.requests_per_minute;
    point.mean_delay_minutes = result->sim.mean_delay_minutes;
    point.sim = result->sim;
    curve.push_back(point);
  }
  return curve;
}

StatusOr<std::vector<CurvePoint>> OpenThroughputDelayCurve(
    ExperimentConfig base, const std::vector<double>& interarrivals) {
  std::vector<CurvePoint> curve;
  base.sim.workload.model = QueuingModel::kOpen;
  for (const double gap : interarrivals) {
    base.sim.workload.mean_interarrival_seconds = gap;
    StatusOr<ExperimentResult> result = ExperimentRunner::Run(base);
    if (!result.ok()) return result.status();
    CurvePoint point;
    point.interarrival_seconds = gap;
    point.throughput_req_per_min = result->sim.requests_per_minute;
    point.mean_delay_minutes = result->sim.mean_delay_minutes;
    point.sim = result->sim;
    curve.push_back(point);
  }
  return curve;
}

}  // namespace tapejuke
