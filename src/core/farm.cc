#include "core/farm.h"

#include <algorithm>
#include <limits>

#include "sim/workload.h"
#include "util/check.h"
#include "util/rng.h"

namespace tapejuke {

Status FarmConfig::Validate() const {
  if (num_jukeboxes < 1) {
    return Status::InvalidArgument("farm needs at least one jukebox");
  }
  if (per_jukebox.sim.faults.enabled()) {
    return Status::InvalidArgument(
        "fault injection is not supported by the farm simulator; use the "
        "single- or multi-drive simulators");
  }
  return per_jukebox.Validate();
}

struct FarmSimulator::Box {
  explicit Box(const ExperimentConfig& config)
      : jukebox(config.jukebox),
        catalog(LayoutBuilder::Build(&jukebox, config.layout).value()),
        scheduler(CreateScheduler(config.algorithm, &jukebox, &catalog)) {}

  void AccumulateOutstanding(double now) {
    outstanding_area += static_cast<double>(outstanding) *
                        (now - last_transition);
    last_transition = now;
  }

  Jukebox jukebox;
  Catalog catalog;
  std::unique_ptr<Scheduler> scheduler;
  std::optional<ServiceEntry> in_flight;
  bool busy = false;
  int64_t completions = 0;
  int64_t outstanding = 0;
  double last_transition = 0;
  double outstanding_area = 0;
};

FarmSimulator::~FarmSimulator() = default;

FarmSimulator::FarmSimulator(const FarmConfig& config) : config_(config) {
  const Status status = config.Validate();
  TJ_CHECK(status.ok()) << status.ToString();
  boxes_.reserve(static_cast<size_t>(config.num_jukeboxes));
  for (int32_t i = 0; i < config.num_jukeboxes; ++i) {
    boxes_.push_back(std::make_unique<Box>(config.per_jukebox));
  }
}

void FarmSimulator::Dispatch(int box_index, double now) {
  Box& box = *boxes_[static_cast<size_t>(box_index)];
  if (box.busy) return;
  if (box.scheduler->sweep_empty()) {
    if (!box.scheduler->HasWork()) return;  // idle
    const TapeId tape = box.scheduler->MajorReschedule();
    TJ_CHECK_NE(tape, kInvalidTape);
    const double switch_seconds = box.jukebox.SwitchTo(tape);
    box.busy = true;
    events_.Schedule(now + switch_seconds, box_index);
    return;
  }
  const std::optional<ServiceEntry> entry = box.scheduler->PopNext();
  TJ_CHECK(entry.has_value());
  const double op_seconds = box.jukebox.ReadBlockAt(entry->position);
  box.in_flight = *entry;
  box.busy = true;
  events_.Schedule(now + op_seconds, box_index);
}

FarmResult FarmSimulator::Run() {
  TJ_CHECK(!ran_) << "Run may be called once";
  ran_ = true;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const SimulationConfig& sim = config_.per_jukebox.sim;
  const bool closed = sim.workload.model == QueuingModel::kClosed;

  // All boxes share one block generator (identical catalogs) and one
  // router; both are deterministic in the workload seed.
  WorkloadGenerator workload(&boxes_.front()->catalog, sim.workload);
  Rng router(sim.workload.seed ^ 0xfeedfacecafef00dULL);
  MetricsCollector metrics(sim.warmup_seconds,
                           config_.per_jukebox.jukebox.block_size_mb);

  auto aggregate_counters = [&]() {
    JukeboxCounters total;
    for (const auto& box : boxes_) {
      const JukeboxCounters& c = box->jukebox.counters();
      total.tape_switches += c.tape_switches;
      total.blocks_read += c.blocks_read;
      total.mb_read += c.mb_read;
      total.rewind_seconds += c.rewind_seconds;
      total.switch_seconds += c.switch_seconds;
      total.locate_seconds += c.locate_seconds;
      total.read_seconds += c.read_seconds;
    }
    return total;
  };

  auto route = [&](double now) {
    const auto target = static_cast<int>(
        router.UniformUint64(static_cast<uint64_t>(boxes_.size())));
    Box& box = *boxes_[static_cast<size_t>(target)];
    const Request request = workload.NextRequest(now);
    metrics.OnArrival(now);
    box.AccumulateOutstanding(now);
    ++box.outstanding;
    box.scheduler->OnArrival(request, box.jukebox.head());
    Dispatch(target, now);
  };

  if (closed) {
    for (int64_t i = 0; i < sim.workload.queue_length; ++i) route(0.0);
  } else {
    next_arrival_ = workload.NextInterarrival();
  }
  bool warmup_marked = false;
  auto maybe_warmup = [&]() {
    if (!warmup_marked && clock_ >= sim.warmup_seconds) {
      warmup_marked = true;
      metrics.MarkWarmupBoundary(aggregate_counters());
    }
  };
  maybe_warmup();

  while (clock_ < sim.duration_seconds) {
    const double event_time = events_.empty() ? kInf : events_.NextTime();
    const double arrival_time = closed ? kInf : next_arrival_;
    const double next = std::min(event_time, arrival_time);
    if (next == kInf || next > sim.duration_seconds) break;
    clock_ = next;

    if (arrival_time <= event_time) {
      route(clock_);
      next_arrival_ = clock_ + workload.NextInterarrival();
    } else {
      const auto [time, box_index] = events_.Pop();
      Box& box = *boxes_[static_cast<size_t>(box_index)];
      box.busy = false;
      if (box.in_flight.has_value()) {
        const ServiceEntry entry = std::move(*box.in_flight);
        box.in_flight.reset();
        for (const Request& request : entry.requests) {
          metrics.OnCompletion(request.arrival_time, clock_);
          box.AccumulateOutstanding(clock_);
          --box.outstanding;
          ++box.completions;
          if (closed) route(clock_);
        }
      }
      Dispatch(box_index, clock_);
    }
    maybe_warmup();
  }
  if (!warmup_marked) metrics.MarkWarmupBoundary(aggregate_counters());

  FarmResult result;
  result.aggregate = metrics.Finalize(clock_, aggregate_counters());
  for (const auto& box : boxes_) {
    box->AccumulateOutstanding(clock_);
    result.completions_per_jukebox.push_back(box->completions);
    result.mean_outstanding_per_jukebox.push_back(
        clock_ > 0 ? box->outstanding_area / clock_ : 0.0);
  }
  return result;
}

}  // namespace tapejuke
