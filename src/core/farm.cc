#include "core/farm.h"

#include <algorithm>
#include <iostream>
#include <memory>
#include <string>
#include <utility>

#include "core/sweep_runner.h"
#include "obs/timeline.h"
#include "sim/multi_drive.h"
#include "sim/simulator.h"
#include "sim/workload.h"
#include "util/check.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace tapejuke {

namespace {

/// "dir/farm.jsonl" + box 2 -> "dir/farm.box2.jsonl" (appends when the
/// base name has no extension).
std::string BoxTimelinePath(const std::string& base, int32_t box) {
  const size_t slash = base.find_last_of('/');
  const size_t dot = base.find_last_of('.');
  const std::string tag = ".box" + std::to_string(box);
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return base + tag;
  }
  return base.substr(0, dot) + tag + base.substr(dot);
}

}  // namespace

Status FarmConfig::Validate() const {
  if (num_jukeboxes < 1) {
    return Status::InvalidArgument("farm needs at least one jukebox");
  }
  if (drives_per_jukebox < 1) {
    return Status::InvalidArgument("drives_per_jukebox must be >= 1");
  }
  const WorkloadConfig& workload = per_jukebox.sim.workload;
  if (workload.model == QueuingModel::kClosed &&
      workload.queue_length < num_jukeboxes) {
    return Status::InvalidArgument(
        "closed farm needs queue_length >= num_jukeboxes (the fixed split "
        "runs at least one process per box)");
  }
  if (drives_per_jukebox > 1) {
    if (per_jukebox.algorithm.kind != AlgorithmKind::kStatic &&
        per_jukebox.algorithm.kind != AlgorithmKind::kDynamic) {
      return Status::InvalidArgument(
          "multi-drive farm boxes dispatch by tape policy and support only "
          "the static and dynamic greedy algorithms");
    }
    if (per_jukebox.sim.repair.enabled()) {
      return Status::InvalidArgument(
          "scrub/repair is single-drive only; use drives_per_jukebox = 1");
    }
  }
  return per_jukebox.Validate();
}

/// Everything the merge needs from one finished box, decoupled from the
/// (non-copyable, arena-heavy) simulator that produced it.
struct FarmSimulator::BoxOutput {
  SimulationResult result;
  MetricsCollector metrics;
  JukeboxCounters counters;
  /// Buffered timeline capture (empty unless the farm timeline is on).
  /// Boxes run with buffer_only so the farm can write per-box files plus
  /// one merged, fixed-order farm timeline after the parallel phase.
  std::string timeline_header;
  std::vector<obs::TimelineSampler::Row> timeline_rows;
  std::string timeline_summary_json;
  obs::TimelineSummary timeline_summary;
  std::vector<std::string> timeline_counter_names;

  template <typename Sim>
  void CaptureTimeline(const Sim& sim) {
    const obs::TimelineSampler* timeline = sim.timeline();
    if (timeline == nullptr) return;
    timeline_header = timeline->header_json();
    timeline_rows = timeline->rows();
    timeline_summary_json = timeline->summary_json();
    timeline_summary = timeline->summary();
    timeline_counter_names = timeline->counter_names();
  }
};

FarmSimulator::FarmSimulator(const FarmConfig& config) : config_(config) {
  const Status status = config.Validate();
  TJ_CHECK(status.ok()) << status.ToString();
}

ExperimentConfig FarmSimulator::BoxConfig(int32_t index) const {
  ExperimentConfig cfg = config_.per_jukebox;
  if (cfg.sim.timeline.enabled()) {
    // Boxes buffer their rows (stamped with the box index) instead of
    // writing; the farm writes per-box and merged files after the run.
    cfg.sim.timeline.buffer_only = true;
    cfg.sim.timeline.box = index;
    cfg.sim.timeline.out.clear();
  }
  WorkloadConfig& workload = cfg.sim.workload;
  const int64_t n = config_.num_jukeboxes;
  if (workload.model == QueuingModel::kClosed) {
    // Fixed split of the farm-wide population: floor(Q/n) per box, +1 for
    // the first Q mod n boxes (Validate guarantees >= 1 each).
    const int64_t base = workload.queue_length / n;
    const int64_t remainder = workload.queue_length % n;
    workload.queue_length = base + (index < remainder ? 1 : 0);
  } else {
    // Poisson thinning: uniform routing over n boxes == n independent
    // Poisson streams at 1/n the rate each.
    workload.mean_interarrival_seconds *= static_cast<double>(n);
  }
  workload.seed =
      DerivePointSeed(workload.seed, static_cast<uint64_t>(index));
  return cfg;
}

FarmSimulator::BoxOutput FarmSimulator::RunBox(int32_t index) const {
  const ExperimentConfig cfg = BoxConfig(index);
  Jukebox jukebox(cfg.jukebox);
  StatusOr<Catalog> catalog = LayoutBuilder::Build(&jukebox, cfg.layout);
  TJ_CHECK(catalog.ok()) << catalog.status().ToString();
  if (config_.drives_per_jukebox == 1) {
    const std::unique_ptr<Scheduler> scheduler =
        CreateScheduler(cfg.algorithm, &jukebox, &catalog.value());
    Simulator sim(&jukebox, &catalog.value(), scheduler.get(), cfg.sim);
    SimulationResult result = sim.Run();
    BoxOutput out{std::move(result), sim.metrics(), jukebox.counters()};
    out.CaptureTimeline(sim);
    return out;
  }
  MultiDriveConfig drives;
  drives.num_drives = config_.drives_per_jukebox;
  drives.policy = cfg.algorithm.policy;
  drives.dynamic_insertion = cfg.algorithm.kind == AlgorithmKind::kDynamic;
  drives.options = cfg.algorithm.options;
  MultiDriveSimulator sim(&jukebox, &catalog.value(), drives, cfg.sim);
  SimulationResult result = sim.Run();
  BoxOutput out{std::move(result), sim.metrics(), sim.counters()};
  out.CaptureTimeline(sim);
  return out;
}

FarmResult FarmSimulator::Run() {
  TJ_CHECK(!ran_) << "Run may be called once";
  ran_ = true;
  const int32_t n = config_.num_jukeboxes;

  // Shard the boxes over the pool. Every box derives its whole random
  // state from its own index, and the merge below walks the slots in box
  // order, so the result is bit-identical at any thread count.
  std::vector<std::unique_ptr<BoxOutput>> outputs(static_cast<size_t>(n));
  const auto run_box = [&](int64_t i) {
    outputs[static_cast<size_t>(i)] =
        std::make_unique<BoxOutput>(RunBox(static_cast<int32_t>(i)));
  };
  const int threads = config_.threads > 0 ? config_.threads
                                          : ThreadPool::DefaultThreads();
  if (threads == 1 || n == 1) {
    for (int64_t i = 0; i < n; ++i) run_box(i);
  } else {
    ThreadPool pool(std::min(threads, n));
    pool.ParallelFor(0, n, run_box);
  }

  // The farm ends when its last box does; close every box's outstanding
  // integral there so the areas are comparable before merging.
  double farm_end = 0;
  for (const auto& out : outputs) {
    farm_end = std::max(farm_end, out->result.simulated_seconds);
  }
  JukeboxCounters total;
  for (const auto& out : outputs) {
    out->metrics.AccumulateTo(farm_end);
    const JukeboxCounters& c = out->counters;
    total.tape_switches += c.tape_switches;
    total.blocks_read += c.blocks_read;
    total.mb_read += c.mb_read;
    total.rewind_seconds += c.rewind_seconds;
    total.switch_seconds += c.switch_seconds;
    total.locate_seconds += c.locate_seconds;
    total.read_seconds += c.read_seconds;
  }
  MetricsCollector aggregate = outputs.front()->metrics;
  for (int32_t i = 1; i < n; ++i) aggregate.Merge(outputs[i]->metrics);

  FarmResult result;
  result.aggregate = aggregate.Finalize(farm_end, total);

  // Fault and repair counters live in the per-box SimulationResults (the
  // collectors only see arrivals/completions); fold them in by hand.
  bool any_faults = false;
  bool any_repair = false;
  double live_fraction_sum = 0;
  for (const auto& out : outputs) {
    const SimulationResult& r = out->result;
    live_fraction_sum += r.live_replica_fraction;
    if (r.fault_injection) {
      any_faults = true;
      result.aggregate.faults += r.faults;
    }
    if (r.repair_enabled) {
      any_repair = true;
      RepairStats& agg = result.aggregate.repair;
      agg.scrub_passes += r.repair.scrub_passes;
      agg.scrub_mounts += r.repair.scrub_mounts;
      agg.scrub_blocks_read += r.repair.scrub_blocks_read;
      agg.scrub_errors_detected += r.repair.scrub_errors_detected;
      agg.scrub_seconds += r.repair.scrub_seconds;
      agg.repairs_enqueued += r.repair.repairs_enqueued;
      agg.repairs_completed += r.repair.repairs_completed;
      agg.repairs_abandoned += r.repair.repairs_abandoned;
      agg.repairs_impossible += r.repair.repairs_impossible;
      agg.source_reads += r.repair.source_reads;
      agg.repair_mounts += r.repair.repair_mounts;
      agg.repair_write_seconds += r.repair.repair_write_seconds;
      // Summed per-box peaks: an upper bound on the true farm-wide peak
      // (box backlogs need not peak simultaneously).
      agg.backlog_peak += r.repair.backlog_peak;
      agg.backlog_final += r.repair.backlog_final;
      agg.reprotect_seconds_sum += r.repair.reprotect_seconds_sum;
      agg.reprotect_seconds_max = std::max(agg.reprotect_seconds_max,
                                           r.repair.reprotect_seconds_max);
    }
  }
  result.aggregate.fault_injection = any_faults;
  result.aggregate.repair_enabled = any_repair;
  if (any_faults) {
    result.aggregate.live_replica_fraction =
        live_fraction_sum / static_cast<double>(n);
  }

  const double measured = result.aggregate.measured_seconds;
  result.completions_per_jukebox.reserve(static_cast<size_t>(n));
  result.mean_outstanding_per_jukebox.reserve(static_cast<size_t>(n));
  for (const auto& out : outputs) {
    result.completions_per_jukebox.push_back(out->metrics.completed_total());
    result.mean_outstanding_per_jukebox.push_back(
        measured > 0 ? out->metrics.outstanding_area() / measured : 0.0);
  }

  WriteTimelines(outputs);
  return result;
}

void FarmSimulator::WriteTimelines(
    const std::vector<std::unique_ptr<BoxOutput>>& outputs) const {
  const obs::TimelineConfig& timeline = config_.per_jukebox.sim.timeline;
  if (!timeline.enabled() || timeline.out.empty()) return;
  const int32_t n = config_.num_jukeboxes;

  const auto warn = [](const Status& status) {
    // Timeline output must never fail the run.
    if (!status.ok()) {
      std::cerr << "warning: timeline output failed: " << status.ToString()
                << '\n';
    }
  };

  // Per-box documents, exactly as a standalone run would have written
  // them (rows carry the box index).
  for (int32_t i = 0; i < n; ++i) {
    const BoxOutput& box = *outputs[static_cast<size_t>(i)];
    std::string doc = box.timeline_header + "\n";
    for (const obs::TimelineSampler::Row& row : box.timeline_rows) {
      doc += row.json;
      doc += "\n";
    }
    doc += box.timeline_summary_json + "\n";
    warn(WriteTextFile(BoxTimelinePath(timeline.out, i), doc));
  }

  // Merged farm timeline: every box's rows interleaved in simulated-time
  // order. Rows are concatenated in box order first and the sort is
  // stable, so equal-time rows keep box order and the document is
  // byte-identical at any thread count.
  struct MergedRow {
    double t;
    const std::string* json;
  };
  std::vector<MergedRow> merged;
  for (const auto& out : outputs) {
    for (const obs::TimelineSampler::Row& row : out->timeline_rows) {
      merged.push_back({row.t, &row.json});
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const MergedRow& a, const MergedRow& b) {
                     return a.t < b.t;
                   });

  // Farm summary: samples and final counters sum across boxes; the peaks
  // are per-box maxima (box queues need not peak simultaneously).
  obs::TimelineSummary farm;
  for (const auto& out : outputs) {
    const obs::TimelineSummary& s = out->timeline_summary;
    farm.samples += s.samples;
    farm.peak_queue_depth =
        std::max(farm.peak_queue_depth, s.peak_queue_depth);
    farm.worst_window_p99 =
        std::max(farm.worst_window_p99, s.worst_window_p99);
    if (farm.final_counters.empty()) {
      farm.final_counters = s.final_counters;
    } else {
      TJ_CHECK_EQ(farm.final_counters.size(), s.final_counters.size());
      for (size_t c = 0; c < s.final_counters.size(); ++c) {
        farm.final_counters[c] += s.final_counters[c];
      }
    }
  }
  const std::vector<std::string>& names =
      outputs.front()->timeline_counter_names;
  std::string summary = "{\"kind\":\"summary\",\"boxes\":" +
                        std::to_string(n) + ",\"timeline_samples\":" +
                        std::to_string(farm.samples) +
                        ",\"peak_queue_depth\":" +
                        JsonDouble(farm.peak_queue_depth) +
                        ",\"worst_window_p99\":" +
                        JsonDouble(farm.worst_window_p99) +
                        ",\"final_counters\":{";
  for (size_t c = 0; c < names.size(); ++c) {
    if (c > 0) summary += ",";
    summary += "\"" + JsonEscape(names[c]) +
               "\":" + std::to_string(farm.final_counters[c]);
  }
  summary += "}}";

  std::string doc = outputs.front()->timeline_header + "\n";
  for (const MergedRow& row : merged) {
    doc += *row.json;
    doc += "\n";
  }
  doc += summary + "\n";
  warn(WriteTextFile(timeline.out, doc));
}

}  // namespace tapejuke
