#include "core/analytic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace tapejuke {

namespace {

/// Per-tape request statistics derived from a built layout.
struct TapeDistribution {
  double request_probability = 0;  ///< p_t
  /// Block positions on this tape (ascending) with their conditional
  /// cumulative probabilities.
  std::vector<Position> positions;
  std::vector<double> cumulative;
};

std::vector<TapeDistribution> BuildDistributions(
    const AnalyticInputs& inputs) {
  Jukebox jukebox(inputs.jukebox);
  const Catalog catalog =
      LayoutBuilder::Build(&jukebox, inputs.layout).value();
  const double rh = inputs.hot_request_fraction;
  const auto hot = static_cast<double>(catalog.num_hot_blocks());
  const auto cold = static_cast<double>(catalog.num_cold_blocks());

  std::vector<TapeDistribution> tapes(
      static_cast<size_t>(jukebox.num_tapes()));
  for (TapeId t = 0; t < jukebox.num_tapes(); ++t) {
    const Tape& tape = jukebox.tape(t);
    auto& dist = tapes[static_cast<size_t>(t)];
    double mass = 0;
    std::vector<double> weights;
    for (int64_t s = 0; s < tape.num_slots(); ++s) {
      const BlockId block = tape.BlockAtSlot(s);
      if (block == kInvalidBlock) continue;
      const double weight = catalog.IsHot(block)
                                ? (hot > 0 ? rh / hot : 0.0)
                                : (cold > 0 ? (1.0 - rh) / cold : 0.0);
      if (weight <= 0) continue;
      dist.positions.push_back(tape.PositionOfSlot(s));
      weights.push_back(weight);
      mass += weight;
    }
    dist.request_probability = mass;
    double cumulative = 0;
    for (const double w : weights) {
      cumulative += w / mass;
      dist.cumulative.push_back(cumulative);
    }
  }
  return tapes;
}

/// E[max block-end position] over `batch` i.i.d. draws from `dist`.
double ExpectedSpan(const TapeDistribution& dist, double batch,
                    int64_t block_mb) {
  if (dist.positions.empty() || batch <= 0) return 0;
  double expected = 0;
  double prev_pow = 0;
  for (size_t k = 0; k < dist.positions.size(); ++k) {
    const double pow_k = std::pow(dist.cumulative[k], batch);
    expected += (pow_k - prev_pow) *
                static_cast<double>(dist.positions[k] + block_mb);
    prev_pow = pow_k;
  }
  return expected;
}

}  // namespace

Status AnalyticInputs::Validate() const {
  if (layout.num_replicas != 0) {
    return Status::InvalidArgument(
        "the closed-form model assumes one copy per block (NR-0)");
  }
  if (hot_request_fraction < 0 || hot_request_fraction > 1) {
    return Status::InvalidArgument("hot_request_fraction must be in [0,1]");
  }
  if (queue_length <= 0) {
    return Status::InvalidArgument("queue_length must be positive");
  }
  TJ_RETURN_IF_ERROR(jukebox.Validate());
  return Status::Ok();
}

double ExpectedSweepSpanMb(const AnalyticInputs& inputs, TapeId tape,
                           double batch) {
  const auto tapes = BuildDistributions(inputs);
  TJ_CHECK(tape >= 0 && static_cast<size_t>(tape) < tapes.size());
  return ExpectedSpan(tapes[static_cast<size_t>(tape)], batch,
                      inputs.jukebox.block_size_mb);
}

StatusOr<AnalyticPrediction> PredictRoundRobin(
    const AnalyticInputs& inputs) {
  TJ_RETURN_IF_ERROR(inputs.Validate());
  const TimingModel model(inputs.jukebox.timing);
  const TimingParams& p = model.params();
  const int64_t block_mb = inputs.jukebox.block_size_mb;
  const auto queue = static_cast<double>(inputs.queue_length);

  const auto tapes = BuildDistributions(inputs);

  // Visit cost for a batch of `batch` requests drawn from `dist`: switch
  // in (eject + robot + load), forward locates covering the expected span,
  // the reads, and the end-of-sweep rewind (charged here; it happens just
  // before the next switch).
  auto visit_seconds = [&](const TapeDistribution& dist, double batch,
                           double* span_out) {
    const double span = ExpectedSpan(dist, batch, block_mb);
    if (span_out != nullptr) *span_out = span;
    const double reads =
        batch * model.ReadTime(block_mb, LocateKind::kForward);
    const double locate_distance =
        std::max(0.0, span - batch * static_cast<double>(block_mb));
    const double locates =
        batch * p.fwd_long_startup + p.fwd_long_per_mb * locate_distance;
    const double rewind = p.rev_long_startup + p.rev_long_per_mb * span +
                          p.bot_extra_seconds;
    return model.SwitchTime() + locates + reads + rewind;
  };

  // Steady state. A completed request immediately regenerates onto a
  // random tape, so requests can be served more than once per round-robin
  // cycle: with S requests served per cycle of length C and mean response
  // R = C/2 + v_mean/2 (wait for the tape's turn, then complete mid-sweep),
  // Little's law (population Q, zero think time) gives the fixed point
  //   S = Q * C / R,   b_t = S * p_t,   C = sum_t v_t(b_t).
  // For the uniform case this converges to b ~= 2Q / (T + 1).
  double served_per_cycle = queue;  // initial guess
  double cycle = 0;
  double mean_visit = 0;
  for (int iteration = 0; iteration < 64; ++iteration) {
    cycle = 0;
    mean_visit = 0;
    for (const TapeDistribution& dist : tapes) {
      const double batch = served_per_cycle * dist.request_probability;
      if (batch < 1e-9) continue;
      const double visit = visit_seconds(dist, batch, nullptr);
      cycle += visit;
      mean_visit += dist.request_probability * visit;
    }
    if (cycle <= 0) {
      return Status::InvalidArgument("no tape receives any requests");
    }
    const double response = cycle / 2.0 + mean_visit / 2.0;
    const double next = queue * cycle / response;
    if (std::abs(next - served_per_cycle) < 1e-9) {
      served_per_cycle = next;
      break;
    }
    served_per_cycle = next;
  }

  AnalyticPrediction prediction;
  prediction.cycle_seconds = cycle;
  double batches = 0;
  double spans = 0;
  int32_t visited = 0;
  for (const TapeDistribution& dist : tapes) {
    const double batch = served_per_cycle * dist.request_probability;
    if (batch < 1e-9) continue;
    double span = 0;
    visit_seconds(dist, batch, &span);
    batches += batch;
    spans += span;
    ++visited;
  }
  prediction.mean_batch_per_visit = visited > 0 ? batches / visited : 0;
  prediction.mean_span_mb = visited > 0 ? spans / visited : 0;
  prediction.throughput_req_per_min =
      served_per_cycle / (cycle / 60.0);
  // Little's law: R = Q / X.
  prediction.mean_delay_minutes =
      queue / prediction.throughput_req_per_min;
  return prediction;
}

}  // namespace tapejuke
