#include "core/sweep_runner.h"

#include <mutex>
#include <string>

#include "util/thread_pool.h"

namespace tapejuke {

uint64_t DerivePointSeed(uint64_t base_seed, uint64_t point_index) {
  // Two SplitMix64 steps over a state that mixes both inputs. The odd
  // multiplier keeps index 0 from collapsing onto the base seed.
  uint64_t state = base_seed + 0x9E3779B97F4A7C15ULL * (point_index + 1);
  (void)SplitMix64(&state);
  return SplitMix64(&state);
}

SweepRunner::SweepRunner(const SweepOptions& options) : options_(options) {}

ExperimentConfig SweepRunner::EffectiveConfig(ExperimentConfig config,
                                              size_t index) const {
  if (options_.derive_point_seeds) {
    config.sim.workload.seed = DerivePointSeed(options_.base_seed, index);
  }
  return config;
}

FarmConfig SweepRunner::EffectiveFarmConfig(FarmConfig config,
                                            size_t index) const {
  config.per_jukebox = EffectiveConfig(config.per_jukebox, index);
  return config;
}

Status SweepRunner::RunIndexed(
    size_t num_points, const std::function<Status(size_t)>& fn) const {
  if (num_points == 0) return Status::Ok();
  const int threads = options_.threads > 0 ? options_.threads
                                           : ThreadPool::DefaultThreads();
  std::vector<Status> statuses(num_points, Status::Ok());
  // An exception escaping a point must not kill the process (or, worse, a
  // pool worker): capture it into that point's status slot so it is
  // reported like any other per-point failure.
  const auto guarded = [&fn](size_t i) -> Status {
    try {
      return fn(i);
    } catch (const std::exception& e) {
      return Status::Internal(std::string("uncaught exception: ") +
                              e.what());
    } catch (...) {
      return Status::Internal("uncaught exception of unknown type");
    }
  };
  if (threads == 1) {
    for (size_t i = 0; i < num_points; ++i) statuses[i] = guarded(i);
  } else {
    ThreadPool pool(threads);
    pool.ParallelFor(0, static_cast<int64_t>(num_points),
                     [&](int64_t i) {
                       statuses[static_cast<size_t>(i)] =
                           guarded(static_cast<size_t>(i));
                     });
  }
  for (size_t i = 0; i < num_points; ++i) {
    if (!statuses[i].ok()) {
      return Status(statuses[i].code(), "sweep point " + std::to_string(i) +
                                            ": " + statuses[i].message());
    }
  }
  return Status::Ok();
}

StatusOr<std::vector<ExperimentResult>> SweepRunner::Run(
    const std::vector<ExperimentConfig>& points) const {
  // Validate everything up front so a bad point fails the sweep before any
  // simulation time is spent.
  for (size_t i = 0; i < points.size(); ++i) {
    const Status status = EffectiveConfig(points[i], i).Validate();
    if (!status.ok()) {
      return Status(status.code(), "sweep point " + std::to_string(i) +
                                       ": " + status.message());
    }
  }
  std::vector<ExperimentResult> results(points.size());
  const Status status = RunIndexed(points.size(), [&](size_t i) -> Status {
    StatusOr<ExperimentResult> result =
        ExperimentRunner::Run(EffectiveConfig(points[i], i));
    if (!result.ok()) return result.status();
    results[i] = std::move(result).value();
    return Status::Ok();
  });
  if (!status.ok()) return status;
  return results;
}

StatusOr<std::vector<FarmResult>> SweepRunner::RunFarms(
    const std::vector<FarmConfig>& points) const {
  for (size_t i = 0; i < points.size(); ++i) {
    const Status status = EffectiveFarmConfig(points[i], i).Validate();
    if (!status.ok()) {
      return Status(status.code(), "sweep point " + std::to_string(i) +
                                       ": " + status.message());
    }
  }
  std::vector<FarmResult> results(points.size());
  const Status status = RunIndexed(points.size(), [&](size_t i) -> Status {
    FarmSimulator farm(EffectiveFarmConfig(points[i], i));
    results[i] = farm.Run();
    return Status::Ok();
  });
  if (!status.ok()) return status;
  return results;
}

}  // namespace tapejuke
