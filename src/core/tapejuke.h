// Umbrella header: the full public API of the tapejuke library.
//
// tapejuke is a from-scratch reproduction of "Scheduling and Data
// Replication to Improve Tape Jukebox Performance" (Hillyer, Rastogi,
// Silberschatz; ICDE 1999): a measured tape timing model, a single-drive
// jukebox hardware model, hot/cold data placement and replication layouts,
// the full family of scheduling algorithms (FIFO, static and dynamic greedy
// variants, and the envelope-extension algorithm), and a discrete-event
// simulator with closed- and open-queuing workloads. See README.md for a
// quickstart and DESIGN.md for the architecture.

#ifndef TAPEJUKE_CORE_TAPEJUKE_H_
#define TAPEJUKE_CORE_TAPEJUKE_H_

#include "core/analytic.h"           // IWYU pragma: export
#include "core/cost_performance.h"   // IWYU pragma: export
#include "core/experiment.h"         // IWYU pragma: export
#include "core/farm.h"               // IWYU pragma: export
#include "layout/catalog.h"          // IWYU pragma: export
#include "layout/placement.h"        // IWYU pragma: export
#include "sched/envelope_scheduler.h"  // IWYU pragma: export
#include "sched/fifo_scheduler.h"    // IWYU pragma: export
#include "sched/greedy_scheduler.h"  // IWYU pragma: export
#include "sched/schedule_cost.h"     // IWYU pragma: export
#include "sched/scheduler.h"         // IWYU pragma: export
#include "sched/theory.h"            // IWYU pragma: export
#include "sched/validating_scheduler.h"  // IWYU pragma: export
#include "sim/lifecycle.h"           // IWYU pragma: export
#include "sim/metrics.h"             // IWYU pragma: export
#include "sim/multi_drive.h"         // IWYU pragma: export
#include "sim/simulator.h"           // IWYU pragma: export
#include "sim/trace.h"               // IWYU pragma: export
#include "sim/workload.h"            // IWYU pragma: export
#include "sim/write_path.h"          // IWYU pragma: export
#include "tape/jukebox.h"            // IWYU pragma: export
#include "tape/physical_drive.h"     // IWYU pragma: export
#include "tape/serpentine.h"         // IWYU pragma: export
#include "tape/timing_model.h"       // IWYU pragma: export
#include "util/flags.h"              // IWYU pragma: export
#include "util/rng.h"                // IWYU pragma: export
#include "util/stats.h"              // IWYU pragma: export
#include "util/status.h"             // IWYU pragma: export
#include "util/table.h"              // IWYU pragma: export

#endif  // TAPEJUKE_CORE_TAPEJUKE_H_
