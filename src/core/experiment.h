// Public experiment API: one struct per paper knob, a scheduler factory,
// and a runner that wires jukebox + layout + workload + algorithm together.
//
// This is the primary entry point for library users:
//
//   ExperimentConfig config;
//   config.layout.hot_fraction = 0.10;          // PH-10
//   config.sim.workload.hot_request_fraction = 0.40;  // RH-40
//   config.algorithm = AlgorithmSpec::Parse("dynamic-max-bandwidth").value();
//   ExperimentResult result = ExperimentRunner::Run(config).value();

#ifndef TAPEJUKE_CORE_EXPERIMENT_H_
#define TAPEJUKE_CORE_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "layout/placement.h"
#include "sched/scheduler.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "tape/jukebox.h"
#include "util/status.h"

namespace tapejuke {

/// Scheduling algorithm family.
enum class AlgorithmKind {
  kFifo,
  kStatic,    ///< defer-all greedy (5 tape policies)
  kDynamic,   ///< insert-on-the-fly greedy (5 tape policies)
  kEnvelope,  ///< envelope extension (3 tape policies)
};

/// A fully specified scheduling algorithm.
struct AlgorithmSpec {
  AlgorithmKind kind = AlgorithmKind::kDynamic;
  TapePolicy policy = TapePolicy::kMaxBandwidth;
  SchedulerOptions options;

  /// Canonical name, e.g. "dynamic max-bandwidth", "max-bandwidth
  /// envelope", "fifo".
  std::string Name() const;

  /// Parses names like "fifo", "static-round-robin",
  /// "dynamic-max-bandwidth", "envelope-max-bandwidth",
  /// "envelope-oldest-max-requests".
  static StatusOr<AlgorithmSpec> Parse(const std::string& name);

  /// Every algorithm the paper evaluates: FIFO, the five static and five
  /// dynamic greedy variants, and the three envelope variants.
  static std::vector<AlgorithmSpec> AllPaperAlgorithms();
};

/// Instantiates the scheduler for `spec` against a jukebox + catalog.
std::unique_ptr<Scheduler> CreateScheduler(const AlgorithmSpec& spec,
                                           const Jukebox* jukebox,
                                           const Catalog* catalog);

/// Everything needed to reproduce one simulation run.
struct ExperimentConfig {
  JukeboxConfig jukebox;
  LayoutSpec layout;
  SimulationConfig sim;
  AlgorithmSpec algorithm;

  Status Validate() const;
};

/// Run output: simulation metrics plus the layout actually built.
struct ExperimentResult {
  SimulationResult sim;
  LayoutStats layout;
  std::string algorithm_name;
};

/// Builds the jukebox and layout, runs the simulation, returns the result.
class ExperimentRunner {
 public:
  static StatusOr<ExperimentResult> Run(const ExperimentConfig& config);
};

/// Default simulated seconds per run for benches: the value of the
/// TAPEJUKE_SIM_SECONDS environment variable, or 2,000,000 (the paper used
/// 10,000,000; see DESIGN.md for the substitution note).
double DefaultSimSeconds();

/// One point of a paper-style parametric curve (load intensity traces the
/// curve; throughput and delay are the two output axes).
struct CurvePoint {
  int64_t queue_length = 0;             ///< closed model intensity knob
  double interarrival_seconds = 0;      ///< open model intensity knob
  double throughput_req_per_min = 0;
  double mean_delay_minutes = 0;
  SimulationResult sim;
};

/// Runs `base` at each closed-model queue length and returns the
/// throughput/delay curve (the paper's parametric-graph format).
StatusOr<std::vector<CurvePoint>> ThroughputDelayCurve(
    ExperimentConfig base, const std::vector<int64_t>& queue_lengths);

/// Open-model variant: sweeps mean interarrival times instead.
StatusOr<std::vector<CurvePoint>> OpenThroughputDelayCurve(
    ExperimentConfig base, const std::vector<double>& interarrivals);

}  // namespace tapejuke

#endif  // TAPEJUKE_CORE_EXPERIMENT_H_
