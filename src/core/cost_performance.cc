#include "core/cost_performance.h"

#include <algorithm>
#include <cmath>

namespace tapejuke {

StatusOr<std::vector<CostPerformancePoint>> CostPerformanceCurve(
    ExperimentConfig base, int64_t base_queue,
    const std::vector<int32_t>& replica_counts) {
  std::vector<CostPerformancePoint> curve;
  base.sim.workload.model = QueuingModel::kClosed;

  double baseline_throughput = 0;
  for (const int32_t nr : replica_counts) {
    CostPerformancePoint point;
    point.num_replicas = nr;
    point.expansion_factor =
        LayoutBuilder::ExpansionFactor(base.layout.hot_fraction, nr);

    ExperimentConfig config = base;
    config.layout.num_replicas = nr;
    // Best placements (§4.3 / §4.5): the beginning of tape without
    // replication, the end of tape with replication.
    config.layout.start_position = nr == 0 ? 0.0 : 1.0;
    point.effective_queue = std::max<int64_t>(
        1, std::llround(static_cast<double>(base_queue) /
                        point.expansion_factor));
    config.sim.workload.queue_length = point.effective_queue;

    StatusOr<ExperimentResult> result = ExperimentRunner::Run(config);
    if (!result.ok()) return result.status();
    point.throughput_mb_per_s = result->sim.throughput_mb_per_s;
    if (nr == 0) baseline_throughput = point.throughput_mb_per_s;
    point.cost_performance_ratio =
        baseline_throughput > 0
            ? point.throughput_mb_per_s / baseline_throughput
            : 1.0;
    curve.push_back(point);
  }
  return curve;
}

}  // namespace tapejuke
