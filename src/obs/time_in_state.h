// Per-drive time-in-state accounting in simulated time.
//
// The paper's whole argument is a time-accounting one (§2.2/§3: where do
// drive-seconds go — locating, reading, rewinding, or waiting on the
// robot arm?), so the simulator charges every advance of the clock to
// exactly one activity per drive. The accounting keeps an absolute-time
// cursor per drive and charges closed intervals [cursor, until], so the
// cursor tracks the simulation clock exactly and the per-drive identity
//
//   sum over states(seconds) == measured_seconds
//
// holds up to floating-point accumulation error (TJ_CHECKed with a
// relative tolerance in MetricsCollector::Finalize). Intervals that
// straddle the warm-up boundary are clipped so the totals cover only the
// measurement window; the optional TraceRecorder attached via
// set_recorder receives the *unclipped* intervals so traces show the
// warm-up too.

#ifndef TAPEJUKE_OBS_TIME_IN_STATE_H_
#define TAPEJUKE_OBS_TIME_IN_STATE_H_

#include <array>
#include <cstdint>
#include <vector>

namespace tapejuke {
namespace obs {

class TraceRecorder;

/// What a drive is doing with a span of simulated time. Every clock
/// advance in the simulators is charged to exactly one of these.
enum class DriveActivity : int {
  kIdle = 0,    ///< no work: waiting for arrivals or think time
  kSwitching,   ///< rewind-less portion of a tape switch: eject + load
  kRobot,       ///< waiting on / operated by the robot arm (incl. retries)
  kLocating,    ///< seeking to a block position on the mounted tape
  kReading,     ///< transferring data (client or repair source reads)
  kRewinding,   ///< rewinding before eject
  kBackground,  ///< scrub passes and repair writes (background class)
  kDown,        ///< drive failed, waiting out the repair interval
};

inline constexpr int kNumDriveActivities = 8;

/// Stable lower-case name ("idle", "switching", ...) used in traces,
/// results JSON, and trace_check.py's known-state list.
const char* DriveActivityName(DriveActivity activity);

/// Seconds one drive spent in each activity over the measurement window.
struct DriveTimeInState {
  std::array<double, kNumDriveActivities> seconds{};

  double& operator[](DriveActivity a) {
    return seconds[static_cast<int>(a)];
  }
  double operator[](DriveActivity a) const {
    return seconds[static_cast<int>(a)];
  }

  /// Sum over all states; equals measured_seconds by construction.
  double Total() const;
  /// Everything except idle and down time.
  double BusySeconds() const;
};

/// Charges intervals of simulated time to per-drive activities.
///
/// Usage: construct with the drive count and the warm-up end time, then
/// on every clock advance call ChargeTo(drive, activity, new_clock); at
/// the end of the run call FinishAt(end_time) to close trailing idle
/// gaps. ChargeTo with `until` at or before the drive's cursor is a
/// no-op, so callers may conservatively re-charge boundaries.
class TimeInStateAccounting {
 public:
  TimeInStateAccounting(int num_drives, double warmup_end);

  /// Charges [cursor(drive), until] to `activity` and advances the
  /// cursor. The portion before the warm-up end is excluded from the
  /// totals but still forwarded to the recorder, if any.
  void ChargeTo(int drive, DriveActivity activity, double until);

  /// Charges every drive's remaining [cursor, end_time] gap as idle.
  void FinishAt(double end_time);

  /// Attaches a recorder that receives every charged interval as a drive
  /// state slice. May be null (the default).
  void set_recorder(TraceRecorder* recorder) { recorder_ = recorder; }

  int num_drives() const { return static_cast<int>(per_drive_.size()); }
  const std::vector<DriveTimeInState>& per_drive() const {
    return per_drive_;
  }
  double cursor(int drive) const { return cursors_[drive]; }

 private:
  double warmup_end_;
  std::vector<DriveTimeInState> per_drive_;
  std::vector<double> cursors_;
  TraceRecorder* recorder_ = nullptr;
};

}  // namespace obs
}  // namespace tapejuke

#endif  // TAPEJUKE_OBS_TIME_IN_STATE_H_
