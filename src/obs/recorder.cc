#include "obs/recorder.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"
#include "util/json.h"

namespace tapejuke {
namespace obs {

namespace {

const char* OutcomeName(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kCompleted:
      return "completed";
    case RequestOutcome::kFailed:
      return "failed";
    case RequestOutcome::kExpired:
      return "expired";
    case RequestOutcome::kShed:
      return "shed";
    case RequestOutcome::kOpenAtEnd:
      return "open-at-end";
  }
  TJ_CHECK(false) << "unknown RequestOutcome";
  return "?";
}

/// Microsecond timestamp in shortest round-trip decimal form.
std::string TraceTs(double seconds) { return JsonDouble(seconds * 1e6); }

}  // namespace

TraceRecorder::TraceRecorder(TraceConfig config)
    : config_(std::move(config)) {
  TJ_CHECK_GE(config_.sample, 1) << "--trace-sample must be >= 1";
}

void TraceRecorder::SetTopology(const std::string& process_name,
                                int num_drives) {
  TJ_CHECK_GT(num_drives, 0);
  process_name_ = process_name;
  num_drives_ = num_drives;
}

bool TraceRecorder::SampleRequest(int64_t id) const {
  if (!trace_enabled()) return false;
  return id % config_.sample == 0;
}

void TraceRecorder::Append(Event event) {
  if (!trace_enabled()) return;
  events_.push_back(std::move(event));
}

void TraceRecorder::RequestArrived(int64_t id, BlockId block,
                                   bool background, double t) {
  if (!SampleRequest(id)) return;
  TJ_CHECK(open_requests_.emplace(id, true).second)
      << "request " << id << " arrived twice";
  Event e;
  e.ts = t;
  e.phase = 'b';
  e.tid = kRequestsTid;
  e.id = id;
  e.name = background ? "background-request" : "request";
  std::ostringstream args;
  args << "{\"block\":" << block << '}';
  e.args_json = args.str();
  Append(std::move(e));
}

void TraceRecorder::RequestScheduled(int64_t id, TapeId tape, double t) {
  if (!SampleRequest(id)) return;
  if (open_requests_.find(id) == open_requests_.end()) return;
  Event e;
  e.ts = t;
  e.phase = 'n';
  e.tid = kRequestsTid;
  e.id = id;
  e.name = "scheduled";
  std::ostringstream args;
  args << "{\"tape\":" << tape << '}';
  e.args_json = args.str();
  Append(std::move(e));
}

void TraceRecorder::RequestRetry(int64_t id, int attempt, double t) {
  if (!SampleRequest(id)) return;
  if (open_requests_.find(id) == open_requests_.end()) return;
  Event e;
  e.ts = t;
  e.phase = 'n';
  e.tid = kRequestsTid;
  e.id = id;
  e.name = "retry";
  std::ostringstream args;
  args << "{\"attempt\":" << attempt << '}';
  e.args_json = args.str();
  Append(std::move(e));
}

void TraceRecorder::RequestFailover(int64_t id, double t) {
  if (!SampleRequest(id)) return;
  if (open_requests_.find(id) == open_requests_.end()) return;
  Event e;
  e.ts = t;
  e.phase = 'n';
  e.tid = kRequestsTid;
  e.id = id;
  e.name = "failover";
  Append(std::move(e));
}

void TraceRecorder::RequestDone(int64_t id, RequestOutcome outcome,
                                double t) {
  if (!SampleRequest(id)) return;
  const auto it = open_requests_.find(id);
  if (it == open_requests_.end()) return;
  open_requests_.erase(it);
  Event e;
  e.ts = t;
  e.phase = 'e';
  e.tid = kRequestsTid;
  e.id = id;
  e.name = "request";
  std::ostringstream args;
  args << "{\"outcome\":\"" << OutcomeName(outcome) << "\"}";
  e.args_json = args.str();
  Append(std::move(e));
}

void TraceRecorder::DriveStateSlice(int drive, DriveActivity activity,
                                    double start, double end) {
  if (!trace_enabled()) return;
  if (end <= start) return;
  Event e;
  e.ts = start;
  e.dur = end - start;
  e.phase = 'X';
  e.tid = drive + 1;
  e.name = DriveActivityName(activity);
  Append(std::move(e));
}

void TraceRecorder::Instant(const std::string& name, double t,
                            const std::string& args_json) {
  if (!trace_enabled()) return;
  Event e;
  e.ts = t;
  e.phase = 'i';
  e.tid = kSchedulerTid;
  e.name = name;
  e.args_json = args_json;
  Append(std::move(e));
}

void TraceRecorder::RecordDecision(const DecisionRecord& record) {
  ++decisions_recorded_;
  if (trace_enabled()) {
    std::ostringstream args;
    args << "{\"scheduler\":\"" << JsonEscape(record.scheduler) << '"'
         << ",\"background\":" << (record.background ? "true" : "false")
         << ",\"drive\":" << record.drive
         << ",\"chosen\":" << record.chosen
         << ",\"mounted\":" << record.mounted
         << ",\"pending\":" << record.pending
         << ",\"background_queue\":" << record.background_queue
         << ",\"envelope_rounds\":" << record.envelope_rounds
         << ",\"tapes_rescored\":" << record.tapes_rescored
         << ",\"num_candidates\":" << record.candidates.size() << '}';
    Event e;
    e.ts = now_;
    e.phase = 'i';
    e.tid = kSchedulerTid;
    e.name = "reschedule";
    e.args_json = args.str();
    Append(std::move(e));
  }
  if (!config_.decision_log.empty()) {
    std::ostringstream line;
    line << "{\"t\":" << JsonDouble(now_) << ",\"scheduler\":\""
         << JsonEscape(record.scheduler) << '"'
         << ",\"background\":" << (record.background ? "true" : "false")
         << ",\"drive\":" << record.drive
         << ",\"chosen\":" << record.chosen
         << ",\"mounted\":" << record.mounted
         << ",\"pending\":" << record.pending
         << ",\"background_queue\":" << record.background_queue
         << ",\"envelope_rounds\":" << record.envelope_rounds
         << ",\"tapes_rescored\":" << record.tapes_rescored
         << ",\"candidates\":[";
    for (size_t i = 0; i < record.candidates.size(); ++i) {
      const TapeCandidateScore& c = record.candidates[i];
      if (i > 0) line << ',';
      line << "{\"tape\":" << c.tape << ",\"requests\":" << c.num_requests
           << ",\"bandwidth_mbps\":" << JsonDouble(c.bandwidth_mbps)
           << ",\"serves_oldest\":" << (c.serves_oldest ? "true" : "false")
           << '}';
    }
    line << "]}";
    decision_lines_.push_back(line.str());
  }
}

std::string TraceRecorder::RenderTraceJson() const {
  std::ostringstream out;
  out << "{\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&out, &first](const std::string& line) {
    if (!first) out << ",\n";
    first = false;
    out << line;
  };

  // Metadata: one process per jukebox, one thread per drive plus the
  // scheduler and shared request tracks.
  {
    std::ostringstream m;
    m << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      << "\"args\":{\"name\":\"" << JsonEscape(process_name_) << "\"}}";
    emit(m.str());
  }
  for (int drive = 0; drive < num_drives_; ++drive) {
    std::ostringstream m;
    m << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << drive + 1
      << ",\"name\":\"thread_name\",\"args\":{\"name\":\"drive " << drive
      << "\"}}";
    emit(m.str());
  }
  {
    std::ostringstream m;
    m << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << kSchedulerTid
      << ",\"name\":\"thread_name\",\"args\":{\"name\":\"scheduler\"}}";
    emit(m.str());
  }
  {
    std::ostringstream m;
    m << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << kRequestsTid
      << ",\"name\":\"thread_name\",\"args\":{\"name\":\"requests\"}}";
    emit(m.str());
  }

  for (const Event& e : events_) {
    std::ostringstream line;
    line << "{\"ph\":\"" << e.phase << "\",\"pid\":1,\"tid\":" << e.tid
         << ",\"ts\":" << TraceTs(e.ts);
    if (e.phase == 'X') line << ",\"dur\":" << TraceTs(e.dur);
    if (e.phase == 'b' || e.phase == 'e' || e.phase == 'n') {
      line << ",\"cat\":\"request\",\"id\":\"" << e.id << '"';
    }
    if (e.phase == 'i') line << ",\"s\":\"t\"";
    line << ",\"name\":\"" << JsonEscape(e.name) << '"';
    if (!e.args_json.empty()) line << ",\"args\":" << e.args_json;
    line << '}';
    emit(line.str());
  }
  out << "\n],\n\"displayTimeUnit\":\"ms\"}\n";
  return out.str();
}

Status TraceRecorder::Finalize(double end_time) {
  TJ_CHECK(!finalized_)
      << "TraceRecorder::Finalize called twice (it closes open spans and "
         "writes the output files, so it must run exactly once)";
  finalized_ = true;
  if (trace_enabled()) {
    // Close spans still open at the end of the run so every 'b' has a
    // matching 'e'; sorted by id for deterministic output.
    std::vector<int64_t> open;
    open.reserve(open_requests_.size());
    for (const auto& [id, unused] : open_requests_) open.push_back(id);
    std::sort(open.begin(), open.end());
    for (const int64_t id : open) {
      RequestDone(id, RequestOutcome::kOpenAtEnd, end_time);
    }
    TJ_CHECK(open_requests_.empty());

    // Events are appended roughly in clock order, but multi-drive charge
    // points interleave; a stable sort by timestamp yields a
    // deterministic, monotone stream.
    std::stable_sort(
        events_.begin(), events_.end(),
        [](const Event& a, const Event& b) { return a.ts < b.ts; });
    const Status status =
        WriteTextFile(config_.trace_out, RenderTraceJson());
    if (!status.ok()) return status;
  }
  if (!config_.decision_log.empty()) {
    std::ostringstream out;
    for (const std::string& line : decision_lines_) out << line << '\n';
    const Status status = WriteTextFile(config_.decision_log, out.str());
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace tapejuke
