// Scheduler decision records: what a major reschedule saw and chose.
//
// Schedulers live below the simulator and know nothing about wall or
// simulated clocks, so the hook is a push interface: a scheduler builds a
// DecisionRecord at each major reschedule and hands it to an attached
// DecisionSink (no-op when none is attached — the default, costing one
// branch per reschedule). The simulator timestamps records by calling
// TraceRecorder::SetNow before invoking the scheduler.
//
// This header deliberately uses primitive ids (tape/request counts)
// rather than sched/ types: obs sits below sched in the layering so that
// every scheduler can include it.

#ifndef TAPEJUKE_OBS_DECISION_H_
#define TAPEJUKE_OBS_DECISION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tape/types.h"

namespace tapejuke {
namespace obs {

/// One candidate tape considered during a major reschedule.
struct TapeCandidateScore {
  TapeId tape = -1;
  /// Pending requests this tape can serve.
  int64_t num_requests = 0;
  /// Estimated effective bandwidth (MB/s) of visiting this tape, 0 when
  /// the policy does not score by bandwidth.
  double bandwidth_mbps = 0.0;
  /// True if this tape holds a replica of the oldest pending request.
  bool serves_oldest = false;
};

/// Everything one major reschedule saw and decided.
struct DecisionRecord {
  /// Scheduler name ("fifo", "greedy", "envelope").
  std::string scheduler;
  /// True for a background (repair-class) reschedule of an idle drive.
  bool background = false;
  /// Which drive the decision is for (always 0 in the single-drive sim).
  int drive = 0;
  TapeId chosen = -1;   ///< tape selected for the next sweep; -1 = none
  TapeId mounted = -1;  ///< tape mounted when the decision was made
  int64_t pending = 0;  ///< client requests pending at decision time
  int64_t background_queue = 0;  ///< background requests pending
  /// Envelope bookkeeping for this decision (0 for fifo/greedy):
  /// extension rounds run and tapes rescored by the incremental kernel.
  int64_t envelope_rounds = 0;
  int64_t tapes_rescored = 0;
  std::vector<TapeCandidateScore> candidates;
};

/// Receiver for decision records. Implemented by TraceRecorder; the
/// Scheduler base class holds a nullable pointer to one.
class DecisionSink {
 public:
  virtual ~DecisionSink() = default;
  virtual void RecordDecision(const DecisionRecord& record) = 0;
};

}  // namespace obs
}  // namespace tapejuke

#endif  // TAPEJUKE_OBS_DECISION_H_
