// TraceRecorder: Chrome trace_event capture of a simulation run.
//
// Records three kinds of events in *simulated* time and exports them as
// a Chrome trace_event JSON document loadable in Perfetto or
// chrome://tracing (docs/OBSERVABILITY.md describes the format):
//
//  * per-drive state slices ("X" complete events, one Perfetto thread
//    per drive) fed by TimeInStateAccounting;
//  * per-request lifecycle spans (async nestable "b"/"e" pairs keyed by
//    request id on a shared "requests" thread, with "n" async instants
//    for scheduled / retry / failover transitions);
//  * scheduler decision and repair instants ("i" thread instants on a
//    "scheduler" thread), with an optional JSONL stream carrying the
//    full candidate lists (one compact object per line).
//
// Everything is buffered in memory and written once at Finalize, sorted
// by timestamp, so output is deterministic: timestamps come from the
// simulated clock only and the same seed yields a byte-identical trace
// at any --threads. Recording is strictly opt-in — a default-constructed
// TraceConfig disables everything and every hook is one branch.

#ifndef TAPEJUKE_OBS_RECORDER_H_
#define TAPEJUKE_OBS_RECORDER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/decision.h"
#include "obs/time_in_state.h"
#include "tape/types.h"
#include "util/status.h"

namespace tapejuke {
namespace obs {

/// Opt-in observability knobs, carried inside SimulationConfig. Never
/// serialized into results JSON: tracing must not change results output.
struct TraceConfig {
  /// Chrome trace_event JSON output path; empty disables the trace.
  std::string trace_out;
  /// Decision JSONL output path; empty disables the decision log.
  std::string decision_log;
  /// Record the lifecycle of every Nth request (by id); drive state
  /// slices and decision records are never sampled.
  int64_t sample = 1;

  bool enabled() const {
    return !trace_out.empty() || !decision_log.empty();
  }
};

/// How a request span ended; rendered into the closing event's args.
enum class RequestOutcome { kCompleted, kFailed, kExpired, kShed, kOpenAtEnd };

/// Buffers simulation events and writes trace/decision files at the end
/// of a run. All timestamps are simulated seconds.
class TraceRecorder : public DecisionSink {
 public:
  explicit TraceRecorder(TraceConfig config);

  bool enabled() const { return config_.enabled(); }
  bool trace_enabled() const { return !config_.trace_out.empty(); }

  /// Names the Perfetto process/threads; call once before recording.
  void SetTopology(const std::string& process_name, int num_drives);

  /// Sets the simulated clock used to timestamp decision records (the
  /// schedulers pushing them do not know the clock).
  void SetNow(double now) { now_ = now; }

  /// True if request `id`'s lifecycle should be recorded (sampling).
  bool SampleRequest(int64_t id) const;

  // Request lifecycle. Callers are expected to gate on SampleRequest so
  // unsampled requests cost one branch.
  void RequestArrived(int64_t id, BlockId block, bool background,
                      double t);
  void RequestScheduled(int64_t id, TapeId tape, double t);
  void RequestRetry(int64_t id, int attempt, double t);
  void RequestFailover(int64_t id, double t);
  void RequestDone(int64_t id, RequestOutcome outcome, double t);

  /// One drive state interval [start, end); zero-length slices ignored.
  void DriveStateSlice(int drive, DriveActivity activity, double start,
                       double end);

  /// Free-form instant on the scheduler thread (repair/scrub milestones).
  /// `args_json` is a pre-rendered JSON object ("{...}") or empty.
  void Instant(const std::string& name, double t,
               const std::string& args_json = std::string());

  /// DecisionSink: records an instant (and a JSONL line when configured).
  void RecordDecision(const DecisionRecord& record) override;

  /// Closes still-open request spans at `end_time`, then writes the
  /// trace JSON and decision log files. Call exactly once: a second call
  /// is a bug (it would re-close spans and re-write the outputs) and
  /// TJ_CHECK-fails.
  Status Finalize(double end_time);

  // Introspection for tests.
  int64_t num_events() const { return static_cast<int64_t>(events_.size()); }
  int64_t num_decisions() const { return decisions_recorded_; }

 private:
  struct Event {
    double ts = 0;       ///< seconds
    double dur = 0;      ///< seconds; only for 'X'
    char phase = 'i';    ///< 'X', 'b', 'e', 'n', 'i'
    int tid = 0;
    int64_t id = -1;     ///< async span id; -1 for non-async events
    std::string name;
    std::string args_json;  ///< pre-rendered "{...}" or empty
  };

  void Append(Event event);
  std::string RenderTraceJson() const;

  TraceConfig config_;
  std::string process_name_ = "jukebox";
  int num_drives_ = 1;
  double now_ = 0;

  std::vector<Event> events_;
  /// Request id -> open span (guards balanced b/e emission).
  std::unordered_map<int64_t, bool> open_requests_;
  std::vector<std::string> decision_lines_;
  int64_t decisions_recorded_ = 0;
  bool finalized_ = false;
};

// Perfetto thread ids: drives are 1..num_drives, then the scheduler and
// the shared request track.
inline constexpr int kSchedulerTid = 1000;
inline constexpr int kRequestsTid = 1001;

}  // namespace obs
}  // namespace tapejuke

#endif  // TAPEJUKE_OBS_RECORDER_H_
