#include "obs/time_in_state.h"

#include <algorithm>

#include "obs/recorder.h"
#include "util/check.h"

namespace tapejuke {
namespace obs {

const char* DriveActivityName(DriveActivity activity) {
  switch (activity) {
    case DriveActivity::kIdle:
      return "idle";
    case DriveActivity::kSwitching:
      return "switching";
    case DriveActivity::kRobot:
      return "robot";
    case DriveActivity::kLocating:
      return "locating";
    case DriveActivity::kReading:
      return "reading";
    case DriveActivity::kRewinding:
      return "rewinding";
    case DriveActivity::kBackground:
      return "background";
    case DriveActivity::kDown:
      return "down";
  }
  TJ_CHECK(false) << "unknown DriveActivity "
                  << static_cast<int>(activity);
  return "?";
}

double DriveTimeInState::Total() const {
  double total = 0;
  for (const double s : seconds) total += s;
  return total;
}

double DriveTimeInState::BusySeconds() const {
  return Total() - (*this)[DriveActivity::kIdle] -
         (*this)[DriveActivity::kDown];
}

TimeInStateAccounting::TimeInStateAccounting(int num_drives,
                                             double warmup_end)
    : warmup_end_(warmup_end),
      per_drive_(num_drives),
      cursors_(num_drives, 0.0) {
  TJ_CHECK_GT(num_drives, 0);
  TJ_CHECK_GE(warmup_end, 0.0);
}

void TimeInStateAccounting::ChargeTo(int drive, DriveActivity activity,
                                     double until) {
  TJ_CHECK_GE(drive, 0);
  TJ_CHECK_LT(drive, static_cast<int>(cursors_.size()));
  double& cursor = cursors_[drive];
  if (until <= cursor) return;
  const double measured_from = std::max(cursor, warmup_end_);
  if (until > measured_from) {
    per_drive_[drive][activity] += until - measured_from;
  }
  if (recorder_ != nullptr) {
    recorder_->DriveStateSlice(drive, activity, cursor, until);
  }
  cursor = until;
}

void TimeInStateAccounting::FinishAt(double end_time) {
  for (int drive = 0; drive < num_drives(); ++drive) {
    ChargeTo(drive, DriveActivity::kIdle, end_time);
  }
}

}  // namespace obs
}  // namespace tapejuke
