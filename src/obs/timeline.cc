#include "obs/timeline.h"

#include <algorithm>
#include <utility>

#include "util/check.h"
#include "util/json.h"

namespace tapejuke {
namespace obs {

namespace {

// Renders an int64 without locale surprises.
std::string JsonInt(int64_t v) { return std::to_string(v); }

// Renders ["a","b",...] for the header name lists.
std::string NameArray(const std::vector<std::string>& names) {
  std::string out = "[";
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(names[i]) + "\"";
  }
  out += "]";
  return out;
}

}  // namespace

WindowStat::WindowStat(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi), buckets_(buckets), hist_(lo, hi, buckets) {}

void WindowStat::Add(double x) {
  hist_.Add(x);
  stat_.Add(x);
}

void WindowStat::Reset() {
  hist_ = Histogram(lo_, hi_, buckets_);
  stat_ = RunningStat();
}

void StatRegistry::CheckName(const std::string& name) const {
  TJ_CHECK(!frozen_) << "StatRegistry frozen (first sample already emitted); "
                     << "cannot register \"" << name << "\"";
  TJ_CHECK(!name.empty()) << "empty stat name";
  auto taken = [&name](const auto& probes) {
    for (const auto& p : probes) {
      if (p.name == name) return true;
    }
    return false;
  };
  TJ_CHECK(!taken(counters_) && !taken(gauges_) && !taken(accums_) &&
           !taken(windows_))
      << "duplicate stat name \"" << name << "\"";
}

void StatRegistry::AddCounter(const std::string& name, CounterFn fn) {
  CheckName(name);
  counters_.push_back({name, std::move(fn)});
}

void StatRegistry::AddGauge(const std::string& name, GaugeFn fn) {
  CheckName(name);
  gauges_.push_back({name, std::move(fn)});
}

void StatRegistry::AddAccum(const std::string& name, GaugeFn fn) {
  CheckName(name);
  accums_.push_back({name, std::move(fn)});
}

WindowStat* StatRegistry::AddWindow(const std::string& name, double lo,
                                    double hi, int buckets) {
  CheckName(name);
  windows_.push_back({name, std::make_unique<WindowStat>(lo, hi, buckets)});
  return windows_.back().stat.get();
}

TimelineSampler::TimelineSampler(const TimelineConfig& config)
    : config_(config), next_due_(config.interval_seconds) {
  TJ_CHECK(config_.interval_seconds > 0)
      << "TimelineSampler requires a positive interval";
}

std::vector<std::string> TimelineSampler::counter_names() const {
  std::vector<std::string> names;
  names.reserve(registry_.counters_.size());
  for (const auto& c : registry_.counters_) names.push_back(c.name);
  return names;
}

void TimelineSampler::EnsureHeader() {
  if (registry_.frozen_) return;
  registry_.frozen_ = true;

  std::vector<std::string> counters, gauges, accums, windows;
  for (const auto& p : registry_.counters_) counters.push_back(p.name);
  for (const auto& p : registry_.gauges_) gauges.push_back(p.name);
  for (const auto& p : registry_.accums_) accums.push_back(p.name);
  for (const auto& w : registry_.windows_) windows.push_back(w.name);

  header_json_ = "{\"kind\":\"header\",\"schema_version\":1"
                 ",\"interval_seconds\":" +
                 JsonDouble(config_.interval_seconds) +
                 ",\"counters\":" + NameArray(counters) +
                 ",\"gauges\":" + NameArray(gauges) +
                 ",\"accums\":" + NameArray(accums) +
                 ",\"windows\":" + NameArray(windows) + "}";

  prev_counters_.assign(registry_.counters_.size(), 0);
  prev_accums_.assign(registry_.accums_.size(), 0.0);
  for (size_t i = 0; i < registry_.gauges_.size(); ++i) {
    if (registry_.gauges_[i].name == "queue_depth") {
      peak_gauge_index_ = static_cast<int>(i);
      break;
    }
  }
}

void TimelineSampler::EmitRow(double t) {
  EnsureHeader();

  std::string row = "{\"kind\":\"sample\",\"t\":" + JsonDouble(t);
  if (config_.box >= 0) row += ",\"box\":" + std::to_string(config_.box);

  row += ",\"counters\":{";
  for (size_t i = 0; i < registry_.counters_.size(); ++i) {
    int64_t v = registry_.counters_[i].fn();
    TJ_CHECK_GE(v, prev_counters_[i])
        << "counter \"" << registry_.counters_[i].name << "\" decreased";
    prev_counters_[i] = v;
    if (i > 0) row += ",";
    row += "\"" + JsonEscape(registry_.counters_[i].name) +
           "\":" + JsonInt(v);
  }

  row += "},\"gauges\":{";
  for (size_t i = 0; i < registry_.gauges_.size(); ++i) {
    double v = registry_.gauges_[i].fn();
    if (static_cast<int>(i) == peak_gauge_index_) {
      summary_.peak_queue_depth = std::max(summary_.peak_queue_depth, v);
    }
    if (i > 0) row += ",";
    row += "\"" + JsonEscape(registry_.gauges_[i].name) +
           "\":" + JsonDouble(v);
  }

  row += "},\"accums\":{";
  for (size_t i = 0; i < registry_.accums_.size(); ++i) {
    double v = registry_.accums_[i].fn();
    double delta = v - prev_accums_[i];
    prev_accums_[i] = v;
    if (i > 0) row += ",";
    row += "\"" + JsonEscape(registry_.accums_[i].name) +
           "\":" + JsonDouble(delta);
  }

  row += "},\"windows\":{";
  for (size_t i = 0; i < registry_.windows_.size(); ++i) {
    WindowStat* w = registry_.windows_[i].stat.get();
    double p50 = w->Quantile(0.50);
    double p99 = w->Quantile(0.99);
    if (w->count() > 0) {
      summary_.worst_window_p99 = std::max(summary_.worst_window_p99, p99);
    }
    if (i > 0) row += ",";
    row += "\"" + JsonEscape(registry_.windows_[i].name) +
           "\":{\"count\":" + JsonInt(w->count()) +
           ",\"p50\":" + JsonDouble(p50) + ",\"p99\":" + JsonDouble(p99) +
           "}";
    w->Reset();
  }
  row += "}}";

  rows_.push_back({t, std::move(row)});
  last_row_time_ = t;
  ++summary_.samples;
}

void TimelineSampler::SampleUpTo(double t) {
  if (finished_) return;
  while (next_due_ <= t) {
    EmitRow(next_due_);
    next_due_ += config_.interval_seconds;
  }
}

std::string TimelineSampler::RenderSummary() const {
  std::string out = "{\"kind\":\"summary\"";
  out += ",\"timeline_samples\":" + JsonInt(summary_.samples);
  out += ",\"peak_queue_depth\":" + JsonDouble(summary_.peak_queue_depth);
  out += ",\"worst_window_p99\":" + JsonDouble(summary_.worst_window_p99);
  out += ",\"final_counters\":{";
  for (size_t i = 0; i < registry_.counters_.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(registry_.counters_[i].name) +
           "\":" + JsonInt(summary_.final_counters[i]);
  }
  out += "}}";
  return out;
}

Status TimelineSampler::FinishAt(double end_time) {
  TJ_CHECK(!finished_) << "TimelineSampler::FinishAt called twice";
  SampleUpTo(end_time);
  // Always close with a row at the run's exact end time so the final
  // cumulative counters line up with the whole-run totals in results
  // JSON (timeline_check.py asserts this identity).
  if (last_row_time_ < end_time) EmitRow(end_time);
  finished_ = true;

  summary_.final_counters = prev_counters_;
  summary_json_ = RenderSummary();

  if (config_.buffer_only || config_.out.empty()) return Status::Ok();
  return WriteTextFile(config_.out, RenderJsonl());
}

std::string TimelineSampler::RenderJsonl() const {
  std::string out = header_json_ + "\n";
  for (const Row& row : rows_) {
    out += row.json;
    out += "\n";
  }
  out += summary_json_ + "\n";
  return out;
}

}  // namespace obs
}  // namespace tapejuke
