// Deterministic time-series telemetry: a stat registry plus a sim-time
// sampler that turns a run into an inspectable JSONL timeline.
//
// End-of-run aggregates cannot distinguish a run that sheds for three
// simulated hours and recovers from one that degrades steadily. The
// timeline closes that gap: layers (scheduler, admission, fault/repair,
// drives, metrics) register probes into a StatRegistry, and a
// TimelineSampler reads every probe at a fixed simulated-time interval,
// emitting one JSONL row per sample. Four probe kinds:
//
//  * counter — cumulative int64 (requests issued/completed/shed, ...);
//    rows carry the cumulative value, validated non-decreasing;
//  * gauge — instantaneous double (queue depth, outstanding, admission
//    shed level, repair backlog, live-replica fraction);
//  * accum — cumulative double; rows carry the delta since the previous
//    row (per-state time-in-state seconds);
//  * window — a histogram reset at every row; rows carry {count, p50,
//    p99} of the observations inside the interval (per-tenant-class
//    delay, from which goodput per interval = count / interval).
//
// Sampling is driven by the simulators' existing event machinery: the
// single-drive simulator interleaves SampleUpTo with the calendar-queue
// expiry stream, the multi-drive simulator samples up to each main-loop
// event before processing it. Rows are pure observation — a sample never
// advances the simulation clock, marks warm-up, or wakes a drive — and
// all timestamps come from the simulated clock, so output is
// byte-identical at any --threads and results JSON is byte-identical
// with the timeline on or off. Everything is buffered and written once
// at FinishAt (docs/OBSERVABILITY.md documents the schema;
// tools/timeline_check.py validates it).

#ifndef TAPEJUKE_OBS_TIMELINE_H_
#define TAPEJUKE_OBS_TIMELINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/stats.h"
#include "util/status.h"

namespace tapejuke {
namespace obs {

/// Opt-in timeline knobs, carried inside SimulationConfig next to the
/// TraceConfig. Never serialized into results JSON: sampling must not
/// change results output.
struct TimelineConfig {
  /// JSONL output path; empty disables writing (see buffer_only).
  std::string out;
  /// Simulated seconds between samples; <= 0 disables the timeline.
  double interval_seconds = 0;
  /// Keep rows in memory instead of writing a file (the farm runs each
  /// box buffered and writes per-box plus merged documents itself).
  bool buffer_only = false;
  /// Farm box index stamped into every sample row; -1 for standalone
  /// runs (no "box" key is emitted).
  int32_t box = -1;

  bool enabled() const {
    return interval_seconds > 0 && (!out.empty() || buffer_only);
  }
};

/// A histogram over one sampling interval: observations accumulate
/// between rows and Reset() clears them after each emission. Quantiles
/// are overflow-honest — when the target mass lands past the histogram
/// range the tracked window maximum is returned instead of saturating
/// at the range bound (the same discipline as the end-of-run p99).
class WindowStat {
 public:
  WindowStat(double lo, double hi, int buckets);

  void Add(double x);
  void Reset();

  int64_t count() const { return hist_.count(); }
  int64_t overflow() const { return hist_.overflow(); }
  double window_max() const { return stat_.max(); }
  double Quantile(double q) const { return hist_.Quantile(q, stat_.max()); }

 private:
  double lo_;
  double hi_;
  int buckets_;
  Histogram hist_;
  RunningStat stat_;
};

/// Named probes the sampler reads at every row. Registration order is
/// emission order; names must be unique per kind. The registry freezes
/// at the first sample — registering after that is a bug (TJ_CHECK).
class StatRegistry {
 public:
  using CounterFn = std::function<int64_t()>;
  using GaugeFn = std::function<double()>;

  /// Cumulative int64 probe; rows carry the value, non-decreasing.
  void AddCounter(const std::string& name, CounterFn fn);
  /// Instantaneous double probe; rows carry the raw value.
  void AddGauge(const std::string& name, GaugeFn fn);
  /// Cumulative double probe; rows carry the delta since the last row.
  void AddAccum(const std::string& name, GaugeFn fn);
  /// Windowed histogram; rows carry {count, p50, p99} and reset it. The
  /// returned pointer is stable and owned by the registry.
  WindowStat* AddWindow(const std::string& name, double lo, double hi,
                        int buckets);

  size_t num_counters() const { return counters_.size(); }
  size_t num_gauges() const { return gauges_.size(); }
  size_t num_accums() const { return accums_.size(); }
  size_t num_windows() const { return windows_.size(); }

 private:
  friend class TimelineSampler;

  template <typename Fn>
  struct Probe {
    std::string name;
    Fn fn;
  };
  struct Window {
    std::string name;
    std::unique_ptr<WindowStat> stat;
  };

  void CheckName(const std::string& name) const;

  bool frozen_ = false;
  std::vector<Probe<CounterFn>> counters_;
  std::vector<Probe<GaugeFn>> gauges_;
  std::vector<Probe<GaugeFn>> accums_;
  std::vector<Window> windows_;
};

/// Whole-run roll-up of the emitted rows, appended as the document's
/// final JSONL line (never added to results JSON, which must stay
/// byte-identical with the timeline on).
struct TimelineSummary {
  int64_t samples = 0;
  /// Max over rows of the gauge named "queue_depth" (0 if absent).
  double peak_queue_depth = 0;
  /// Max over rows and windows of the interval p99 (count > 0 only).
  double worst_window_p99 = 0;
  /// Final cumulative counter values, in registration order.
  std::vector<int64_t> final_counters;
};

/// Reads every registered probe at a fixed simulated-time cadence and
/// buffers one JSONL row per sample. The owning simulator calls
/// SampleUpTo(t) whenever its event loop is about to advance past t and
/// FinishAt(end) once at the end of the run, which emits a final row at
/// the run's exact end time (so cumulative counters in the last row
/// equal the whole-run totals in results JSON), renders the summary,
/// and writes the file unless buffer_only.
class TimelineSampler {
 public:
  struct Row {
    double t = 0;
    std::string json;
  };

  explicit TimelineSampler(const TimelineConfig& config);

  StatRegistry* registry() { return &registry_; }

  /// Next due sample time (first sample fires at one interval).
  double next_due() const { return next_due_; }

  /// Emits a row for every due sample time <= t, reading probes in
  /// time order before the caller processes its event at t.
  void SampleUpTo(double t);

  /// Emits remaining rows plus a final row at `end_time`, builds the
  /// summary, and writes `config.out` unless buffer_only. Call once.
  Status FinishAt(double end_time);

  // Accessors for the farm merge and for tests; header/summary are
  // valid after the first row / FinishAt respectively.
  const std::vector<Row>& rows() const { return rows_; }
  const std::string& header_json() const { return header_json_; }
  const std::string& summary_json() const { return summary_json_; }
  const TimelineSummary& summary() const { return summary_; }
  std::vector<std::string> counter_names() const;

  /// The full document: header, rows, summary — one JSON object per
  /// line. Valid after FinishAt.
  std::string RenderJsonl() const;

 private:
  void EnsureHeader();
  void EmitRow(double t);
  std::string RenderSummary() const;

  TimelineConfig config_;
  StatRegistry registry_;
  double next_due_;
  double last_row_time_ = -1;
  bool finished_ = false;

  std::vector<Row> rows_;
  std::string header_json_;
  std::string summary_json_;
  TimelineSummary summary_;

  /// Previous cumulative values (delta/monotonicity bookkeeping).
  std::vector<int64_t> prev_counters_;
  std::vector<double> prev_accums_;
  /// Index of the gauge named "queue_depth", -1 if absent.
  int peak_gauge_index_ = -1;
};

}  // namespace obs
}  // namespace tapejuke

#endif  // TAPEJUKE_OBS_TIMELINE_H_
