// Figure 10: cost-effectiveness of replication (§4.8).
//
// (a) The analytic storage expansion factor E = 1 + NR * PH as a function
//     of the replica count and the hot percentage.
// (b) The cost-performance ratio of replication vs no replication: each
//     replicated point runs at queue length Q/E (the farm needs E times
//     more jukeboxes, so each sees 1/E of the workload). Curves for four
//     skews. Paper answers (Q8): moderate skew can lose a few percent;
//     very high skew gains ~8% with 2 replicas and ~10% at full
//     replication (~14% at queue 20); spare-capacity replication is free.

#include <algorithm>
#include <cmath>

#include "bench_common.h"

namespace tapejuke {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options;
  int64_t base_queue = 60;
  FlagSet flags("Figure 10: cost-performance of replication");
  flags.AddInt64("base-queue", &base_queue,
                 "non-replicated per-jukebox queue length (paper: 60; "
                 "try 20 for the light-load variant)");
  int exit_code = 0;
  if (!options.Parse(argc, argv, "Figure 10", &exit_code, &flags)) {
    return exit_code;
  }
  BenchContext ctx("fig10_cost_performance", options);

  // (a) Expansion factor: analytic, no simulation.
  Table expansion({"replicas", "PH-5", "PH-10", "PH-20", "PH-30"});
  expansion.set_precision(2);
  for (int nr = 0; nr <= 9; ++nr) {
    expansion.AddRow({static_cast<int64_t>(nr),
                      LayoutBuilder::ExpansionFactor(0.05, nr),
                      LayoutBuilder::ExpansionFactor(0.10, nr),
                      LayoutBuilder::ExpansionFactor(0.20, nr),
                      LayoutBuilder::ExpansionFactor(0.30, nr)});
  }
  ctx.Emit("Figure 10(a): expansion factor E = 1 + NR x PH", &expansion);

  // (b) Cost-performance ratio vs replica count, by skew. The whole
  // rh x nr grid is one flat sweep (the §4.8 Q/E scaling per point);
  // ratios against each skew's NR-0 baseline are computed afterwards.
  ExperimentConfig base = PaperBaseConfig(options);
  base.algorithm = AlgorithmSpec::Parse("envelope-max-bandwidth").value();
  base.sim.workload.model = QueuingModel::kClosed;
  std::cout << "\nFigure 10(b) | PH-10 | queue " << base_queue
            << "/E per jukebox | max-bandwidth envelope\n";
  const int skews[] = {20, 40, 60, 80};
  const int32_t replica_counts[] = {0, 1, 2, 3, 5, 7, 9};
  std::vector<GridPoint> grid;
  for (const int rh : skews) {
    for (const int32_t nr : replica_counts) {
      ExperimentConfig config = base;
      config.sim.workload.hot_request_fraction = rh / 100.0;
      config.layout.num_replicas = nr;
      // Best placements (§4.3 / §4.5): the beginning of tape without
      // replication, the end of tape with replication.
      config.layout.start_position = nr == 0 ? 0.0 : 1.0;
      const double expansion_factor =
          LayoutBuilder::ExpansionFactor(config.layout.hot_fraction, nr);
      const int64_t effective_queue = std::max<int64_t>(
          1, std::llround(static_cast<double>(base_queue) /
                          expansion_factor));
      config.sim.workload.queue_length = effective_queue;
      grid.push_back(GridPoint{"RH-" + std::to_string(rh) + "/NR-" +
                                   std::to_string(nr),
                               static_cast<double>(effective_queue),
                               config});
    }
  }
  const std::vector<ExperimentResult> results = ctx.RunGrid(grid);

  Table ratio({"rh_pct", "replicas", "expansion", "queue_per_jukebox",
               "throughput_mb_s", "cost_perf_ratio"});
  size_t point = 0;
  for (const int rh : skews) {
    double baseline_throughput = 0;
    for (const int32_t nr : replica_counts) {
      const GridPoint& gp = grid[point];
      const double throughput = results[point].sim.throughput_mb_per_s;
      if (nr == 0) baseline_throughput = throughput;
      ratio.AddRow({static_cast<int64_t>(rh), static_cast<int64_t>(nr),
                    LayoutBuilder::ExpansionFactor(
                        gp.config.layout.hot_fraction, nr),
                    static_cast<int64_t>(gp.load), throughput,
                    baseline_throughput > 0
                        ? throughput / baseline_throughput
                        : 1.0});
      ++point;
    }
  }
  ctx.Emit("Figure 10(b): cost-performance ratio vs replication", &ratio);

  // Spare-capacity comparison (§4.8): the same (smaller) dataset stored
  // three ways. "Spread, spare at tape ends" is the natural state of a
  // gradually filling jukebox — the baseline the paper's "for free"
  // recommendation upgrades. "Packed" compacts cold data onto as few tapes
  // as possible (the paper's cost-performance reference scheme); packing is
  // itself a locality optimization, but it requires rewriting every tape.
  ExperimentConfig replicated = base;
  replicated.layout.layout = HotLayout::kVertical;
  replicated.layout.num_replicas = 9;
  replicated.layout.start_position = 1.0;
  replicated.sim.workload.queue_length = base_queue;
  ExperimentConfig spread = replicated;
  spread.layout.num_replicas = 0;
  spread.layout.start_position = 0.0;
  {
    Jukebox probe(replicated.jukebox);
    spread.layout.logical_blocks_override =
        LayoutBuilder::MaxLogicalBlocks(probe, replicated.layout);
  }
  ExperimentConfig packed = spread;
  packed.layout.pack_cold = true;

  std::vector<GridPoint> spare_grid = {
      {"spread, spare space empty", static_cast<double>(base_queue),
       spread},
      {"packed onto fewest tapes, rest empty",
       static_cast<double>(base_queue), packed},
      {"spread, spare space holds replicas",
       static_cast<double>(base_queue), replicated},
  };
  const std::vector<ExperimentResult> spare_results =
      ctx.RunGrid(spare_grid);

  Table spare_table({"scheme", "throughput_mb_s", "delay_min",
                     "switches_per_h"});
  for (size_t i = 0; i < spare_grid.size(); ++i) {
    spare_table.AddRow({spare_grid[i].series,
                        spare_results[i].sim.throughput_mb_per_s,
                        spare_results[i].sim.mean_delay_minutes,
                        spare_results[i].sim.tape_switches_per_hour});
  }
  ctx.Emit("spare-capacity schemes: same dataset, replicas 'for free'",
           &spare_table);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
