// Figure 10: cost-effectiveness of replication (§4.8).
//
// (a) The analytic storage expansion factor E = 1 + NR * PH as a function
//     of the replica count and the hot percentage.
// (b) The cost-performance ratio of replication vs no replication: each
//     replicated point runs at queue length Q/E (the farm needs E times
//     more jukeboxes, so each sees 1/E of the workload). Curves for four
//     skews. Paper answers (Q8): moderate skew can lose a few percent;
//     very high skew gains ~8% with 2 replicas and ~10% at full
//     replication (~14% at queue 20); spare-capacity replication is free.

#include "bench_common.h"

namespace tapejuke {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options;
  int64_t base_queue = 60;
  FlagSet flags("Figure 10: cost-performance of replication");
  flags.AddInt64("base-queue", &base_queue,
                 "non-replicated per-jukebox queue length (paper: 60; "
                 "try 20 for the light-load variant)");
  int exit_code = 0;
  if (!options.Parse(argc, argv, "Figure 10", &exit_code, &flags)) {
    return exit_code;
  }

  // (a) Expansion factor: analytic, no simulation.
  Table expansion({"replicas", "PH-5", "PH-10", "PH-20", "PH-30"});
  expansion.set_precision(2);
  for (int nr = 0; nr <= 9; ++nr) {
    expansion.AddRow({static_cast<int64_t>(nr),
                      LayoutBuilder::ExpansionFactor(0.05, nr),
                      LayoutBuilder::ExpansionFactor(0.10, nr),
                      LayoutBuilder::ExpansionFactor(0.20, nr),
                      LayoutBuilder::ExpansionFactor(0.30, nr)});
  }
  Emit(options, "Figure 10(a): expansion factor E = 1 + NR x PH",
       &expansion);

  // (b) Cost-performance ratio vs replica count, by skew.
  ExperimentConfig base = PaperBaseConfig(options);
  base.algorithm = AlgorithmSpec::Parse("envelope-max-bandwidth").value();
  std::cout << "\nFigure 10(b) | PH-10 | queue " << base_queue
            << "/E per jukebox | max-bandwidth envelope\n";
  Table ratio({"rh_pct", "replicas", "expansion", "queue_per_jukebox",
               "throughput_mb_s", "cost_perf_ratio"});
  for (const int rh : {20, 40, 60, 80}) {
    ExperimentConfig config = base;
    config.sim.workload.hot_request_fraction = rh / 100.0;
    const auto curve =
        CostPerformanceCurve(config, base_queue, {0, 1, 2, 3, 5, 7, 9})
            .value();
    for (const CostPerformancePoint& point : curve) {
      ratio.AddRow({static_cast<int64_t>(rh),
                    static_cast<int64_t>(point.num_replicas),
                    point.expansion_factor, point.effective_queue,
                    point.throughput_mb_per_s,
                    point.cost_performance_ratio});
    }
  }
  Emit(options, "Figure 10(b): cost-performance ratio vs replication",
       &ratio);

  // Spare-capacity comparison (§4.8): the same (smaller) dataset stored
  // three ways. "Spread, spare at tape ends" is the natural state of a
  // gradually filling jukebox — the baseline the paper's "for free"
  // recommendation upgrades. "Packed" compacts cold data onto as few tapes
  // as possible (the paper's cost-performance reference scheme); packing is
  // itself a locality optimization, but it requires rewriting every tape.
  ExperimentConfig replicated = base;
  replicated.layout.layout = HotLayout::kVertical;
  replicated.layout.num_replicas = 9;
  replicated.layout.start_position = 1.0;
  replicated.sim.workload.queue_length = base_queue;
  ExperimentConfig spread = replicated;
  spread.layout.num_replicas = 0;
  spread.layout.start_position = 0.0;
  {
    Jukebox probe(replicated.jukebox);
    spread.layout.logical_blocks_override =
        LayoutBuilder::MaxLogicalBlocks(probe, replicated.layout);
  }
  ExperimentConfig packed = spread;
  packed.layout.pack_cold = true;

  Table spare_table({"scheme", "throughput_mb_s", "delay_min",
                     "switches_per_h"});
  const struct {
    const char* label;
    const ExperimentConfig* config;
  } schemes[] = {
      {"spread, spare space empty", &spread},
      {"packed onto fewest tapes, rest empty", &packed},
      {"spread, spare space holds replicas", &replicated},
  };
  for (const auto& scheme : schemes) {
    const ExperimentResult result =
        ExperimentRunner::Run(*scheme.config).value();
    spare_table.AddRow({std::string(scheme.label),
                        result.sim.throughput_mb_per_s,
                        result.sim.mean_delay_minutes,
                        result.sim.tape_switches_per_hour});
  }
  Emit(options,
       "spare-capacity schemes: same dataset, replicas 'for free'",
       &spare_table);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
