// Shared harness for the figure benches: common flags, standard parameter
// grids, parallel sweep execution, and table + JSON emission.
//
// Every bench declares its point grid (a vector of GridPoint), hands it to
// BenchContext::RunGrid — which fans the points out over a thread pool via
// SweepRunner with deterministic per-point seeds — and formats its tables
// from the in-order results. BenchContext::Finish() then writes
// results/<bench>.json holding every table plus the full config and
// SimulationResult of every sweep point (see docs/RESULTS.md for the
// schema).
//
// Flags shared by every bench: --threads (default: hardware concurrency;
// --threads=1 runs the points serially in index order), --results-dir
// (default "results"; empty disables JSON), --quick (reduced load grid for
// CI smoke runs), plus the original --sim-seconds / --seed / --csv /
// --queuing. Results are bit-identical at any thread count.

#ifndef TAPEJUKE_BENCH_BENCH_COMMON_H_
#define TAPEJUKE_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/results_io.h"
#include "core/sweep_runner.h"
#include "core/tapejuke.h"
#include "obs/recorder.h"
#include "obs/timeline.h"

namespace tapejuke {
namespace bench {

/// Flags shared by every figure bench.
struct BenchOptions {
  double sim_seconds = DefaultSimSeconds();
  int64_t seed = 1;
  bool csv = false;
  std::string queuing = "closed";  // "closed" or "open"
  /// Worker threads for sweep execution; 0 = hardware concurrency.
  int64_t threads = 0;
  /// Directory for results/<bench>.json; empty disables JSON output.
  std::string results_dir = "results";
  /// Reduced load grid (3 points instead of 7) for CI smoke runs.
  bool quick = false;

  /// Fault injection (all default to zero: nothing injected, output
  /// byte-identical to a fault-free run). Applied by PaperBaseConfig.
  double fault_transient_rate = 0.0;  ///< --fault-transient-rate
  double fault_perm_rate = 0.0;       ///< --fault-perm-rate
  double fault_whole_tape = 0.0;      ///< --fault-whole-tape
  double fault_drive_mtbf = 0.0;      ///< --fault-drive-mtbf (seconds)
  double fault_drive_mttr = 0.0;      ///< --fault-drive-mttr (seconds)
  double fault_robot_rate = 0.0;      ///< --fault-robot-rate
  int64_t fault_retries = 3;          ///< --fault-retries
  double fault_backoff_base = 0.0;    ///< --fault-backoff-base (seconds)
  double fault_backoff_max = 0.0;     ///< --fault-backoff-max (seconds)

  /// Scrub/repair (requires at least one fault rate above).
  bool repair = false;           ///< --repair
  double scrub_interval = 0.0;   ///< --scrub-interval (seconds; 0 = off)
  double repair_bw = 0.0;        ///< --repair-bw (MB/s; 0 = unmetered)

  /// Observability (docs/OBSERVABILITY.md). Tracing is opt-in and never
  /// changes results output: with both paths empty the bench's JSON is
  /// byte-identical to an untraced run.
  std::string trace_out;         ///< --trace-out (Chrome trace JSON path)
  std::string decision_log;      ///< --decision-log (JSONL path)
  int64_t trace_sample = 1;      ///< --trace-sample (every Nth request)
  int64_t trace_point = 0;       ///< --trace-point (grid index to trace)

  /// Time-series telemetry (docs/OBSERVABILITY.md). Like tracing it is
  /// opt-in, attaches to the --trace-point grid point, and never changes
  /// results output.
  std::string timeline_out;      ///< --timeline-out (JSONL path)
  double timeline_interval = 0;  ///< --timeline-interval (sim seconds)

  /// Parses argv; returns false if the process should exit (help or error;
  /// error sets a nonzero *exit_code).
  bool Parse(int argc, char** argv, const std::string& summary,
             int* exit_code, FlagSet* extra = nullptr);

  QueuingModel Model() const {
    return queuing == "open" ? QueuingModel::kOpen : QueuingModel::kClosed;
  }

  /// The trace configuration implied by these flags (disabled when both
  /// output paths are empty).
  obs::TraceConfig Trace() const {
    obs::TraceConfig config;
    config.trace_out = trace_out;
    config.decision_log = decision_log;
    config.sample = trace_sample;
    return config;
  }

  /// The timeline configuration implied by these flags (disabled when
  /// --timeline-out is empty).
  obs::TimelineConfig Timeline() const {
    obs::TimelineConfig config;
    config.out = timeline_out;
    config.interval_seconds = timeline_interval;
    return config;
  }

  /// Sweep-runner options implied by these flags.
  SweepOptions Sweep() const {
    SweepOptions sweep;
    sweep.threads = static_cast<int>(threads);
    sweep.base_seed = static_cast<uint64_t>(seed);
    return sweep;
  }
};

/// The paper's closed-model load sweep (queue lengths 20..140).
inline std::vector<int64_t> PaperQueueLengths() {
  return {20, 40, 60, 80, 100, 120, 140};
}

/// Open-model interarrival sweep spanning light load to saturation.
inline std::vector<double> PaperInterarrivals() {
  return {240, 160, 120, 90, 70, 60, 50};
}

/// The closed-model load sweep honoring --quick.
std::vector<int64_t> QueueLengths(const BenchOptions& options);

/// The open-model sweep honoring --quick.
std::vector<double> Interarrivals(const BenchOptions& options);

/// Baseline experiment configuration: PH-10, RH-40, NR-0, SP-0, 16 MB
/// blocks, 10 x 7 GB tapes, dynamic max-bandwidth.
ExperimentConfig PaperBaseConfig(const BenchOptions& options);

/// Standard header line describing the workload parameters, mirroring the
/// paper's "PH-10 RH-40 NR-0 SP-0" captions.
std::string ParamCaption(const ExperimentConfig& config);

/// One point of a bench's sweep grid: a series label (e.g. the algorithm
/// name), the load knob traced in tables, and the full configuration.
struct GridPoint {
  std::string series;
  double load = 0;
  ExperimentConfig config;
};

/// Farm-simulation variant of GridPoint.
struct FarmGridPoint {
  std::string series;
  double load = 0;
  FarmConfig config;
};

/// Per-bench harness: owns the shared flags, executes grids through the
/// parallel sweep runner, and accumulates the JSON results document.
class BenchContext {
 public:
  /// `bench_name` names the output file (results/<bench_name>.json).
  BenchContext(std::string bench_name, const BenchOptions& options);

  /// Writes the JSON document if Finish() was not called explicitly.
  ~BenchContext();

  const BenchOptions& options() const { return options_; }

  /// Appends one GridPoint per standard load level (honoring --queuing and
  /// --quick): closed queuing sweeps queue_length, open sweeps the mean
  /// interarrival time.
  void AddLoadSweep(std::vector<GridPoint>* grid, const std::string& series,
                    ExperimentConfig config) const;

  /// Runs `grid` across the thread pool with per-point derived seeds and
  /// returns results in grid order. Every point (effective config + full
  /// result) is recorded in the JSON document. TJ_CHECK-fails on error,
  /// matching the old serial `.value()` behavior.
  ///
  /// With --trace-out/--decision-log set, the first grid whose size
  /// exceeds --trace-point runs that one point with the trace recorder
  /// attached (recording observes only: results stay byte-identical).
  std::vector<ExperimentResult> RunGrid(const std::vector<GridPoint>& grid);

  /// Farm variant of RunGrid.
  std::vector<FarmResult> RunFarmGrid(const std::vector<FarmGridPoint>& grid);

  /// Escape hatch for benches with bespoke simulators: runs fn(i) for each
  /// i in [0, n) across the pool. `fn` must only touch per-index state;
  /// use PointSeed(i) for any randomness so results stay thread-count
  /// invariant. TJ_CHECK-fails if any point returns a non-OK status.
  void RunParallel(size_t n, const std::function<Status(size_t)>& fn);

  /// The derived workload seed for bespoke point `index` — the same
  /// derivation RunGrid applies.
  uint64_t PointSeed(size_t index) const {
    return DerivePointSeed(static_cast<uint64_t>(options_.seed), index);
  }

  /// Records one bespoke-simulator result in the JSON document. Not
  /// thread-safe: call after RunParallel returns, in point order.
  void RecordResult(const std::string& series, double load,
                    const SimulationResult& result);

  /// Prints `table` as text (plus CSV with --csv) and records it in the
  /// JSON document.
  void Emit(const std::string& title, Table* table);

  /// Writes results/<bench>.json (creating the directory) and prints the
  /// path. No-op when --results-dir is empty. Idempotent.
  void Finish();

 private:
  struct RecordedPoint {
    std::string series;
    double load;
    ExperimentConfig config;
    ExperimentResult result;
  };
  struct RecordedFarmPoint {
    std::string series;
    double load;
    FarmConfig config;
    FarmResult result;
  };
  struct RecordedExtra {
    std::string series;
    double load;
    SimulationResult result;
  };
  struct RecordedTable {
    std::string title;
    Table table;
  };

  std::string bench_name_;
  BenchOptions options_;
  /// A requested trace has been attached to some grid point already.
  bool trace_attached_ = false;
  /// A requested timeline has been attached to some grid point already.
  bool timeline_attached_ = false;
  std::vector<std::vector<RecordedPoint>> sweeps_;
  std::vector<std::vector<RecordedFarmPoint>> farm_sweeps_;
  std::vector<RecordedExtra> extra_results_;
  std::vector<RecordedTable> tables_;
  bool finished_ = false;
};

}  // namespace bench
}  // namespace tapejuke

#endif  // TAPEJUKE_BENCH_BENCH_COMMON_H_
