// Shared helpers for the figure benches: common flags, standard parameter
// grids, and table emission.
//
// Every figure bench prints the same series the paper plots — an aligned
// text table plus (with --csv) machine-readable CSV. Simulated duration
// defaults to DefaultSimSeconds() (override with --sim-seconds or the
// TAPEJUKE_SIM_SECONDS environment variable); the paper used 10M seconds
// per point.

#ifndef TAPEJUKE_BENCH_BENCH_COMMON_H_
#define TAPEJUKE_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/tapejuke.h"

namespace tapejuke {
namespace bench {

/// Flags shared by every figure bench.
struct BenchOptions {
  double sim_seconds = DefaultSimSeconds();
  int64_t seed = 1;
  bool csv = false;
  std::string queuing = "closed";  // "closed" or "open"

  /// Parses argv; returns false if the process should exit (help or error;
  /// error sets a nonzero *exit_code).
  bool Parse(int argc, char** argv, const std::string& summary,
             int* exit_code, FlagSet* extra = nullptr);

  QueuingModel Model() const {
    return queuing == "open" ? QueuingModel::kOpen : QueuingModel::kClosed;
  }
};

/// The paper's closed-model load sweep (queue lengths 20..140).
inline std::vector<int64_t> PaperQueueLengths() {
  return {20, 40, 60, 80, 100, 120, 140};
}

/// Open-model interarrival sweep spanning light load to saturation.
inline std::vector<double> PaperInterarrivals() {
  return {240, 160, 120, 90, 70, 60, 50};
}

/// Baseline experiment configuration: PH-10, RH-40, NR-0, SP-0, 16 MB
/// blocks, 10 x 7 GB tapes, dynamic max-bandwidth.
ExperimentConfig PaperBaseConfig(const BenchOptions& options);

/// Runs `config` across the standard load sweep for the selected queuing
/// model and returns curve points.
std::vector<CurvePoint> LoadSweep(const ExperimentConfig& config,
                                  const BenchOptions& options);

/// Prints `table` as text, plus CSV when requested.
void Emit(const BenchOptions& options, const std::string& title,
          Table* table);

/// Standard header line describing the workload parameters, mirroring the
/// paper's "PH-10 RH-40 NR-0 SP-0" captions.
std::string ParamCaption(const ExperimentConfig& config);

}  // namespace bench
}  // namespace tapejuke

#endif  // TAPEJUKE_BENCH_BENCH_COMMON_H_
