// Figure 7: throughput and latency as a function of replica placement.
//
// PH-10 RH-40 NR-9 (full replication). A family of curves as the placement
// of hot data + replicas moves from the beginning (SP-0) to the end
// (SP-1.0) of the tapes. Paper answer (Q5): with replication, place hot
// data and replicas at the tape *ends* (~4% throughput, ~3% response gain
// over SP-0) — the opposite of the no-replication answer.

#include "bench_common.h"

namespace tapejuke {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv,
                     "Figure 7: replica placement with full replication",
                     &exit_code)) {
    return exit_code;
  }
  BenchContext ctx("fig07_replica_placement", options);
  ExperimentConfig base = PaperBaseConfig(options);
  base.layout.num_replicas = 9;
  std::cout << "Figure 7 | " << ParamCaption(base)
            << " | dynamic max-bandwidth\n";

  std::vector<GridPoint> grid;
  for (const double sp : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    ExperimentConfig config = base;
    config.layout.start_position = sp;
    ctx.AddLoadSweep(&grid, "SP-" + std::to_string(sp).substr(0, 4),
                     config);
  }
  const std::vector<ExperimentResult> results = ctx.RunGrid(grid);

  Table table({"placement", "load", "throughput_req_min", "delay_min"});
  for (size_t i = 0; i < grid.size(); ++i) {
    table.AddRow({grid[i].series, static_cast<int64_t>(grid[i].load),
                  results[i].sim.requests_per_minute,
                  results[i].sim.mean_delay_minutes});
  }
  ctx.Emit("replica placement curves", &table);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
