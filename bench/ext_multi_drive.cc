// Extension bench: multi-drive jukebox scaling (paper §2 future work).
//
// Throughput/delay as the drive count grows, with the shared robot arm and
// tape-claim conflicts modeled. Includes the per-cabinet scaling factor and
// the robot-contention accounting.

#include "bench_common.h"
#include "sim/multi_drive.h"

namespace tapejuke {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv, "Extension: multi-drive jukebox scaling",
                     &exit_code)) {
    return exit_code;
  }
  ExperimentConfig base = PaperBaseConfig(options);
  std::cout << "Multi-drive extension | " << ParamCaption(base)
            << " | dynamic max-bandwidth, shared robot arm\n";

  Table table({"drives", "queue", "throughput_req_min", "delay_min",
               "speedup_vs_1", "robot_wait_s", "claim_conflicts"});
  std::vector<double> baseline(PaperQueueLengths().size(), 0);
  for (const int32_t drives : {1, 2, 3, 4}) {
    size_t point_index = 0;
    for (const int64_t queue : PaperQueueLengths()) {
      Jukebox jukebox(base.jukebox);
      const Catalog catalog =
          LayoutBuilder::Build(&jukebox, base.layout).value();
      MultiDriveConfig drive_config;
      drive_config.num_drives = drives;
      SimulationConfig sim_config = base.sim;
      sim_config.workload.queue_length = queue;
      MultiDriveSimulator sim(&jukebox, &catalog, drive_config, sim_config);
      const SimulationResult result = sim.Run();
      if (drives == 1) {
        baseline[point_index] = result.requests_per_minute;
      }
      table.AddRow({static_cast<int64_t>(drives), queue,
                    result.requests_per_minute, result.mean_delay_minutes,
                    baseline[point_index] > 0
                        ? result.requests_per_minute / baseline[point_index]
                        : 0.0,
                    sim.stats().robot_wait_seconds,
                    sim.stats().claim_conflicts});
      ++point_index;
    }
  }
  Emit(options, "drive-count scaling", &table);
  std::cout << "\nNote: near-linear (occasionally super-linear) scaling — "
               "one drive's rewind/eject\noverlaps the others' reads; the "
               "costs are robot queueing and tape-claim conflicts.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
