// Extension bench: multi-drive jukebox scaling (paper §2 future work).
//
// Throughput/delay as the drive count grows, with the shared robot arm and
// tape-claim conflicts modeled. Includes the per-cabinet scaling factor and
// the robot-contention accounting.

#include <iterator>

#include "bench_common.h"
#include "sim/multi_drive.h"

namespace tapejuke {
namespace bench {
namespace {

struct PointOutput {
  SimulationResult result;
  MultiDriveStats stats;
};

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv, "Extension: multi-drive jukebox scaling",
                     &exit_code)) {
    return exit_code;
  }
  BenchContext ctx("ext_multi_drive", options);
  ExperimentConfig base = PaperBaseConfig(options);
  std::cout << "Multi-drive extension | " << ParamCaption(base)
            << " | dynamic max-bandwidth, shared robot arm\n";

  const std::vector<int64_t> queues = QueueLengths(options);
  const int32_t drive_counts[] = {1, 2, 3, 4};
  const size_t num_points = std::size(drive_counts) * queues.size();

  std::vector<PointOutput> outputs(num_points);
  ctx.RunParallel(num_points, [&](size_t i) -> Status {
    const int32_t drives = drive_counts[i / queues.size()];
    const int64_t queue = queues[i % queues.size()];
    Jukebox jukebox(base.jukebox);
    StatusOr<Catalog> catalog_or =
        LayoutBuilder::Build(&jukebox, base.layout);
    if (!catalog_or.ok()) return catalog_or.status();
    const Catalog catalog = std::move(catalog_or).value();
    MultiDriveConfig drive_config;
    drive_config.num_drives = drives;
    SimulationConfig sim_config = base.sim;
    sim_config.workload.queue_length = queue;
    sim_config.workload.seed = ctx.PointSeed(i);
    // Bespoke-simulator benches attach the trace and timeline
    // themselves; point indices follow RunParallel order (drives-major,
    // queue-minor).
    if (i == static_cast<size_t>(options.trace_point)) {
      sim_config.obs = options.Trace();
      sim_config.timeline = options.Timeline();
    }
    MultiDriveSimulator sim(&jukebox, &catalog, drive_config, sim_config);
    outputs[i].result = sim.Run();
    outputs[i].stats = sim.stats();
    return Status::Ok();
  });

  Table table({"drives", "queue", "throughput_req_min", "delay_min",
               "speedup_vs_1", "robot_wait_s", "claim_conflicts"});
  for (size_t i = 0; i < num_points; ++i) {
    const int32_t drives = drive_counts[i / queues.size()];
    const size_t queue_index = i % queues.size();
    const PointOutput& out = outputs[i];
    const double baseline = outputs[queue_index].result.requests_per_minute;
    table.AddRow({static_cast<int64_t>(drives), queues[queue_index],
                  out.result.requests_per_minute,
                  out.result.mean_delay_minutes,
                  baseline > 0 ? out.result.requests_per_minute / baseline
                               : 0.0,
                  out.stats.robot_wait_seconds, out.stats.claim_conflicts});
    ctx.RecordResult("drives-" + std::to_string(drives),
                     static_cast<double>(queues[queue_index]), out.result);
  }
  ctx.Emit("drive-count scaling", &table);
  std::cout << "\nNote: near-linear (occasionally super-linear) scaling — "
               "one drive's rewind/eject\noverlaps the others' reads; the "
               "costs are robot queueing and tape-claim conflicts.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
