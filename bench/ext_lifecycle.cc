// Extension bench: the §4.8 gradual-fill lifecycle — replicas "for free".
//
// Starts from the paper's recommended fill pattern (hot data on a dedicated
// tape, the other tapes part-filled with cold data) and appends replicas of
// hot blocks to the tape ends piggybacked on read sweeps. The per-epoch
// series shows throughput and latency improving as the replica population
// grows, without any dedicated write-only passes in a busy (closed) system.

#include "bench_common.h"
#include "sched/envelope_scheduler.h"
#include "sim/lifecycle.h"

namespace tapejuke {
namespace bench {
namespace {

struct PointOutput {
  std::vector<EpochStats> epochs;
  int64_t replicas_written = 0;
  int64_t fill_target = 0;
};

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv,
                     "Extension: gradual replica fill during operation",
                     &exit_code)) {
    return exit_code;
  }
  BenchContext ctx("ext_lifecycle", options);
  ExperimentConfig base = PaperBaseConfig(options);
  std::cout << "Lifecycle extension | PH-10 RH-40 | vertical spare-capacity "
               "start | max-bandwidth envelope | queue 60\n";

  // Point 0: baseline (spare capacity left empty). Point 1: gradual fill.
  std::vector<PointOutput> outputs(2);
  ctx.RunParallel(outputs.size(), [&](size_t i) -> Status {
    const bool fill = i == 1;
    Jukebox jukebox(base.jukebox);
    LayoutSpec replicated;
    replicated.layout = HotLayout::kVertical;
    replicated.num_replicas = 9;
    replicated.start_position = 1.0;
    LayoutSpec spare;
    spare.layout = HotLayout::kVertical;
    spare.logical_blocks_override =
        LayoutBuilder::MaxLogicalBlocks(jukebox, replicated);
    StatusOr<Catalog> catalog_or = LayoutBuilder::Build(&jukebox, spare);
    if (!catalog_or.ok()) return catalog_or.status();
    Catalog catalog = std::move(catalog_or).value();
    EnvelopeScheduler scheduler(&jukebox, &catalog,
                                TapePolicy::kMaxBandwidth);
    SimulationConfig sim_config = base.sim;
    sim_config.warmup_seconds = 0;  // epochs cover the whole run
    sim_config.workload.queue_length = 60;
    sim_config.workload.seed = ctx.PointSeed(i);
    LifecycleConfig lifecycle;
    lifecycle.fill_budget_seconds = fill ? 240.0 : 0.0;
    lifecycle.fill_on_idle = fill;
    lifecycle.num_epochs = 10;
    LifecycleSimulator sim(&jukebox, &catalog, &scheduler, sim_config,
                           lifecycle);
    outputs[i].epochs = sim.Run();
    outputs[i].replicas_written = sim.replicas_written();
    outputs[i].fill_target = sim.fill_target();
    return Status::Ok();
  });

  for (size_t i = 0; i < outputs.size(); ++i) {
    const bool fill = i == 1;
    const std::vector<EpochStats>& epochs = outputs[i].epochs;
    Table table({"epoch", "fill_pct", "throughput_req_min", "delay_min"});
    for (size_t e = 0; e < epochs.size(); ++e) {
      table.AddRow({static_cast<int64_t>(e + 1),
                    epochs[e].fill_fraction * 100.0,
                    epochs[e].requests_per_minute,
                    epochs[e].mean_delay_minutes});
    }
    ctx.Emit(fill ? "with gradual replica fill (piggybacked)"
                  : "baseline: spare capacity left empty",
             &table);
    if (fill) {
      std::cout << "replicas written: " << outputs[i].replicas_written
                << " / " << outputs[i].fill_target << "\n";
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
