// Extension bench: the §4.8 gradual-fill lifecycle — replicas "for free".
//
// Starts from the paper's recommended fill pattern (hot data on a dedicated
// tape, the other tapes part-filled with cold data) and appends replicas of
// hot blocks to the tape ends piggybacked on read sweeps. The per-epoch
// series shows throughput and latency improving as the replica population
// grows, without any dedicated write-only passes in a busy (closed) system.

#include "bench_common.h"
#include "sched/envelope_scheduler.h"
#include "sim/lifecycle.h"

namespace tapejuke {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv,
                     "Extension: gradual replica fill during operation",
                     &exit_code)) {
    return exit_code;
  }
  ExperimentConfig base = PaperBaseConfig(options);
  std::cout << "Lifecycle extension | PH-10 RH-40 | vertical spare-capacity "
               "start | max-bandwidth envelope | queue 60\n";

  for (const bool fill : {false, true}) {
    Jukebox jukebox(base.jukebox);
    LayoutSpec replicated;
    replicated.layout = HotLayout::kVertical;
    replicated.num_replicas = 9;
    replicated.start_position = 1.0;
    LayoutSpec spare;
    spare.layout = HotLayout::kVertical;
    spare.logical_blocks_override =
        LayoutBuilder::MaxLogicalBlocks(jukebox, replicated);
    Catalog catalog = LayoutBuilder::Build(&jukebox, spare).value();
    EnvelopeScheduler scheduler(&jukebox, &catalog,
                                TapePolicy::kMaxBandwidth);
    SimulationConfig sim_config = base.sim;
    sim_config.warmup_seconds = 0;  // epochs cover the whole run
    sim_config.workload.queue_length = 60;
    LifecycleConfig lifecycle;
    lifecycle.fill_budget_seconds = fill ? 240.0 : 0.0;
    lifecycle.fill_on_idle = fill;
    lifecycle.num_epochs = 10;
    LifecycleSimulator sim(&jukebox, &catalog, &scheduler, sim_config,
                           lifecycle);
    const std::vector<EpochStats> epochs = sim.Run();

    Table table({"epoch", "fill_pct", "throughput_req_min", "delay_min"});
    for (size_t e = 0; e < epochs.size(); ++e) {
      table.AddRow({static_cast<int64_t>(e + 1),
                    epochs[e].fill_fraction * 100.0,
                    epochs[e].requests_per_minute,
                    epochs[e].mean_delay_minutes});
    }
    Emit(options,
         fill ? "with gradual replica fill (piggybacked)"
              : "baseline: spare capacity left empty",
         &table);
    if (fill) {
      std::cout << "replicas written: " << sim.replicas_written() << " / "
                << sim.fill_target() << "\n";
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
