// Microbenchmarks (google-benchmark): scheduler hot paths.
//
// The envelope major rescheduler is O(n^2 * t^2) worst case (§3.3); these
// benchmarks measure its practical cost as the pending-queue size n and
// tape count t grow, alongside the greedy rescheduler, the timing model,
// and the event queue.

#include <benchmark/benchmark.h>

#include <chrono>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/results_io.h"
#include "core/tapejuke.h"
#include "sim/event_queue.h"
#include "util/check.h"

namespace tapejuke {
namespace {

struct SchedRig {
  SchedRig(int32_t num_tapes, int32_t num_replicas)
      : jukebox(MakeJukebox(num_tapes)) {
    LayoutSpec layout;
    layout.hot_fraction = 0.10;
    layout.num_replicas = num_replicas;
    layout.start_position = num_replicas == 0 ? 0.0 : 1.0;
    catalog = std::make_unique<Catalog>(
        LayoutBuilder::Build(&jukebox, layout).value());
  }

  static JukeboxConfig MakeJukebox(int32_t num_tapes) {
    JukeboxConfig config;
    config.num_tapes = num_tapes;
    config.block_size_mb = 16;
    return config;
  }

  std::vector<Request> MakeRequests(int n, uint64_t seed) {
    Rng rng(seed);
    std::vector<Request> requests;
    for (int i = 0; i < n; ++i) {
      requests.push_back(Request{
          i,
          static_cast<BlockId>(rng.UniformUint64(
              static_cast<uint64_t>(catalog->num_blocks()))),
          0.0});
    }
    return requests;
  }

  /// Requests drawn only from the hot (replicated) blocks: every request
  /// then survives step 2 and flows through the extension loop.
  std::vector<Request> MakeHotRequests(int n, uint64_t seed) {
    Rng rng(seed);
    std::vector<Request> requests;
    for (int i = 0; i < n; ++i) {
      requests.push_back(Request{
          i,
          static_cast<BlockId>(rng.UniformUint64(
              static_cast<uint64_t>(catalog->num_hot_blocks()))),
          0.0});
    }
    return requests;
  }

  Jukebox jukebox;
  std::unique_ptr<Catalog> catalog;
};

void BM_EnvelopeUpperEnvelope(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const auto tapes = static_cast<int32_t>(state.range(1));
  SchedRig rig(tapes, /*num_replicas=*/tapes - 1);
  EnvelopeScheduler sched(&rig.jukebox, rig.catalog.get(),
                          TapePolicy::kMaxBandwidth);
  const std::vector<Request> requests = rig.MakeRequests(n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.ComputeUpperEnvelope(requests));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_EnvelopeUpperEnvelope)
    ->ArgsProduct({{20, 60, 140, 300}, {5, 10}})
    ->Unit(benchmark::kMicrosecond);

void BM_GreedyMajorReschedule(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  SchedRig rig(10, 0);
  const std::vector<Request> requests = rig.MakeRequests(n, 7);
  for (auto _ : state) {
    GreedyScheduler sched(&rig.jukebox, rig.catalog.get(),
                          TapePolicy::kMaxBandwidth, /*dynamic=*/true);
    for (const Request& r : requests) sched.OnArrival(r, 0);
    benchmark::DoNotOptimize(sched.MajorReschedule());
  }
}
BENCHMARK(BM_GreedyMajorReschedule)
    ->Arg(20)
    ->Arg(140)
    ->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

void BM_TimingModelLocate(benchmark::State& state) {
  const TimingModel model{TimingParams::Exabyte8505XL()};
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.LocateTime(
        static_cast<Position>(rng.UniformUint64(7168)),
        static_cast<Position>(rng.UniformUint64(7168))));
  }
}
BENCHMARK(BM_TimingModelLocate);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  EventQueue<int> queue;
  Rng rng(9);
  // Steady-state heap of 1024 events.
  for (int i = 0; i < 1024; ++i) {
    queue.Schedule(rng.UniformDouble() * 1e6, i);
  }
  for (auto _ : state) {
    auto [time, payload] = queue.Pop();
    benchmark::DoNotOptimize(payload);
    queue.Schedule(time + rng.UniformDouble() * 100, payload);
  }
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_FullSimulationRun(benchmark::State& state) {
  // End-to-end cost of a 100k-second simulated run (dynamic max-bandwidth,
  // PH-10 RH-40, queue 60).
  for (auto _ : state) {
    SchedRig rig(10, 0);
    GreedyScheduler sched(&rig.jukebox, rig.catalog.get(),
                          TapePolicy::kMaxBandwidth, true);
    SimulationConfig config;
    config.duration_seconds = 100'000;
    config.warmup_seconds = 0;
    config.workload.queue_length = 60;
    Simulator sim(&rig.jukebox, rig.catalog.get(), &sched, config);
    benchmark::DoNotOptimize(sim.Run());
  }
}
BENCHMARK(BM_FullSimulationRun)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Incremental vs from-scratch envelope kernel: bespoke timed comparison
// emitted into results/micro_sched.json (see docs/RESULTS.md).
// ---------------------------------------------------------------------------

struct KernelTiming {
  int batch = 0;
  int tapes = 0;
  double incremental_ns_per_op = 0;
  double reference_ns_per_op = 0;
  double speedup = 0;
  int64_t extension_rounds_per_op = 0;
  int64_t tapes_rescored_per_op = 0;
};

/// ns per call of `fn`, sampled until at least ~50 ms of work accumulates.
template <typename Fn>
double TimeNsPerOp(Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  fn();  // warm-up
  int reps = 1;
  for (;;) {
    const auto start = Clock::now();
    for (int i = 0; i < reps; ++i) fn();
    const double ns =
        std::chrono::duration<double, std::nano>(Clock::now() - start)
            .count();
    if (ns >= 5e7 || reps >= (1 << 20)) return ns / reps;
    reps *= 4;
  }
}

std::vector<KernelTiming> RunKernelComparison() {
  std::vector<KernelTiming> rows;
  const int32_t tapes = 10;
  for (const int batch : {20, 140, 300, 1000}) {
    // NR-2 hot-only draws: every request is replicated and none absorbs
    // into the initial envelope, so the extension loop dominates — the
    // regime the incremental kernel targets.
    SchedRig rig(tapes, /*num_replicas=*/2);
    EnvelopeScheduler sched(&rig.jukebox, rig.catalog.get(),
                            TapePolicy::kMaxBandwidth);
    const std::vector<Request> requests =
        rig.MakeHotRequests(batch, /*seed=*/42);

    KernelTiming row;
    row.batch = batch;
    row.tapes = tapes;
    row.incremental_ns_per_op = TimeNsPerOp([&] {
      benchmark::DoNotOptimize(sched.ComputeUpperEnvelope(requests));
    });
    row.reference_ns_per_op = TimeNsPerOp([&] {
      benchmark::DoNotOptimize(
          sched.ComputeUpperEnvelopeReference(requests));
    });
    row.speedup = row.reference_ns_per_op / row.incremental_ns_per_op;
    // Per-op behaviour counters from one clean call.
    const EnvelopeScheduler::EnvelopeCounters before = sched.counters();
    sched.ComputeUpperEnvelope(requests);
    const EnvelopeScheduler::EnvelopeCounters after = sched.counters();
    row.extension_rounds_per_op =
        after.extension_rounds - before.extension_rounds;
    row.tapes_rescored_per_op =
        after.tapes_rescored - before.tapes_rescored;
    rows.push_back(row);
  }
  return rows;
}

void PrintKernelComparison(const std::vector<KernelTiming>& rows) {
  std::cout << "\nEnvelope kernel: incremental vs from-scratch reference "
               "(10 tapes, NR-2, hot-only draws)\n";
  std::cout << std::setw(8) << "batch" << std::setw(18) << "incr ns/op"
            << std::setw(18) << "scratch ns/op" << std::setw(10)
            << "speedup" << std::setw(10) << "rounds" << std::setw(12)
            << "rescored" << "\n";
  for (const KernelTiming& row : rows) {
    std::cout << std::setw(8) << row.batch << std::setw(18) << std::fixed
              << std::setprecision(0) << row.incremental_ns_per_op
              << std::setw(18) << row.reference_ns_per_op << std::setw(10)
              << std::setprecision(2) << row.speedup << std::setw(10)
              << row.extension_rounds_per_op << std::setw(12)
              << row.tapes_rescored_per_op << "\n";
  }
}

void WriteKernelResults(const std::string& results_dir,
                        const std::vector<KernelTiming>& rows) {
  if (results_dir.empty()) return;
  std::ostringstream os;
  JsonWriter w(&os);
  w.BeginObject();
  w.Field("bench", "micro_sched");
  w.Key("envelope_kernel");
  w.BeginArray();
  for (const KernelTiming& row : rows) {
    w.BeginObject();
    w.Field("workload", "hot-only NR-2");
    w.Field("batch_requests", row.batch);
    w.Field("num_tapes", row.tapes);
    w.Field("incremental_ns_per_op", row.incremental_ns_per_op);
    w.Field("reference_ns_per_op", row.reference_ns_per_op);
    w.Field("speedup", row.speedup);
    w.Field("extension_rounds_per_op", row.extension_rounds_per_op);
    w.Field("tapes_rescored_per_op", row.tapes_rescored_per_op);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << "\n";
  const std::string path = results_dir + "/micro_sched.json";
  const Status status = WriteTextFile(path, os.str());
  TJ_CHECK(status.ok()) << status.ToString();
  std::cout << "results: " << path << "\n";
}

}  // namespace
}  // namespace tapejuke

int main(int argc, char** argv) {
  // --results-dir is ours (mirroring the figure benches; empty disables the
  // JSON document); everything else goes to google-benchmark.
  std::string results_dir = "results";
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--results-dir=", 0) == 0) {
      results_dir = arg.substr(std::string("--results-dir=").size());
    } else {
      bench_argv.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const std::vector<tapejuke::KernelTiming> rows =
      tapejuke::RunKernelComparison();
  tapejuke::PrintKernelComparison(rows);
  tapejuke::WriteKernelResults(results_dir, rows);
  return 0;
}
