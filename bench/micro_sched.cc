// Microbenchmarks (google-benchmark): scheduler hot paths.
//
// The envelope major rescheduler is O(n^2 * t^2) worst case (§3.3); these
// benchmarks measure its practical cost as the pending-queue size n and
// tape count t grow, alongside the greedy rescheduler, the timing model,
// and the event queue.
//
// Two bespoke timed comparisons are emitted into results/micro_sched.json
// (schema in docs/RESULTS.md, methodology in docs/PERFORMANCE.md):
//
//  * envelope_kernel — one-shot upper-envelope computation, incremental
//    kernel vs the from-scratch reference, over batches up to 100k
//    requests (the reference is only timed up to 1000 requests; above
//    that its O(rounds * n log n) re-sorts make timing it pointless);
//  * steady_state — scheduler-level reschedule/drain/refill cycles at a
//    constant queue depth, comparing the legacy configuration (linear
//    tape scan, per-call extension-list rebuild) against the cached fast
//    paths (indexed selection heap + persistent extension lists) and the
//    batched/epoch policy knobs. This is the deep-queue regime the fast
//    paths target: the persistent cache only pays off across reschedules.
//
// --check runs the CI divergence gate instead of the full grid: a 10k-deep
// steady-state run under ValidatingScheduler with validate_envelope on
// (every fast path cross-checked against the reference oracle), plus the
// 10k kernel and steady-state points for the results artifact. The gate
// fails (TJ_CHECK abort) on any divergence; timings are reported but never
// gate the build.

#include <algorithm>
#include <benchmark/benchmark.h>

#include <chrono>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/results_io.h"
#include "core/tapejuke.h"
#include "sim/event_queue.h"
#include "util/check.h"

namespace tapejuke {
namespace {

struct SchedRig {
  SchedRig(int32_t num_tapes, int32_t num_replicas)
      : jukebox(MakeJukebox(num_tapes)) {
    LayoutSpec layout;
    layout.hot_fraction = 0.10;
    layout.num_replicas = num_replicas;
    layout.start_position = num_replicas == 0 ? 0.0 : 1.0;
    catalog = std::make_unique<Catalog>(
        LayoutBuilder::Build(&jukebox, layout).value());
  }

  static JukeboxConfig MakeJukebox(int32_t num_tapes) {
    JukeboxConfig config;
    config.num_tapes = num_tapes;
    config.block_size_mb = 16;
    return config;
  }

  std::vector<Request> MakeRequests(int n, uint64_t seed) {
    Rng rng(seed);
    std::vector<Request> requests;
    for (int i = 0; i < n; ++i) {
      requests.push_back(Request{
          i,
          static_cast<BlockId>(rng.UniformUint64(
              static_cast<uint64_t>(catalog->num_blocks()))),
          0.0});
    }
    return requests;
  }

  /// Requests drawn only from the hot (replicated) blocks: every request
  /// then survives step 2 and flows through the extension loop.
  std::vector<Request> MakeHotRequests(int n, uint64_t seed) {
    Rng rng(seed);
    std::vector<Request> requests;
    for (int i = 0; i < n; ++i) {
      requests.push_back(Request{
          i,
          static_cast<BlockId>(rng.UniformUint64(
              static_cast<uint64_t>(catalog->num_hot_blocks()))),
          0.0});
    }
    return requests;
  }

  Jukebox jukebox;
  std::unique_ptr<Catalog> catalog;
};

void BM_EnvelopeUpperEnvelope(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const auto tapes = static_cast<int32_t>(state.range(1));
  SchedRig rig(tapes, /*num_replicas=*/tapes - 1);
  EnvelopeScheduler sched(&rig.jukebox, rig.catalog.get(),
                          TapePolicy::kMaxBandwidth);
  const std::vector<Request> requests = rig.MakeRequests(n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.ComputeUpperEnvelope(requests));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_EnvelopeUpperEnvelope)
    ->ArgsProduct({{20, 60, 140, 300}, {5, 10}})
    ->Unit(benchmark::kMicrosecond);

void BM_GreedyMajorReschedule(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  SchedRig rig(10, 0);
  const std::vector<Request> requests = rig.MakeRequests(n, 7);
  for (auto _ : state) {
    GreedyScheduler sched(&rig.jukebox, rig.catalog.get(),
                          TapePolicy::kMaxBandwidth, /*dynamic=*/true);
    for (const Request& r : requests) sched.OnArrival(r, 0);
    benchmark::DoNotOptimize(sched.MajorReschedule());
  }
}
BENCHMARK(BM_GreedyMajorReschedule)
    ->Arg(20)
    ->Arg(140)
    ->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

void BM_TimingModelLocate(benchmark::State& state) {
  const TimingModel model{TimingParams::Exabyte8505XL()};
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.LocateTime(
        static_cast<Position>(rng.UniformUint64(7168)),
        static_cast<Position>(rng.UniformUint64(7168))));
  }
}
BENCHMARK(BM_TimingModelLocate);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  EventQueue<int> queue;
  Rng rng(9);
  // Steady-state heap of 1024 events.
  for (int i = 0; i < 1024; ++i) {
    queue.Schedule(rng.UniformDouble() * 1e6, i);
  }
  for (auto _ : state) {
    auto [time, payload] = queue.Pop();
    benchmark::DoNotOptimize(payload);
    queue.Schedule(time + rng.UniformDouble() * 100, payload);
  }
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_FullSimulationRun(benchmark::State& state) {
  // End-to-end cost of a 100k-second simulated run (dynamic max-bandwidth,
  // PH-10 RH-40, queue 60).
  for (auto _ : state) {
    SchedRig rig(10, 0);
    GreedyScheduler sched(&rig.jukebox, rig.catalog.get(),
                          TapePolicy::kMaxBandwidth, true);
    SimulationConfig config;
    config.duration_seconds = 100'000;
    config.warmup_seconds = 0;
    config.workload.queue_length = 60;
    Simulator sim(&rig.jukebox, rig.catalog.get(), &sched, config);
    benchmark::DoNotOptimize(sim.Run());
  }
}
BENCHMARK(BM_FullSimulationRun)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Incremental vs from-scratch envelope kernel: bespoke timed comparison.
// ---------------------------------------------------------------------------

/// The reference kernel re-enumerates and re-sorts every extension list on
/// every round; above this batch size it is too slow to time and would only
/// restate its asymptotics, so we report the incremental kernel alone.
constexpr int kMaxReferenceBatch = 1000;

struct KernelTiming {
  int batch = 0;
  int tapes = 0;
  double incremental_ns_per_op = 0;
  bool reference_timed = false;
  double reference_ns_per_op = 0;  ///< 0 when !reference_timed
  double speedup = 0;              ///< 0 when !reference_timed
  int64_t extension_rounds_per_op = 0;
  int64_t tapes_rescored_per_op = 0;
};

/// ns per call of `fn`: grows the rep count until one timed chunk covers
/// ~50 ms, then reports the fastest of three such chunks (interference only
/// ever adds time, so the minimum is the most repeatable estimator).
template <typename Fn>
double TimeNsPerOp(Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  const auto chunk_ns = [&](int reps) {
    const auto start = Clock::now();
    for (int i = 0; i < reps; ++i) fn();
    return std::chrono::duration<double, std::nano>(Clock::now() - start)
        .count();
  };
  fn();  // warm-up
  int reps = 1;
  double ns = 0;
  for (;;) {
    ns = chunk_ns(reps);
    if (ns >= 5e7 || reps >= (1 << 20)) break;
    reps *= 4;
  }
  for (int rep = 0; rep < 2; ++rep) ns = std::min(ns, chunk_ns(reps));
  return ns / reps;
}

std::vector<KernelTiming> RunKernelComparison(
    const std::vector<int>& batches) {
  std::vector<KernelTiming> rows;
  const int32_t tapes = 10;
  for (const int batch : batches) {
    // NR-2 hot-only draws: every request is replicated and none absorbs
    // into the initial envelope, so the extension loop dominates — the
    // regime the incremental kernel targets.
    SchedRig rig(tapes, /*num_replicas=*/2);
    EnvelopeScheduler sched(&rig.jukebox, rig.catalog.get(),
                            TapePolicy::kMaxBandwidth);
    const std::vector<Request> requests =
        rig.MakeHotRequests(batch, /*seed=*/42);

    KernelTiming row;
    row.batch = batch;
    row.tapes = tapes;
    row.incremental_ns_per_op = TimeNsPerOp([&] {
      benchmark::DoNotOptimize(sched.ComputeUpperEnvelope(requests));
    });
    row.reference_timed = batch <= kMaxReferenceBatch;
    if (row.reference_timed) {
      row.reference_ns_per_op = TimeNsPerOp([&] {
        benchmark::DoNotOptimize(
            sched.ComputeUpperEnvelopeReference(requests));
      });
      row.speedup = row.reference_ns_per_op / row.incremental_ns_per_op;
    }
    // Per-op behaviour counters from one clean call.
    const EnvelopeScheduler::EnvelopeCounters before = sched.counters();
    sched.ComputeUpperEnvelope(requests);
    const EnvelopeScheduler::EnvelopeCounters after = sched.counters();
    row.extension_rounds_per_op =
        after.extension_rounds - before.extension_rounds;
    row.tapes_rescored_per_op =
        after.tapes_rescored - before.tapes_rescored;
    rows.push_back(row);
  }
  return rows;
}

void PrintKernelComparison(const std::vector<KernelTiming>& rows) {
  std::cout << "\nEnvelope kernel: incremental vs from-scratch reference "
               "(10 tapes, NR-2, hot-only draws)\n";
  std::cout << std::setw(8) << "batch" << std::setw(18) << "incr ns/op"
            << std::setw(18) << "scratch ns/op" << std::setw(10)
            << "speedup" << std::setw(10) << "rounds" << std::setw(12)
            << "rescored" << "\n";
  for (const KernelTiming& row : rows) {
    std::cout << std::setw(8) << row.batch << std::setw(18) << std::fixed
              << std::setprecision(0) << row.incremental_ns_per_op;
    if (row.reference_timed) {
      std::cout << std::setw(18) << row.reference_ns_per_op << std::setw(10)
                << std::setprecision(2) << row.speedup;
    } else {
      std::cout << std::setw(18) << "-" << std::setw(10) << "-";
    }
    std::cout << std::setw(10) << row.extension_rounds_per_op
              << std::setw(12) << row.tapes_rescored_per_op << "\n";
  }
}

// ---------------------------------------------------------------------------
// Steady-state scheduler comparison: reschedule/drain/refill cycles at a
// constant queue depth, legacy configuration vs the cached fast paths.
// ---------------------------------------------------------------------------

struct SteadyRow {
  std::string mode;
  int depth = 0;
  int tapes = 0;
  double ns_per_reschedule = 0;
  double speedup_vs_legacy = 0;  ///< 0 for the legacy row itself
  double served_per_reschedule = 0;
  double rounds_per_reschedule = 0;
  double rescored_per_reschedule = 0;
  double rebuilds_per_reschedule = 0;
  double epoch_reuses_per_reschedule = 0;
};

/// Drives one EnvelopeScheduler through tape-visit cycles at a constant
/// queue depth: each cycle runs MajorReschedule (timed alone — the drain
/// and refill below are workload-generation overhead every mode shares),
/// drains the sweep, and refills the queue with as many fresh hot-block
/// arrivals as were served (delivered while the sweep is empty, so they
/// defer to the pending list the way arrivals between sweeps do). No tape
/// is ever mounted, matching the greedy reschedule benchmark above: every
/// visit prices the switch.
class SteadyDriver {
 public:
  SteadyDriver(int32_t tapes, int depth, const SchedulerOptions& options)
      : rig_(tapes, /*num_replicas=*/2), rng_(1234) {
    sched_ = std::make_unique<EnvelopeScheduler>(
        &rig_.jukebox, rig_.catalog.get(), TapePolicy::kMaxBandwidth,
        options);
    for (int i = 0; i < depth; ++i) Deliver();
  }

  /// Returns the requests served this cycle and accumulates the wall time
  /// of the MajorReschedule call into `reschedule_ns`.
  int64_t Cycle(double* reschedule_ns) {
    using Clock = std::chrono::steady_clock;
    const auto start = Clock::now();
    const TapeId tape = sched_->MajorReschedule();
    if (reschedule_ns != nullptr) {
      *reschedule_ns +=
          std::chrono::duration<double, std::nano>(Clock::now() - start)
              .count();
    }
    TJ_CHECK(tape != kInvalidTape);
    int64_t served = 0;
    while (auto entry = sched_->PopNext()) {
      served += static_cast<int64_t>(entry->requests.size());
    }
    for (int64_t i = 0; i < served; ++i) Deliver();
    return served;
  }

  const EnvelopeScheduler& sched() const { return *sched_; }

 private:
  void Deliver() {
    const auto block = static_cast<BlockId>(rng_.UniformUint64(
        static_cast<uint64_t>(rig_.catalog->num_hot_blocks())));
    sched_->OnArrival(Request{next_id_++, block, 0.0},
                      /*committed_head=*/0);
  }

  SchedRig rig_;
  Rng rng_;
  std::unique_ptr<EnvelopeScheduler> sched_;
  RequestId next_id_ = 0;
};

struct SteadyMode {
  const char* name;
  SchedulerOptions options;
};

std::vector<SteadyMode> SteadyModes() {
  // legacy — the pre-optimization configuration: linear tape scan each
  // round, extension lists rebuilt and re-sorted on every reschedule.
  SchedulerOptions legacy;
  legacy.use_selection_heap = false;
  legacy.persistent_ext_cache = false;
  // cached — the equivalence-preserving fast paths (identical schedules).
  SchedulerOptions cached;  // defaults: heap + persistent cache on
  // cached+batched — policy knobs stacked on top: arrivals coalesced in
  // batches of 256, one envelope reused for up to 4 tape visits.
  SchedulerOptions batched = cached;
  batched.arrival_batch = 256;
  batched.reschedule_epoch = 4;
  return {{"legacy", legacy}, {"cached", cached},
          {"cached+batched", batched}};
}

/// Timed visits per depth: fixed (not adaptive) so every mode at a given
/// depth runs the exact same cycle indices — the equivalence-preserving
/// modes then serve identical request sequences and the per-visit means
/// are directly comparable.
int SteadyWindow(int depth) {
  if (depth >= 100000) return 8;
  if (depth >= 50000) return 12;
  if (depth >= 10000) return 24;
  return 64;
}

/// The timed window is repeated and the *minimum* window mean is reported:
/// wall-clock interference (shared cores, frequency drift) only ever adds
/// time, so the minimum is the most repeatable estimator of the true cost.
constexpr int kSteadyReps = 3;

std::vector<SteadyRow> RunSteadyComparison(const std::vector<int>& depths) {
  std::vector<SteadyRow> rows;
  const int32_t tapes = 10;
  for (const int depth : depths) {
    double legacy_ns = 0;
    for (const SteadyMode& mode : SteadyModes()) {
      SteadyDriver driver(tapes, depth, mode.options);
      // Reach steady state (master cache built, envelope persisted)
      // before timing.
      for (int i = 0; i < 3; ++i) driver.Cycle(nullptr);

      const int window = SteadyWindow(depth);
      const EnvelopeScheduler::EnvelopeCounters before =
          driver.sched().counters();
      double best_window_ns = 0;
      int64_t served = 0;
      for (int rep = 0; rep < kSteadyReps; ++rep) {
        double reschedule_ns = 0;
        int64_t rep_served = 0;
        for (int i = 0; i < window; ++i) {
          rep_served += driver.Cycle(&reschedule_ns);
        }
        if (rep == 0 || reschedule_ns < best_window_ns) {
          best_window_ns = reschedule_ns;
        }
        served += rep_served;
      }
      const EnvelopeScheduler::EnvelopeCounters after =
          driver.sched().counters();

      SteadyRow row;
      row.mode = mode.name;
      row.depth = depth;
      row.tapes = tapes;
      row.ns_per_reschedule = best_window_ns / window;
      if (row.mode == "legacy") {
        legacy_ns = row.ns_per_reschedule;
      } else if (legacy_ns > 0) {
        row.speedup_vs_legacy = legacy_ns / row.ns_per_reschedule;
      }
      // Counters accumulate over every rep; the per-visit rates are exact
      // regardless of which rep had the cleanest timing.
      const auto per_visit = [&](int64_t delta) {
        return static_cast<double>(delta) / (window * kSteadyReps);
      };
      row.served_per_reschedule = per_visit(served);
      row.rounds_per_reschedule =
          per_visit(after.extension_rounds - before.extension_rounds);
      row.rescored_per_reschedule =
          per_visit(after.tapes_rescored - before.tapes_rescored);
      row.rebuilds_per_reschedule =
          per_visit(after.master_rebuilds - before.master_rebuilds);
      row.epoch_reuses_per_reschedule =
          per_visit(after.epoch_reuses - before.epoch_reuses);
      rows.push_back(row);
    }
  }
  return rows;
}

void PrintSteadyComparison(const std::vector<SteadyRow>& rows) {
  std::cout << "\nSteady-state MajorReschedule cost (10 tapes, NR-2, "
               "hot-only draws, constant depth)\n";
  std::cout << std::setw(8) << "depth" << std::setw(16) << "mode"
            << std::setw(16) << "ns/resched" << std::setw(10) << "speedup"
            << std::setw(10) << "served" << std::setw(10) << "rounds"
            << std::setw(12) << "rescored" << std::setw(10) << "rebuilds"
            << std::setw(8) << "epochs" << "\n";
  for (const SteadyRow& row : rows) {
    std::cout << std::setw(8) << row.depth << std::setw(16) << row.mode
              << std::setw(16) << std::fixed << std::setprecision(0)
              << row.ns_per_reschedule << std::setw(10)
              << std::setprecision(2) << row.speedup_vs_legacy
              << std::setw(10) << std::setprecision(0)
              << row.served_per_reschedule << std::setw(10)
              << std::setprecision(1) << row.rounds_per_reschedule
              << std::setw(12) << row.rescored_per_reschedule
              << std::setw(10) << row.rebuilds_per_reschedule
              << std::setw(8) << row.epoch_reuses_per_reschedule << "\n";
  }
}

// ---------------------------------------------------------------------------
// CI divergence gate (--check): steady-state run with every fast path on,
// under ValidatingScheduler + validate_envelope. Fails on divergence (the
// oracle TJ_CHECKs abort); timings never gate.
// ---------------------------------------------------------------------------

struct CheckStats {
  int visits = 0;
  int64_t requests_served = 0;
};

CheckStats RunDivergenceCheck() {
  const int32_t tapes = 10;
  const int depth = 10000;
  const int kVisits = 6;
  SchedRig rig(tapes, /*num_replicas=*/2);
  SchedulerOptions options;  // heap + persistent cache on by default
  options.validate_envelope = true;
  options.arrival_batch = 256;
  ValidatingScheduler sched(
      std::make_unique<EnvelopeScheduler>(&rig.jukebox, rig.catalog.get(),
                                          TapePolicy::kMaxBandwidth,
                                          options),
      &rig.jukebox, rig.catalog.get());

  Rng rng(99);
  RequestId next_id = 0;
  const auto deliver = [&] {
    const auto block = static_cast<BlockId>(rng.UniformUint64(
        static_cast<uint64_t>(rig.catalog->num_hot_blocks())));
    sched.OnArrival(Request{next_id++, block, 0.0}, /*committed_head=*/0);
  };
  for (int i = 0; i < depth; ++i) deliver();

  CheckStats stats;
  stats.visits = kVisits;
  for (int v = 0; v < kVisits; ++v) {
    const TapeId tape = sched.MajorReschedule();
    TJ_CHECK(tape != kInvalidTape);
    int64_t served = 0;
    while (auto entry = sched.PopNext()) {
      served += static_cast<int64_t>(entry->requests.size());
    }
    for (int64_t i = 0; i < served; ++i) deliver();
    stats.requests_served += served;
  }
  std::cout << "divergence check: PASS (" << stats.visits
            << " validated reschedules at depth " << depth << ", "
            << stats.requests_served << " requests served)\n";
  return stats;
}

void WriteResults(const std::string& results_dir,
                  const std::vector<KernelTiming>& kernel_rows,
                  const std::vector<SteadyRow>& steady_rows,
                  const CheckStats* check) {
  if (results_dir.empty()) return;
  std::ostringstream os;
  JsonWriter w(&os);
  w.BeginObject();
  w.Field("bench", "micro_sched");
  w.Key("envelope_kernel");
  w.BeginArray();
  for (const KernelTiming& row : kernel_rows) {
    w.BeginObject();
    w.Field("workload", "hot-only NR-2");
    w.Field("batch_requests", row.batch);
    w.Field("num_tapes", row.tapes);
    w.Field("incremental_ns_per_op", row.incremental_ns_per_op);
    w.Field("reference_timed", row.reference_timed);
    w.Field("reference_ns_per_op", row.reference_ns_per_op);
    w.Field("speedup", row.speedup);
    w.Field("extension_rounds_per_op", row.extension_rounds_per_op);
    w.Field("tapes_rescored_per_op", row.tapes_rescored_per_op);
    w.EndObject();
  }
  w.EndArray();
  w.Key("steady_state");
  w.BeginArray();
  for (const SteadyRow& row : steady_rows) {
    w.BeginObject();
    w.Field("workload", "hot-only NR-2");
    w.Field("mode", row.mode);
    w.Field("depth", row.depth);
    w.Field("num_tapes", row.tapes);
    w.Field("ns_per_reschedule", row.ns_per_reschedule);
    w.Field("speedup_vs_legacy", row.speedup_vs_legacy);
    w.Field("served_per_reschedule", row.served_per_reschedule);
    w.Field("extension_rounds_per_reschedule", row.rounds_per_reschedule);
    w.Field("tapes_rescored_per_reschedule", row.rescored_per_reschedule);
    w.Field("master_rebuilds_per_reschedule", row.rebuilds_per_reschedule);
    w.Field("epoch_reuses_per_reschedule",
            row.epoch_reuses_per_reschedule);
    w.EndObject();
  }
  w.EndArray();
  if (check != nullptr) {
    w.Key("divergence_check");
    w.BeginObject();
    w.Field("passed", true);
    w.Field("validated_reschedules", check->visits);
    w.Field("requests_served", check->requests_served);
    w.EndObject();
  }
  w.EndObject();
  os << "\n";
  const std::string path = results_dir + "/micro_sched.json";
  const Status status = WriteTextFile(path, os.str());
  TJ_CHECK(status.ok()) << status.ToString();
  std::cout << "results: " << path << "\n";
}

}  // namespace
}  // namespace tapejuke

int main(int argc, char** argv) {
  // --results-dir and --check are ours (mirroring the figure benches;
  // an empty results dir disables the JSON document); everything else
  // goes to google-benchmark.
  std::string results_dir = "results";
  bool check_only = false;
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--results-dir=", 0) == 0) {
      results_dir = arg.substr(std::string("--results-dir=").size());
    } else if (arg == "--check") {
      check_only = true;
    } else {
      bench_argv.push_back(argv[i]);
    }
  }
  if (!check_only) {
    int bench_argc = static_cast<int>(bench_argv.size());
    benchmark::Initialize(&bench_argc, bench_argv.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               bench_argv.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }

  // --check trims both comparisons to the 10k point (the CI artifact) and
  // runs the divergence gate; the full grids are for local measurement.
  const std::vector<int> kernel_batches =
      check_only ? std::vector<int>{10000}
                 : std::vector<int>{20, 140, 300, 1000, 10000, 50000,
                                    100000};
  const std::vector<int> steady_depths =
      check_only ? std::vector<int>{10000}
                 : std::vector<int>{1000, 10000, 50000, 100000};

  const std::vector<tapejuke::KernelTiming> kernel_rows =
      tapejuke::RunKernelComparison(kernel_batches);
  tapejuke::PrintKernelComparison(kernel_rows);
  const std::vector<tapejuke::SteadyRow> steady_rows =
      tapejuke::RunSteadyComparison(steady_depths);
  tapejuke::PrintSteadyComparison(steady_rows);

  tapejuke::CheckStats check;
  if (check_only) check = tapejuke::RunDivergenceCheck();
  tapejuke::WriteResults(results_dir, kernel_rows, steady_rows,
                         check_only ? &check : nullptr);
  return 0;
}
