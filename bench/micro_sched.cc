// Microbenchmarks (google-benchmark): scheduler hot paths.
//
// The envelope major rescheduler is O(n^2 * t^2) worst case (§3.3); these
// benchmarks measure its practical cost as the pending-queue size n and
// tape count t grow, alongside the greedy rescheduler, the timing model,
// and the event queue.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/tapejuke.h"
#include "sim/event_queue.h"

namespace tapejuke {
namespace {

struct SchedRig {
  SchedRig(int32_t num_tapes, int32_t num_replicas)
      : jukebox(MakeJukebox(num_tapes)) {
    LayoutSpec layout;
    layout.hot_fraction = 0.10;
    layout.num_replicas = num_replicas;
    layout.start_position = num_replicas == 0 ? 0.0 : 1.0;
    catalog = std::make_unique<Catalog>(
        LayoutBuilder::Build(&jukebox, layout).value());
  }

  static JukeboxConfig MakeJukebox(int32_t num_tapes) {
    JukeboxConfig config;
    config.num_tapes = num_tapes;
    config.block_size_mb = 16;
    return config;
  }

  std::vector<Request> MakeRequests(int n, uint64_t seed) {
    Rng rng(seed);
    std::vector<Request> requests;
    for (int i = 0; i < n; ++i) {
      requests.push_back(Request{
          i,
          static_cast<BlockId>(rng.UniformUint64(
              static_cast<uint64_t>(catalog->num_blocks()))),
          0.0});
    }
    return requests;
  }

  Jukebox jukebox;
  std::unique_ptr<Catalog> catalog;
};

void BM_EnvelopeUpperEnvelope(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const auto tapes = static_cast<int32_t>(state.range(1));
  SchedRig rig(tapes, /*num_replicas=*/tapes - 1);
  EnvelopeScheduler sched(&rig.jukebox, rig.catalog.get(),
                          TapePolicy::kMaxBandwidth);
  const std::vector<Request> requests = rig.MakeRequests(n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.ComputeUpperEnvelope(requests));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_EnvelopeUpperEnvelope)
    ->ArgsProduct({{20, 60, 140, 300}, {5, 10}})
    ->Unit(benchmark::kMicrosecond);

void BM_GreedyMajorReschedule(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  SchedRig rig(10, 0);
  const std::vector<Request> requests = rig.MakeRequests(n, 7);
  for (auto _ : state) {
    GreedyScheduler sched(&rig.jukebox, rig.catalog.get(),
                          TapePolicy::kMaxBandwidth, /*dynamic=*/true);
    for (const Request& r : requests) sched.OnArrival(r, 0);
    benchmark::DoNotOptimize(sched.MajorReschedule());
  }
}
BENCHMARK(BM_GreedyMajorReschedule)
    ->Arg(20)
    ->Arg(140)
    ->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

void BM_TimingModelLocate(benchmark::State& state) {
  const TimingModel model{TimingParams::Exabyte8505XL()};
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.LocateTime(
        static_cast<Position>(rng.UniformUint64(7168)),
        static_cast<Position>(rng.UniformUint64(7168))));
  }
}
BENCHMARK(BM_TimingModelLocate);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  EventQueue<int> queue;
  Rng rng(9);
  // Steady-state heap of 1024 events.
  for (int i = 0; i < 1024; ++i) {
    queue.Schedule(rng.UniformDouble() * 1e6, i);
  }
  for (auto _ : state) {
    auto [time, payload] = queue.Pop();
    benchmark::DoNotOptimize(payload);
    queue.Schedule(time + rng.UniformDouble() * 100, payload);
  }
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_FullSimulationRun(benchmark::State& state) {
  // End-to-end cost of a 100k-second simulated run (dynamic max-bandwidth,
  // PH-10 RH-40, queue 60).
  for (auto _ : state) {
    SchedRig rig(10, 0);
    GreedyScheduler sched(&rig.jukebox, rig.catalog.get(),
                          TapePolicy::kMaxBandwidth, true);
    SimulationConfig config;
    config.duration_seconds = 100'000;
    config.warmup_seconds = 0;
    config.workload.queue_length = 60;
    Simulator sim(&rig.jukebox, rig.catalog.get(), &sched, config);
    benchmark::DoNotOptimize(sim.Run());
  }
}
BENCHMARK(BM_FullSimulationRun)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tapejuke

BENCHMARK_MAIN();
