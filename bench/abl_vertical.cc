// Probe of the paper's §4.3 suspicion: "We did not experiment with
// quantities of hot data larger than the capacity of one tape, but we
// suspect that a vertical layout in that case would lead to excessive tape
// switching."
//
// With hot data spanning three tapes (PH-30), the vertical layout must
// bounce between the dedicated hot tapes (each hot request binds to
// exactly one of them), while the horizontal layout serves hot requests on
// whichever tape is mounted. This bench measures throughput, delay, and
// switch rates for both layouts across PH and load.

#include "bench_common.h"

namespace tapejuke {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv,
                     "Ablation: vertical layouts beyond one hot tape "
                     "(paper §4.3 suspicion)",
                     &exit_code)) {
    return exit_code;
  }
  Table table({"ph_pct", "layout", "load", "throughput_req_min",
               "delay_min", "switches_per_h"});
  for (const int ph : {10, 30}) {
    for (const HotLayout layout :
         {HotLayout::kVertical, HotLayout::kHorizontal}) {
      ExperimentConfig config = PaperBaseConfig(options);
      config.layout.hot_fraction = ph / 100.0;
      config.layout.layout = layout;
      config.layout.start_position = 0.0;
      // RH scaled so hot data stays "hot" relative to its footprint.
      config.sim.workload.hot_request_fraction = ph == 10 ? 0.40 : 0.60;
      for (const CurvePoint& point : LoadSweep(config, options)) {
        const int64_t load = options.Model() == QueuingModel::kOpen
                                 ? static_cast<int64_t>(
                                       point.interarrival_seconds)
                                 : point.queue_length;
        table.AddRow({static_cast<int64_t>(ph),
                      std::string(layout == HotLayout::kVertical
                                      ? "vertical"
                                      : "horizontal"),
                      load, point.throughput_req_per_min,
                      point.mean_delay_minutes,
                      point.sim.tape_switches_per_hour});
      }
    }
  }
  Emit(options, "vertical vs horizontal as hot data outgrows one tape",
       &table);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
