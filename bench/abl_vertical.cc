// Probe of the paper's §4.3 suspicion: "We did not experiment with
// quantities of hot data larger than the capacity of one tape, but we
// suspect that a vertical layout in that case would lead to excessive tape
// switching."
//
// With hot data spanning three tapes (PH-30), the vertical layout must
// bounce between the dedicated hot tapes (each hot request binds to
// exactly one of them), while the horizontal layout serves hot requests on
// whichever tape is mounted. This bench measures throughput, delay, and
// switch rates for both layouts across PH and load.

#include "bench_common.h"

namespace tapejuke {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv,
                     "Ablation: vertical layouts beyond one hot tape "
                     "(paper §4.3 suspicion)",
                     &exit_code)) {
    return exit_code;
  }
  BenchContext ctx("abl_vertical", options);

  std::vector<GridPoint> grid;
  for (const int ph : {10, 30}) {
    for (const HotLayout layout :
         {HotLayout::kVertical, HotLayout::kHorizontal}) {
      ExperimentConfig config = PaperBaseConfig(options);
      config.layout.hot_fraction = ph / 100.0;
      config.layout.layout = layout;
      config.layout.start_position = 0.0;
      // RH scaled so hot data stays "hot" relative to its footprint.
      config.sim.workload.hot_request_fraction = ph == 10 ? 0.40 : 0.60;
      ctx.AddLoadSweep(&grid,
                       "PH-" + std::to_string(ph) + "/" +
                           (layout == HotLayout::kVertical ? "vertical"
                                                           : "horizontal"),
                       config);
    }
  }
  const std::vector<ExperimentResult> results = ctx.RunGrid(grid);

  Table table({"ph_pct", "layout", "load", "throughput_req_min",
               "delay_min", "switches_per_h"});
  for (size_t i = 0; i < grid.size(); ++i) {
    const ExperimentConfig& config = grid[i].config;
    table.AddRow(
        {static_cast<int64_t>(config.layout.hot_fraction * 100 + 0.5),
         std::string(config.layout.layout == HotLayout::kVertical
                         ? "vertical"
                         : "horizontal"),
         static_cast<int64_t>(grid[i].load),
         results[i].sim.requests_per_minute,
         results[i].sim.mean_delay_minutes,
         results[i].sim.tape_switches_per_hour});
  }
  ctx.Emit("vertical vs horizontal as hot data outgrows one tape", &table);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
