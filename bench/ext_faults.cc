// Extension: fault injection, retry/failover, and degraded-mode operation.
//
// The paper studies replication as a performance mechanism; tape archives
// deploy it first for reliability. This bench quantifies the reliability
// side with the deterministic fault model (sim/fault_model.h): permanent
// media errors mask catalog replicas, requests fail over to surviving
// copies (or complete with an error when none remains), and ambient
// transient read errors, robot handoff slips, and drive failures tax the
// timeline. Swept: permanent-media-error rate x replica count x
// horizontal/vertical placement, closed model at a fixed population.
//
// Expected shape: at a zero rate every cell matches the fault-free
// baseline bit for bit; at nonzero rates NR-0 accumulates failed requests
// (each dead block is lost for good) while NR >= 2 converts nearly all of
// them into failovers, so availability stays near 1 and completions stay
// strictly ahead of NR-0. Every cell satisfies the conservation identity
// issued == completed + failed + outstanding (TJ_CHECKed here).

#include "bench_common.h"

namespace tapejuke {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv,
                     "Extension: fault injection and replication as an "
                     "availability mechanism",
                     &exit_code)) {
    return exit_code;
  }
  BenchContext ctx("ext_faults", options);
  ExperimentConfig base = PaperBaseConfig(options);
  base.sim.workload.queue_length = 60;  // fixed mid-grid population
  std::cout << "Extension: faults | " << ParamCaption(base)
            << " | dynamic max-bandwidth | QL-60\n";

  // Rate 0 is the genuinely fault-free baseline (every class disabled);
  // nonzero permanent rates ride with ambient transient / robot / drive
  // faults so the retry, handoff, and repair machinery is exercised too.
  const double perm_rates[] = {0.0, 1e-4, 1e-3};
  const int replica_counts[] = {0, 2, 4};
  const struct {
    const char* name;
    HotLayout layout;
  } layouts[] = {{"horizontal", HotLayout::kHorizontal},
                 {"vertical", HotLayout::kVertical}};

  std::vector<GridPoint> grid;
  std::vector<std::string> layout_names;  // parallel to grid
  for (const auto& lay : layouts) {
    for (const int nr : replica_counts) {
      for (const double rate : perm_rates) {
        ExperimentConfig config = base;
        config.layout.layout = lay.layout;
        config.layout.num_replicas = nr;
        if (lay.layout == HotLayout::kVertical) {
          // Replicas at the tape ends (SP-1.0, §4.5); NR-0 prefers SP-0.
          config.layout.start_position = nr == 0 ? 0.0 : 1.0;
        }
        if (rate > 0) {
          FaultConfig& faults = config.sim.faults;
          faults.permanent_media_error_prob = rate;
          faults.whole_tape_fraction = 0.2;
          faults.transient_read_error_prob = 0.01;
          faults.max_read_retries = 3;
          faults.drive_mtbf_seconds = 500'000;
          faults.drive_mttr_seconds = 2'000;
          faults.robot_fault_prob = 0.01;
        }
        grid.push_back({lay.name + std::string(" NR-") + std::to_string(nr),
                        rate, config});
        layout_names.push_back(lay.name);
      }
    }
  }
  const std::vector<ExperimentResult> results = ctx.RunGrid(grid);

  Table availability({"layout", "replicas", "perm_error_rate", "issued",
                      "completed", "failed", "availability",
                      "throughput_req_min"});
  Table machinery({"layout", "replicas", "perm_error_rate", "transient",
                   "retries", "escalated", "perm_errors", "dead_tapes",
                   "masked", "failovers", "drive_fail", "robot_faults"});
  availability.set_precision(4);  // the 1e-4 rate column needs 4 decimals
  machinery.set_precision(4);
  for (size_t i = 0; i < grid.size(); ++i) {
    const SimulationResult& sim = results[i].sim;
    // Degraded-mode bookkeeping must never lose a request.
    TJ_CHECK_EQ(sim.completed_total + sim.failed_requests +
                    sim.outstanding_at_end,
                sim.issued_requests)
        << "conservation violated at " << grid[i].series;
    const auto nr =
        static_cast<int64_t>(grid[i].config.layout.num_replicas);
    availability.AddRow({layout_names[i], nr, grid[i].load,
                         sim.issued_requests, sim.completed_total,
                         sim.failed_requests, sim.availability,
                         sim.requests_per_minute});
    machinery.AddRow({layout_names[i], nr, grid[i].load,
                      sim.faults.transient_read_errors,
                      sim.faults.read_retries, sim.faults.reads_escalated,
                      sim.faults.permanent_media_errors,
                      sim.faults.dead_tapes, sim.faults.replicas_masked,
                      sim.faults.failovers, sim.faults.drive_failures,
                      sim.faults.robot_faults});
  }
  ctx.Emit("availability under permanent media errors", &availability);
  ctx.Emit("fault machinery counters", &machinery);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
