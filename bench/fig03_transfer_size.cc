// Figure 3: the effect of the I/O transfer size.
//
// PH-10 RH-40 NR-0 SP-0, dynamic max-bandwidth; average throughput (KB/s)
// as a function of the block size for queue lengths 20, 60, 100, 140. The
// paper's answer (Q1): use at least 16 MB — halving 16 MB to 8 MB costs
// nearly a factor of two.

#include "bench_common.h"

namespace tapejuke {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv, "Figure 3: throughput vs transfer size",
                     &exit_code)) {
    return exit_code;
  }
  BenchContext ctx("fig03_transfer_size", options);
  ExperimentConfig base = PaperBaseConfig(options);
  std::cout << "Figure 3 | " << ParamCaption(base)
            << " | dynamic max-bandwidth\n";

  const int64_t block_sizes[] = {1, 2, 4, 8, 16, 32, 64};
  const int64_t queues[] = {20, 60, 100, 140};

  std::vector<GridPoint> grid;
  for (const int64_t block : block_sizes) {
    for (const int64_t queue : queues) {
      ExperimentConfig config = base;
      config.jukebox.block_size_mb = block;
      config.sim.workload.queue_length = queue;
      if (options.Model() == QueuingModel::kOpen) {
        // Keep the byte demand comparable across block sizes.
        config.sim.workload.mean_interarrival_seconds =
            static_cast<double>(block) * 60.0 / 16.0;
      }
      grid.push_back(GridPoint{"block-" + std::to_string(block) + "MB",
                               static_cast<double>(queue), config});
    }
  }
  const std::vector<ExperimentResult> results = ctx.RunGrid(grid);

  Table table({"block_mb", "q20_kb_s", "q60_kb_s", "q100_kb_s",
               "q140_kb_s"});
  table.set_precision(1);
  size_t point = 0;
  for (const int64_t block : block_sizes) {
    std::vector<Table::Cell> row;
    row.reserve(1 + std::size(queues));
    row.emplace_back(static_cast<int64_t>(block));
    for (size_t q = 0; q < std::size(queues); ++q) {
      row.push_back(results[point++].sim.throughput_kb_per_s);
    }
    table.AddRow(std::move(row));
  }
  ctx.Emit("throughput (KB/s) vs transfer size", &table);

  std::cout << "\nPaper claim (Q1): >= 16 MB reaches > 30% of the drive's "
            << "streaming rate ("
            << TimingModel{TimingParams::Exabyte8505XL()}.StreamingRateMBps() *
                   1024
            << " KB/s); 8 MB costs ~2x vs 16 MB.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
