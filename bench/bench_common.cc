#include "bench_common.h"

#include <sstream>

namespace tapejuke {
namespace bench {

bool BenchOptions::Parse(int argc, char** argv, const std::string& summary,
                         int* exit_code, FlagSet* extra) {
  FlagSet local(summary);
  FlagSet& flags = extra != nullptr ? *extra : local;
  flags.AddDouble("sim-seconds", &sim_seconds,
                  "simulated seconds per data point (paper: 10,000,000)");
  flags.AddInt64("seed", &seed, "workload random seed");
  flags.AddBool("csv", &csv, "also print CSV blocks");
  flags.AddString("queuing", &queuing,
                  "arrival model: closed (constant queue) or open (Poisson)");
  const Status status = flags.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) {  // --help
    *exit_code = 0;
    return false;
  }
  if (!status.ok()) {
    std::cerr << status << "\n";
    *exit_code = 2;
    return false;
  }
  if (queuing != "closed" && queuing != "open") {
    std::cerr << "--queuing must be 'closed' or 'open'\n";
    *exit_code = 2;
    return false;
  }
  *exit_code = 0;
  return true;
}

ExperimentConfig PaperBaseConfig(const BenchOptions& options) {
  ExperimentConfig config;
  config.jukebox.num_tapes = 10;
  config.jukebox.block_size_mb = 16;
  config.layout.hot_fraction = 0.10;
  config.layout.num_replicas = 0;
  config.layout.start_position = 0.0;
  config.sim.duration_seconds = options.sim_seconds;
  config.sim.warmup_seconds = options.sim_seconds * 0.1;
  config.sim.workload.model = options.Model();
  config.sim.workload.hot_request_fraction = 0.40;
  config.sim.workload.seed = static_cast<uint64_t>(options.seed);
  config.algorithm = AlgorithmSpec::Parse("dynamic-max-bandwidth").value();
  return config;
}

std::vector<CurvePoint> LoadSweep(const ExperimentConfig& config,
                                  const BenchOptions& options) {
  if (options.Model() == QueuingModel::kOpen) {
    return OpenThroughputDelayCurve(config, PaperInterarrivals()).value();
  }
  return ThroughputDelayCurve(config, PaperQueueLengths()).value();
}

void Emit(const BenchOptions& options, const std::string& title,
          Table* table) {
  std::cout << "\n== " << title << " ==\n";
  table->PrintText(std::cout);
  if (options.csv) {
    std::cout << "\n-- csv --\n";
    table->PrintCsv(std::cout);
  }
}

std::string ParamCaption(const ExperimentConfig& config) {
  std::ostringstream out;
  out << "PH-" << static_cast<int>(config.layout.hot_fraction * 100)
      << " RH-"
      << static_cast<int>(config.sim.workload.hot_request_fraction * 100)
      << " NR-" << config.layout.num_replicas << " SP-"
      << config.layout.start_position << " block-"
      << config.jukebox.block_size_mb << "MB "
      << (config.layout.layout == HotLayout::kVertical ? "vertical"
                                                       : "horizontal")
      << " " << config.jukebox.num_tapes << " tapes";
  return out.str();
}

}  // namespace bench
}  // namespace tapejuke
