#include "bench_common.h"

#include <sstream>

#include "util/check.h"

namespace tapejuke {
namespace bench {

bool BenchOptions::Parse(int argc, char** argv, const std::string& summary,
                         int* exit_code, FlagSet* extra) {
  FlagSet local(summary);
  FlagSet& flags = extra != nullptr ? *extra : local;
  flags.AddDouble("sim-seconds", &sim_seconds,
                  "simulated seconds per data point (paper: 10,000,000)");
  flags.AddInt64("seed", &seed, "base seed for per-point workload seeds");
  flags.AddBool("csv", &csv, "also print CSV blocks");
  flags.AddString("queuing", &queuing,
                  "arrival model: closed (constant queue) or open (Poisson)");
  flags.AddInt64("threads", &threads,
                 "worker threads for the sweep (0 = hardware concurrency; "
                 "1 = serial; results are identical at any value)");
  flags.AddString("results-dir", &results_dir,
                  "directory for the <bench>.json results document "
                  "(empty disables JSON output)");
  flags.AddBool("quick", &quick,
                "reduced load grid (3 points) for smoke runs");
  flags.AddDouble("fault-transient-rate", &fault_transient_rate,
                  "per-read transient error probability in [0, 1)");
  flags.AddDouble("fault-perm-rate", &fault_perm_rate,
                  "per-read permanent media error probability in [0, 1)");
  flags.AddDouble("fault-whole-tape", &fault_whole_tape,
                  "fraction of permanent errors that kill the whole tape");
  flags.AddDouble("fault-drive-mtbf", &fault_drive_mtbf,
                  "mean drive uptime between failures, seconds (0 = off)");
  flags.AddDouble("fault-drive-mttr", &fault_drive_mttr,
                  "mean drive repair time, seconds");
  flags.AddDouble("fault-robot-rate", &fault_robot_rate,
                  "robot handoff slip probability in [0, 1)");
  flags.AddInt64("fault-retries", &fault_retries,
                 "transient-error retry budget before escalation");
  flags.AddDouble("fault-backoff-base", &fault_backoff_base,
                  "exponential backoff base before retry k: base * 2^k "
                  "seconds, jittered (0 = immediate retries)");
  flags.AddDouble("fault-backoff-max", &fault_backoff_max,
                  "cap on a single backoff wait, seconds (0 = uncapped)");
  flags.AddBool("repair", &repair,
                "re-replicate dead replicas onto spare capacity");
  flags.AddDouble("scrub-interval", &scrub_interval,
                  "seconds between background scrub passes (0 = off)");
  flags.AddDouble("repair-bw", &repair_bw,
                  "token-bucket budget for scrub/repair I/O, MB/s "
                  "(0 = unmetered)");
  flags.AddString("trace-out", &trace_out,
                  "Chrome trace_event JSON output path for the traced grid "
                  "point; load in Perfetto (empty disables tracing)");
  flags.AddString("decision-log", &decision_log,
                  "scheduler decision JSONL output path for the traced "
                  "grid point (empty disables the log)");
  flags.AddInt64("trace-sample", &trace_sample,
                 "trace the lifecycle of every Nth request (1 = all; "
                 "drive states and decisions are never sampled)");
  flags.AddInt64("trace-point", &trace_point,
                 "index of the grid point to trace, in the first sweep "
                 "large enough to contain it");
  flags.AddString("timeline-out", &timeline_out,
                  "time-series telemetry JSONL output path for the traced "
                  "grid point (empty disables the timeline)");
  flags.AddDouble("timeline-interval", &timeline_interval,
                  "simulated seconds between timeline samples (required "
                  "with --timeline-out)");
  const Status status = flags.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) {  // --help
    *exit_code = 0;
    return false;
  }
  if (!status.ok()) {
    std::cerr << status << "\n";
    *exit_code = 2;
    return false;
  }
  if (queuing != "closed" && queuing != "open") {
    std::cerr << "--queuing must be 'closed' or 'open'\n";
    *exit_code = 2;
    return false;
  }
  if (threads < 0) {
    std::cerr << "--threads must be >= 0\n";
    *exit_code = 2;
    return false;
  }
  if (trace_sample < 1) {
    std::cerr << "--trace-sample must be >= 1\n";
    *exit_code = 2;
    return false;
  }
  if (trace_point < 0) {
    std::cerr << "--trace-point must be >= 0\n";
    *exit_code = 2;
    return false;
  }
  if (timeline_interval < 0) {
    std::cerr << "--timeline-interval must be >= 0\n";
    *exit_code = 2;
    return false;
  }
  if (!timeline_out.empty() && timeline_interval <= 0) {
    std::cerr << "--timeline-out requires a positive --timeline-interval\n";
    *exit_code = 2;
    return false;
  }
  *exit_code = 0;
  return true;
}

std::vector<int64_t> QueueLengths(const BenchOptions& options) {
  if (options.quick) return {20, 60, 140};
  return PaperQueueLengths();
}

std::vector<double> Interarrivals(const BenchOptions& options) {
  if (options.quick) return {240, 90, 50};
  return PaperInterarrivals();
}

ExperimentConfig PaperBaseConfig(const BenchOptions& options) {
  ExperimentConfig config;
  config.jukebox.num_tapes = 10;
  config.jukebox.block_size_mb = 16;
  config.layout.hot_fraction = 0.10;
  config.layout.num_replicas = 0;
  config.layout.start_position = 0.0;
  config.sim.duration_seconds = options.sim_seconds;
  config.sim.warmup_seconds = options.sim_seconds * 0.1;
  config.sim.workload.model = options.Model();
  config.sim.workload.hot_request_fraction = 0.40;
  config.sim.workload.seed = static_cast<uint64_t>(options.seed);
  config.sim.faults.transient_read_error_prob = options.fault_transient_rate;
  config.sim.faults.permanent_media_error_prob = options.fault_perm_rate;
  config.sim.faults.whole_tape_fraction = options.fault_whole_tape;
  config.sim.faults.drive_mtbf_seconds = options.fault_drive_mtbf;
  config.sim.faults.drive_mttr_seconds = options.fault_drive_mttr;
  config.sim.faults.robot_fault_prob = options.fault_robot_rate;
  config.sim.faults.max_read_retries = static_cast<int>(options.fault_retries);
  config.sim.faults.retry_backoff_base_seconds = options.fault_backoff_base;
  config.sim.faults.retry_backoff_max_seconds = options.fault_backoff_max;
  config.sim.repair.enable_repair = options.repair;
  config.sim.repair.scrub_interval_seconds = options.scrub_interval;
  config.sim.repair.repair_bandwidth_mb_per_s = options.repair_bw;
  config.algorithm = AlgorithmSpec::Parse("dynamic-max-bandwidth").value();
  return config;
}

std::string ParamCaption(const ExperimentConfig& config) {
  std::ostringstream out;
  out << "PH-" << static_cast<int>(config.layout.hot_fraction * 100)
      << " RH-"
      << static_cast<int>(config.sim.workload.hot_request_fraction * 100)
      << " NR-" << config.layout.num_replicas << " SP-"
      << config.layout.start_position << " block-"
      << config.jukebox.block_size_mb << "MB "
      << (config.layout.layout == HotLayout::kVertical ? "vertical"
                                                       : "horizontal")
      << " " << config.jukebox.num_tapes << " tapes";
  return out.str();
}

BenchContext::BenchContext(std::string bench_name,
                           const BenchOptions& options)
    : bench_name_(std::move(bench_name)), options_(options) {}

BenchContext::~BenchContext() { Finish(); }

void BenchContext::AddLoadSweep(std::vector<GridPoint>* grid,
                                const std::string& series,
                                ExperimentConfig config) const {
  if (options_.Model() == QueuingModel::kOpen) {
    config.sim.workload.model = QueuingModel::kOpen;
    for (const double gap : Interarrivals(options_)) {
      config.sim.workload.mean_interarrival_seconds = gap;
      grid->push_back(GridPoint{series, gap, config});
    }
    return;
  }
  config.sim.workload.model = QueuingModel::kClosed;
  for (const int64_t queue : QueueLengths(options_)) {
    config.sim.workload.queue_length = queue;
    grid->push_back(
        GridPoint{series, static_cast<double>(queue), config});
  }
}

std::vector<ExperimentResult> BenchContext::RunGrid(
    const std::vector<GridPoint>& grid) {
  const SweepRunner runner(options_.Sweep());
  std::vector<ExperimentConfig> points;
  points.reserve(grid.size());
  for (const GridPoint& point : grid) points.push_back(point.config);
  const obs::TraceConfig trace = options_.Trace();
  if (trace.enabled() && !trace_attached_) {
    const size_t target = static_cast<size_t>(options_.trace_point);
    if (target < points.size()) {
      points[target].sim.obs = trace;
      trace_attached_ = true;
    }
  }
  const obs::TimelineConfig timeline = options_.Timeline();
  if (timeline.enabled() && !timeline_attached_) {
    const size_t target = static_cast<size_t>(options_.trace_point);
    if (target < points.size()) {
      points[target].sim.timeline = timeline;
      timeline_attached_ = true;
    }
  }
  StatusOr<std::vector<ExperimentResult>> results = runner.Run(points);
  TJ_CHECK(results.ok()) << results.status().ToString();
  std::vector<RecordedPoint> recorded;
  recorded.reserve(grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    recorded.push_back(RecordedPoint{grid[i].series, grid[i].load,
                                     runner.EffectiveConfig(points[i], i),
                                     results.value()[i]});
  }
  sweeps_.push_back(std::move(recorded));
  return std::move(results).value();
}

std::vector<FarmResult> BenchContext::RunFarmGrid(
    const std::vector<FarmGridPoint>& grid) {
  const SweepRunner runner(options_.Sweep());
  std::vector<FarmConfig> points;
  points.reserve(grid.size());
  for (const FarmGridPoint& point : grid) points.push_back(point.config);
  const obs::TimelineConfig timeline = options_.Timeline();
  if (timeline.enabled() && !timeline_attached_) {
    const size_t target = static_cast<size_t>(options_.trace_point);
    if (target < points.size()) {
      points[target].per_jukebox.sim.timeline = timeline;
      timeline_attached_ = true;
    }
  }
  StatusOr<std::vector<FarmResult>> results = runner.RunFarms(points);
  TJ_CHECK(results.ok()) << results.status().ToString();
  std::vector<RecordedFarmPoint> recorded;
  recorded.reserve(grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    recorded.push_back(
        RecordedFarmPoint{grid[i].series, grid[i].load,
                          runner.EffectiveFarmConfig(points[i], i),
                          results.value()[i]});
  }
  farm_sweeps_.push_back(std::move(recorded));
  return std::move(results).value();
}

void BenchContext::RunParallel(size_t n,
                               const std::function<Status(size_t)>& fn) {
  const SweepRunner runner(options_.Sweep());
  const Status status = runner.RunIndexed(n, fn);
  TJ_CHECK(status.ok()) << status.ToString();
}

void BenchContext::RecordResult(const std::string& series, double load,
                                const SimulationResult& result) {
  extra_results_.push_back(RecordedExtra{series, load, result});
}

void BenchContext::Emit(const std::string& title, Table* table) {
  std::cout << "\n== " << title << " ==\n";
  table->PrintText(std::cout);
  if (options_.csv) {
    std::cout << "\n-- csv --\n";
    table->PrintCsv(std::cout);
  }
  tables_.push_back(RecordedTable{title, *table});
}

void BenchContext::Finish() {
  if (finished_ || options_.results_dir.empty()) return;
  finished_ = true;
  std::ostringstream out;
  JsonWriter w(&out);
  w.BeginObject();
  w.Field("schema_version", int64_t{1});
  w.Field("bench", bench_name_);
  w.Key("options");
  w.BeginObject();
  w.Field("sim_seconds", options_.sim_seconds);
  w.Field("seed", options_.seed);
  w.Field("queuing", options_.queuing);
  w.Field("threads", options_.threads);
  w.Field("quick", options_.quick);
  w.EndObject();
  if (!sweeps_.empty()) {
    w.Key("sweeps");
    w.BeginArray();
    for (const std::vector<RecordedPoint>& sweep : sweeps_) {
      w.BeginArray();
      for (const RecordedPoint& point : sweep) {
        w.BeginObject();
        w.Field("series", point.series);
        w.Field("load", point.load);
        w.Key("config");
        WriteJson(&w, point.config);
        w.Key("result");
        WriteJson(&w, point.result);
        w.EndObject();
      }
      w.EndArray();
    }
    w.EndArray();
  }
  if (!farm_sweeps_.empty()) {
    w.Key("farm_sweeps");
    w.BeginArray();
    for (const std::vector<RecordedFarmPoint>& sweep : farm_sweeps_) {
      w.BeginArray();
      for (const RecordedFarmPoint& point : sweep) {
        w.BeginObject();
        w.Field("series", point.series);
        w.Field("load", point.load);
        w.Key("config");
        WriteJson(&w, point.config);
        w.Key("result");
        WriteJson(&w, point.result);
        w.EndObject();
      }
      w.EndArray();
    }
    w.EndArray();
  }
  if (!extra_results_.empty()) {
    w.Key("extra_results");
    w.BeginArray();
    for (const RecordedExtra& extra : extra_results_) {
      w.BeginObject();
      w.Field("series", extra.series);
      w.Field("load", extra.load);
      w.Key("result");
      WriteJson(&w, extra.result);
      w.EndObject();
    }
    w.EndArray();
  }
  if (!tables_.empty()) {
    w.Key("tables");
    w.BeginArray();
    for (const RecordedTable& table : tables_) {
      w.BeginObject();
      w.Field("title", table.title);
      w.Key("table");
      WriteJson(&w, table.table);
      w.EndObject();
    }
    w.EndArray();
  }
  w.EndObject();
  out << "\n";
  const std::string path = options_.results_dir + "/" + bench_name_ + ".json";
  const Status status = WriteTextFile(path, out.str());
  if (!status.ok()) {
    std::cerr << "warning: " << status << "\n";
    return;
  }
  std::cout << "\nwrote " << path << "\n";
}

}  // namespace bench
}  // namespace tapejuke
