// Extension bench: Zipf popularity (generalizing the paper's hot/cold
// skew, Figure 9 style).
//
// The paper's two-level skew is a coarse proxy for the rank-popularity
// curves real archives exhibit. Here block id == popularity rank and the
// layout places the top-PH% ranks in the hot region, so the paper's
// placement and replication machinery applies unchanged; the question is
// whether its conclusions (more skew -> better; replication pays off more
// at higher skew) survive the smoother distribution. theta ~= 0.8 yields a
// hot-region hit fraction comparable to RH-40..60.

#include "bench_common.h"

namespace tapejuke {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv,
                     "Extension: Zipf popularity vs replication",
                     &exit_code)) {
    return exit_code;
  }
  BenchContext ctx("ext_zipf", options);
  ExperimentConfig base = PaperBaseConfig(options);
  base.algorithm = AlgorithmSpec::Parse("envelope-max-bandwidth").value();
  base.sim.workload.skew = SkewModel::kZipf;
  std::cout << "Zipf extension | PH-10 layout | max-bandwidth envelope | "
               "queue 60\n";

  std::vector<GridPoint> grid;
  for (const double theta : {0.0, 0.4, 0.8, 1.2}) {
    for (const int nr : {0, 9}) {
      ExperimentConfig config = base;
      config.sim.workload.zipf_theta = theta;
      config.sim.workload.queue_length = 60;
      config.layout.num_replicas = nr;
      config.layout.start_position = nr == 0 ? 0.0 : 1.0;
      grid.push_back(GridPoint{"theta-" + std::to_string(theta).substr(0, 3) +
                                   "/NR-" + std::to_string(nr),
                               60.0, config});
    }
  }
  const std::vector<ExperimentResult> results = ctx.RunGrid(grid);

  Table table({"theta", "replicas", "throughput_req_min", "delay_min",
               "switches_per_h"});
  for (size_t i = 0; i < grid.size(); ++i) {
    const ExperimentConfig& config = grid[i].config;
    table.AddRow({config.sim.workload.zipf_theta,
                  static_cast<int64_t>(config.layout.num_replicas),
                  results[i].sim.requests_per_minute,
                  results[i].sim.mean_delay_minutes,
                  results[i].sim.tape_switches_per_hour});
  }
  ctx.Emit("throughput vs Zipf exponent, with and without replication",
           &table);
  std::cout << "\nExpected shape (and the paper's Q7 carried over): higher "
               "theta helps both\nschemes, and the replication gain widens "
               "with skew.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
