// Extension: self-healing replication — background scrub and repair with a
// bounded foreground impact.
//
// ext_faults shows replication absorbing permanent media errors; this bench
// closes the loop with the repair subsystem (sim/repair.h): background
// scrub passes surface latent errors before clients do, and a repair queue
// re-replicates each dead replica onto spare capacity, throttled by a
// token-bucket bandwidth budget so client service is taxed at one-block
// granularity at most. Swept: repair mode (off / repair / repair+scrub /
// throttled repair+scrub) x permanent-media-error rate x replica count,
// open model at a fixed arrival rate (idle drive time is what scrub and
// repair consume). The layout keeps ~10% of every tape as spare capacity
// for repair targets.
//
// Expected shape: at rate 0 every mode matches the fault-free baseline bit
// for bit (no fault or repair code runs). At nonzero rates the no-repair
// baseline's live-replica fraction decays for the rest of the run, while
// the repair modes re-protect masked replicas with a bounded
// time-to-re-protection, ending with a strictly higher live-replica
// fraction; scrub converts client-visible media errors into
// scrub-detected ones. Each cell satisfies both conservation identities
// (requests and repair tasks), TJ_CHECKed here.

#include <cmath>

#include "bench_common.h"

namespace tapejuke {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options;
  options.queuing = "open";  // idle time is the repair budget's raw material
  int exit_code = 0;
  if (!options.Parse(argc, argv,
                     "Extension: background scrub and replica repair with a "
                     "bounded foreground impact",
                     &exit_code)) {
    return exit_code;
  }
  BenchContext ctx("ext_repair", options);
  ExperimentConfig base = PaperBaseConfig(options);
  // Light open-model load: scrub and repair live off idle drive time, so
  // the arrival gaps must leave some (the paper grid's light end).
  base.sim.workload.model = QueuingModel::kOpen;
  base.sim.workload.mean_interarrival_seconds = 240;
  std::cout << "Extension: scrub + repair | " << ParamCaption(base)
            << " | dynamic max-bandwidth | open, 240 s interarrival\n";

  struct Mode {
    const char* name;
    bool repair;
    double scrub_interval;
    double bandwidth_mb_per_s;
  };
  const Mode modes[] = {
      {"no-repair", false, 0.0, 0.0},
      {"repair", true, 0.0, 20.0},
      {"repair+scrub", true, 100'000.0, 20.0},
      {"throttled", true, 100'000.0, 2.0},
  };
  const double perm_rates[] = {0.0, 2e-3};
  const int replica_counts[] = {2, 4};

  std::vector<GridPoint> grid;
  for (const int nr : replica_counts) {
    for (const double rate : perm_rates) {
      for (const Mode& mode : modes) {
        ExperimentConfig config = base;
        config.layout.num_replicas = nr;
        // Leave ~10% of the archive unoccupied as repair spare capacity.
        const Jukebox probe(config.jukebox);
        config.layout.logical_blocks_override =
            LayoutBuilder::MaxLogicalBlocks(probe, config.layout) * 9 / 10;
        if (rate > 0) {
          // Region-only permanent errors (ext_faults covers whole-tape
          // loss) plus ambient transients so scrub retries are exercised.
          config.sim.faults.permanent_media_error_prob = rate;
          config.sim.faults.transient_read_error_prob = 0.005;
          config.sim.faults.max_read_retries = 3;
          config.sim.repair.enable_repair = mode.repair;
          config.sim.repair.scrub_interval_seconds = mode.scrub_interval;
          config.sim.repair.repair_bandwidth_mb_per_s =
              mode.bandwidth_mb_per_s;
        }
        grid.push_back({std::string(mode.name) + " NR-" + std::to_string(nr),
                        rate, config});
      }
    }
  }
  const std::vector<ExperimentResult> results = ctx.RunGrid(grid);

  Table durability({"series", "perm_error_rate", "issued", "completed",
                    "failed", "availability", "live_replica_fraction",
                    "blocks_lost", "degraded_reads"});
  Table machinery({"series", "perm_error_rate", "scrub_passes",
                   "scrub_blocks", "scrub_detected", "enqueued", "completed",
                   "abandoned", "impossible", "backlog_final", "ttr_mean_s",
                   "ttr_max_s"});
  Table foreground({"series", "perm_error_rate", "mean_delay_s",
                    "p95_delay_s", "switches_per_hour", "scrub_drive_s",
                    "repair_drive_s"});
  durability.set_precision(4);
  machinery.set_precision(4);
  foreground.set_precision(4);

  const size_t num_modes = std::size(modes);
  for (size_t i = 0; i < grid.size(); ++i) {
    const SimulationResult& sim = results[i].sim;
    const RepairStats& repair = sim.repair;
    if (sim.fault_injection) {
      TJ_CHECK_EQ(sim.completed_total + sim.failed_requests +
                      sim.outstanding_at_end,
                  sim.issued_requests)
          << "request conservation violated at " << grid[i].series;
    }
    if (sim.repair_enabled) {
      // Every enqueued repair task is accounted for exactly once.
      TJ_CHECK_EQ(repair.repairs_enqueued,
                  repair.repairs_completed + repair.repairs_abandoned +
                      repair.backlog_final)
          << "repair-task conservation violated at " << grid[i].series;
      // Bounded time-to-re-protection: no completed repair waited longer
      // than the run itself (and the mean is well under it).
      TJ_CHECK_LE(repair.reprotect_seconds_max, sim.simulated_seconds);
    }
    const double ttr_mean =
        repair.repairs_completed > 0
            ? repair.reprotect_seconds_sum /
                  static_cast<double>(repair.repairs_completed)
            : 0.0;
    durability.AddRow({grid[i].series, grid[i].load, sim.issued_requests,
                       sim.completed_total, sim.failed_requests,
                       sim.availability, sim.live_replica_fraction,
                       sim.faults.blocks_lost, sim.faults.degraded_reads});
    machinery.AddRow({grid[i].series, grid[i].load, repair.scrub_passes,
                      repair.scrub_blocks_read, repair.scrub_errors_detected,
                      repair.repairs_enqueued, repair.repairs_completed,
                      repair.repairs_abandoned, repair.repairs_impossible,
                      repair.backlog_final, ttr_mean,
                      repair.reprotect_seconds_max});
    foreground.AddRow({grid[i].series, grid[i].load, sim.mean_delay_seconds,
                       sim.p95_delay_seconds, sim.tape_switches_per_hour,
                       repair.scrub_seconds, repair.repair_write_seconds});

  }
  ctx.Emit("durability: availability and live redundancy", &durability);
  ctx.Emit("scrub/repair machinery", &machinery);
  ctx.Emit("foreground impact", &foreground);

  // Self-healing pays off, deterministically: within every run the final
  // live-replica fraction satisfies the exact identity
  //   live = 1 - (masked - repaired) / total_copies,
  // so whenever repairs completed, the run ends strictly better protected
  // than its own no-repair counterfactual (1 - masked / total_copies).
  // Cross-mode comparisons would be noise — each cell draws its own fault
  // stream, and single-copy cold blocks are unrepairable in every mode.
  for (size_t i = 0; i < grid.size(); ++i) {
    const SimulationResult& sim = results[i].sim;
    if (!sim.fault_injection) continue;
    const double total =
        static_cast<double>(results[i].layout.total_copies);
    const double counterfactual =
        1.0 - static_cast<double>(sim.faults.replicas_masked) / total;
    const double expected =
        counterfactual +
        static_cast<double>(sim.repair.repairs_completed) / total;
    TJ_CHECK_LE(std::abs(sim.live_replica_fraction - expected), 1e-9)
        << grid[i].series << " live-replica identity violated";
    if (sim.repair.repairs_completed > 0) {
      TJ_CHECK_GT(sim.live_replica_fraction, counterfactual)
          << grid[i].series
          << " repairs completed but protection did not improve";
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
