// Ablation: the rewind-before-eject hardware requirement.
//
// The paper assumes helical-scan drives that must fully rewind before
// ejecting — that assumption is why hot data belongs at the *beginning* of
// the tape without replication (related work [3] shows rewind-to-nearest-
// zone drives prefer organ-pipe/middle placement instead). This ablation
// simulates a hypothetical eject-anywhere drive and re-runs the placement
// comparison: with the rewind gone, the beginning-of-tape advantage should
// shrink and middle placement become competitive.

#include "bench_common.h"

namespace tapejuke {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv,
                     "Ablation: rewind-before-eject vs eject-anywhere",
                     &exit_code)) {
    return exit_code;
  }
  BenchContext ctx("abl_rewind", options);

  std::vector<GridPoint> grid;
  for (const bool rewind : {true, false}) {
    for (const double sp : {0.0, 0.5, 1.0}) {
      ExperimentConfig config = PaperBaseConfig(options);
      config.jukebox.rewind_before_eject = rewind;
      config.layout.start_position = sp;
      ctx.AddLoadSweep(&grid,
                       std::string(rewind ? "rewind" : "eject-anywhere") +
                           "/SP-" + std::to_string(sp).substr(0, 3),
                       config);
    }
  }
  const std::vector<ExperimentResult> results = ctx.RunGrid(grid);

  Table table({"drive", "placement", "load", "throughput_req_min",
               "delay_min"});
  for (size_t i = 0; i < grid.size(); ++i) {
    const ExperimentConfig& config = grid[i].config;
    table.AddRow(
        {std::string(config.jukebox.rewind_before_eject
                         ? "rewind-before-eject"
                         : "eject-anywhere"),
         "SP-" +
             std::to_string(config.layout.start_position).substr(0, 3),
         static_cast<int64_t>(grid[i].load),
         results[i].sim.requests_per_minute,
         results[i].sim.mean_delay_minutes});
  }
  ctx.Emit("placement sensitivity to the rewind requirement", &table);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
