// Ablation: the rewind-before-eject hardware requirement.
//
// The paper assumes helical-scan drives that must fully rewind before
// ejecting — that assumption is why hot data belongs at the *beginning* of
// the tape without replication (related work [3] shows rewind-to-nearest-
// zone drives prefer organ-pipe/middle placement instead). This ablation
// simulates a hypothetical eject-anywhere drive and re-runs the placement
// comparison: with the rewind gone, the beginning-of-tape advantage should
// shrink and middle placement become competitive.

#include "bench_common.h"

namespace tapejuke {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv,
                     "Ablation: rewind-before-eject vs eject-anywhere",
                     &exit_code)) {
    return exit_code;
  }
  Table table({"drive", "placement", "load", "throughput_req_min",
               "delay_min"});
  for (const bool rewind : {true, false}) {
    for (const double sp : {0.0, 0.5, 1.0}) {
      ExperimentConfig config = PaperBaseConfig(options);
      config.jukebox.rewind_before_eject = rewind;
      config.layout.start_position = sp;
      for (const CurvePoint& point : LoadSweep(config, options)) {
        const int64_t load = options.Model() == QueuingModel::kOpen
                                 ? static_cast<int64_t>(
                                       point.interarrival_seconds)
                                 : point.queue_length;
        table.AddRow({std::string(rewind ? "rewind-before-eject"
                                         : "eject-anywhere"),
                      "SP-" + std::to_string(sp).substr(0, 3), load,
                      point.throughput_req_per_min,
                      point.mean_delay_minutes});
      }
    }
  }
  Emit(options, "placement sensitivity to the rewind requirement", &table);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
