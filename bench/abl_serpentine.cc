// Extension bench: helical-scan vs serpentine locate geometry.
//
// The paper's algorithms assume single-pass helical-scan tape; §2 notes
// they would need modification for serpentine drives. This bench shows why:
// it compares the locate-time structure of the two technologies over random
// position pairs and over sorted one-pass sweeps. On helical tape, locate
// cost grows with the logical distance, so a sorted sweep is near-optimal;
// on serpentine tape, logical distance is almost uncorrelated with cost
// (track-stacked positions are cheap), so sorted-order sweeps lose their
// advantage and position-aware scheduling must model track geometry.

#include <algorithm>

#include "bench_common.h"

namespace tapejuke {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv,
                     "Extension: helical vs serpentine locate geometry",
                     &exit_code)) {
    return exit_code;
  }
  BenchContext ctx("abl_serpentine", options);
  const TimingModel helical{TimingParams::Exabyte8505XL()};
  const SerpentineModel serpentine{SerpentineParams{}};
  Rng rng(static_cast<uint64_t>(options.seed));
  const int64_t capacity = helical.params().tape_capacity_mb;

  // Random locates bucketed by logical distance.
  Table by_distance({"logical_distance_mb", "helical_mean_s",
                     "serpentine_mean_s"});
  by_distance.set_precision(1);
  for (const int64_t dist : {16, 64, 256, 1024, 4096}) {
    RunningStat h_stat;
    RunningStat s_stat;
    for (int i = 0; i < 2000; ++i) {
      const auto from = static_cast<Position>(
          rng.UniformUint64(static_cast<uint64_t>(capacity - dist)));
      const Position to = from + dist;
      h_stat.Add(helical.LocateTime(from, to));
      s_stat.Add(serpentine.LocateTime(from, to));
    }
    by_distance.AddRow({dist, h_stat.mean(), s_stat.mean()});
  }
  ctx.Emit("mean locate time by logical distance", &by_distance);

  // Sorted one-pass sweep vs arrival order vs a serpentine-aware
  // nearest-neighbor tour, over random request batches.
  Table sweeps({"batch", "helical_sorted_s", "helical_unsorted_s",
                "serp_sorted_s", "serp_unsorted_s", "serp_nn_s"});
  sweeps.set_precision(0);
  for (const int batch : {4, 8, 16, 32}) {
    double h_sorted = 0, h_unsorted = 0, s_sorted = 0, s_unsorted = 0,
           s_nn = 0;
    const int kTrials = 500;
    for (int trial = 0; trial < kTrials; ++trial) {
      std::vector<Position> positions;
      for (int i = 0; i < batch; ++i) {
        positions.push_back(static_cast<Position>(
            rng.UniformUint64(static_cast<uint64_t>(capacity - 16))));
      }
      std::vector<Position> sorted = positions;
      std::sort(sorted.begin(), sorted.end());
      auto helical_tour = [&](const std::vector<Position>& order) {
        double total = 0;
        Position head = 0;
        for (const Position p : order) {
          total += helical.LocateTime(head, p);
          head = p;  // ignore the read component: geometry only
        }
        return total;
      };
      h_sorted += helical_tour(sorted) / kTrials;
      h_unsorted += helical_tour(positions) / kTrials;
      s_sorted += serpentine.TourLocateSeconds(0, sorted) / kTrials;
      s_unsorted += serpentine.TourLocateSeconds(0, positions) / kTrials;
      s_nn += serpentine.TourLocateSeconds(
                  0, SerpentineNearestNeighborTour(serpentine, 0,
                                                   positions)) /
              kTrials;
    }
    sweeps.AddRow({static_cast<int64_t>(batch), h_sorted, h_unsorted,
                   s_sorted, s_unsorted, s_nn});
  }
  ctx.Emit(
      "sweep cost: sorted vs arrival order vs serpentine-aware "
      "nearest-neighbor (the modification the paper says serpentine "
      "drives need)",
      &sweeps);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
