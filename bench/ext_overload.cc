// Extension bench: overload protection — request deadlines, SLO-aware
// admission control, and graceful degradation through and past saturation.
//
// The paper's open-model curves (Figures 4/8) stop at the saturation knee
// (~50 s mean interarrival for the base configuration) because beyond it
// the queue grows without bound and steady-state delay is undefined. This
// bench drives the simulator *through* the knee with a three-class tenant
// mix and compares what each admission policy preserves:
//
//  (a) policy comparison — none / static-cap / adaptive across light load
//      to 2x saturation. `none` lets every class's delay blow up;
//      `static-cap` bounds the queue but shares the pain evenly; `adaptive`
//      sheds best-effort classes and holds the protected class's p99 SLO.
//  (b) bursty arrivals — the same policies under correlated arrival bursts,
//      where a static cap admits whole bursts before reacting.
//  (c) deadlines — per-class queueing deadlines with no admission control:
//      past-deadline requests expire instead of occupying the queue.
//
// --check runs the CI acceptance gate instead of the grids: at 2x
// saturation the adaptive policy must hold the protected class's p99 at or
// under its SLO while `none` exceeds it, deadline expiry must fire, and a
// farm with every overload feature on must serialize byte-identical JSON
// at --threads 1 vs 4. Fails (TJ_CHECK abort) on any violation.

#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/experiment.h"
#include "core/farm.h"

namespace tapejuke {
namespace bench {
namespace {

/// The protected class's p99 SLO, seconds (~4 hours). Batch tape service
/// has an intrinsically heavy delay tail — even at light load (240 s mean
/// interarrival) the base configuration's p99 sits near 6000 s, because a
/// cold block on a rarely-visited tape waits out multiple sweep rotations.
/// Four hours is what this hardware can actually promise a premium class:
/// comfortably above the intrinsic tail, and far below the 70000+ s an
/// unprotected queue reaches at 2x saturation.
constexpr double kProtectedSlo = 15000.0;

/// Three-class mix: a small protected (premium) class, a standard class
/// with a loose SLO, and best-effort bulk traffic with none. The premium
/// class is 10% of traffic so that even at 2x overall saturation its own
/// load (~250 s effective interarrival at the 25 s point) sits well inside
/// the knee — an SLO no admission policy could meet is not worth studying.
void AddTenantMix(WorkloadConfig* workload, bool with_deadlines) {
  TenantClassConfig premium;
  premium.weight = 0.1;
  premium.p99_slo_seconds = kProtectedSlo;
  TenantClassConfig standard;
  standard.weight = 0.3;
  standard.p99_slo_seconds = 3.0 * kProtectedSlo;
  TenantClassConfig besteffort;
  besteffort.weight = 0.6;
  if (with_deadlines) {
    premium.deadline_seconds = kProtectedSlo;
    standard.deadline_seconds = 2.0 * kProtectedSlo;
  }
  workload->tenant_classes = {premium, standard, besteffort};
}

/// Correlated bursts: every ~20000 s a burst of ~30 extra arrivals lands
/// within a ~10 minute window.
void AddBursts(WorkloadConfig* workload) {
  workload->burst_interval_seconds = 20000;
  workload->burst_size = 30;
  workload->burst_spread_seconds = 600;
}

AdmissionConfig MakePolicy(const std::string& name) {
  AdmissionConfig admission;
  if (name == "static-cap") {
    admission.policy = AdmissionPolicy::kStaticCap;
    admission.queue_cap = 400;
  } else if (name == "adaptive") {
    admission.policy = AdmissionPolicy::kAdaptive;
  }
  return admission;
}

ExperimentConfig BasePoint(const BenchOptions& options, double gap) {
  ExperimentConfig config = PaperBaseConfig(options);
  config.sim.workload.model = QueuingModel::kOpen;
  config.sim.workload.mean_interarrival_seconds = gap;
  AddTenantMix(&config.sim.workload, /*with_deadlines=*/false);
  return config;
}

/// Interarrival grid spanning light load (240 s) through the saturation
/// knee (~50 s) to 2x overload (25 s).
std::vector<double> OverloadGaps(const BenchOptions& options) {
  if (options.quick) return {240, 25};
  return {240, 90, 60, 30, 25};
}

const TenantClassResult& Class(const SimulationResult& result, size_t i) {
  TJ_CHECK_LT(i, result.tenant_classes.size());
  return result.tenant_classes[i];
}

void AddPolicyRow(Table* table, const std::string& policy, double gap,
                  const SimulationResult& r) {
  table->AddRow({policy, gap, r.shed_requests,
                 Class(r, 0).p99_delay_seconds,
                 Class(r, 0).goodput_per_minute,
                 Class(r, 1).p99_delay_seconds,
                 Class(r, 2).goodput_per_minute, r.requests_per_minute,
                 r.mean_outstanding});
}

// ---------------------------------------------------------------------------
// --check: the CI acceptance gate.
// ---------------------------------------------------------------------------

SimulationResult RunCheckPoint(const BenchOptions& options,
                               const std::string& policy, bool deadlines) {
  ExperimentConfig config = BasePoint(options, /*gap=*/25);
  // Fixed short horizon: long enough past warm-up for the backlog under
  // `none` to dwarf the SLO and for the adaptive controller to settle.
  config.sim.duration_seconds = 400'000;
  config.sim.warmup_seconds = 40'000;
  if (deadlines) AddTenantMix(&config.sim.workload, /*with_deadlines=*/true);
  config.sim.admission = MakePolicy(policy);
  return ExperimentRunner::Run(config).value().sim;
}

std::string FarmJson(const FarmResult& result) {
  std::ostringstream out;
  JsonWriter w(&out);
  WriteJson(&w, result);
  return out.str();
}

int RunCheck(const BenchOptions& options) {
  // (1) SLO protection at 2x saturation: without admission control the
  // protected class's p99 blows past its SLO; the adaptive policy holds it.
  const SimulationResult none = RunCheckPoint(options, "none", false);
  const SimulationResult adaptive =
      RunCheckPoint(options, "adaptive", false);
  TJ_CHECK_GT(Class(none, 0).p99_delay_seconds, kProtectedSlo)
      << "expected the unprotected run to violate the protected SLO at 2x "
         "saturation";
  TJ_CHECK_LE(Class(adaptive, 0).p99_delay_seconds, kProtectedSlo)
      << "adaptive admission failed to hold the protected class's p99 SLO";
  TJ_CHECK_GT(adaptive.shed_requests, 0)
      << "adaptive admission shed nothing at 2x saturation";
  TJ_CHECK_EQ(none.shed_requests, int64_t{0});
  std::cout << "overload SLO check: PASS (none p99 "
            << Class(none, 0).p99_delay_seconds << " s > " << kProtectedSlo
            << " s, adaptive p99 " << Class(adaptive, 0).p99_delay_seconds
            << " s, " << adaptive.shed_requests << " shed)\n";

  // (2) Deadline expiry: with per-class queueing deadlines and no
  // admission control, past-deadline requests must settle as expired.
  const SimulationResult expiry = RunCheckPoint(options, "none", true);
  TJ_CHECK_GT(expiry.expired_requests, 0)
      << "no request expired at 2x saturation despite queueing deadlines";
  std::cout << "deadline expiry check: PASS (" << expiry.expired_requests
            << " expired)\n";

  // (3) Thread invariance: a farm with every overload feature on (tenant
  // mix, deadlines, adaptive admission, diurnal + bursty arrivals) must
  // serialize byte-identical results at --threads 1 vs 4.
  FarmConfig serial;
  serial.num_jukeboxes = 6;
  serial.threads = 1;
  serial.per_jukebox = BasePoint(options, /*gap=*/8);
  serial.per_jukebox.sim.duration_seconds = 150'000;
  serial.per_jukebox.sim.warmup_seconds = 15'000;
  AddTenantMix(&serial.per_jukebox.sim.workload, /*with_deadlines=*/true);
  serial.per_jukebox.sim.workload.diurnal_amplitude = 0.5;
  serial.per_jukebox.sim.workload.diurnal_period_seconds = 40'000;
  AddBursts(&serial.per_jukebox.sim.workload);
  serial.per_jukebox.sim.admission = MakePolicy("adaptive");
  FarmConfig parallel = serial;
  parallel.threads = 4;
  const FarmResult a = FarmSimulator(serial).Run();
  const FarmResult b = FarmSimulator(parallel).Run();
  TJ_CHECK(FarmJson(a) == FarmJson(b))
      << "overload farm results diverged between --threads 1 and 4";
  std::cout << "overload determinism check: PASS (6 boxes, "
            << a.aggregate.completed_requests
            << " completions, byte-identical at threads 1 vs 4)\n";
  return 0;
}

int Main(int argc, char** argv) {
  BenchOptions options;
  bool check = false;
  FlagSet flags(
      "Extension: overload protection (deadlines, admission control, "
      "degradation past saturation)");
  flags.AddBool("check", &check,
                "run the CI acceptance gate instead of the full grids");
  int exit_code = 0;
  if (!options.Parse(argc, argv, "", &exit_code, &flags)) return exit_code;
  if (check) return RunCheck(options);
  BenchContext ctx("ext_overload", options);

  const std::vector<double> gaps = OverloadGaps(options);
  const std::vector<std::string> policies = {"none", "static-cap",
                                             "adaptive"};

  // (a) Policy comparison across the load sweep.
  std::vector<GridPoint> policy_grid;
  for (const std::string& policy : policies) {
    for (const double gap : gaps) {
      ExperimentConfig config = BasePoint(options, gap);
      config.sim.admission = MakePolicy(policy);
      policy_grid.push_back(GridPoint{policy, gap, config});
    }
  }
  const std::vector<ExperimentResult> policy_results =
      ctx.RunGrid(policy_grid);
  Table policy_table({"policy", "interarrival_s", "shed", "c0_p99_s",
                      "c0_goodput_min", "c1_p99_s", "c2_goodput_min",
                      "req_min", "mean_outstanding"});
  for (size_t i = 0; i < policy_grid.size(); ++i) {
    AddPolicyRow(&policy_table, policy_grid[i].series, policy_grid[i].load,
                 policy_results[i].sim);
  }
  ctx.Emit(
      "admission policies through saturation (tenant mix 10/30/60, "
      "protected p99 SLO 15000 s)",
      &policy_table);

  // (b) The same policies under correlated arrival bursts at and past the
  // knee.
  const std::vector<double> burst_gaps =
      options.quick ? std::vector<double>{30} : std::vector<double>{60, 30};
  std::vector<GridPoint> burst_grid;
  for (const std::string& policy : policies) {
    for (const double gap : burst_gaps) {
      ExperimentConfig config = BasePoint(options, gap);
      AddBursts(&config.sim.workload);
      config.sim.admission = MakePolicy(policy);
      burst_grid.push_back(GridPoint{policy + "/bursty", gap, config});
    }
  }
  const std::vector<ExperimentResult> burst_results =
      ctx.RunGrid(burst_grid);
  Table burst_table({"policy", "interarrival_s", "shed", "c0_p99_s",
                     "c0_goodput_min", "c1_p99_s", "c2_goodput_min",
                     "req_min", "mean_outstanding"});
  for (size_t i = 0; i < burst_grid.size(); ++i) {
    AddPolicyRow(&burst_table, burst_grid[i].series, burst_grid[i].load,
                 burst_results[i].sim);
  }
  ctx.Emit("admission policies under correlated bursts (~30 extra / 20000 s)",
           &burst_table);

  // (c) Queueing deadlines with no admission control: expiry replaces
  // unbounded queueing for the deadlined classes.
  std::vector<GridPoint> deadline_grid;
  for (const double gap : gaps) {
    ExperimentConfig config = BasePoint(options, gap);
    AddTenantMix(&config.sim.workload, /*with_deadlines=*/true);
    deadline_grid.push_back(GridPoint{"deadlines", gap, config});
  }
  const std::vector<ExperimentResult> deadline_results =
      ctx.RunGrid(deadline_grid);
  Table deadline_table({"interarrival_s", "expired", "c0_expired",
                        "c0_p99_s", "c0_goodput_min", "c1_expired",
                        "c2_goodput_min", "req_min"});
  for (size_t i = 0; i < deadline_grid.size(); ++i) {
    const SimulationResult& r = deadline_results[i].sim;
    deadline_table.AddRow({deadline_grid[i].load, r.expired_requests,
                           Class(r, 0).expired,
                           Class(r, 0).p99_delay_seconds,
                           Class(r, 0).goodput_per_minute,
                           Class(r, 1).expired,
                           Class(r, 2).goodput_per_minute,
                           r.requests_per_minute});
  }
  ctx.Emit(
      "per-class queueing deadlines, no admission (premium 15000 s, "
      "standard 30000 s)",
      &deadline_table);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
