// §2.1 model validation: ten random walks of 100 locates + reads comparing
// model predictions against the (simulated) physical drive. The paper
// reports locate error max 0.6% / mean 0.5% and read error max 4.6% /
// mean 2.6%.

#include <algorithm>

#include "bench_common.h"

namespace tapejuke {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv,
                     "Section 2.1: timing-model validation random walks",
                     &exit_code)) {
    return exit_code;
  }
  BenchContext ctx("fig02_model_validation", options);
  const TimingModel model{TimingParams::Exabyte8505XL()};
  PhysicalDrive drive(&model, DriveNoiseParams{},
                      static_cast<uint64_t>(options.seed));

  Table table({"walk", "locate_pred_s", "locate_meas_s", "locate_err_pct",
               "read_pred_s", "read_meas_s", "read_err_pct"});
  table.set_precision(2);
  double max_locate = 0, mean_locate = 0, max_read = 0, mean_read = 0;
  const int kWalks = 10;
  for (int i = 0; i < kWalks; ++i) {
    const RandomWalkResult walk = drive.RandomWalk(/*steps=*/100,
                                                   /*read_mb=*/1);
    table.AddRow({static_cast<int64_t>(i + 1),
                  walk.predicted_locate_seconds,
                  walk.measured_locate_seconds, walk.LocateErrorPct(),
                  walk.predicted_read_seconds, walk.measured_read_seconds,
                  walk.ReadErrorPct()});
    max_locate = std::max(max_locate, walk.LocateErrorPct());
    mean_locate += walk.LocateErrorPct() / kWalks;
    max_read = std::max(max_read, walk.ReadErrorPct());
    mean_read += walk.ReadErrorPct() / kWalks;
  }
  ctx.Emit("ten 100-step random walks (1 MB reads)", &table);

  Table summary({"metric", "max_err_pct", "mean_err_pct", "paper_max",
                 "paper_mean"});
  summary.set_precision(2);
  summary.AddRow({std::string("locate"), max_locate, mean_locate, 0.6, 0.5});
  summary.AddRow({std::string("read"), max_read, mean_read, 4.6, 2.6});
  ctx.Emit("error summary vs paper", &summary);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
