// Ablation: the dynamic incremental scheduler's reverse-phase insertions.
//
// The sweep definition (§2.2) allows a forward phase followed by a reverse
// phase; our dynamic scheduler inserts below-head arrivals into the reverse
// phase (reads on the way back down). This ablation disables that, leaving
// forward-only insertion, to quantify how much the reverse phase buys.

#include "bench_common.h"

namespace tapejuke {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv,
                     "Ablation: reverse-phase insertion in the dynamic "
                     "incremental scheduler",
                     &exit_code)) {
    return exit_code;
  }
  Table table({"replicas", "reverse_phase", "load", "throughput_req_min",
               "delay_min"});
  for (const int nr : {0, 9}) {
    for (const bool reverse : {true, false}) {
      ExperimentConfig config = PaperBaseConfig(options);
      config.layout.num_replicas = nr;
      config.layout.start_position = nr == 0 ? 0.0 : 1.0;
      config.algorithm =
          AlgorithmSpec::Parse("dynamic-max-bandwidth").value();
      config.algorithm.options.allow_reverse_phase = reverse;
      for (const CurvePoint& point : LoadSweep(config, options)) {
        const int64_t load = options.Model() == QueuingModel::kOpen
                                 ? static_cast<int64_t>(
                                       point.interarrival_seconds)
                                 : point.queue_length;
        table.AddRow({static_cast<int64_t>(nr),
                      std::string(reverse ? "on" : "off"), load,
                      point.throughput_req_per_min,
                      point.mean_delay_minutes});
      }
    }
  }
  Emit(options, "dynamic max-bandwidth with/without reverse-phase inserts",
       &table);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
