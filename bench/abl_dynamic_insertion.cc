// Ablation: the dynamic incremental scheduler's reverse-phase insertions.
//
// The sweep definition (§2.2) allows a forward phase followed by a reverse
// phase; our dynamic scheduler inserts below-head arrivals into the reverse
// phase (reads on the way back down). This ablation disables that, leaving
// forward-only insertion, to quantify how much the reverse phase buys.

#include "bench_common.h"

namespace tapejuke {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv,
                     "Ablation: reverse-phase insertion in the dynamic "
                     "incremental scheduler",
                     &exit_code)) {
    return exit_code;
  }
  BenchContext ctx("abl_dynamic_insertion", options);

  std::vector<GridPoint> grid;
  for (const int nr : {0, 9}) {
    for (const bool reverse : {true, false}) {
      ExperimentConfig config = PaperBaseConfig(options);
      config.layout.num_replicas = nr;
      config.layout.start_position = nr == 0 ? 0.0 : 1.0;
      config.algorithm =
          AlgorithmSpec::Parse("dynamic-max-bandwidth").value();
      config.algorithm.options.allow_reverse_phase = reverse;
      ctx.AddLoadSweep(&grid,
                       "NR-" + std::to_string(nr) + "/reverse-" +
                           (reverse ? "on" : "off"),
                       config);
    }
  }
  const std::vector<ExperimentResult> results = ctx.RunGrid(grid);

  Table table({"replicas", "reverse_phase", "load", "throughput_req_min",
               "delay_min"});
  for (size_t i = 0; i < grid.size(); ++i) {
    const ExperimentConfig& config = grid[i].config;
    table.AddRow(
        {static_cast<int64_t>(config.layout.num_replicas),
         std::string(config.algorithm.options.allow_reverse_phase ? "on"
                                                                  : "off"),
         static_cast<int64_t>(grid[i].load),
         results[i].sim.requests_per_minute,
         results[i].sim.mean_delay_minutes});
  }
  ctx.Emit("dynamic max-bandwidth with/without reverse-phase inserts",
           &table);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
