// Figure 6: throughput and latency as a function of the number of replicas
// of hot data.
//
// PH-10 RH-40, vertical layout (one hot tape; replicas round-robin over the
// others), replicas at the tape ends (SP-1.0, per §4.5). Paper answers
// (Q4): more replicas are uniformly better — full replication buys ~18%
// throughput, ~13% response time, driven by ~20% fewer tape switches, with
// diminishing returns.

#include "bench_common.h"

namespace tapejuke {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv, "Figure 6: number of replicas of hot data",
                     &exit_code)) {
    return exit_code;
  }
  BenchContext ctx("fig06_replica_count", options);
  ExperimentConfig base = PaperBaseConfig(options);
  base.layout.layout = HotLayout::kVertical;
  base.layout.start_position = 1.0;
  std::cout << "Figure 6 | " << ParamCaption(base)
            << " | dynamic max-bandwidth | replicas at tape end\n";

  const int replica_counts[] = {0, 1, 3, 5, 7, 9};
  std::vector<GridPoint> grid;
  for (const int nr : replica_counts) {
    ExperimentConfig config = base;
    config.layout.num_replicas = nr;
    if (nr == 0) config.layout.start_position = 0.0;  // best for NR-0
    ctx.AddLoadSweep(&grid, "NR-" + std::to_string(nr), config);
  }
  const std::vector<ExperimentResult> results = ctx.RunGrid(grid);

  Table table({"replicas", "load", "throughput_req_min", "delay_min",
               "switches_per_h"});
  for (size_t i = 0; i < grid.size(); ++i) {
    table.AddRow({static_cast<int64_t>(grid[i].config.layout.num_replicas),
                  static_cast<int64_t>(grid[i].load),
                  results[i].sim.requests_per_minute,
                  results[i].sim.mean_delay_minutes,
                  results[i].sim.tape_switches_per_hour});
  }
  ctx.Emit("replication curves (vertical layout)", &table);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
