// Figure 5: throughput and latency as a function of hot-data placement,
// no replication.
//
// PH-10 RH-40 NR-0, dynamic max-bandwidth. A family of curves for
// horizontal placements SP in {0, 0.25, 0.5, 0.75, 1.0} plus one vertical
// layout. Paper answer (Q3): vertical is best except at very high
// intensity; for horizontal layouts, hot data belongs at the beginning.

#include "bench_common.h"

namespace tapejuke {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv,
                     "Figure 5: hot-data placement without replication",
                     &exit_code)) {
    return exit_code;
  }
  BenchContext ctx("fig05_hot_placement", options);
  ExperimentConfig base = PaperBaseConfig(options);
  std::cout << "Figure 5 | " << ParamCaption(base)
            << " | dynamic max-bandwidth\n";

  std::vector<GridPoint> grid;
  for (const double sp : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    ExperimentConfig config = base;
    config.layout.start_position = sp;
    ctx.AddLoadSweep(&grid, "SP-" + std::to_string(sp).substr(0, 4),
                     config);
  }
  ExperimentConfig vertical = base;
  vertical.layout.layout = HotLayout::kVertical;
  ctx.AddLoadSweep(&grid, "vertical", vertical);
  const std::vector<ExperimentResult> results = ctx.RunGrid(grid);

  Table table({"placement", "load", "throughput_req_min", "delay_min"});
  for (size_t i = 0; i < grid.size(); ++i) {
    table.AddRow({grid[i].series, static_cast<int64_t>(grid[i].load),
                  results[i].sim.requests_per_minute,
                  results[i].sim.mean_delay_minutes});
  }
  ctx.Emit("placement curves", &table);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
