// Figure 5: throughput and latency as a function of hot-data placement,
// no replication.
//
// PH-10 RH-40 NR-0, dynamic max-bandwidth. A family of curves for
// horizontal placements SP in {0, 0.25, 0.5, 0.75, 1.0} plus one vertical
// layout. Paper answer (Q3): vertical is best except at very high
// intensity; for horizontal layouts, hot data belongs at the beginning.

#include "bench_common.h"

namespace tapejuke {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv,
                     "Figure 5: hot-data placement without replication",
                     &exit_code)) {
    return exit_code;
  }
  ExperimentConfig base = PaperBaseConfig(options);
  std::cout << "Figure 5 | " << ParamCaption(base)
            << " | dynamic max-bandwidth\n";

  Table table({"placement", "load", "throughput_req_min", "delay_min"});
  auto sweep = [&](const std::string& label, const ExperimentConfig& cfg) {
    for (const CurvePoint& point : LoadSweep(cfg, options)) {
      const int64_t load = options.Model() == QueuingModel::kOpen
                               ? static_cast<int64_t>(
                                     point.interarrival_seconds)
                               : point.queue_length;
      table.AddRow({label, load, point.throughput_req_per_min,
                    point.mean_delay_minutes});
    }
  };

  for (const double sp : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    ExperimentConfig config = base;
    config.layout.start_position = sp;
    sweep("SP-" + std::to_string(sp).substr(0, 4), config);
  }
  ExperimentConfig vertical = base;
  vertical.layout.layout = HotLayout::kVertical;
  sweep("vertical", vertical);

  Emit(options, "placement curves", &table);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
