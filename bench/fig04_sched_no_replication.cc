// Figure 4: relative performance of scheduling algorithms, no replication.
//
// PH-10 RH-40 NR-0 SP-0. Throughput/delay parametric curves (load traced by
// queue length 20..140) for FIFO, the five static algorithms, and the five
// dynamic algorithms. Paper answer (Q2): dynamic max-bandwidth is good for
// all workloads; max-requests is nearly as good; FIFO is a vertical line.

#include "bench_common.h"

namespace tapejuke {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv,
                     "Figure 4: scheduling algorithms without replication",
                     &exit_code)) {
    return exit_code;
  }
  BenchContext ctx("fig04_sched_no_replication", options);
  ExperimentConfig base = PaperBaseConfig(options);
  std::cout << "Figure 4 | " << ParamCaption(base) << "\n";

  const char* algorithms[] = {
      "fifo",
      "static-round-robin",
      "static-max-requests",
      "static-max-bandwidth",
      "static-oldest-max-requests",
      "static-oldest-max-bandwidth",
      "dynamic-round-robin",
      "dynamic-max-requests",
      "dynamic-max-bandwidth",
      "dynamic-oldest-max-requests",
      "dynamic-oldest-max-bandwidth",
  };

  std::vector<GridPoint> grid;
  for (const char* name : algorithms) {
    ExperimentConfig config = base;
    config.algorithm = AlgorithmSpec::Parse(name).value();
    ctx.AddLoadSweep(&grid, config.algorithm.Name(), config);
  }
  const std::vector<ExperimentResult> results = ctx.RunGrid(grid);

  // p95 delay included: the fairness benefit of the round-robin/oldest
  // policies at heavy load shows up in the delay tail, not the mean.
  Table table({"algorithm", "load", "throughput_req_min", "delay_min",
               "p95_delay_min"});
  for (size_t i = 0; i < grid.size(); ++i) {
    table.AddRow({grid[i].series, static_cast<int64_t>(grid[i].load),
                  results[i].sim.requests_per_minute,
                  results[i].sim.mean_delay_minutes,
                  results[i].sim.p95_delay_seconds / 60.0});
  }
  ctx.Emit("throughput/delay parametric curves", &table);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
