// Figure 8: relative performance of scheduling algorithms with replication.
//
// PH-10 RH-40 NR-9 SP-1.0 (full replication at the tape ends). Compares the
// dynamic greedy algorithms against the three envelope variants. Paper
// answer (Q6): max-bandwidth envelope is the best choice — ~6% throughput
// and ~5% response improvement over dynamic max-bandwidth — and since it
// degenerates to dynamic max-bandwidth without replicas, it is always
// preferred.

#include "bench_common.h"

namespace tapejuke {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv,
                     "Figure 8: scheduling algorithms with full replication",
                     &exit_code)) {
    return exit_code;
  }
  BenchContext ctx("fig08_sched_replication", options);
  ExperimentConfig base = PaperBaseConfig(options);
  base.layout.num_replicas = 9;
  base.layout.start_position = 1.0;
  std::cout << "Figure 8 | " << ParamCaption(base) << "\n";

  const char* algorithms[] = {
      "static-max-bandwidth",
      "dynamic-round-robin",
      "dynamic-max-requests",
      "dynamic-max-bandwidth",
      "dynamic-oldest-max-bandwidth",
      "envelope-oldest-max-requests",
      "envelope-max-requests",
      "envelope-max-bandwidth",
  };

  std::vector<GridPoint> grid;
  for (const char* name : algorithms) {
    ExperimentConfig config = base;
    config.algorithm = AlgorithmSpec::Parse(name).value();
    ctx.AddLoadSweep(&grid, config.algorithm.Name(), config);
  }
  const std::vector<ExperimentResult> results = ctx.RunGrid(grid);

  Table table({"algorithm", "load", "throughput_req_min", "delay_min",
               "p95_delay_min"});
  for (size_t i = 0; i < grid.size(); ++i) {
    table.AddRow({grid[i].series, static_cast<int64_t>(grid[i].load),
                  results[i].sim.requests_per_minute,
                  results[i].sim.mean_delay_minutes,
                  results[i].sim.p95_delay_seconds / 60.0});
  }
  ctx.Emit("throughput/delay parametric curves (full replication)", &table);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
