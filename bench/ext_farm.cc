// Extension bench: jukebox-farm simulation.
//
// (a) Scaling: farm aggregate throughput with per-box population held
//     constant, plus the per-box population spread (the farm pins each
//     box at its §4.8 fixed split, so the closed-model spread is the
//     remainder distribution, not migration noise).
// (b) Figure 10(b) end to end: the cost-performance ratio of a replicated
//     farm measured by actually simulating both farms at equal total cost
//     and equal total population, rather than scaling one jukebox's queue.

#include <cmath>
#include <iterator>

#include "bench_common.h"
#include "core/farm.h"

namespace tapejuke {
namespace bench {
namespace {

FarmConfig MakeFarm(const BenchOptions& options, int32_t boxes,
                    int64_t total_queue, int32_t replicas, double rh) {
  FarmConfig config;
  config.num_jukeboxes = boxes;
  config.per_jukebox = PaperBaseConfig(options);
  config.per_jukebox.layout.num_replicas = replicas;
  config.per_jukebox.layout.start_position = replicas == 0 ? 0.0 : 1.0;
  config.per_jukebox.sim.workload.hot_request_fraction = rh;
  config.per_jukebox.sim.workload.queue_length = total_queue;
  config.per_jukebox.algorithm =
      AlgorithmSpec::Parse("envelope-max-bandwidth").value();
  return config;
}

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv, "Extension: jukebox farm simulation",
                     &exit_code)) {
    return exit_code;
  }
  BenchContext ctx("ext_farm", options);

  // (a) Scaling with constant per-box load.
  const int32_t box_counts[] = {1, 2, 4, 8};
  std::vector<FarmGridPoint> scaling_grid;
  for (const int32_t boxes : box_counts) {
    scaling_grid.push_back(
        FarmGridPoint{"boxes-" + std::to_string(boxes),
                      static_cast<double>(60L * boxes),
                      MakeFarm(options, boxes, 60L * boxes,
                               /*replicas=*/0, 0.40)});
  }
  const std::vector<FarmResult> scaling_results =
      ctx.RunFarmGrid(scaling_grid);

  Table scaling({"boxes", "total_queue", "agg_req_min", "per_box_req_min",
                 "delay_min", "outstanding_stddev"});
  for (size_t i = 0; i < scaling_grid.size(); ++i) {
    const int32_t boxes = box_counts[i];
    const FarmResult& result = scaling_results[i];
    double mean = 0;
    for (const double o : result.mean_outstanding_per_jukebox) {
      mean += o / boxes;
    }
    double var = 0;
    for (const double o : result.mean_outstanding_per_jukebox) {
      var += (o - mean) * (o - mean) / boxes;
    }
    scaling.AddRow({static_cast<int64_t>(boxes), 60L * boxes,
                    result.aggregate.requests_per_minute,
                    result.aggregate.requests_per_minute / boxes,
                    result.aggregate.mean_delay_minutes, std::sqrt(var)});
  }
  ctx.Emit("farm scaling at constant per-box population (60)", &scaling);

  // (b) Figure 10(b), farm form: 10 plain boxes vs 19 replicated boxes
  // (expansion E = 1.9 at PH-10 NR-9) serving the same total population.
  const int skews[] = {40, 80};
  const int64_t total_queue = 600;
  std::vector<FarmGridPoint> cost_grid;
  for (const int rh : skews) {
    cost_grid.push_back(
        FarmGridPoint{"RH-" + std::to_string(rh) + "/non-replicated",
                      static_cast<double>(total_queue),
                      MakeFarm(options, 10, total_queue, 0, rh / 100.0)});
    cost_grid.push_back(
        FarmGridPoint{"RH-" + std::to_string(rh) + "/replicated-NR-9",
                      static_cast<double>(total_queue),
                      MakeFarm(options, 19, total_queue, 9, rh / 100.0)});
  }
  const std::vector<FarmResult> cost_results = ctx.RunFarmGrid(cost_grid);

  Table cost({"rh_pct", "farm", "boxes", "agg_MB_s", "MB_s_per_box",
              "cost_perf_ratio"});
  for (size_t s = 0; s < std::size(skews); ++s) {
    const int rh = skews[s];
    const FarmResult& plain_result = cost_results[2 * s];
    const FarmResult& repl_result = cost_results[2 * s + 1];
    const double plain_per_box =
        plain_result.aggregate.throughput_mb_per_s / 10.0;
    const double repl_per_box =
        repl_result.aggregate.throughput_mb_per_s / 19.0;
    cost.AddRow({static_cast<int64_t>(rh), std::string("non-replicated"),
                 int64_t{10}, plain_result.aggregate.throughput_mb_per_s,
                 plain_per_box, 1.0});
    cost.AddRow({static_cast<int64_t>(rh), std::string("replicated NR-9"),
                 int64_t{19}, repl_result.aggregate.throughput_mb_per_s,
                 repl_per_box, repl_per_box / plain_per_box});
  }
  ctx.Emit(
      "Figure 10(b) measured farm-to-farm (equal total population 600, "
      "cost ~ boxes)",
      &cost);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
