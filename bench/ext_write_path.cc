// Extension bench: write-path interference (paper §4's delta-file model).
//
// Read performance as write traffic grows, with and without the paper's
// mitigation (piggybacked + idle flushing vs forced flushing only).

#include "bench_common.h"
#include "sim/write_path.h"

namespace tapejuke {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv,
                     "Extension: delta-staged writes vs read performance",
                     &exit_code)) {
    return exit_code;
  }
  ExperimentConfig base = PaperBaseConfig(options);
  std::cout << "Write-path extension | " << ParamCaption(base)
            << " | dynamic max-bandwidth | queue 60\n";

  struct Policy {
    const char* label;
    bool piggyback;
    int64_t min_blocks;
  };
  const Policy policies[] = {
      {"piggyback(8)+idle", true, 8},
      {"piggyback(32)+idle", true, 32},
      {"forced only", false, 8},
  };

  Table table({"write_gap_s", "policy", "read_req_min", "read_delay_min",
               "flushed", "piggyback", "forced", "max_buffer"});
  for (const double gap : {0.0, 240.0, 120.0, 60.0}) {
    for (const Policy& policy : policies) {
      if (gap == 0.0 && policy.min_blocks != 8) continue;
      Jukebox jukebox(base.jukebox);
      const Catalog catalog =
          LayoutBuilder::Build(&jukebox, base.layout).value();
      GreedyScheduler scheduler(&jukebox, &catalog,
                                TapePolicy::kMaxBandwidth,
                                /*dynamic=*/true);
      SimulationConfig sim_config = base.sim;
      sim_config.workload.queue_length = 60;
      WritePathConfig writes;
      writes.mean_write_interarrival_seconds = gap;
      writes.piggyback = policy.piggyback;
      writes.idle_flush = policy.piggyback;
      writes.piggyback_min_blocks = policy.min_blocks;
      WritebackSimulator sim(&jukebox, &catalog, &scheduler, sim_config,
                             writes);
      const SimulationResult result = sim.Run();
      const WritePathStats& stats = sim.stats();
      table.AddRow({static_cast<int64_t>(gap),
                    std::string(gap == 0.0 ? "reads only" : policy.label),
                    result.requests_per_minute, result.mean_delay_minutes,
                    stats.blocks_flushed, stats.piggyback_flushes,
                    stats.forced_flushes, stats.max_buffer_occupancy});
      if (gap == 0.0) break;  // policy moot without writes
    }
  }
  Emit(options, "read performance under write traffic", &table);
  std::cout << "\nBatch size dominates the flush economics in a saturated "
               "closed system: a dirty\nsweep over a tape costs nearly the "
               "same whether it cleans 8 updates or 30, so\neager small "
               "piggybacks lose to patient batched flushing — raise the "
               "piggyback\nthreshold until batches match the forced-flush "
               "size and the saved tape switches\ncome for free.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
