// Extension bench: write-path interference (paper §4's delta-file model).
//
// Read performance as write traffic grows, with and without the paper's
// mitigation (piggybacked + idle flushing vs forced flushing only).

#include "bench_common.h"
#include "sim/write_path.h"

namespace tapejuke {
namespace bench {
namespace {

struct Policy {
  const char* label;
  bool piggyback;
  int64_t min_blocks;
};

struct PointSpec {
  double gap;
  Policy policy;
};

struct PointOutput {
  SimulationResult result;
  WritePathStats stats;
};

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv,
                     "Extension: delta-staged writes vs read performance",
                     &exit_code)) {
    return exit_code;
  }
  BenchContext ctx("ext_write_path", options);
  ExperimentConfig base = PaperBaseConfig(options);
  std::cout << "Write-path extension | " << ParamCaption(base)
            << " | dynamic max-bandwidth | queue 60\n";

  const Policy policies[] = {
      {"piggyback(8)+idle", true, 8},
      {"piggyback(32)+idle", true, 32},
      {"forced only", false, 8},
  };

  // gap == 0 is the reads-only baseline; the policy is moot there, so it
  // contributes a single point.
  std::vector<PointSpec> specs;
  for (const double gap : {0.0, 240.0, 120.0, 60.0}) {
    for (const Policy& policy : policies) {
      if (gap == 0.0 && policy.min_blocks != 8) continue;
      specs.push_back(PointSpec{gap, policy});
      if (gap == 0.0) break;
    }
  }

  std::vector<PointOutput> outputs(specs.size());
  ctx.RunParallel(specs.size(), [&](size_t i) -> Status {
    const PointSpec& spec = specs[i];
    Jukebox jukebox(base.jukebox);
    StatusOr<Catalog> catalog_or =
        LayoutBuilder::Build(&jukebox, base.layout);
    if (!catalog_or.ok()) return catalog_or.status();
    const Catalog catalog = std::move(catalog_or).value();
    GreedyScheduler scheduler(&jukebox, &catalog, TapePolicy::kMaxBandwidth,
                              /*dynamic=*/true);
    SimulationConfig sim_config = base.sim;
    sim_config.workload.queue_length = 60;
    sim_config.workload.seed = ctx.PointSeed(i);
    WritePathConfig writes;
    writes.mean_write_interarrival_seconds = spec.gap;
    writes.piggyback = spec.policy.piggyback;
    writes.idle_flush = spec.policy.piggyback;
    writes.piggyback_min_blocks = spec.policy.min_blocks;
    WritebackSimulator sim(&jukebox, &catalog, &scheduler, sim_config,
                           writes);
    outputs[i].result = sim.Run();
    outputs[i].stats = sim.stats();
    return Status::Ok();
  });

  Table table({"write_gap_s", "policy", "read_req_min", "read_delay_min",
               "flushed", "piggyback", "forced", "max_buffer"});
  for (size_t i = 0; i < specs.size(); ++i) {
    const PointSpec& spec = specs[i];
    const PointOutput& out = outputs[i];
    const std::string label =
        spec.gap == 0.0 ? "reads only" : spec.policy.label;
    table.AddRow({static_cast<int64_t>(spec.gap), label,
                  out.result.requests_per_minute,
                  out.result.mean_delay_minutes, out.stats.blocks_flushed,
                  out.stats.piggyback_flushes, out.stats.forced_flushes,
                  out.stats.max_buffer_occupancy});
    ctx.RecordResult("gap-" + std::to_string(static_cast<int>(spec.gap)) +
                         "/" + label,
                     60.0, out.result);
  }
  ctx.Emit("read performance under write traffic", &table);
  std::cout << "\nBatch size dominates the flush economics in a saturated "
               "closed system: a dirty\nsweep over a tape costs nearly the "
               "same whether it cleans 8 updates or 30, so\neager small "
               "piggybacks lose to patient batched flushing — raise the "
               "piggyback\nthreshold until batches match the forced-flush "
               "size and the saved tape switches\ncome for free.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
