// Figure 9: the relationship between skew and performance improvements.
//
// PH-10, max-bandwidth envelope, best placements (SP-0 without replication,
// SP-1 with full replication). Curves for RH in {20, 40, 60, 80}%, dotted
// (NR-0) vs solid (NR-9) in the paper. Paper answer (Q7): more skew is
// uniformly better; full replication improves throughput up to ~25% and
// response time up to ~19% over no replication.

#include "bench_common.h"

namespace tapejuke {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv, "Figure 9: skew vs performance",
                     &exit_code)) {
    return exit_code;
  }
  BenchContext ctx("fig09_skew", options);
  ExperimentConfig base = PaperBaseConfig(options);
  base.algorithm = AlgorithmSpec::Parse("envelope-max-bandwidth").value();
  std::cout << "Figure 9 | PH-10 | max-bandwidth envelope | "
            << "NR-0 at SP-0 vs NR-9 at SP-1\n";

  std::vector<GridPoint> grid;
  for (const int rh : {20, 40, 60, 80}) {
    for (const int nr : {0, 9}) {
      ExperimentConfig config = base;
      config.sim.workload.hot_request_fraction = rh / 100.0;
      config.layout.num_replicas = nr;
      config.layout.start_position = nr == 0 ? 0.0 : 1.0;
      ctx.AddLoadSweep(&grid,
                       "RH-" + std::to_string(rh) + "/NR-" +
                           std::to_string(nr),
                       config);
    }
  }
  const std::vector<ExperimentResult> results = ctx.RunGrid(grid);

  Table table({"rh_pct", "replicas", "load", "throughput_req_min",
               "delay_min"});
  for (size_t i = 0; i < grid.size(); ++i) {
    const ExperimentConfig& config = grid[i].config;
    table.AddRow(
        {static_cast<int64_t>(
             config.sim.workload.hot_request_fraction * 100 + 0.5),
         static_cast<int64_t>(config.layout.num_replicas),
         static_cast<int64_t>(grid[i].load),
         results[i].sim.requests_per_minute,
         results[i].sim.mean_delay_minutes});
  }
  ctx.Emit("skew curves", &table);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
