// Microbenchmark: the DES engine at farm scale.
//
// Three measurements, emitted into results/micro_engine.json (schema in
// docs/RESULTS.md, methodology in docs/PERFORMANCE.md):
//
//  * queue_churn — hold-model schedule/pop churn on the calendar-queue
//    EventQueue vs a bench-local binary heap (the pre-calendar engine,
//    kept here as the measurement baseline), at steady sizes from 1k to
//    256k pending events. The heap pays O(log n) per op; the calendar
//    queue is O(1) amortized, so the gap widens with depth.
//  * farm_scale — whole-farm simulation throughput: the sharded
//    FarmSimulator (per-box calendar queues, boxes fanned over the thread
//    pool) vs a bench-local reimplementation of the pre-PR serial farm
//    (one global event loop over every box, binary-heap queue, migrating
//    closed population). Reported as simulated events per wall second
//    (issued + completed + failed requests) and simulated seconds per
//    wall second. The sharded/serial ratio scales with the worker count,
//    so absolute speedups are machine-dependent; the serial baseline is
//    timed on the same machine in the same process.
//  * --check — the CI determinism gate: the calendar queue must pop a
//    churn trace in exactly the binary heap's order, and a multi-drive
//    farm must serialize byte-identical FarmResult JSON at --threads 1
//    vs 4. Fails (TJ_CHECK abort) on divergence; timings are reported
//    but never gate the build.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <queue>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/farm.h"
#include "core/results_io.h"
#include "core/tapejuke.h"
#include "sim/event_queue.h"
#include "util/check.h"
#include "util/rng.h"

namespace tapejuke {
namespace {

// ---------------------------------------------------------------------------
// The pre-calendar engine, bench-local: a (time, seq)-ordered binary heap
// with the same Schedule/NextTime/Pop surface as EventQueue.
// ---------------------------------------------------------------------------

template <typename Payload>
class LegacyHeapQueue {
 public:
  void Schedule(double time, Payload payload) {
    heap_.push(Item{time, next_seq_++, std::move(payload)});
  }
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  double NextTime() const { return heap_.top().time; }
  std::pair<double, Payload> Pop() {
    Item item = heap_.top();
    heap_.pop();
    return {item.time, std::move(item.payload)};
  }

 private:
  struct Item {
    double time;
    uint64_t seq;
    Payload payload;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  uint64_t next_seq_ = 0;
};

double NowSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// queue_churn: hold-model schedule/pop at constant size.
// ---------------------------------------------------------------------------

struct ChurnRow {
  int size = 0;
  double calendar_ns_per_op = 0;
  double heap_ns_per_op = 0;
  double speedup = 0;
};

/// One hold-model pass: pop the earliest event, reschedule it a random
/// exponential-ish gap ahead. `ops` pops+pushes; returns wall ns per op.
/// Three passes, minimum reported (interference only ever adds time).
template <typename Queue>
double ChurnNsPerOp(int size, int64_t ops) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    Queue queue;
    Rng rng(1 + rep);
    for (int i = 0; i < size; ++i) {
      queue.Schedule(rng.UniformDouble() * 1e6, i);
    }
    const double start = NowSeconds();
    for (int64_t i = 0; i < ops; ++i) {
      auto [time, payload] = queue.Pop();
      queue.Schedule(time + rng.UniformDouble() * 100.0, payload);
    }
    best = std::min(best, (NowSeconds() - start) * 1e9 /
                              static_cast<double>(ops));
  }
  return best;
}

std::vector<ChurnRow> RunQueueChurn(const std::vector<int>& sizes) {
  std::vector<ChurnRow> rows;
  for (const int size : sizes) {
    ChurnRow row;
    row.size = size;
    const int64_t ops = std::max<int64_t>(4 * size, 1 << 20);
    row.calendar_ns_per_op = ChurnNsPerOp<EventQueue<int>>(size, ops);
    row.heap_ns_per_op = ChurnNsPerOp<LegacyHeapQueue<int>>(size, ops);
    row.speedup = row.heap_ns_per_op / row.calendar_ns_per_op;
    rows.push_back(row);
  }
  return rows;
}

void PrintQueueChurn(const std::vector<ChurnRow>& rows) {
  std::cout << "\nEvent-queue hold-model churn (pop + reschedule, steady "
               "size)\n";
  std::cout << std::setw(10) << "size" << std::setw(18) << "calendar ns/op"
            << std::setw(16) << "heap ns/op" << std::setw(10) << "speedup"
            << "\n";
  for (const ChurnRow& row : rows) {
    std::cout << std::setw(10) << row.size << std::setw(18) << std::fixed
              << std::setprecision(1) << row.calendar_ns_per_op
              << std::setw(16) << row.heap_ns_per_op << std::setw(10)
              << std::setprecision(2) << row.speedup << "\n";
  }
}

/// Determinism cross-check: the calendar queue must pop a random
/// schedule/pop trace in exactly the heap's (time, FIFO-seq) order.
void CheckQueueOrderAgainstHeap() {
  EventQueue<int> calendar;
  LegacyHeapQueue<int> heap;
  Rng rng(2024);
  double clock = 0;
  int payload = 0;
  int64_t compared = 0;
  for (int round = 0; round < 50000; ++round) {
    const auto burst = static_cast<int>(rng.UniformUint64(4));
    for (int i = 0; i < burst; ++i) {
      // Mix of equal-time events (FIFO tie-break must agree), near-future
      // events, and sparse far-future spikes (calendar direct-jump path).
      double when = clock;
      const uint64_t kind = rng.UniformUint64(8);
      if (kind < 5) {
        when += rng.UniformDouble() * 200.0;
      } else if (kind < 7) {
        when += 0.0;  // ties
      } else {
        when += 1e5 + rng.UniformDouble() * 1e7;
      }
      calendar.Schedule(when, payload);
      heap.Schedule(when, payload);
      ++payload;
    }
    while (!heap.empty() &&
           (heap.size() > 512 || rng.UniformUint64(3) == 0)) {
      const auto [heap_time, heap_payload] = heap.Pop();
      const auto [cal_time, cal_payload] = calendar.Pop();
      TJ_CHECK_EQ(heap_time, cal_time) << "event-queue order diverged";
      TJ_CHECK_EQ(heap_payload, cal_payload)
          << "event-queue FIFO tie-break diverged at t=" << heap_time;
      clock = heap_time;
      ++compared;
    }
  }
  std::cout << "queue order check: PASS (" << compared
            << " pops bit-identical to the binary-heap reference)\n";
}

// ---------------------------------------------------------------------------
// farm_scale: sharded FarmSimulator vs the pre-PR serial farm.
// ---------------------------------------------------------------------------

/// The pre-PR farm, bench-local: every box's events interleave in one
/// global loop over a binary-heap queue; the closed population migrates
/// (a completion regenerates onto a router-drawn box); one shared
/// MetricsCollector records every arrival/completion, exactly as the old
/// FarmSimulator did. Kept as the baseline the sharded engine is measured
/// against.
class LegacySerialFarm {
 public:
  struct Totals {
    int64_t issued = 0;
    int64_t completed = 0;
    double clock = 0;
  };

  explicit LegacySerialFarm(const FarmConfig& config) : config_(config) {
    for (int32_t i = 0; i < config.num_jukeboxes; ++i) {
      boxes_.push_back(std::make_unique<Box>(config.per_jukebox));
    }
  }

  Totals Run() {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    const SimulationConfig& sim = config_.per_jukebox.sim;
    const bool closed = sim.workload.model == QueuingModel::kClosed;
    WorkloadGenerator workload(&boxes_.front()->catalog, sim.workload);
    Rng router(sim.workload.seed ^ 0xfeedfacecafef00dULL);
    MetricsCollector metrics(sim.warmup_seconds,
                             config_.per_jukebox.jukebox.block_size_mb);
    Totals totals;

    const auto route = [&](double now) {
      const auto target = static_cast<int>(
          router.UniformUint64(static_cast<uint64_t>(boxes_.size())));
      Box& box = *boxes_[static_cast<size_t>(target)];
      const Request request = workload.NextRequest(now);
      metrics.OnArrival(now);
      box.AccumulateOutstanding(now);
      ++box.outstanding;
      ++totals.issued;
      box.scheduler->OnArrival(request, box.jukebox.head());
      Dispatch(target, now);
    };

    double next_arrival = 0;
    if (closed) {
      for (int64_t i = 0; i < sim.workload.queue_length; ++i) route(0.0);
    } else {
      next_arrival = workload.NextInterarrival();
    }
    bool warmup_marked = false;
    const auto maybe_warmup = [&]() {
      if (!warmup_marked && clock_ >= sim.warmup_seconds) {
        warmup_marked = true;
        metrics.MarkWarmupBoundary(JukeboxCounters{});
      }
    };
    maybe_warmup();

    while (clock_ < sim.duration_seconds) {
      const double event_time = events_.empty() ? kInf : events_.NextTime();
      const double arrival_time = closed ? kInf : next_arrival;
      const double next = std::min(event_time, arrival_time);
      if (next == kInf || next > sim.duration_seconds) break;
      clock_ = next;
      if (arrival_time <= event_time) {
        route(clock_);
        next_arrival = clock_ + workload.NextInterarrival();
      } else {
        const auto [time, box_index] = events_.Pop();
        Box& box = *boxes_[static_cast<size_t>(box_index)];
        box.busy = false;
        if (box.in_flight.has_value()) {
          const ServiceEntry entry = std::move(*box.in_flight);
          box.in_flight.reset();
          for (const Request& request : entry.requests) {
            metrics.OnCompletion(request.arrival_time, clock_);
            box.AccumulateOutstanding(clock_);
            --box.outstanding;
            ++totals.completed;
            if (closed) route(clock_);
          }
        }
        Dispatch(box_index, clock_);
      }
      maybe_warmup();
    }
    totals.clock = clock_;
    return totals;
  }

 private:
  struct Box {
    explicit Box(const ExperimentConfig& config)
        : jukebox(config.jukebox),
          catalog(LayoutBuilder::Build(&jukebox, config.layout).value()),
          scheduler(CreateScheduler(config.algorithm, &jukebox, &catalog)) {}

    void AccumulateOutstanding(double now) {
      outstanding_area +=
          static_cast<double>(outstanding) * (now - last_transition);
      last_transition = now;
    }

    Jukebox jukebox;
    Catalog catalog;
    std::unique_ptr<Scheduler> scheduler;
    std::optional<ServiceEntry> in_flight;
    bool busy = false;
    int64_t outstanding = 0;
    double last_transition = 0;
    double outstanding_area = 0;
  };

  void Dispatch(int box_index, double now) {
    Box& box = *boxes_[static_cast<size_t>(box_index)];
    if (box.busy) return;
    if (box.scheduler->sweep_empty()) {
      if (!box.scheduler->HasWork()) return;
      const TapeId tape = box.scheduler->MajorReschedule();
      TJ_CHECK_NE(tape, kInvalidTape);
      const double switch_seconds = box.jukebox.SwitchTo(tape);
      box.busy = true;
      events_.Schedule(now + switch_seconds, box_index);
      return;
    }
    const std::optional<ServiceEntry> entry = box.scheduler->PopNext();
    TJ_CHECK(entry.has_value());
    const double op_seconds = box.jukebox.ReadBlockAt(entry->position);
    box.in_flight = *entry;
    box.busy = true;
    events_.Schedule(now + op_seconds, box_index);
  }

  FarmConfig config_;
  std::vector<std::unique_ptr<Box>> boxes_;
  LegacyHeapQueue<int> events_;
  double clock_ = 0;
};

struct FarmScaleRow {
  int boxes = 0;
  int threads = 0;
  double duration_seconds = 0;
  int64_t events = 0;
  double wall_seconds = 0;
  double events_per_sec = 0;
  double sim_seconds_per_wall_second = 0;
  int64_t legacy_events = 0;
  double legacy_wall_seconds = 0;
  double legacy_events_per_sec = 0;
  double speedup_vs_legacy = 0;
};

FarmConfig ScaleFarm(int boxes, double duration, int threads) {
  FarmConfig config;
  config.num_jukeboxes = boxes;
  config.threads = threads;
  config.per_jukebox.algorithm =
      AlgorithmSpec::Parse("dynamic-max-bandwidth").value();
  config.per_jukebox.sim.duration_seconds = duration;
  config.per_jukebox.sim.warmup_seconds = duration / 10;
  config.per_jukebox.sim.workload.queue_length = 60L * boxes;
  config.per_jukebox.sim.workload.seed = 7;
  return config;
}

std::vector<FarmScaleRow> RunFarmScale(const std::vector<int>& box_counts,
                                       double duration, int threads) {
  std::vector<FarmScaleRow> rows;
  for (const int boxes : box_counts) {
    const FarmConfig config = ScaleFarm(boxes, duration, threads);
    FarmScaleRow row;
    row.boxes = boxes;
    row.threads = threads;
    row.duration_seconds = duration;

    // Both farms are timed end to end, box construction included (the
    // legacy farm builds boxes in its constructor, the sharded farm
    // inside Run).
    {
      const double start = NowSeconds();
      FarmSimulator farm(config);
      const FarmResult result = farm.Run();
      row.wall_seconds = NowSeconds() - start;
      row.events = result.aggregate.issued_requests +
                   result.aggregate.completed_total +
                   result.aggregate.failed_requests;
    }
    row.events_per_sec =
        static_cast<double>(row.events) / row.wall_seconds;
    row.sim_seconds_per_wall_second = duration / row.wall_seconds;

    {
      const double start = NowSeconds();
      LegacySerialFarm legacy(config);
      const LegacySerialFarm::Totals totals = legacy.Run();
      row.legacy_wall_seconds = NowSeconds() - start;
      row.legacy_events = totals.issued + totals.completed;
    }
    row.legacy_events_per_sec =
        static_cast<double>(row.legacy_events) / row.legacy_wall_seconds;
    row.speedup_vs_legacy =
        row.events_per_sec / row.legacy_events_per_sec;
    rows.push_back(row);
  }
  return rows;
}

void PrintFarmScale(const std::vector<FarmScaleRow>& rows) {
  std::cout << "\nFarm-scale engine throughput (closed queue 60/box, "
               "dynamic max-bandwidth)\n";
  std::cout << std::setw(8) << "boxes" << std::setw(9) << "threads"
            << std::setw(14) << "events/s" << std::setw(14) << "sim-s/wall-s"
            << std::setw(18) << "legacy events/s" << std::setw(10)
            << "speedup" << "\n";
  for (const FarmScaleRow& row : rows) {
    std::cout << std::setw(8) << row.boxes << std::setw(9) << row.threads
              << std::setw(14) << std::fixed << std::setprecision(0)
              << row.events_per_sec << std::setw(14) << std::setprecision(1)
              << row.sim_seconds_per_wall_second << std::setw(18)
              << std::setprecision(0) << row.legacy_events_per_sec
              << std::setw(10) << std::setprecision(2)
              << row.speedup_vs_legacy << "\n";
  }
}

// ---------------------------------------------------------------------------
// --check: farm thread-invariance gate.
// ---------------------------------------------------------------------------

struct CheckStats {
  int boxes = 0;
  int64_t completed = 0;
};

std::string FarmJson(const FarmResult& result) {
  std::ostringstream out;
  JsonWriter w(&out);
  WriteJson(&w, result);
  return out.str();
}

CheckStats RunDeterminismCheck() {
  CheckQueueOrderAgainstHeap();

  // A multi-drive farm with faults exercises every merged subsystem; the
  // serialized result must be byte-identical at --threads 1 vs 4.
  FarmConfig serial = ScaleFarm(/*boxes=*/12, /*duration=*/50'000,
                                /*threads=*/1);
  serial.drives_per_jukebox = 2;
  serial.per_jukebox.layout.num_replicas = 2;
  serial.per_jukebox.layout.start_position = 1.0;
  serial.per_jukebox.sim.faults.transient_read_error_prob = 0.01;
  FarmConfig parallel = serial;
  parallel.threads = 4;
  const FarmResult a = FarmSimulator(serial).Run();
  const FarmResult b = FarmSimulator(parallel).Run();
  TJ_CHECK(FarmJson(a) == FarmJson(b))
      << "farm results diverged between --threads 1 and --threads 4";
  std::cout << "farm determinism check: PASS (12 multi-drive boxes, "
            << a.aggregate.completed_requests
            << " completions, byte-identical at threads 1 vs 4)\n";
  CheckStats stats;
  stats.boxes = 12;
  stats.completed = a.aggregate.completed_requests;
  return stats;
}

void WriteResults(const std::string& results_dir,
                  const std::vector<ChurnRow>& churn_rows,
                  const std::vector<FarmScaleRow>& farm_rows,
                  const CheckStats* check) {
  if (results_dir.empty()) return;
  std::ostringstream os;
  JsonWriter w(&os);
  w.BeginObject();
  w.Field("bench", "micro_engine");
  w.Key("queue_churn");
  w.BeginArray();
  for (const ChurnRow& row : churn_rows) {
    w.BeginObject();
    w.Field("size", static_cast<int64_t>(row.size));
    w.Field("calendar_ns_per_op", row.calendar_ns_per_op);
    w.Field("heap_ns_per_op", row.heap_ns_per_op);
    w.Field("speedup", row.speedup);
    w.EndObject();
  }
  w.EndArray();
  w.Key("farm_scale");
  w.BeginArray();
  for (const FarmScaleRow& row : farm_rows) {
    w.BeginObject();
    w.Field("boxes", static_cast<int64_t>(row.boxes));
    w.Field("threads", static_cast<int64_t>(row.threads));
    w.Field("duration_seconds", row.duration_seconds);
    w.Field("events", row.events);
    w.Field("wall_seconds", row.wall_seconds);
    w.Field("events_per_sec", row.events_per_sec);
    w.Field("sim_seconds_per_wall_second",
            row.sim_seconds_per_wall_second);
    w.Field("legacy_events", row.legacy_events);
    w.Field("legacy_wall_seconds", row.legacy_wall_seconds);
    w.Field("legacy_events_per_sec", row.legacy_events_per_sec);
    w.Field("speedup_vs_legacy", row.speedup_vs_legacy);
    w.EndObject();
  }
  w.EndArray();
  if (check != nullptr) {
    w.Key("determinism_check");
    w.BeginObject();
    w.Field("passed", true);
    w.Field("boxes", static_cast<int64_t>(check->boxes));
    w.Field("completed_requests", check->completed);
    w.EndObject();
  }
  w.EndObject();
  os << "\n";
  const std::string path = results_dir + "/micro_engine.json";
  const Status status = WriteTextFile(path, os.str());
  TJ_CHECK(status.ok()) << status.ToString();
  std::cout << "results: " << path << "\n";
}

}  // namespace
}  // namespace tapejuke

int main(int argc, char** argv) {
  std::string results_dir = "results";
  bool check_only = false;
  int threads = 0;  // 0 = hardware concurrency
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--results-dir=", 0) == 0) {
      results_dir = arg.substr(std::string("--results-dir=").size());
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atoi(arg.c_str() + std::string("--threads=").size());
    } else if (arg == "--check") {
      check_only = true;
    } else {
      std::cerr << "unknown flag: " << arg
                << " (expected --check, --threads=N, --results-dir=DIR)\n";
      return 1;
    }
  }

  // --check trims the grids to one quick point each (the CI artifact) and
  // runs the determinism gate; the full grids are for local measurement.
  const std::vector<int> churn_sizes =
      check_only ? std::vector<int>{32768}
                 : std::vector<int>{1024, 32768, 262144};
  const std::vector<int> box_counts =
      check_only ? std::vector<int>{16}
                 : std::vector<int>{32, 128, 256, 512};
  const double duration = check_only ? 50'000 : 200'000;

  const std::vector<tapejuke::ChurnRow> churn_rows =
      tapejuke::RunQueueChurn(churn_sizes);
  tapejuke::PrintQueueChurn(churn_rows);
  const std::vector<tapejuke::FarmScaleRow> farm_rows =
      tapejuke::RunFarmScale(box_counts, duration, threads);
  tapejuke::PrintFarmScale(farm_rows);

  tapejuke::CheckStats check;
  if (check_only) check = tapejuke::RunDeterminismCheck();
  tapejuke::WriteResults(results_dir, churn_rows, farm_rows,
                         check_only ? &check : nullptr);
  return 0;
}
