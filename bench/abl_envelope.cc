// Ablations of the envelope-extension algorithm's design choices (§3.2):
// step-5 envelope shrinking and the step-2 replica tie-break, plus the
// algorithm-behaviour counters that explain *when* each mechanism can fire.
//
// Structural finding (documented in EXPERIMENTS.md): with the paper's best
// layout — full replication at the tape ends — the initial envelope is
// pinned by cold (non-replicated) requests in the front half of every
// tape, so no hot replica is ever inside two envelopes at once: step 2
// never faces a multi-replica choice, and step 5 never finds a shrinkable
// edge. The shrink machinery only engages for partial replication at the
// tape ends (extensions into hot regions can then overlap), and even there
// its effect is small. The step-2 tie-break affects only the advisory
// assignment, which influences behaviour solely through extension and
// shrink — so with those quiet, it has no observable effect at all.

#include <iterator>

#include "bench_common.h"
#include "sched/envelope_scheduler.h"

namespace tapejuke {
namespace bench {
namespace {

struct Variant {
  const char* label;
  bool shrink;
  bool paper_tiebreak;
};

constexpr Variant kVariants[] = {
    {"full (paper)", true, true},
    {"no shrink (step 5 off)", false, true},
    {"naive replica tie-break", true, false},
};

struct PointOutput {
  SimulationResult result;
  EnvelopeScheduler::EnvelopeCounters counters;
};

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv,
                     "Ablations: envelope shrinking and replica tie-break",
                     &exit_code)) {
    return exit_code;
  }
  BenchContext ctx("abl_envelope", options);

  ExperimentConfig full = PaperBaseConfig(options);
  full.layout.layout = HotLayout::kVertical;
  full.layout.num_replicas = 9;
  full.layout.start_position = 1.0;

  ExperimentConfig partial = PaperBaseConfig(options);
  partial.layout.num_replicas = 3;
  partial.layout.start_position = 1.0;

  struct Group {
    const char* title;
    ExperimentConfig base;
  };
  const Group groups[] = {
      {"full replication at tape ends (paper's best layout): shrink "
       "cannot fire",
       full},
      {"partial replication (NR-3, horizontal, tape ends): shrink "
       "engages",
       partial},
  };
  constexpr size_t kVariantCount = std::size(kVariants);
  const size_t num_points = std::size(groups) * kVariantCount;

  std::vector<PointOutput> outputs(num_points);
  ctx.RunParallel(num_points, [&](size_t i) -> Status {
    const Group& group = groups[i / kVariantCount];
    const Variant& variant = kVariants[i % kVariantCount];
    Jukebox jukebox(group.base.jukebox);
    StatusOr<Catalog> catalog_or =
        LayoutBuilder::Build(&jukebox, group.base.layout);
    if (!catalog_or.ok()) return catalog_or.status();
    const Catalog catalog = std::move(catalog_or).value();
    SchedulerOptions sched_options;
    sched_options.envelope_shrink = variant.shrink;
    sched_options.paper_replica_tiebreak = variant.paper_tiebreak;
    EnvelopeScheduler scheduler(&jukebox, &catalog,
                                TapePolicy::kMaxBandwidth, sched_options);
    SimulationConfig sim_config = group.base.sim;
    sim_config.workload.queue_length = 60;
    sim_config.workload.seed = ctx.PointSeed(i);
    Simulator sim(&jukebox, &catalog, &scheduler, sim_config);
    outputs[i].result = sim.Run();
    outputs[i].counters = scheduler.counters();
    return Status::Ok();
  });

  for (size_t g = 0; g < std::size(groups); ++g) {
    Table table({"variant", "throughput_req_min", "delay_min", "ext_rounds",
                 "shrink_moves", "multi_choices", "sweep_trims"});
    for (size_t v = 0; v < kVariantCount; ++v) {
      const size_t i = g * kVariantCount + v;
      const PointOutput& out = outputs[i];
      table.AddRow({std::string(kVariants[v].label),
                    out.result.requests_per_minute,
                    out.result.mean_delay_minutes,
                    out.counters.extension_rounds,
                    out.counters.shrink_moves,
                    out.counters.multi_replica_choices,
                    out.counters.sweep_trims});
      ctx.RecordResult(std::string(groups[g].title) + " / " +
                           kVariants[v].label,
                       60.0, out.result);
    }
    ctx.Emit(groups[g].title, &table);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
