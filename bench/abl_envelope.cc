// Ablations of the envelope-extension algorithm's design choices (§3.2):
// step-5 envelope shrinking and the step-2 replica tie-break, plus the
// algorithm-behaviour counters that explain *when* each mechanism can fire.
//
// Structural finding (documented in EXPERIMENTS.md): with the paper's best
// layout — full replication at the tape ends — the initial envelope is
// pinned by cold (non-replicated) requests in the front half of every
// tape, so no hot replica is ever inside two envelopes at once: step 2
// never faces a multi-replica choice, and step 5 never finds a shrinkable
// edge. The shrink machinery only engages for partial replication at the
// tape ends (extensions into hot regions can then overlap), and even there
// its effect is small. The step-2 tie-break affects only the advisory
// assignment, which influences behaviour solely through extension and
// shrink — so with those quiet, it has no observable effect at all.

#include "bench_common.h"
#include "sched/envelope_scheduler.h"

namespace tapejuke {
namespace bench {
namespace {

struct Variant {
  const char* label;
  bool shrink;
  bool paper_tiebreak;
};

void RunGrid(const BenchOptions& options, const ExperimentConfig& base,
             const char* title) {
  const Variant variants[] = {
      {"full (paper)", true, true},
      {"no shrink (step 5 off)", false, true},
      {"naive replica tie-break", true, false},
  };
  Table table({"variant", "throughput_req_min", "delay_min", "ext_rounds",
               "shrink_moves", "multi_choices", "sweep_trims"});
  for (const Variant& variant : variants) {
    Jukebox jukebox(base.jukebox);
    const Catalog catalog =
        LayoutBuilder::Build(&jukebox, base.layout).value();
    SchedulerOptions sched_options;
    sched_options.envelope_shrink = variant.shrink;
    sched_options.paper_replica_tiebreak = variant.paper_tiebreak;
    EnvelopeScheduler scheduler(&jukebox, &catalog,
                                TapePolicy::kMaxBandwidth, sched_options);
    SimulationConfig sim_config = base.sim;
    sim_config.workload.queue_length = 60;
    Simulator sim(&jukebox, &catalog, &scheduler, sim_config);
    const SimulationResult result = sim.Run();
    const auto& counters = scheduler.counters();
    table.AddRow({std::string(variant.label), result.requests_per_minute,
                  result.mean_delay_minutes, counters.extension_rounds,
                  counters.shrink_moves, counters.multi_replica_choices,
                  counters.sweep_trims});
  }
  Emit(options, title, &table);
}

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv,
                     "Ablations: envelope shrinking and replica tie-break",
                     &exit_code)) {
    return exit_code;
  }
  ExperimentConfig full = PaperBaseConfig(options);
  full.layout.layout = HotLayout::kVertical;
  full.layout.num_replicas = 9;
  full.layout.start_position = 1.0;
  RunGrid(options, full,
          "full replication at tape ends (paper's best layout): shrink "
          "cannot fire");

  ExperimentConfig partial = PaperBaseConfig(options);
  partial.layout.num_replicas = 3;
  partial.layout.start_position = 1.0;
  RunGrid(options, partial,
          "partial replication (NR-3, horizontal, tape ends): shrink "
          "engages");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
