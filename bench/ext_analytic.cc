// Extension bench: closed-form model vs simulation.
//
// Compares PredictRoundRobin against the static round-robin simulator
// across queue lengths, skews, and layouts, reporting prediction error.

#include <cmath>

#include "bench_common.h"
#include "core/analytic.h"

namespace tapejuke {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv,
                     "Extension: analytic round-robin model vs simulation",
                     &exit_code)) {
    return exit_code;
  }
  BenchContext ctx("ext_analytic", options);
  ExperimentConfig base = PaperBaseConfig(options);
  base.algorithm = AlgorithmSpec::Parse("static-round-robin").value();

  struct Scenario {
    const char* label;
    HotLayout layout;
    double rh;
  };
  const Scenario scenarios[] = {
      {"horizontal", HotLayout::kHorizontal, 0.40},
      {"horizontal", HotLayout::kHorizontal, 0.80},
      {"vertical", HotLayout::kVertical, 0.40},
  };
  std::vector<GridPoint> grid;
  for (const Scenario& scenario : scenarios) {
    for (const int64_t queue : {20L, 60L, 140L}) {
      ExperimentConfig config = base;
      config.layout.layout = scenario.layout;
      config.sim.workload.hot_request_fraction = scenario.rh;
      config.sim.workload.queue_length = queue;
      config.sim.workload.model = QueuingModel::kClosed;
      grid.push_back(GridPoint{std::string(scenario.label) + "/RH-" +
                                   std::to_string(static_cast<int>(
                                       scenario.rh * 100 + 0.5)),
                               static_cast<double>(queue), config});
    }
  }
  const std::vector<ExperimentResult> results = ctx.RunGrid(grid);

  // The analytic predictions are closed-form and cheap: evaluated serially
  // against each simulated point.
  Table table({"layout", "rh", "queue", "sim_req_min", "model_req_min",
               "thr_err_pct", "sim_delay_min", "model_delay_min",
               "delay_err_pct"});
  table.set_precision(2);
  for (size_t i = 0; i < grid.size(); ++i) {
    const Scenario& scenario = scenarios[i / 3];
    const ExperimentConfig& config = grid[i].config;
    const ExperimentResult& sim = results[i];

    AnalyticInputs inputs;
    inputs.jukebox = config.jukebox;
    inputs.layout = config.layout;
    inputs.hot_request_fraction = scenario.rh;
    inputs.queue_length = config.sim.workload.queue_length;
    const AnalyticPrediction model = PredictRoundRobin(inputs).value();

    auto err_pct = [](double predicted, double measured) {
      return measured > 0 ? 100.0 * (predicted - measured) / measured : 0.0;
    };
    table.AddRow({std::string(scenario.label), scenario.rh,
                  config.sim.workload.queue_length,
                  sim.sim.requests_per_minute, model.throughput_req_per_min,
                  err_pct(model.throughput_req_per_min,
                          sim.sim.requests_per_minute),
                  sim.sim.mean_delay_minutes, model.mean_delay_minutes,
                  err_pct(model.mean_delay_minutes,
                          sim.sim.mean_delay_minutes)});
  }
  ctx.Emit("closed-form round-robin model vs simulation", &table);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
