// Figure 1: locate time as a function of distance (1 MB logical blocks).
//
// The paper plots measured locate times on an Exabyte EXB-8505XL along with
// the four-regime least-squares fit. This bench regenerates the figure from
// the analytic model: forward and reverse locate times over the full
// distance range, the regime breakpoints, and (for flavor) noisy "measured"
// samples from the PhysicalDrive substitute.

#include "bench_common.h"

namespace tapejuke {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options;
  int exit_code = 0;
  if (!options.Parse(argc, argv,
                     "Figure 1: locate time vs distance (model + noisy "
                     "samples)",
                     &exit_code)) {
    return exit_code;
  }
  BenchContext ctx("fig01_locate_model", options);
  const TimingModel model{TimingParams::Exabyte8505XL()};
  PhysicalDrive drive(&model, DriveNoiseParams{},
                      static_cast<uint64_t>(options.seed));

  std::cout << "Figure 1 | Exabyte EXB-8505XL locate model, 1 MB blocks\n";
  Table table({"distance_mb", "fwd_model_s", "fwd_measured_s", "rev_model_s",
               "rev_measured_s"});
  table.set_precision(2);
  const int64_t distances[] = {1,   2,   4,    8,    16,   28,  29,
                               32,  64,  128,  256,  512,  1024,
                               2048, 4096, 7168};
  for (const int64_t k : distances) {
    table.AddRow({static_cast<int64_t>(k), model.ForwardLocateTime(k),
                  drive.MeasureLocate(0, k), model.ReverseLocateTime(k),
                  drive.MeasureLocate(k, 0) - model.params().bot_extra_seconds});
  }
  ctx.Emit("locate time vs distance", &table);

  Table fits({"regime", "startup_s", "per_mb_s", "range"});
  const TimingParams& p = model.params();
  fits.AddRow({std::string("forward short"), p.fwd_short_startup,
               p.fwd_short_per_mb, std::string("k <= 28")});
  fits.AddRow({std::string("forward long"), p.fwd_long_startup,
               p.fwd_long_per_mb, std::string("k > 28")});
  fits.AddRow({std::string("reverse short"), p.rev_short_startup,
               p.rev_short_per_mb, std::string("k <= 28")});
  fits.AddRow({std::string("reverse long"), p.rev_long_startup,
               p.rev_long_per_mb, std::string("k > 28")});
  ctx.Emit("fitted regimes (paper constants)", &fits);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tapejuke

int main(int argc, char** argv) {
  return tapejuke::bench::Main(argc, argv);
}
