"""Shared helpers for the tools/*_check.py validators.

Each checker passes its tool name (the prefix of every FAIL/OK message)
into these helpers so output stays greppable per tool:

    trace_check: FAIL: cannot parse trace.json: ...
    timeline_check: OK: 400 samples ...
"""

import json
import sys


def fail(tool, message):
    """Prints a one-line failure and exits nonzero."""
    print("%s: FAIL: %s" % (tool, message), file=sys.stderr)
    sys.exit(1)


def load_json_file(tool, path):
    """Loads one JSON document, failing with the tool's prefix."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        fail(tool, "cannot parse %s: %s" % (path, error))


def iter_jsonl(tool, path):
    """Yields (line_number, record) for each non-blank JSONL line.

    Fails on unreadable files, unparsable lines, and non-object records.
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.readlines()
    except OSError as error:
        fail(tool, "cannot read %s: %s" % (path, error))
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            fail(tool, "%s:%d: bad JSON: %s" % (path, number, error))
        if not isinstance(record, dict):
            fail(tool, "%s:%d: not an object" % (path, number))
        yield number, record


def results_point(tool, doc, point=0):
    """Returns the SimulationResult object of one bench results point.

    Navigates sweeps[0][point].result (docs/RESULTS.md schema) and
    descends into the nested "sim" (ExperimentResult) or "aggregate"
    (FarmResult) object when present, falling back to extra_results for
    bespoke-simulator benches that record flat SimulationResults.
    """
    sweeps = doc.get("sweeps")
    if not isinstance(sweeps, list) or not sweeps:
        extras = doc.get("extra_results")
        if not isinstance(extras, list) or point >= len(extras):
            fail(tool, "results document has no sweeps or extra_results "
                       "point %d" % point)
        result = extras[point].get("result")
        if not isinstance(result, dict):
            fail(tool, "results point %d has no result object" % point)
        return result
    first = sweeps[0]
    if not isinstance(first, list) or point >= len(first):
        fail(tool, "results sweep 0 has no point %d" % point)
    result = first[point].get("result")
    if not isinstance(result, dict):
        fail(tool, "results point %d has no result object" % point)
    if isinstance(result.get("sim"), dict):
        return result["sim"]
    if isinstance(result.get("aggregate"), dict):
        return result["aggregate"]
    return result
