#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file written by the simulator.

Checks the structural invariants docs/OBSERVABILITY.md promises:

  * the document parses and holds a "traceEvents" list;
  * every event has a known phase (M, X, b, e, n, i) and, except for
    metadata, a finite non-negative "ts";
  * non-metadata events are sorted by timestamp (the recorder writes a
    stable timestamp-sorted stream);
  * per-thread "X" drive-state slices have non-negative durations, do not
    overlap, and use only the known drive-state names;
  * async request spans are balanced: every "b" has a matching "e" on the
    same id, "n" instants land inside an open span, and nothing is left
    open at the end;
  * request "e" events carry a known lifecycle outcome (completed, failed,
    expired, shed, open-at-end);
  * the per-drive metadata threads announced by "M" events exist.

Optionally validates a decision JSONL stream (--decision-log): one JSON
object per line carrying the documented keys.

Usage: trace_check.py TRACE.json [--decision-log DECISIONS.jsonl]
Exits nonzero with a message on the first violation.
"""

import argparse
import math

from tjcheck_lib import fail as lib_fail
from tjcheck_lib import iter_jsonl, load_json_file

TOOL = "trace_check"

KNOWN_PHASES = {"M", "X", "b", "e", "n", "i"}
KNOWN_OUTCOMES = {"completed", "failed", "expired", "shed", "open-at-end"}
KNOWN_STATES = {
    "idle",
    "switching",
    "robot",
    "locating",
    "reading",
    "rewinding",
    "background",
    "down",
}
DECISION_KEYS = {
    "t",
    "scheduler",
    "background",
    "drive",
    "chosen",
    "mounted",
    "pending",
    "background_queue",
    "envelope_rounds",
    "tapes_rescored",
    "candidates",
}

# Adjacent drive-state slices share exact double boundaries, but "dur" is
# serialized as end-start and re-added here, so allow a few ulps of noise
# relative to the timestamp magnitude.
def overlap_epsilon_us(at):
    return max(1e-6, abs(at) * 1e-12)


def fail(message):
    lib_fail(TOOL, message)


def check_trace(path):
    doc = load_json_file(TOOL, path)

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("missing traceEvents list")
    if not events:
        fail("empty traceEvents")

    drive_threads = set()
    named_threads = {}
    last_ts = None
    last_slice_end = {}  # tid -> end of the previous X slice, microseconds
    open_spans = set()  # async ids with a 'b' but no 'e' yet
    counts = {phase: 0 for phase in KNOWN_PHASES}
    outcomes = {name: 0 for name in KNOWN_OUTCOMES}

    for index, event in enumerate(events):
        where = "event %d" % index
        if not isinstance(event, dict):
            fail("%s is not an object" % where)
        phase = event.get("ph")
        if phase not in KNOWN_PHASES:
            fail("%s has unknown phase %r" % (where, phase))
        counts[phase] += 1

        if phase == "M":
            name = event.get("name")
            args = event.get("args", {})
            if name == "thread_name":
                named_threads[event.get("tid")] = args.get("name", "")
                if str(args.get("name", "")).startswith("drive "):
                    drive_threads.add(event.get("tid"))
            continue

        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or not math.isfinite(ts) or ts < 0:
            fail("%s has bad ts %r" % (where, ts))
        if last_ts is not None and ts < last_ts:
            fail("%s: ts %r precedes previous ts %r (stream not sorted)"
                 % (where, ts, last_ts))
        last_ts = ts

        if phase == "X":
            dur = event.get("dur")
            if (not isinstance(dur, (int, float)) or not math.isfinite(dur)
                    or dur < 0):
                fail("%s has bad dur %r" % (where, dur))
            name = event.get("name")
            if name not in KNOWN_STATES:
                fail("%s has unknown drive state %r" % (where, name))
            tid = event.get("tid")
            prev_end = last_slice_end.get(tid)
            if (prev_end is not None
                    and ts < prev_end - overlap_epsilon_us(prev_end)):
                fail("%s: slice on tid %r starts at %r before previous "
                     "slice end %r (overlap)" % (where, tid, ts, prev_end))
            last_slice_end[tid] = ts + dur
        elif phase in ("b", "e", "n"):
            span_id = event.get("id")
            if span_id is None:
                fail("%s: async event without id" % where)
            if phase == "b":
                if span_id in open_spans:
                    fail("%s: span %r opened twice" % (where, span_id))
                open_spans.add(span_id)
            elif phase == "e":
                if span_id not in open_spans:
                    fail("%s: span %r closed without open" % (where, span_id))
                open_spans.remove(span_id)
                outcome = event.get("args", {}).get("outcome")
                if outcome not in KNOWN_OUTCOMES:
                    fail("%s: span %r closed with unknown outcome %r"
                         % (where, span_id, outcome))
                outcomes[outcome] += 1
            else:
                if span_id not in open_spans:
                    fail("%s: instant on closed span %r" % (where, span_id))

    if open_spans:
        fail("%d request spans never closed (e.g. %r)"
             % (len(open_spans), sorted(open_spans)[0]))
    if counts["X"] > 0 and not drive_threads:
        fail("drive-state slices present but no 'drive N' thread metadata")
    if counts["b"] != counts["e"]:
        fail("unbalanced spans: %d 'b' vs %d 'e'" % (counts["b"], counts["e"]))

    return counts, outcomes


def check_decision_log(path):
    lines = 0
    for number, record in iter_jsonl(TOOL, path):
        missing = DECISION_KEYS - set(record)
        if missing:
            fail("%s:%d: missing keys %s" % (path, number, sorted(missing)))
        if not isinstance(record["candidates"], list):
            fail("%s:%d: candidates is not a list" % (path, number))
        lines += 1
    return lines


def main():
    parser = argparse.ArgumentParser(
        description="Validate a simulator trace JSON file.")
    parser.add_argument("trace", help="Chrome trace_event JSON path")
    parser.add_argument("--decision-log", default=None,
                        help="decision JSONL path to validate too")
    args = parser.parse_args()

    counts, outcomes = check_trace(args.trace)
    summary = ("trace_check: OK: %d slices, %d spans, %d span instants, "
               "%d scheduler instants"
               % (counts["X"], counts["b"], counts["n"], counts["i"]))
    lifecycle = {name: n for name, n in sorted(outcomes.items()) if n > 0}
    if lifecycle:
        summary += ", outcomes " + " ".join(
            "%s=%d" % item for item in lifecycle.items())
    if args.decision_log is not None:
        decisions = check_decision_log(args.decision_log)
        summary += ", %d decisions" % decisions
    print(summary)


if __name__ == "__main__":
    main()
