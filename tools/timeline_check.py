#!/usr/bin/env python3
"""Validate a timeline JSONL file written by the simulator.

Checks the structural invariants docs/OBSERVABILITY.md promises:

  * line 1 is a header announcing schema_version 1, a positive sampling
    interval, and the counter/gauge/accum/window name lists;
  * every following line but the last is a sample row whose stat maps
    carry exactly the announced names;
  * sample times are finite, positive, and strictly increasing per box
    (farm timelines interleave boxes; standalone rows use box -1);
  * counters are non-negative and non-decreasing per box; gauges are
    finite; accum deltas are non-negative (within float tolerance);
  * windows carry count >= 0 and p50 <= p99 whenever count > 0;
  * the last line is a summary whose timeline_samples equals the row
    count and whose peak_queue_depth / worst_window_p99 / final_counters
    match a recomputation from the rows (final counters sum the last row
    of every box).

With --results RESULTS.json, cross-checks the summary's final counters
against the whole-run conservation totals of the results document (e.g.
cumulative shed in the timeline == shed_requests in results JSON).

Usage: timeline_check.py TIMELINE.jsonl [--results RESULTS.json]
                         [--point N]
Exits nonzero with a message on the first violation.
"""

import argparse
import math

from tjcheck_lib import fail as lib_fail
from tjcheck_lib import iter_jsonl, load_json_file, results_point

TOOL = "timeline_check"

# Accum deltas subtract consecutive cumulative doubles; allow float noise.
ACCUM_EPSILON = 1e-6
# Summary peaks are recomputed from the rows' serialized doubles, which
# round-trip exactly; equality should be exact, but compare with a tiny
# relative tolerance to stay robust to repr differences.
PEAK_RTOL = 1e-12

# (timeline counter name, results JSON key). Keys absent from the
# document (their gating block was off) imply a zero total.
RESULTS_KEYS = [
    ("issued", "issued_requests"),
    ("completed", "completed_total"),
    ("failed", "failed_requests"),
    ("expired", "expired_requests"),
    ("shed", "shed_requests"),
]


def fail(message):
    lib_fail(TOOL, message)


def is_finite_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool) \
        and math.isfinite(value)


def check_names(where, mapping, names, kind):
    if not isinstance(mapping, dict):
        fail("%s: %s is not an object" % (where, kind))
    if list(mapping.keys()) != names:
        fail("%s: %s names %s do not match header %s"
             % (where, kind, sorted(mapping.keys()), sorted(names)))


def check_timeline(path):
    records = list(iter_jsonl(TOOL, path))
    if len(records) < 3:
        fail("%s: need at least a header, one sample, and a summary "
             "(%d lines)" % (path, len(records)))

    number, header = records[0]
    if header.get("kind") != "header":
        fail("%s:%d: first line is not a header" % (path, number))
    if header.get("schema_version") != 1:
        fail("%s:%d: unknown schema_version %r"
             % (path, number, header.get("schema_version")))
    interval = header.get("interval_seconds")
    if not is_finite_number(interval) or interval <= 0:
        fail("%s:%d: bad interval_seconds %r" % (path, number, interval))
    names = {}
    for kind in ("counters", "gauges", "accums", "windows"):
        kind_names = header.get(kind)
        if (not isinstance(kind_names, list)
                or not all(isinstance(n, str) for n in kind_names)):
            fail("%s:%d: header %s is not a list of names"
                 % (path, number, kind))
        names[kind] = kind_names

    number, summary = records[-1]
    if summary.get("kind") != "summary":
        fail("%s:%d: last line is not a summary" % (path, number))

    samples = 0
    last_t = {}         # box -> last sample time
    last_counters = {}  # box -> last cumulative counter values
    boxes = []          # box ids in first-row order
    peak_queue_depth = 0.0
    worst_window_p99 = 0.0

    for number, row in records[1:-1]:
        where = "%s:%d" % (path, number)
        if row.get("kind") != "sample":
            fail("%s: expected a sample row, got kind %r"
                 % (where, row.get("kind")))
        samples += 1

        t = row.get("t")
        if not is_finite_number(t) or t < 0:
            fail("%s: bad sample time %r" % (where, t))
        box = row.get("box", -1)
        if not isinstance(box, int) or isinstance(box, bool):
            fail("%s: bad box %r" % (where, box))
        if box in last_t and t <= last_t[box]:
            fail("%s: sample time %r does not increase (previous %r, "
                 "box %d)" % (where, t, last_t[box], box))
        last_t[box] = t

        counters = row.get("counters")
        check_names(where, counters, names["counters"], "counters")
        if box not in last_counters:
            boxes.append(box)
            last_counters[box] = {name: 0 for name in names["counters"]}
        for name in names["counters"]:
            value = counters[name]
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 0:
                fail("%s: counter %s has bad value %r"
                     % (where, name, value))
            if value < last_counters[box][name]:
                fail("%s: counter %s decreased from %d to %d (box %d)"
                     % (where, name, last_counters[box][name], value, box))
            last_counters[box][name] = value

        gauges = row.get("gauges")
        check_names(where, gauges, names["gauges"], "gauges")
        for name in names["gauges"]:
            if not is_finite_number(gauges[name]):
                fail("%s: gauge %s has bad value %r"
                     % (where, name, gauges[name]))
        if "queue_depth" in gauges:
            peak_queue_depth = max(peak_queue_depth, gauges["queue_depth"])

        accums = row.get("accums")
        check_names(where, accums, names["accums"], "accums")
        for name in names["accums"]:
            delta = accums[name]
            if not is_finite_number(delta) or delta < -ACCUM_EPSILON:
                fail("%s: accum %s has bad delta %r" % (where, name, delta))

        windows = row.get("windows")
        check_names(where, windows, names["windows"], "windows")
        for name in names["windows"]:
            window = windows[name]
            if not isinstance(window, dict):
                fail("%s: window %s is not an object" % (where, name))
            count = window.get("count")
            if not isinstance(count, int) or isinstance(count, bool) \
                    or count < 0:
                fail("%s: window %s has bad count %r" % (where, name, count))
            p50 = window.get("p50")
            p99 = window.get("p99")
            if not is_finite_number(p50) or not is_finite_number(p99):
                fail("%s: window %s has bad quantiles p50=%r p99=%r"
                     % (where, name, p50, p99))
            if count > 0:
                if p50 > p99:
                    fail("%s: window %s has p50 %r > p99 %r"
                         % (where, name, p50, p99))
                worst_window_p99 = max(worst_window_p99, p99)

    where = "%s:%d" % (path, records[-1][0])
    if summary.get("timeline_samples") != samples:
        fail("%s: summary timeline_samples %r != %d sample rows"
             % (where, summary.get("timeline_samples"), samples))
    num_boxes = summary.get("boxes")
    if num_boxes is not None and num_boxes != len(boxes):
        fail("%s: summary boxes %r != %d boxes seen in rows"
             % (where, num_boxes, len(boxes)))

    def close_to(a, b):
        return abs(a - b) <= PEAK_RTOL * max(1.0, abs(a), abs(b))

    if not is_finite_number(summary.get("peak_queue_depth")) \
            or not close_to(summary["peak_queue_depth"], peak_queue_depth):
        fail("%s: summary peak_queue_depth %r != recomputed %r"
             % (where, summary.get("peak_queue_depth"), peak_queue_depth))
    if not is_finite_number(summary.get("worst_window_p99")) \
            or not close_to(summary["worst_window_p99"], worst_window_p99):
        fail("%s: summary worst_window_p99 %r != recomputed %r"
             % (where, summary.get("worst_window_p99"), worst_window_p99))

    final = summary.get("final_counters")
    check_names(where, final, names["counters"], "final_counters")
    for name in names["counters"]:
        total = sum(last_counters[box][name] for box in boxes)
        if final[name] != total:
            fail("%s: summary final counter %s = %r, but the boxes' last "
                 "rows sum to %d" % (where, name, final[name], total))

    return samples, len(boxes), final


def check_results(results_path, point, final_counters):
    doc = load_json_file(TOOL, results_path)
    result = results_point(TOOL, doc, point)
    checkable = [key for _, key in RESULTS_KEYS if key in result]
    if not checkable:
        fail("%s: point %d has no conservation counters to cross-check "
             "(no fault/overload block)" % (results_path, point))
    for counter, key in RESULTS_KEYS:
        if counter not in final_counters:
            continue
        expected = result.get(key, 0)
        if final_counters[counter] != expected:
            fail("timeline final counter %s = %d, but %s in %s point %d "
                 "is %r" % (counter, final_counters[counter], key,
                            results_path, point, expected))
    return len(checkable)


def main():
    parser = argparse.ArgumentParser(
        description="Validate a simulator timeline JSONL file.")
    parser.add_argument("timeline", help="timeline JSONL path")
    parser.add_argument("--results", default=None,
                        help="bench results JSON to cross-check the "
                             "summary's final counters against")
    parser.add_argument("--point", type=int, default=0,
                        help="results sweep point index (default 0, the "
                             "default --trace-point)")
    args = parser.parse_args()

    samples, num_boxes, final = check_timeline(args.timeline)
    summary = "timeline_check: OK: %d samples" % samples
    if num_boxes > 1:
        summary += ", %d boxes" % num_boxes
    summary += ", completed=%d" % final.get("completed", 0)
    if args.results is not None:
        crossed = check_results(args.results, args.point, final)
        summary += ", %d results counters cross-checked" % crossed
    print(summary)


if __name__ == "__main__":
    main()
