// Example: call-detail-record (CDR) mining on tape — an open-queuing
// workload.
//
// A telecom provider keeps months of billing records on a tape jukebox
// (the paper's motivating scenario: "telecommunication service providers
// store terabytes of phone call data for billing, data mining, and fraud
// detection"). Fraud analysts submit sporadic scan requests — a Poisson
// stream whose rate does not react to how fast the jukebox answers. This
// example shows the open-queuing behaviour the paper describes: below
// saturation everything works; past saturation the backlog grows without
// bound and only *latency* distinguishes the schedulers, not throughput.
//
// Run: ./build/examples/cdr_mining [--sim-seconds N]

#include <iostream>

#include "core/tapejuke.h"

namespace {

using namespace tapejuke;

ExperimentConfig CdrBase(double sim_seconds, double interarrival) {
  ExperimentConfig config;
  config.jukebox.num_tapes = 10;
  config.jukebox.block_size_mb = 16;
  // Recent billing periods are hot: 10% of the data, 70% of the scans.
  config.layout.hot_fraction = 0.10;
  config.layout.num_replicas = 9;
  config.layout.start_position = 1.0;
  config.sim.workload.model = QueuingModel::kOpen;
  config.sim.workload.mean_interarrival_seconds = interarrival;
  config.sim.workload.hot_request_fraction = 0.70;
  config.sim.workload.seed = 7;
  config.sim.duration_seconds = sim_seconds;
  config.sim.warmup_seconds = sim_seconds * 0.1;
  config.algorithm = AlgorithmSpec::Parse("envelope-max-bandwidth").value();
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  double sim_seconds = 500'000;
  FlagSet flags("CDR mining: open-queuing study");
  flags.AddDouble("sim-seconds", &sim_seconds, "simulated seconds per run");
  const Status status = flags.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::cerr << status << "\n";
    return 2;
  }

  std::cout << "CDR mining on a 10-tape jukebox; analysts submit Poisson "
               "scan requests.\n\nLoad sweep (max-bandwidth envelope):\n";
  Table sweep({"interarrival (s)", "scans/min", "wait (min)",
               "backlog (avg)"});
  for (const double gap : {300.0, 150.0, 90.0, 60.0, 45.0}) {
    const ExperimentResult result =
        ExperimentRunner::Run(CdrBase(sim_seconds, gap)).value();
    sweep.AddRow({static_cast<int64_t>(gap),
                  result.sim.requests_per_minute,
                  result.sim.mean_delay_minutes,
                  result.sim.mean_outstanding});
  }
  sweep.PrintText(std::cout);
  std::cout << "Past saturation (~1 scan/min of service capability) the "
               "backlog explodes:\nthe arrival rate, not the scheduler, "
               "caps throughput.\n";

  std::cout << "\nScheduler comparison at heavy load (interarrival 55 s):\n";
  Table algos({"algorithm", "scans/min", "wait (min)"});
  for (const char* algo :
       {"static-max-bandwidth", "dynamic-max-bandwidth",
        "envelope-max-bandwidth"}) {
    ExperimentConfig config = CdrBase(sim_seconds, 55.0);
    config.algorithm = AlgorithmSpec::Parse(algo).value();
    const ExperimentResult result = ExperimentRunner::Run(config).value();
    algos.AddRow({result.algorithm_name, result.sim.requests_per_minute,
                  result.sim.mean_delay_minutes});
  }
  algos.PrintText(std::cout);
  std::cout << "\nThroughput is pinned by arrivals; the better schedulers "
               "show up purely as\nshorter analyst wait times (the paper's "
               "open-queuing caveat, Sections 4.2/4.4).\n";
  return 0;
}
