// run_experiment: a command-line front end exposing every knob of the
// library — jukebox geometry, workload skew and intensity, layout and
// replication, scheduling algorithm, queuing model, multi-drive mode, and
// trace capture/replay. Useful for ad-hoc exploration without writing C++.
//
// Examples:
//   run_experiment --algorithm envelope-max-bandwidth --replicas 9 --sp 1
//   run_experiment --queuing open --interarrival 70 --rh 0.6
//   run_experiment --drives 2 --queue 120
//   run_experiment --save-trace /tmp/t.csv --queuing open
//   run_experiment --replay-trace /tmp/t.csv --algorithm dynamic-max-requests

#include <iostream>

#include "core/tapejuke.h"
#include "sim/multi_drive.h"
#include "sim/trace.h"

namespace {

using namespace tapejuke;

void PrintResult(const std::string& algorithm, const LayoutStats& layout,
                 const SimulationResult& result) {
  Table table({"metric", "value"});
  table.set_precision(3);
  table.AddRow({std::string("algorithm"), algorithm});
  table.AddRow({std::string("logical blocks"), layout.logical_blocks});
  table.AddRow({std::string("hot blocks"), layout.hot_blocks});
  table.AddRow({std::string("physical copies"), layout.total_copies});
  table.AddRow({std::string("expansion factor"),
                layout.measured_expansion});
  table.AddRow({std::string("completed requests"),
                result.completed_requests});
  table.AddRow({std::string("throughput (req/min)"),
                result.requests_per_minute});
  table.AddRow({std::string("throughput (MB/s)"),
                result.throughput_mb_per_s});
  table.AddRow({std::string("mean delay (min)"),
                result.mean_delay_minutes});
  table.AddRow({std::string("p95 delay (min)"),
                result.p95_delay_seconds / 60.0});
  table.AddRow({std::string("mean outstanding"), result.mean_outstanding});
  table.AddRow({std::string("tape switches/h"),
                result.tape_switches_per_hour});
  table.AddRow({std::string("transfer utilization"),
                result.transfer_utilization});
  table.PrintText(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  // Jukebox geometry.
  int64_t tapes = 10;
  int64_t block_mb = 16;
  int64_t capacity_mb = 7168;
  int64_t drives = 1;
  bool fast_drive = false;
  // Layout.
  double ph = 0.10;
  int64_t replicas = 0;
  double sp = 0.0;
  std::string layout_name = "horizontal";
  bool organ_pipe = false;
  // Workload.
  std::string queuing = "closed";
  int64_t queue = 60;
  double interarrival = 90;
  double rh = 0.40;
  double zipf_theta = 0.0;
  double think_seconds = 0.0;
  int64_t seed = 1;
  // Simulation.
  double sim_seconds = tapejuke::DefaultSimSeconds();
  double warmup_frac = 0.1;
  std::string algorithm = "dynamic-max-bandwidth";
  // Traces.
  std::string save_trace;
  std::string replay_trace;

  FlagSet flags("Run one tapejuke experiment from the command line");
  flags.AddInt64("tapes", &tapes, "tapes in the jukebox");
  flags.AddInt64("block-mb", &block_mb, "logical block size, MB");
  flags.AddInt64("capacity-mb", &capacity_mb, "per-tape capacity, MB");
  flags.AddInt64("drives", &drives,
                 "drives in the cabinet (>1 uses the multi-drive extension)");
  flags.AddBool("fast-drive", &fast_drive,
                "use the hypothetical 4x-faster drive constants");
  flags.AddDouble("ph", &ph, "fraction of logical blocks that are hot");
  flags.AddInt64("replicas", &replicas, "extra copies of each hot block");
  flags.AddDouble("sp", &sp, "hot-region start position in [0,1]");
  flags.AddString("layout", &layout_name, "horizontal or vertical");
  flags.AddBool("organ-pipe", &organ_pipe,
                "center the hot region (overrides --sp)");
  flags.AddString("queuing", &queuing, "closed or open");
  flags.AddInt64("queue", &queue, "closed model: outstanding requests");
  flags.AddDouble("interarrival", &interarrival,
                  "open model: mean interarrival seconds");
  flags.AddDouble("rh", &rh, "fraction of requests to hot data");
  flags.AddDouble("zipf", &zipf_theta,
                  "use Zipf(theta) popularity instead of hot/cold when > 0");
  flags.AddDouble("think", &think_seconds,
                  "closed model: mean think time between requests, seconds");
  flags.AddInt64("seed", &seed, "workload seed");
  flags.AddDouble("sim-seconds", &sim_seconds, "simulated duration");
  flags.AddDouble("warmup-frac", &warmup_frac,
                  "fraction of the run excluded from statistics");
  flags.AddString("algorithm", &algorithm,
                  "fifo | static-<policy> | dynamic-<policy> | "
                  "envelope-<policy>");
  flags.AddString("save-trace", &save_trace,
                  "synthesize an open-model trace, save as CSV, and exit");
  flags.AddString("replay-trace", &replay_trace,
                  "replay a CSV trace instead of generating arrivals");
  const Status parse_status = flags.Parse(argc, argv);
  if (parse_status.code() == StatusCode::kNotFound) return 0;
  if (!parse_status.ok()) {
    std::cerr << parse_status << "\n";
    return 2;
  }

  ExperimentConfig config;
  config.jukebox.num_tapes = static_cast<int32_t>(tapes);
  config.jukebox.block_size_mb = block_mb;
  config.jukebox.timing = fast_drive ? TimingParams::FastDrive()
                                     : TimingParams::Exabyte8505XL();
  config.jukebox.timing.tape_capacity_mb = capacity_mb;
  config.layout.hot_fraction = ph;
  config.layout.num_replicas = static_cast<int32_t>(replicas);
  config.layout.start_position = sp;
  config.layout.layout = layout_name == "vertical" ? HotLayout::kVertical
                                                   : HotLayout::kHorizontal;
  if (organ_pipe) config.layout.placement = PlacementScheme::kOrganPipe;
  config.sim.duration_seconds = sim_seconds;
  config.sim.warmup_seconds = sim_seconds * warmup_frac;
  config.sim.workload.model =
      queuing == "open" ? QueuingModel::kOpen : QueuingModel::kClosed;
  config.sim.workload.queue_length = queue;
  config.sim.workload.mean_interarrival_seconds = interarrival;
  config.sim.workload.hot_request_fraction = rh;
  if (zipf_theta > 0) {
    config.sim.workload.skew = SkewModel::kZipf;
    config.sim.workload.zipf_theta = zipf_theta;
  }
  config.sim.workload.think_time_seconds = think_seconds;
  config.sim.workload.seed = static_cast<uint64_t>(seed);
  const StatusOr<AlgorithmSpec> spec = AlgorithmSpec::Parse(algorithm);
  if (!spec.ok()) {
    std::cerr << spec.status() << "\n";
    return 2;
  }
  config.algorithm = *spec;
  const Status valid = config.Validate();
  if (!valid.ok()) {
    std::cerr << valid << "\n";
    return 2;
  }

  // Trace capture: synthesize + save, no simulation.
  if (!save_trace.empty()) {
    Jukebox jukebox(config.jukebox);
    const StatusOr<Catalog> catalog =
        LayoutBuilder::Build(&jukebox, config.layout);
    if (!catalog.ok()) {
      std::cerr << catalog.status() << "\n";
      return 1;
    }
    const auto trace =
        SynthesizeTrace(*catalog, config.sim.workload, sim_seconds);
    const Status saved = SaveTrace(save_trace, trace);
    if (!saved.ok()) {
      std::cerr << saved << "\n";
      return 1;
    }
    std::cout << "wrote " << trace.size() << " arrivals to " << save_trace
              << "\n";
    return 0;
  }

  // Multi-drive path (single-drive scheduling policies only).
  if (drives > 1) {
    Jukebox jukebox(config.jukebox);
    const StatusOr<Catalog> catalog =
        LayoutBuilder::Build(&jukebox, config.layout);
    if (!catalog.ok()) {
      std::cerr << catalog.status() << "\n";
      return 1;
    }
    MultiDriveConfig drive_config;
    drive_config.num_drives = static_cast<int32_t>(drives);
    drive_config.policy = config.algorithm.policy;
    MultiDriveSimulator sim(&jukebox, &catalog.value(), drive_config,
                            config.sim);
    const SimulationResult result = sim.Run();
    PrintResult(std::to_string(drives) + "-drive " +
                    std::string(TapePolicyName(config.algorithm.policy)),
                LayoutBuilder::ComputeStats(jukebox, catalog.value()),
                result);
    std::cout << "robot wait (s): " << sim.stats().robot_wait_seconds
              << ", claim conflicts: " << sim.stats().claim_conflicts
              << "\n";
    return 0;
  }

  // Trace replay.
  if (!replay_trace.empty()) {
    const StatusOr<std::vector<TraceRecord>> trace =
        LoadTrace(replay_trace);
    if (!trace.ok()) {
      std::cerr << trace.status() << "\n";
      return 1;
    }
    Jukebox jukebox(config.jukebox);
    const StatusOr<Catalog> catalog =
        LayoutBuilder::Build(&jukebox, config.layout);
    if (!catalog.ok()) {
      std::cerr << catalog.status() << "\n";
      return 1;
    }
    const auto scheduler =
        CreateScheduler(config.algorithm, &jukebox, &catalog.value());
    Simulator sim(&jukebox, &catalog.value(), scheduler.get(), config.sim,
                  TraceToRequests(*trace));
    PrintResult(scheduler->name() + " (trace replay, " +
                    std::to_string(trace->size()) + " arrivals)",
                LayoutBuilder::ComputeStats(jukebox, catalog.value()),
                sim.Run());
    return 0;
  }

  const StatusOr<ExperimentResult> result = ExperimentRunner::Run(config);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  PrintResult(result->algorithm_name, result->layout, result->sim);
  return 0;
}
