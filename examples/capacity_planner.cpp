// Example: capacity planner — should this jukebox replicate its hot data?
//
// Encodes the paper's §4.8 decision procedure. Given the workload skew
// (PH, RH) and per-jukebox load, it reports the storage expansion factor,
// the cost-performance ratio of replication at equal total cost (a
// replicated farm needs E times more jukeboxes, so each sees 1/E of the
// load), the "free" spare-capacity variant, and a recommendation following
// the paper's concluding rules.
//
// Run: ./build/examples/capacity_planner --ph 10 --rh 80 --queue 60

#include <iostream>

#include "core/tapejuke.h"

namespace {

using namespace tapejuke;

}  // namespace

int main(int argc, char** argv) {
  double ph = 10.0;
  double rh = 80.0;
  int64_t queue = 60;
  double sim_seconds = 400'000;
  FlagSet flags("Replication capacity planner (paper Section 4.8)");
  flags.AddDouble("ph", &ph, "percent of data that is hot");
  flags.AddDouble("rh", &rh, "percent of requests directed to hot data");
  flags.AddInt64("queue", &queue, "non-replicated per-jukebox queue length");
  flags.AddDouble("sim-seconds", &sim_seconds, "simulated seconds per run");
  const Status status = flags.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::cerr << status << "\n";
    return 2;
  }

  ExperimentConfig base;
  base.layout.hot_fraction = ph / 100.0;
  base.sim.workload.hot_request_fraction = rh / 100.0;
  base.sim.workload.seed = 11;
  base.sim.duration_seconds = sim_seconds;
  base.sim.warmup_seconds = sim_seconds * 0.1;
  base.algorithm = AlgorithmSpec::Parse("envelope-max-bandwidth").value();

  std::cout << "Capacity planner | PH-" << ph << " RH-" << rh << " queue "
            << queue << "\n\n";

  const auto curve =
      CostPerformanceCurve(base, queue, {0, 1, 2, 3, 5, 7, 9}).value();
  Table table({"replicas", "expansion E", "queue/jukebox",
               "throughput MB/s", "cost-perf ratio"});
  table.set_precision(3);
  double best_ratio = 1.0;
  int best_nr = 0;
  for (const CostPerformancePoint& point : curve) {
    table.AddRow({static_cast<int64_t>(point.num_replicas),
                  point.expansion_factor, point.effective_queue,
                  point.throughput_mb_per_s,
                  point.cost_performance_ratio});
    if (point.cost_performance_ratio > best_ratio) {
      best_ratio = point.cost_performance_ratio;
      best_nr = point.num_replicas;
    }
  }
  table.PrintText(std::cout);

  // The §4.8 "free" variant: same dataset, spare space at the tape ends
  // either left empty (the natural state of a gradually filled jukebox) or
  // holding replicas of the hot data.
  ExperimentConfig replicated = base;
  replicated.layout.layout = HotLayout::kVertical;
  replicated.layout.num_replicas = 9;
  replicated.layout.start_position = 1.0;
  replicated.sim.workload.queue_length = queue;
  ExperimentConfig spare = replicated;
  spare.layout.num_replicas = 0;
  spare.layout.start_position = 0.0;
  {
    Jukebox probe(replicated.jukebox);
    spare.layout.logical_blocks_override =
        LayoutBuilder::MaxLogicalBlocks(probe, replicated.layout);
  }
  const ExperimentResult with_replicas =
      ExperimentRunner::Run(replicated).value();
  const ExperimentResult left_empty = ExperimentRunner::Run(spare).value();

  std::cout << "\nSpare-capacity check (same dataset on both):\n";
  Table spare_table({"scheme", "req/min", "wait (min)"});
  spare_table.AddRow({std::string("spare space left empty"),
                      left_empty.sim.requests_per_minute,
                      left_empty.sim.mean_delay_minutes});
  spare_table.AddRow({std::string("spare space holds replicas"),
                      with_replicas.sim.requests_per_minute,
                      with_replicas.sim.mean_delay_minutes});
  spare_table.PrintText(std::cout);

  std::cout << "\nRecommendation:\n";
  if (best_ratio > 1.02) {
    std::cout << "  * Skew is high enough that replication pays for itself: "
              << best_nr << " replicas improve cost-performance by "
              << static_cast<int>((best_ratio - 1.0) * 100 + 0.5) << "%.\n";
  } else {
    std::cout << "  * At this skew, buying extra capacity for replicas does "
                 "not pay (cost-performance ratio <= ~1).\n";
  }
  std::cout << "  * Whatever the skew: if the jukebox has spare capacity, "
               "fill it with replicas\n    of hot data at the tape ends — "
               "the performance gain is free (see the\n    spare-capacity "
               "check above).\n"
            << "  * While the jukebox fills, keep the hottest " << ph
            << "% of data on a dedicated tape\n    (vertical layout), "
               "append replicas to the ends of the other tapes, and\n    "
               "reclaim the replica space as the jukebox approaches "
               "overflow.\n";
  return 0;
}
