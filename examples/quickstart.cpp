// Quickstart: simulate one tape jukebox under a skewed workload and compare
// a naive FIFO scheduler against the paper's best algorithm (max-bandwidth
// envelope) with and without replication of hot data.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "core/tapejuke.h"

namespace {

tapejuke::ExperimentConfig BaseConfig() {
  tapejuke::ExperimentConfig config;
  // An Exabyte EXB-210-like jukebox: 10 tapes x 7 GB, 16 MB blocks.
  config.jukebox.num_tapes = 10;
  config.jukebox.block_size_mb = 16;
  // 10% of the data is hot (PH-10), 40% of requests go to hot data (RH-40).
  config.layout.hot_fraction = 0.10;
  config.sim.workload.hot_request_fraction = 0.40;
  // A moderate closed-queuing load: 60 outstanding requests.
  config.sim.workload.model = tapejuke::QueuingModel::kClosed;
  config.sim.workload.queue_length = 60;
  config.sim.workload.seed = 42;
  // Short demonstration run (benches use longer ones).
  config.sim.duration_seconds = 400'000;
  config.sim.warmup_seconds = 40'000;
  return config;
}

void RunOne(const std::string& algorithm, int num_replicas,
            tapejuke::Table* table) {
  tapejuke::ExperimentConfig config = BaseConfig();
  config.algorithm = tapejuke::AlgorithmSpec::Parse(algorithm).value();
  config.layout.num_replicas = num_replicas;
  // Best placements per the paper: beginning of tape without replication,
  // end of tape with replication.
  config.layout.start_position = num_replicas == 0 ? 0.0 : 1.0;

  const tapejuke::ExperimentResult result =
      tapejuke::ExperimentRunner::Run(config).value();
  table->AddRow({result.algorithm_name, static_cast<int64_t>(num_replicas),
                 result.sim.requests_per_minute,
                 result.sim.mean_delay_minutes,
                 result.sim.tape_switches_per_hour,
                 result.layout.measured_expansion});
}

}  // namespace

int main() {
  std::cout << "tapejuke quickstart: 10-tape jukebox, PH-10 RH-40, "
               "queue length 60\n\n";
  tapejuke::Table table({"algorithm", "replicas", "req/min", "delay (min)",
                         "switches/h", "expansion"});
  RunOne("fifo", 0, &table);
  RunOne("static-max-bandwidth", 0, &table);
  RunOne("dynamic-max-bandwidth", 0, &table);
  RunOne("envelope-max-bandwidth", 0, &table);
  RunOne("dynamic-max-bandwidth", 9, &table);
  RunOne("envelope-max-bandwidth", 9, &table);
  table.PrintText(std::cout);
  std::cout << "\nExpected shape: FIFO is far worse than everything else;\n"
               "full replication (9 replicas) beats no replication; the\n"
               "envelope algorithm is the best choice with replication.\n";
  return 0;
}
