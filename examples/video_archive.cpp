// Example: a video-on-demand archive on a tape jukebox.
//
// A digital library stores encoded video on a 10-tape jukebox. A small
// catalog of popular titles (the hot set) receives most of the traffic.
// This example walks through the paper's design recipe for such a system:
//
//   1. pick a transfer size that keeps the effective data rate usable;
//   2. decide how many replicas of the popular titles to store;
//   3. decide where on the tapes the popular titles belong;
//   4. pick the scheduling algorithm.
//
// Run: ./build/examples/video_archive [--sim-seconds N]

#include <iostream>

#include "core/tapejuke.h"

namespace {

using namespace tapejuke;

ExperimentConfig ArchiveBase(double sim_seconds) {
  ExperimentConfig config;
  config.jukebox.num_tapes = 10;
  config.jukebox.block_size_mb = 32;  // one block ~= a 30 s video segment
  config.layout.hot_fraction = 0.05;  // 5% of titles are popular
  config.sim.workload.hot_request_fraction = 0.60;  // they get 60% of plays
  config.sim.workload.queue_length = 80;  // many concurrent viewers
  config.sim.workload.seed = 2026;
  config.sim.duration_seconds = sim_seconds;
  config.sim.warmup_seconds = sim_seconds * 0.1;
  config.algorithm = AlgorithmSpec::Parse("envelope-max-bandwidth").value();
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  double sim_seconds = 400'000;
  FlagSet flags("Video archive design study");
  flags.AddDouble("sim-seconds", &sim_seconds, "simulated seconds per run");
  const Status status = flags.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::cerr << status << "\n";
    return 2;
  }

  std::cout << "Video archive: 10 tapes x 7 GB, 32 MB segments, 5% of "
               "titles get 60% of plays\n";

  // Step 1: how many replicas of the popular titles?
  std::cout << "\nStep 1 -- replicate the popular titles?\n";
  Table replicas({"replicas", "plays/min", "wait (min)", "titles stored",
                  "switches/h"});
  for (const int nr : {0, 3, 6, 9}) {
    ExperimentConfig config = ArchiveBase(sim_seconds);
    config.layout.num_replicas = nr;
    config.layout.start_position = nr == 0 ? 0.0 : 1.0;
    const ExperimentResult result = ExperimentRunner::Run(config).value();
    replicas.AddRow({static_cast<int64_t>(nr),
                     result.sim.requests_per_minute,
                     result.sim.mean_delay_minutes,
                     result.layout.logical_blocks,
                     result.sim.tape_switches_per_hour});
  }
  replicas.PrintText(std::cout);
  std::cout << "More replicas serve more plays per minute, at the price of "
               "archive capacity\n(the 'titles stored' column).\n";

  // Step 2: where do the popular titles belong?
  std::cout << "\nStep 2 -- placement of the popular titles (full "
               "replication):\n";
  Table placement({"placement", "plays/min", "wait (min)"});
  for (const double sp : {0.0, 0.5, 1.0}) {
    ExperimentConfig config = ArchiveBase(sim_seconds);
    config.layout.num_replicas = 9;
    config.layout.start_position = sp;
    const ExperimentResult result = ExperimentRunner::Run(config).value();
    placement.AddRow({"SP-" + std::to_string(sp).substr(0, 3),
                      result.sim.requests_per_minute,
                      result.sim.mean_delay_minutes});
  }
  placement.PrintText(std::cout);
  std::cout << "Replicated hot titles belong at the tape ends (SP-1.0).\n";

  // Step 3: which scheduler?
  std::cout << "\nStep 3 -- scheduler choice (full replication, SP-1.0):\n";
  Table sched({"algorithm", "plays/min", "wait (min)"});
  for (const char* algo :
       {"fifo", "static-max-bandwidth", "dynamic-max-bandwidth",
        "envelope-max-bandwidth"}) {
    ExperimentConfig config = ArchiveBase(sim_seconds);
    config.layout.num_replicas = 9;
    config.layout.start_position = 1.0;
    config.algorithm = AlgorithmSpec::Parse(algo).value();
    const ExperimentResult result = ExperimentRunner::Run(config).value();
    sched.AddRow({result.algorithm_name, result.sim.requests_per_minute,
                  result.sim.mean_delay_minutes});
  }
  sched.PrintText(std::cout);
  std::cout << "\nRecipe: >=16 MB segments, full replication of the hot "
               "catalog at the tape ends,\nmax-bandwidth envelope "
               "scheduling.\n";
  return 0;
}
