// Unit and property tests for layout construction (placement + replication).

#include "layout/placement.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

namespace tapejuke {
namespace {

JukeboxConfig PaperJukebox() {
  JukeboxConfig config;
  config.num_tapes = 10;
  config.block_size_mb = 16;  // 448 slots per tape, 4480 total
  return config;
}

TEST(LayoutSpec, ValidateBounds) {
  Jukebox jukebox(PaperJukebox());
  LayoutSpec spec;
  EXPECT_TRUE(spec.Validate(jukebox).ok());
  spec.hot_fraction = 1.5;
  EXPECT_FALSE(spec.Validate(jukebox).ok());
  spec = LayoutSpec{};
  spec.start_position = -0.1;
  EXPECT_FALSE(spec.Validate(jukebox).ok());
  spec = LayoutSpec{};
  spec.num_replicas = 10;  // horizontal needs NR + 1 <= 10
  EXPECT_FALSE(spec.Validate(jukebox).ok());
  spec.num_replicas = 9;
  EXPECT_TRUE(spec.Validate(jukebox).ok());
  spec = LayoutSpec{};
  spec.layout = HotLayout::kVertical;
  spec.num_replicas = 9;  // vertical allows up to T - 1
  EXPECT_TRUE(spec.Validate(jukebox).ok());
  spec.num_replicas = 10;
  EXPECT_FALSE(spec.Validate(jukebox).ok());
  spec = LayoutSpec{};
  spec.hot_fraction = 0.0;
  spec.num_replicas = 1;
  EXPECT_FALSE(spec.Validate(jukebox).ok());
}

TEST(LayoutBuilder, ExpansionFactorMatchesPaperFormula) {
  // Fig. 10(a): E = 1 + NR * PH.
  EXPECT_DOUBLE_EQ(LayoutBuilder::ExpansionFactor(0.10, 0), 1.0);
  EXPECT_DOUBLE_EQ(LayoutBuilder::ExpansionFactor(0.10, 9), 1.9);
  EXPECT_DOUBLE_EQ(LayoutBuilder::ExpansionFactor(0.05, 4), 1.2);
  EXPECT_DOUBLE_EQ(LayoutBuilder::ExpansionFactor(0.20, 5), 2.0);
}

TEST(LayoutBuilder, NoReplicationUsesAllSlots) {
  Jukebox jukebox(PaperJukebox());
  LayoutSpec spec;  // PH-10, NR-0, SP-0, horizontal
  const Catalog catalog = LayoutBuilder::Build(&jukebox, spec).value();
  EXPECT_EQ(catalog.num_blocks(), 4480);
  EXPECT_EQ(catalog.num_hot_blocks(), 448);
  EXPECT_EQ(catalog.TotalCopies(), 4480);
  const LayoutStats stats = LayoutBuilder::ComputeStats(jukebox, catalog);
  EXPECT_EQ(stats.used_slots, 4480);
  EXPECT_DOUBLE_EQ(stats.measured_expansion, 1.0);
}

TEST(LayoutBuilder, FullReplicationShrinksDataset) {
  Jukebox jukebox(PaperJukebox());
  LayoutSpec spec;
  spec.num_replicas = 9;
  spec.start_position = 1.0;
  const Catalog catalog = LayoutBuilder::Build(&jukebox, spec).value();
  // L ~= 4480 / 1.9 ~= 2357.
  EXPECT_NEAR(catalog.num_blocks(), 4480 / 1.9, 16);
  // Hot blocks have all 10 copies.
  for (BlockId b = 0; b < catalog.num_hot_blocks(); ++b) {
    EXPECT_EQ(catalog.ReplicasOf(b).size(), 10u);
  }
  // Cold blocks have exactly one copy.
  for (BlockId b = catalog.num_hot_blocks(); b < catalog.num_blocks(); ++b) {
    EXPECT_EQ(catalog.ReplicasOf(b).size(), 1u);
  }
  const LayoutStats stats = LayoutBuilder::ComputeStats(jukebox, catalog);
  EXPECT_NEAR(stats.measured_expansion, 1.9, 0.02);
}

TEST(LayoutBuilder, StartPositionZeroPutsHotAtBeginning) {
  Jukebox jukebox(PaperJukebox());
  LayoutSpec spec;  // SP-0
  const Catalog catalog = LayoutBuilder::Build(&jukebox, spec).value();
  for (BlockId b = 0; b < catalog.num_hot_blocks(); ++b) {
    for (const Replica& r : catalog.ReplicasOf(b)) {
      // ~448 hot blocks over 10 tapes: hot region is the first ~45 slots.
      EXPECT_LT(r.slot, 46);
    }
  }
}

TEST(LayoutBuilder, StartPositionOnePutsHotAtEnd) {
  Jukebox jukebox(PaperJukebox());
  LayoutSpec spec;
  spec.start_position = 1.0;
  const Catalog catalog = LayoutBuilder::Build(&jukebox, spec).value();
  for (BlockId b = 0; b < catalog.num_hot_blocks(); ++b) {
    for (const Replica& r : catalog.ReplicasOf(b)) {
      EXPECT_GE(r.slot, 448 - 46);
    }
  }
}

TEST(LayoutBuilder, OrganPipeCentersHotRegion) {
  Jukebox jukebox(PaperJukebox());
  LayoutSpec spec;
  spec.placement = PlacementScheme::kOrganPipe;
  const Catalog catalog = LayoutBuilder::Build(&jukebox, spec).value();
  for (BlockId b = 0; b < catalog.num_hot_blocks(); ++b) {
    for (const Replica& r : catalog.ReplicasOf(b)) {
      EXPECT_GT(r.slot, 150);
      EXPECT_LT(r.slot, 300);
    }
  }
}

TEST(LayoutBuilder, VerticalDedicatesTapeZeroToHot) {
  Jukebox jukebox(PaperJukebox());
  LayoutSpec spec;
  spec.layout = HotLayout::kVertical;
  const Catalog catalog = LayoutBuilder::Build(&jukebox, spec).value();
  // PH-10 with NR-0: hot data exactly fills one tape.
  EXPECT_EQ(catalog.num_hot_blocks(), 448);
  for (BlockId b = 0; b < catalog.num_hot_blocks(); ++b) {
    ASSERT_EQ(catalog.ReplicasOf(b).size(), 1u);
    EXPECT_EQ(catalog.ReplicasOf(b).front().tape, 0);
  }
  for (BlockId b = catalog.num_hot_blocks(); b < catalog.num_blocks(); ++b) {
    EXPECT_NE(catalog.ReplicasOf(b).front().tape, 0);
  }
}

TEST(LayoutBuilder, VerticalReplicasAvoidHotTape) {
  Jukebox jukebox(PaperJukebox());
  LayoutSpec spec;
  spec.layout = HotLayout::kVertical;
  spec.num_replicas = 3;
  spec.start_position = 1.0;
  const Catalog catalog = LayoutBuilder::Build(&jukebox, spec).value();
  for (BlockId b = 0; b < catalog.num_hot_blocks(); ++b) {
    const auto& replicas = catalog.ReplicasOf(b);
    ASSERT_EQ(replicas.size(), 4u);
    int on_hot_tape = 0;
    for (const Replica& r : replicas) {
      if (r.tape == 0) ++on_hot_tape;
    }
    EXPECT_EQ(on_hot_tape, 1);  // only the original
  }
}

TEST(LayoutBuilder, PackColdLeavesSpareTapesEmpty) {
  Jukebox jukebox(PaperJukebox());
  LayoutSpec spec;
  spec.layout = HotLayout::kVertical;
  spec.pack_cold = true;
  // Use the dataset size of the fully replicated scheme, but store no
  // replicas (§4.8's spare-capacity baseline).
  LayoutSpec replicated;
  replicated.layout = HotLayout::kVertical;
  replicated.num_replicas = 9;
  const int64_t replicated_max =
      LayoutBuilder::MaxLogicalBlocks(jukebox, replicated);
  spec.logical_blocks_override = replicated_max;
  const Catalog catalog = LayoutBuilder::Build(&jukebox, spec).value();
  EXPECT_EQ(catalog.num_blocks(), replicated_max);
  // Cold data is packed: at least two tapes stay completely empty.
  int empty_tapes = 0;
  for (TapeId t = 0; t < jukebox.num_tapes(); ++t) {
    if (jukebox.tape(t).num_blocks() == 0) ++empty_tapes;
  }
  EXPECT_GE(empty_tapes, 2);
}

TEST(LayoutBuilder, OverrideInfeasibleFails) {
  Jukebox jukebox(PaperJukebox());
  LayoutSpec spec;
  spec.logical_blocks_override = 4481;  // one more than the slots
  const StatusOr<Catalog> result = LayoutBuilder::Build(&jukebox, spec);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCapacityExceeded);
}

TEST(LayoutBuilder, BuildRequiresEmptyJukebox) {
  Jukebox jukebox(PaperJukebox());
  LayoutSpec spec;
  ASSERT_TRUE(LayoutBuilder::Build(&jukebox, spec).ok());
  const StatusOr<Catalog> second = LayoutBuilder::Build(&jukebox, spec);
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
}

TEST(LayoutBuilder, ZeroHotFractionIsAllCold) {
  Jukebox jukebox(PaperJukebox());
  LayoutSpec spec;
  spec.hot_fraction = 0.0;
  const Catalog catalog = LayoutBuilder::Build(&jukebox, spec).value();
  EXPECT_EQ(catalog.num_hot_blocks(), 0);
  EXPECT_EQ(catalog.num_blocks(), 4480);
}

TEST(LayoutBuilder, MultiTapeVerticalPacksHotOntoLeadingTapes) {
  // PH-30: more hot data than one tape holds. The vertical layout
  // generalizes to a minimal prefix of dedicated hot tapes (the paper
  // stopped at one tape; §4.3 voices a suspicion about this case).
  Jukebox jukebox(PaperJukebox());
  LayoutSpec spec;
  spec.hot_fraction = 0.30;
  spec.layout = HotLayout::kVertical;
  const Catalog catalog = LayoutBuilder::Build(&jukebox, spec).value();
  EXPECT_EQ(catalog.num_blocks(), 4480);  // nothing wasted
  EXPECT_EQ(catalog.num_hot_blocks(), 1344);  // exactly 3 tapes
  for (BlockId b = 0; b < catalog.num_hot_blocks(); ++b) {
    EXPECT_LT(catalog.ReplicasOf(b).front().tape, 3);
  }
  for (BlockId b = catalog.num_hot_blocks(); b < catalog.num_blocks();
       ++b) {
    EXPECT_GE(catalog.ReplicasOf(b).front().tape, 3);
  }
  // Hot tapes are completely full.
  for (TapeId t = 0; t < 3; ++t) {
    EXPECT_EQ(jukebox.tape(t).num_blocks(), 448);
  }
}

TEST(LayoutBuilder, MultiTapeVerticalWithReplicasAvoidsHotTapes) {
  Jukebox jukebox(PaperJukebox());
  LayoutSpec spec;
  spec.hot_fraction = 0.25;
  spec.layout = HotLayout::kVertical;
  spec.num_replicas = 2;
  spec.start_position = 1.0;
  const Catalog catalog = LayoutBuilder::Build(&jukebox, spec).value();
  const int32_t hot_tapes = static_cast<int32_t>(
      (catalog.num_hot_blocks() + 447) / 448);
  for (BlockId b = 0; b < catalog.num_hot_blocks(); ++b) {
    const auto& replicas = catalog.ReplicasOf(b);
    ASSERT_EQ(replicas.size(), 3u);
    int on_hot_tapes = 0;
    for (const Replica& replica : replicas) {
      if (replica.tape < hot_tapes) ++on_hot_tapes;
    }
    EXPECT_EQ(on_hot_tapes, 1);  // only the original
  }
}

TEST(LayoutBuilder, VerticalReplicationBoundedByNonHotTapes) {
  // PH-30 leaves 7 non-hot tapes: 7 replicas fit, 8 cannot.
  Jukebox jukebox(PaperJukebox());
  LayoutSpec spec;
  spec.hot_fraction = 0.30;
  spec.layout = HotLayout::kVertical;
  spec.num_replicas = 7;
  EXPECT_GT(LayoutBuilder::MaxLogicalBlocks(jukebox, spec), 0);
  spec.num_replicas = 8;
  // Infeasible at any dataset size where 3 hot tapes are needed; the
  // builder shrinks the dataset until fewer hot tapes suffice or fails.
  const int64_t max_blocks = LayoutBuilder::MaxLogicalBlocks(jukebox, spec);
  if (max_blocks > 0) {
    const int64_t hot = std::llround(0.30 * static_cast<double>(max_blocks));
    EXPECT_LE((hot + 447) / 448, 2);
  }
}

// ---------------------------------------------------------------------------
// Property sweep: every layout in a PH x NR x SP x layout grid satisfies the
// structural invariants.
// ---------------------------------------------------------------------------

using LayoutCase = std::tuple<double, int, double, HotLayout>;

class LayoutPropertyTest : public ::testing::TestWithParam<LayoutCase> {};

TEST_P(LayoutPropertyTest, StructuralInvariantsHold) {
  const auto [ph, nr, sp, layout] = GetParam();
  Jukebox jukebox(PaperJukebox());
  LayoutSpec spec;
  spec.hot_fraction = ph;
  spec.num_replicas = nr;
  spec.start_position = sp;
  spec.layout = layout;
  if (!spec.Validate(jukebox).ok()) {
    GTEST_SKIP() << "spec invalid for this geometry";
  }
  const Catalog catalog = LayoutBuilder::Build(&jukebox, spec).value();

  // Hot blocks have NR+1 copies on distinct tapes; cold blocks one copy.
  for (BlockId b = 0; b < catalog.num_blocks(); ++b) {
    const auto& replicas = catalog.ReplicasOf(b);
    const size_t expected = catalog.IsHot(b) ? static_cast<size_t>(nr) + 1
                                             : 1u;
    ASSERT_EQ(replicas.size(), expected) << "block " << b;
    std::set<TapeId> tapes;
    for (const Replica& r : replicas) {
      ASSERT_TRUE(tapes.insert(r.tape).second);
      // Catalog and tape contents agree.
      ASSERT_EQ(jukebox.tape(r.tape).BlockAtSlot(r.slot), b);
      ASSERT_EQ(r.position, jukebox.tape(r.tape).PositionOfSlot(r.slot));
    }
  }

  // Every occupied slot appears in the catalog exactly once.
  int64_t occupied = 0;
  for (TapeId t = 0; t < jukebox.num_tapes(); ++t) {
    occupied += jukebox.tape(t).num_blocks();
  }
  EXPECT_EQ(occupied, catalog.TotalCopies());

  // Hot count matches PH within rounding.
  EXPECT_NEAR(static_cast<double>(catalog.num_hot_blocks()),
              ph * static_cast<double>(catalog.num_blocks()), 1.0);

  // The dataset is maximal: one more block must not fit.
  EXPECT_EQ(LayoutBuilder::MaxLogicalBlocks(jukebox, spec),
            catalog.num_blocks());

  // Measured expansion tracks the analytic E = 1 + NR * PH.
  const LayoutStats stats = LayoutBuilder::ComputeStats(jukebox, catalog);
  EXPECT_NEAR(stats.measured_expansion,
              LayoutBuilder::ExpansionFactor(ph, nr), 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LayoutPropertyTest,
    ::testing::Combine(::testing::Values(0.05, 0.10, 0.20),
                       ::testing::Values(0, 1, 3, 9),
                       ::testing::Values(0.0, 0.5, 1.0),
                       ::testing::Values(HotLayout::kHorizontal,
                                         HotLayout::kVertical)));

}  // namespace
}  // namespace tapejuke
